//! A Treiber lock-free stack over the kernel's atomic cells — the
//! "low-level synchronization libraries that typically employ nonblocking
//! algorithms" CHESS targets (Section 4.1), with the classic **ABA bug**.
//!
//! The stack's head is a single atomic word holding a node id. Push and
//! pop are CAS loops:
//!
//! ```text
//! push(n):  loop { h = head; next[n] = h; if CAS(head, h, n) break }
//! pop():    loop { h = head; if h == null fail;
//!                  n = next[h]; if CAS(head, h, n) return h }
//! ```
//!
//! The unversioned variant suffers ABA: a popper reads `h = A` and
//! `n = next[A] = B`, is preempted while another thread pops `A`, pops
//! `B`, and pushes `A` back; the popper's `CAS(head, A, B)` then succeeds
//! even though `B` has long been removed — the head now points at a
//! *freed* node. The fix packs a version counter into the head word so
//! every successful CAS invalidates stale reads.
//!
//! The harness tracks node ownership (`in_stack`) and reports a violation
//! the moment the head is CAS'd onto a freed node, exactly the kind of
//! heisenbug that is close to impossible to catch without a model
//! checker.

use chess_kernel::{
    AtomicId, Capture, Effects, GuestThread, Kernel, OpDesc, OpResult, StateWriter,
};

/// Head-word encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeadEncoding {
    /// Raw node id: vulnerable to ABA.
    Unversioned,
    /// `version << 32 | node`: every successful CAS bumps the version.
    Versioned,
}

/// Treiber-stack workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct TreiberConfig {
    /// Head-word encoding (the bug toggle).
    pub encoding: HeadEncoding,
    /// Number of mutator threads running the pop–pop–push-back script.
    pub mutators: usize,
}

impl TreiberConfig {
    /// The correct (versioned) stack.
    pub fn correct() -> Self {
        TreiberConfig {
            encoding: HeadEncoding::Versioned,
            mutators: 1,
        }
    }

    /// The ABA-vulnerable stack.
    pub fn aba() -> Self {
        TreiberConfig {
            encoding: HeadEncoding::Unversioned,
            ..TreiberConfig::correct()
        }
    }
}

/// Shared state: the node arena and ownership tracking.
#[derive(Debug, Clone, Default)]
pub struct StackShared {
    /// `next[n]` for node ids `1..`; index 0 is the null sentinel.
    pub next: Vec<u64>,
    /// Harness bookkeeping: is node `n` currently linked in the stack?
    pub in_stack: Vec<bool>,
    /// Successful pops (for the final count).
    pub pops: u32,
}

impl StackShared {
    fn node_count(nodes: u32) -> StackShared {
        StackShared {
            next: vec![0; nodes as usize + 1],
            in_stack: vec![false; nodes as usize + 1],
            pops: 0,
        }
    }
}

impl Capture for StackShared {
    fn capture(&self, w: &mut StateWriter) {
        for &n in &self.next {
            w.write_u64(n);
        }
        for &b in &self.in_stack {
            w.write_bool(b);
        }
        w.write_u32(self.pops);
    }
}

const VERSION_SHIFT: u32 = 32;
const NODE_MASK: u64 = (1 << VERSION_SHIFT) - 1;

fn node_of(word: u64) -> u64 {
    word & NODE_MASK
}

fn bump(word: u64, new_node: u64, encoding: HeadEncoding) -> u64 {
    match encoding {
        HeadEncoding::Unversioned => new_node,
        HeadEncoding::Versioned => {
            let version = (word >> VERSION_SHIFT) + 1;
            (version << VERSION_SHIFT) | new_node
        }
    }
}

/// One stack operation of a mutator script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StackAction {
    /// Pop a node (remember it in the local slot).
    Pop(usize),
    /// Push the node remembered in the local slot back.
    PushSlot(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pc {
    ReadHead,
    ReadNext,
    CasPop,
    LinkNode,
    CasPush,
    Advance,
    Done,
}

/// A thread executing a script of stack operations via CAS loops.
#[derive(Debug, Clone)]
struct StackUser {
    id: usize,
    script: Vec<StackAction>,
    idx: usize,
    pc: Pc,
    /// Local head word read at the top of the CAS loop.
    h: u64,
    /// Local successor read from the popped candidate.
    n: u64,
    /// Nodes this thread popped, by slot.
    slots: Vec<u64>,
    head: AtomicId,
    encoding: HeadEncoding,
}

impl StackUser {
    fn action(&self) -> Option<StackAction> {
        self.script.get(self.idx).copied()
    }
}

impl GuestThread<StackShared> for StackUser {
    fn next_op(&self, _: &StackShared) -> OpDesc {
        match self.pc {
            Pc::ReadHead => OpDesc::AtomicLoad(self.head),
            Pc::ReadNext | Pc::LinkNode | Pc::Advance => OpDesc::Local,
            Pc::CasPop => OpDesc::AtomicCas(self.head, self.h, bump(self.h, self.n, self.encoding)),
            Pc::CasPush => {
                let Some(StackAction::PushSlot(slot)) = self.action() else {
                    unreachable!()
                };
                OpDesc::AtomicCas(
                    self.head,
                    self.h,
                    bump(self.h, self.slots[slot], self.encoding),
                )
            }
            Pc::Done => OpDesc::Finished,
        }
    }

    fn on_op(&mut self, r: OpResult, sh: &mut StackShared, fx: &mut Effects<StackShared>) {
        let who = format!("user{}", self.id);
        self.pc = match self.pc {
            Pc::ReadHead => {
                self.h = r.as_value();
                match self.action() {
                    Some(StackAction::Pop(_)) => {
                        if node_of(self.h) == 0 {
                            // Empty: this tiny harness treats it as done
                            // with the action.
                            Pc::Advance
                        } else {
                            Pc::ReadNext
                        }
                    }
                    Some(StackAction::PushSlot(_)) => Pc::LinkNode,
                    None => Pc::Done,
                }
            }
            Pc::ReadNext => {
                self.n = sh.next[node_of(self.h) as usize];
                Pc::CasPop
            }
            Pc::CasPop => {
                if r.as_bool() {
                    let Some(StackAction::Pop(slot)) = self.action() else {
                        unreachable!()
                    };
                    let popped = node_of(self.h);
                    let new_top = node_of(self.n);
                    fx.check(
                        sh.in_stack[popped as usize],
                        format_args!("{who}: popped node {popped} that was not in the stack"),
                    );
                    if new_top != 0 {
                        fx.check(
                            sh.in_stack[new_top as usize],
                            format_args!("{who}: ABA! head now points at freed node {new_top}"),
                        );
                    }
                    sh.in_stack[popped as usize] = false;
                    sh.pops += 1;
                    if self.slots.len() <= slot {
                        self.slots.resize(slot + 1, 0);
                    }
                    self.slots[slot] = popped;
                    Pc::Advance
                } else {
                    Pc::ReadHead // CAS failed: retry the loop
                }
            }
            Pc::LinkNode => {
                let Some(StackAction::PushSlot(slot)) = self.action() else {
                    unreachable!()
                };
                let node = self.slots[slot];
                sh.next[node as usize] = node_of(self.h);
                Pc::CasPush
            }
            Pc::CasPush => {
                if r.as_bool() {
                    let Some(StackAction::PushSlot(slot)) = self.action() else {
                        unreachable!()
                    };
                    let node = self.slots[slot];
                    fx.check(
                        !sh.in_stack[node as usize],
                        format_args!("{who}: pushed node {node} twice"),
                    );
                    sh.in_stack[node as usize] = true;
                    Pc::Advance
                } else {
                    Pc::ReadHead
                }
            }
            Pc::Advance => {
                self.idx += 1;
                if self.action().is_some() {
                    Pc::ReadHead
                } else {
                    Pc::Done
                }
            }
            Pc::Done => unreachable!(),
        };
    }

    fn name(&self) -> String {
        format!("user{}", self.id)
    }

    fn capture(&self, w: &mut StateWriter) {
        w.write_u8(self.pc as u8);
        w.write_usize(self.idx);
        w.write_u64(self.h);
        w.write_u64(self.n);
        for &s in &self.slots {
            w.write_u64(s);
        }
    }

    fn box_clone(&self) -> Box<dyn GuestThread<StackShared>> {
        Box::new(self.clone())
    }
}

/// Builds the ABA test program: a stack initialized as `head → 1 → 2`, a
/// victim thread performing one pop, and mutator threads each running
/// pop–pop–push-first-back.
pub fn treiber_stack(config: TreiberConfig) -> Kernel<StackShared> {
    let mut shared = StackShared::node_count(2);
    // head → 1 → 2 → null
    shared.next[1] = 2;
    shared.next[2] = 0;
    shared.in_stack[1] = true;
    shared.in_stack[2] = true;
    let mut k = Kernel::new(shared);
    // Initial head word: version 0 (if any), node 1.
    let head = k.add_atomic(1);
    k.spawn(StackUser {
        id: 0,
        script: vec![StackAction::Pop(0)],
        idx: 0,
        pc: Pc::ReadHead,
        h: 0,
        n: 0,
        slots: vec![0],
        head,
        encoding: config.encoding,
    });
    for m in 0..config.mutators {
        k.spawn(StackUser {
            id: m + 1,
            script: vec![
                StackAction::Pop(0),
                StackAction::Pop(1),
                StackAction::PushSlot(0),
            ],
            idx: 0,
            pc: Pc::ReadHead,
            h: 0,
            n: 0,
            slots: vec![0, 0],
            head,
            encoding: config.encoding,
        });
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use chess_core::strategy::Dfs;
    use chess_core::{Config, Explorer, SearchOutcome};
    use chess_state::{StateGraph, StatefulLimits};

    #[test]
    fn aba_found_by_fair_dfs() {
        let factory = || treiber_stack(TreiberConfig::aba());
        let report = Explorer::new(factory, Dfs::new(), Config::fair()).run();
        match &report.outcome {
            SearchOutcome::SafetyViolation(cex) => {
                assert!(
                    cex.message.contains("ABA")
                        || cex.message.contains("not in the stack")
                        || cex.message.contains("twice"),
                    "{}",
                    cex.message
                );
            }
            o => panic!("expected the ABA violation, got {o:?}"),
        }
    }

    #[test]
    fn versioned_stack_is_clean() {
        let factory = || treiber_stack(TreiberConfig::correct());
        let report = Explorer::new(factory, Dfs::new(), Config::fair()).run();
        assert_eq!(report.outcome, SearchOutcome::Complete, "{report}");
    }

    #[test]
    fn versioned_stack_ground_truth() {
        let g = StateGraph::build(
            &treiber_stack(TreiberConfig::correct()),
            StatefulLimits::default(),
        )
        .unwrap();
        assert!(g.violation_states().is_empty());
        assert!(g.deadlock_states().is_empty());
        assert!(g.find_fair_scc().is_none(), "CAS loops need interference");
    }

    #[test]
    fn unversioned_ground_truth_has_violation() {
        let g = StateGraph::build(
            &treiber_stack(TreiberConfig::aba()),
            StatefulLimits::default(),
        )
        .unwrap();
        assert!(
            !g.violation_states().is_empty(),
            "the ABA state must be reachable"
        );
    }

    #[test]
    fn serial_run_is_clean_even_unversioned() {
        // ABA needs interference: any serial (one thread at a time to
        // completion) run of the unversioned stack is fine.
        let mut k = treiber_stack(TreiberConfig::aba());
        for t in [1usize, 0] {
            let tid = chess_kernel::ThreadId::new(t);
            while k.enabled(tid) {
                k.step(tid, 0);
            }
        }
        assert_eq!(
            chess_core::TransitionSystem::status(&k),
            chess_core::SystemStatus::Terminated
        );
    }
}
