//! Dryad-like channels and fifos — the distributed-dataflow substrate of
//! Table 1 (rows "Dryad Channels" and "Dryad Fifo") and Table 3's bugs
//! 4–7 (Dryad bugs 1–4).
//!
//! Dryad wires vertices into a dataflow graph connected by channels. We
//! reproduce the concurrency skeleton: a *source* vertex, a fan-in stage
//! of *worker* relays, a downstream *relay* stage, and a *sink*, wired by
//! bounded kernel channels with **credit-based flow control** (a
//! semaphore bounds the messages in flight on the source link, the sink
//! of the link returns credits as it forwards). Shutdown propagates by
//! closing channels stage by stage.
//!
//! Four seeded bugs reproduce the flavor of Table 3's Dryad bugs:
//!
//! * [`ChannelBug::CreditLeak`] — the stage-1 relay skips returning a
//!   credit when the source link *looks idle* (a misguided fast path):
//!   in schedules where the relay repeatedly outruns the source, the
//!   credits drain and the source blocks forever. Because the sink polls
//!   its input, the system does not deadlock — it **livelocks** (the sink
//!   spins politely forever), so only the fair search reports anything.
//! * [`ChannelBug::RacySequence`] — with two stage-1 workers, sequence
//!   numbers are allocated with an unlocked read–increment–write; two
//!   workers can claim the same slot and one log entry is overwritten.
//! * [`ChannelBug::EagerShutdown`] — the stage-2 relay polls the
//!   *source's* done flag and closes its output as soon as it is set,
//!   dropping everything still queued upstream (easily found).
//! * [`ChannelBug::DrainingShutdown`] — the "fix" for the previous bug:
//!   on the done flag the relay drains its input with try-receives and
//!   only then closes. Still wrong: a stage-1 worker can hold a message
//!   in flight (received but not yet forwarded) during the drain — a
//!   strictly rarer interleaving, which is why the original fix passed
//!   review. The correct protocol propagates end-of-stream by closing
//!   channels, never by polling flags.

use chess_kernel::{
    Capture, ChannelId, Effects, GuestThread, Kernel, MutexId, OpDesc, OpResult, SemaphoreId,
    StateWriter,
};

/// Seeded bugs for the channel pipeline (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelBug {
    /// Stage 1 leaks a flow-control credit on odd-valued messages.
    CreditLeak,
    /// Stage 1's two workers allocate log sequence numbers without the
    /// lock.
    RacySequence,
    /// Stage 2 closes its output as soon as the source's done flag is
    /// set, without draining.
    EagerShutdown,
    /// Stage 2 drains with try-receives after the done flag — the
    /// incorrect fix of [`ChannelBug::EagerShutdown`].
    DrainingShutdown,
}

/// Channel-pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct FifoConfig {
    /// Number of messages the source injects (values `0..items`).
    pub items: u32,
    /// Stage-1 fan-in width (1 or 2 workers).
    pub stage1_workers: usize,
    /// Flow-control credits on the source link.
    pub credits: u32,
    /// Capacity of each channel.
    pub channel_capacity: usize,
    /// Optional seeded bug.
    pub bug: Option<ChannelBug>,
}

impl FifoConfig {
    /// The correct pipeline with one stage-1 worker.
    pub fn correct() -> Self {
        FifoConfig {
            items: 3,
            stage1_workers: 1,
            credits: 2,
            channel_capacity: 4,
            bug: None,
        }
    }

    /// The correct pipeline with a two-worker fan-in stage (the "Dryad
    /// Fifo" shape: more threads, more sync ops).
    pub fn correct_fanin() -> Self {
        FifoConfig {
            stage1_workers: 2,
            ..FifoConfig::correct()
        }
    }

    /// A Table 3 bug-finding configuration.
    pub fn with_bug(bug: ChannelBug) -> Self {
        FifoConfig {
            stage1_workers: if bug == ChannelBug::RacySequence {
                2
            } else {
                1
            },
            // Two items keep the fan-in race findable at small preemption
            // bounds; one credit makes the leak fatal before the source
            // drains.
            items: if bug == ChannelBug::RacySequence {
                2
            } else {
                3
            },
            credits: if bug == ChannelBug::CreditLeak { 1 } else { 2 },
            bug: Some(bug),
            ..FifoConfig::correct()
        }
    }
}

/// Shared state of the pipeline.
#[derive(Debug, Clone, Default)]
pub struct FifoShared {
    /// Next log sequence number (allocated by stage-1 workers).
    pub next_seq: u64,
    /// The forwarding log: slot `seq` records the item forwarded with
    /// that sequence number.
    pub out_log: Vec<Option<u64>>,
    /// Per-item delivery count at the sink.
    pub seen: Vec<u8>,
    /// Total deliveries at the sink.
    pub seen_count: u32,
    /// Stage-1 workers still running (the last closes the stage link).
    pub stage1_active: u32,
    /// Set by the source after its last send.
    pub source_done: bool,
    /// Messages sent by the source and not yet received by stage 1 (the
    /// "source link looks idle" proxy the credit-leak fast path misuses).
    pub in_flight: u32,
    /// Set by the stage-2 relay after closing the sink link.
    pub relay_done: bool,
}

impl Capture for FifoShared {
    fn capture(&self, w: &mut StateWriter) {
        w.write_u64(self.next_seq);
        for slot in &self.out_log {
            match slot {
                None => w.write_u64(u64::MAX),
                Some(v) => w.write_u64(*v),
            }
        }
        for &s in &self.seen {
            w.write_u8(s);
        }
        w.write_u32(self.stage1_active);
        w.write_bool(self.source_done);
        w.write_u32(self.in_flight);
        w.write_bool(self.relay_done);
    }
}

/// Injects `items` messages with flow control, then publishes the done
/// flag and closes the link.
#[derive(Debug, Clone)]
struct Source {
    next: u64,
    items: u64,
    pc: u8, // 0 = take credit, 1 = send, 2 = set done, 3 = close, 4 = done
    out: ChannelId,
    credits: SemaphoreId,
}

impl GuestThread<FifoShared> for Source {
    fn next_op(&self, _: &FifoShared) -> OpDesc {
        match self.pc {
            0 => OpDesc::SemDown(self.credits),
            1 => OpDesc::Send(self.out, self.next),
            2 => OpDesc::Local,
            3 => OpDesc::Close(self.out),
            _ => OpDesc::Finished,
        }
    }

    fn on_op(&mut self, r: OpResult, sh: &mut FifoShared, fx: &mut Effects<FifoShared>) {
        match self.pc {
            0 => self.pc = 1,
            1 => {
                fx.check(r.as_bool(), "source send on closed channel");
                sh.in_flight += 1;
                self.next += 1;
                self.pc = if self.next < self.items { 0 } else { 2 };
            }
            2 => {
                sh.source_done = true;
                self.pc = 3;
            }
            3 => self.pc = 4,
            _ => unreachable!(),
        }
    }

    fn name(&self) -> String {
        "source".to_string()
    }

    fn capture(&self, w: &mut StateWriter) {
        w.write_u64(self.next);
        w.write_u8(self.pc);
    }

    fn box_clone(&self) -> Box<dyn GuestThread<FifoShared>> {
        Box::new(self.clone())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WorkerPc {
    Recv,
    Lock,
    SeqRead,
    SeqWrite,
    SeqBump,
    Unlock,
    SendOut,
    Credit,
    DecActive,
    CloseOut,
    Done,
}

/// A stage-1 worker: forwards messages from the source link to the stage
/// link, allocating a log sequence number for each, and returning flow-
/// control credits.
#[derive(Debug, Clone)]
struct Stage1Worker {
    id: usize,
    pc: WorkerPc,
    msg: u64,
    seq: u64,
    was_last: bool,
    input: ChannelId,
    output: ChannelId,
    credits: SemaphoreId,
    /// `None` reproduces [`ChannelBug::RacySequence`].
    seq_lock: Option<MutexId>,
    credit_leak: bool,
}

impl GuestThread<FifoShared> for Stage1Worker {
    fn next_op(&self, _: &FifoShared) -> OpDesc {
        match self.pc {
            WorkerPc::Recv => OpDesc::Recv(self.input),
            WorkerPc::Lock => OpDesc::Acquire(self.seq_lock.expect("lock pc without lock")),
            WorkerPc::SeqRead | WorkerPc::SeqWrite | WorkerPc::SeqBump | WorkerPc::DecActive => {
                OpDesc::Local
            }
            WorkerPc::Unlock => OpDesc::Release(self.seq_lock.expect("unlock pc without lock")),
            WorkerPc::SendOut => OpDesc::Send(self.output, self.msg),
            WorkerPc::Credit => OpDesc::SemUp(self.credits),
            WorkerPc::CloseOut => {
                if self.was_last {
                    OpDesc::Close(self.output)
                } else {
                    OpDesc::Local
                }
            }
            WorkerPc::Done => OpDesc::Finished,
        }
    }

    fn on_op(&mut self, r: OpResult, sh: &mut FifoShared, fx: &mut Effects<FifoShared>) {
        let who = format!("stage1-{}", self.id);
        self.pc = match self.pc {
            WorkerPc::Recv => match r.as_message() {
                Some(v) => {
                    self.msg = v;
                    sh.in_flight -= 1;
                    if self.seq_lock.is_some() {
                        WorkerPc::Lock
                    } else {
                        WorkerPc::SeqRead
                    }
                }
                None => WorkerPc::DecActive,
            },
            WorkerPc::Lock => WorkerPc::SeqRead,
            WorkerPc::SeqRead => {
                self.seq = sh.next_seq;
                WorkerPc::SeqWrite
            }
            WorkerPc::SeqWrite => {
                match sh.out_log.get_mut(self.seq as usize) {
                    Some(slot) => {
                        if let Some(prev) = slot {
                            fx.fail(format!(
                                "{who}: log slot {} overwritten (had item {prev}, now {})",
                                self.seq, self.msg
                            ));
                        }
                        *slot = Some(self.msg);
                    }
                    None => fx.fail(format!("{who}: sequence {} out of range", self.seq)),
                }
                WorkerPc::SeqBump
            }
            WorkerPc::SeqBump => {
                sh.next_seq = self.seq + 1;
                if self.seq_lock.is_some() {
                    WorkerPc::Unlock
                } else {
                    WorkerPc::SendOut
                }
            }
            WorkerPc::Unlock => WorkerPc::SendOut,
            WorkerPc::SendOut => {
                // A send on a closed stage link silently drops the
                // message — exactly what the shutdown bugs exploit.
                let _ = r.as_bool();
                if self.credit_leak && sh.in_flight == 0 {
                    // BUG: a "fast path" that skips the credit return
                    // when the source link looks idle. In schedules
                    // where the relay keeps outrunning the source the
                    // credits drain and the source starves.
                    WorkerPc::Recv
                } else {
                    WorkerPc::Credit
                }
            }
            WorkerPc::Credit => WorkerPc::Recv,
            WorkerPc::DecActive => {
                sh.stage1_active -= 1;
                self.was_last = sh.stage1_active == 0;
                WorkerPc::CloseOut
            }
            WorkerPc::CloseOut => WorkerPc::Done,
            WorkerPc::Done => unreachable!(),
        };
    }

    fn name(&self) -> String {
        format!("stage1-{}", self.id)
    }

    fn capture(&self, w: &mut StateWriter) {
        w.write_u8(self.pc as u8);
        w.write_u64(self.msg);
        w.write_u64(self.seq);
        w.write_bool(self.was_last);
    }

    fn box_clone(&self) -> Box<dyn GuestThread<FifoShared>> {
        Box::new(self.clone())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RelayPc {
    Recv,
    Send,
    CheckDone,
    DrainTry,
    DrainSend,
    CloseOut,
    PublishDone,
    Done,
}

/// The stage-2 relay: forwards the stage link to the sink link. Its
/// shutdown behavior is where Table 3's Dryad bugs 3 and 4 live.
#[derive(Debug, Clone)]
struct Stage2Relay {
    pc: RelayPc,
    msg: u64,
    input: ChannelId,
    output: ChannelId,
    bug: Option<ChannelBug>,
}

impl GuestThread<FifoShared> for Stage2Relay {
    fn next_op(&self, _: &FifoShared) -> OpDesc {
        match self.pc {
            RelayPc::Recv => OpDesc::Recv(self.input),
            RelayPc::Send | RelayPc::DrainSend => OpDesc::Send(self.output, self.msg),
            RelayPc::CheckDone | RelayPc::PublishDone => OpDesc::Local,
            RelayPc::DrainTry => OpDesc::TryRecv(self.input),
            RelayPc::CloseOut => OpDesc::Close(self.output),
            RelayPc::Done => OpDesc::Finished,
        }
    }

    fn on_op(&mut self, r: OpResult, sh: &mut FifoShared, _: &mut Effects<FifoShared>) {
        self.pc = match self.pc {
            RelayPc::Recv => match r.as_message() {
                Some(v) => {
                    self.msg = v;
                    RelayPc::Send
                }
                None => RelayPc::CloseOut,
            },
            RelayPc::Send => match self.bug {
                Some(ChannelBug::EagerShutdown) | Some(ChannelBug::DrainingShutdown) => {
                    RelayPc::CheckDone
                }
                _ => RelayPc::Recv,
            },
            RelayPc::CheckDone => {
                if sh.source_done {
                    match self.bug {
                        // BUG: close immediately, dropping queued input.
                        Some(ChannelBug::EagerShutdown) => RelayPc::CloseOut,
                        // BUG ("the fix"): drain what is visible, then
                        // close — in-flight stage-1 messages are lost.
                        Some(ChannelBug::DrainingShutdown) => RelayPc::DrainTry,
                        _ => unreachable!(),
                    }
                } else {
                    RelayPc::Recv
                }
            }
            RelayPc::DrainTry => match r.as_message() {
                Some(v) => {
                    self.msg = v;
                    RelayPc::DrainSend
                }
                None => RelayPc::CloseOut,
            },
            RelayPc::DrainSend => RelayPc::DrainTry,
            RelayPc::CloseOut => RelayPc::PublishDone,
            RelayPc::PublishDone => {
                sh.relay_done = true;
                RelayPc::Done
            }
            RelayPc::Done => unreachable!(),
        };
    }

    fn name(&self) -> String {
        "stage2".to_string()
    }

    fn capture(&self, w: &mut StateWriter) {
        w.write_u8(self.pc as u8);
        w.write_u64(self.msg);
    }

    fn box_clone(&self) -> Box<dyn GuestThread<FifoShared>> {
        Box::new(self.clone())
    }
}

/// The sink: *polls* its input (try-receive plus a polite sleep — the
/// spin-until-data idiom the paper's real subjects are full of), then
/// verifies that every item arrived exactly once (and, with a fan-in
/// stage, that the forwarding log is complete).
#[derive(Debug, Clone)]
struct Sink {
    // 0 = poll, 1 = check relay_done, 2 = sleep+retry, 3 = final check,
    // 4 = done, 5 = final drain (relay closed; drain until empty)
    pc: u8,
    input: ChannelId,
    items: u32,
    check_log: bool,
}

impl GuestThread<FifoShared> for Sink {
    fn next_op(&self, _: &FifoShared) -> OpDesc {
        match self.pc {
            0 | 5 => OpDesc::TryRecv(self.input),
            1 | 3 => OpDesc::Local,
            2 => OpDesc::Sleep,
            _ => OpDesc::Finished,
        }
    }

    fn on_op(&mut self, r: OpResult, sh: &mut FifoShared, fx: &mut Effects<FifoShared>) {
        match self.pc {
            0 | 5 => match r.as_message() {
                Some(v) => {
                    match sh.seen.get_mut(v as usize) {
                        Some(slot) => {
                            *slot += 1;
                            sh.seen_count += 1;
                            let c = *slot;
                            fx.check(c == 1, format_args!("sink: item {v} delivered {c} times"));
                        }
                        None => fx.fail(format!("sink: garbage item {v}")),
                    }
                    if self.pc == 5 {
                        // stay in the final drain
                    } else {
                        self.pc = 0;
                    }
                }
                None => self.pc = if self.pc == 5 { 3 } else { 1 },
            },
            1 => {
                // Input looked empty. If the relay has closed and
                // published, messages may still have landed between our
                // poll and this check: run one conclusive drain (nothing
                // can be sent after relay_done). Otherwise nap and retry.
                self.pc = if sh.relay_done { 5 } else { 2 };
            }
            2 => self.pc = 0,
            3 => {
                fx.check(
                    sh.seen_count == self.items,
                    format_args!("sink: {} of {} items delivered", sh.seen_count, self.items),
                );
                if self.check_log {
                    for (i, slot) in sh.out_log.iter().enumerate() {
                        fx.check(slot.is_some(), format_args!("log slot {i} never written"));
                    }
                }
                self.pc = 4;
            }
            _ => unreachable!(),
        }
    }

    fn name(&self) -> String {
        "sink".to_string()
    }

    fn capture(&self, w: &mut StateWriter) {
        w.write_u8(self.pc);
    }

    fn box_clone(&self) -> Box<dyn GuestThread<FifoShared>> {
        Box::new(self.clone())
    }
}

/// Builds the channel-pipeline test program.
///
/// # Panics
///
/// Panics if `items == 0`, `credits == 0`, or `stage1_workers` is not 1
/// or 2.
pub fn fifo_pipeline(config: FifoConfig) -> Kernel<FifoShared> {
    assert!(config.items > 0, "need at least one item");
    assert!(config.credits > 0, "need at least one credit");
    assert!(
        (1..=2).contains(&config.stage1_workers),
        "stage-1 fan-in must be 1 or 2 workers"
    );
    let mut k = Kernel::new(FifoShared {
        next_seq: 0,
        out_log: vec![None; config.items as usize],
        seen: vec![0; config.items as usize],
        seen_count: 0,
        stage1_active: config.stage1_workers as u32,
        source_done: false,
        in_flight: 0,
        relay_done: false,
    });
    let ch0 = k.add_channel(config.channel_capacity);
    let ch1 = k.add_channel(config.channel_capacity);
    let ch2 = k.add_channel(config.channel_capacity);
    let credits = k.add_semaphore(config.credits);
    let seq_lock = if config.stage1_workers == 2 && config.bug != Some(ChannelBug::RacySequence) {
        Some(k.add_mutex())
    } else {
        None
    };
    k.spawn(Source {
        next: 0,
        items: config.items as u64,
        pc: 0,
        out: ch0,
        credits,
    });
    for id in 0..config.stage1_workers {
        k.spawn(Stage1Worker {
            id,
            pc: WorkerPc::Recv,
            msg: 0,
            seq: 0,
            was_last: false,
            input: ch0,
            output: ch1,
            credits,
            seq_lock,
            credit_leak: config.bug == Some(ChannelBug::CreditLeak),
        });
    }
    k.spawn(Stage2Relay {
        pc: RelayPc::Recv,
        msg: 0,
        input: ch1,
        output: ch2,
        bug: config.bug,
    });
    k.spawn(Sink {
        pc: 0,
        input: ch2,
        items: config.items,
        check_log: config.stage1_workers == 2,
    });
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use chess_core::strategy::ContextBounded;
    use chess_core::{Config, Explorer, SearchOutcome};
    use chess_state::{StateGraph, StatefulLimits};

    fn check(cfg: FifoConfig, cb: u32, max_execs: u64) -> chess_core::SearchReport {
        let factory = move || fifo_pipeline(cfg);
        let config = Config::fair()
            .with_detect_cycles(false)
            .with_max_executions(max_execs);
        Explorer::new(factory, ContextBounded::new(cb), config).run()
    }

    #[test]
    fn correct_pipeline_is_clean() {
        let report = check(FifoConfig::correct(), 2, 30_000);
        assert!(!report.outcome.found_error(), "{report}");
    }

    #[test]
    fn correct_fanin_is_clean() {
        let report = check(FifoConfig::correct_fanin(), 2, 30_000);
        assert!(!report.outcome.found_error(), "{report}");
    }

    #[test]
    fn correct_pipeline_ground_truth() {
        let cfg = FifoConfig {
            items: 2,
            ..FifoConfig::correct()
        };
        let g = StateGraph::build(&fifo_pipeline(cfg), StatefulLimits::default()).unwrap();
        assert!(g.violation_states().is_empty());
        assert!(g.deadlock_states().is_empty());
        assert!(g.find_fair_scc().is_none());
    }

    /// The credit leak starves the source; the polling sink keeps the
    /// system technically live, so the failure is a livelock (fair
    /// divergence), which only the fair search reports.
    #[test]
    fn credit_leak_livelocks() {
        let factory = || fifo_pipeline(FifoConfig::with_bug(ChannelBug::CreditLeak));
        let config = chess_core::Config::fair().with_max_executions(200_000);
        let report = Explorer::new(factory, ContextBounded::new(2), config).run();
        assert!(
            matches!(report.outcome, SearchOutcome::Divergence(_)),
            "{report}"
        );
        // The unfair baseline discards bound-hitting executions and
        // reports nothing.
        let config = chess_core::Config::unfair()
            .with_depth_bound(2_000)
            .with_max_executions(2_000);
        let report = Explorer::new(factory, ContextBounded::with_horizon(2, 250), config).run();
        assert!(!report.outcome.found_error(), "{report}");
    }

    #[test]
    fn racy_sequence_found() {
        let report = check(FifoConfig::with_bug(ChannelBug::RacySequence), 2, 200_000);
        match &report.outcome {
            SearchOutcome::SafetyViolation(cex) => {
                assert!(
                    cex.message.contains("overwritten") || cex.message.contains("never written"),
                    "{}",
                    cex.message
                );
            }
            o => panic!("expected log corruption, got {o:?}"),
        }
    }

    #[test]
    fn eager_shutdown_found() {
        let report = check(FifoConfig::with_bug(ChannelBug::EagerShutdown), 2, 100_000);
        match &report.outcome {
            SearchOutcome::SafetyViolation(cex) => {
                assert!(cex.message.contains("delivered"), "{}", cex.message);
            }
            o => panic!("expected lost messages, got {o:?}"),
        }
    }

    #[test]
    fn draining_shutdown_found_but_deeper() {
        let report = check(
            FifoConfig::with_bug(ChannelBug::DrainingShutdown),
            2,
            200_000,
        );
        assert!(
            matches!(report.outcome, SearchOutcome::SafetyViolation(_)),
            "{report}"
        );
    }
}
