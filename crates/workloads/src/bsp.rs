//! A bulk-synchronous-parallel (BSP) computation over the kernel's
//! reusable barriers: each *superstep*, every worker publishes a partial
//! result, the workers synchronize, worker 0 reduces the partials into a
//! global, the workers synchronize again, and everyone consumes the
//! reduction.
//!
//! The seeded bug is the tempting "barrier elision" optimization:
//! consumers read the global **before** the post-reduction barrier. In
//! most schedules the reducer happens to be done; in the rest they read
//! a stale or partially-reduced value — a textbook data race behind a
//! correct-looking barrier protocol.

use chess_kernel::{
    BarrierId, Capture, Effects, GuestThread, Kernel, OpDesc, OpResult, StateWriter,
};

/// BSP workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct BspConfig {
    /// Number of workers (barrier parties).
    pub workers: usize,
    /// Supersteps to run.
    pub rounds: u32,
    /// Seed the barrier-elision bug: consume the reduction before the
    /// second barrier of the superstep.
    pub skip_consume_barrier: bool,
}

impl BspConfig {
    /// A small correct instance.
    pub fn correct() -> Self {
        BspConfig {
            workers: 3,
            rounds: 2,
            skip_consume_barrier: false,
        }
    }

    /// The barrier-elision bug.
    pub fn elided_barrier() -> Self {
        BspConfig {
            skip_consume_barrier: true,
            ..BspConfig::correct()
        }
    }
}

/// Shared state: per-worker partials and the per-round reductions.
#[derive(Debug, Clone, Default)]
pub struct BspShared {
    /// Partial results, one slot per worker, rewritten each round.
    pub partials: Vec<u64>,
    /// The reduction of each completed round.
    pub reduced: Vec<u64>,
}

impl Capture for BspShared {
    fn capture(&self, w: &mut StateWriter) {
        for &p in &self.partials {
            w.write_u64(p);
        }
        for &r in &self.reduced {
            w.write_u64(r);
        }
    }
}

/// The expected reduction for `round` with `workers` workers: each
/// worker contributes `id + round + 1`.
fn expected_sum(workers: usize, round: u32) -> u64 {
    (0..workers as u64).map(|id| id + round as u64 + 1).sum()
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pc {
    Publish,
    Arrive1,
    Await1,
    ReduceRead,
    ReduceWrite,
    Consume,
    Arrive2,
    Await2,
    Done,
}

/// One BSP worker. Worker 0 doubles as the reducer.
#[derive(Debug, Clone)]
struct BspWorker {
    id: usize,
    pc: Pc,
    round: u32,
    rounds: u32,
    /// Barrier generation returned by the latest arrival.
    gen: u64,
    /// Reducer scratch: accumulated sum and cursor.
    acc: u64,
    cursor: usize,
    barrier: BarrierId,
    skip_consume_barrier: bool,
}

impl BspWorker {
    fn is_reducer(&self) -> bool {
        self.id == 0
    }

    fn next_round(&mut self) -> Pc {
        self.round += 1;
        if self.round >= self.rounds {
            Pc::Done
        } else {
            Pc::Publish
        }
    }
}

impl GuestThread<BspShared> for BspWorker {
    fn next_op(&self, _: &BspShared) -> OpDesc {
        match self.pc {
            Pc::Publish | Pc::ReduceRead | Pc::ReduceWrite | Pc::Consume => OpDesc::Local,
            Pc::Arrive1 | Pc::Arrive2 => OpDesc::BarrierArrive(self.barrier),
            Pc::Await1 | Pc::Await2 => OpDesc::BarrierAwait(self.barrier, self.gen),
            Pc::Done => OpDesc::Finished,
        }
    }

    fn on_op(&mut self, r: OpResult, sh: &mut BspShared, fx: &mut Effects<BspShared>) {
        self.pc = match self.pc {
            Pc::Publish => {
                sh.partials[self.id] = self.id as u64 + self.round as u64 + 1;
                Pc::Arrive1
            }
            Pc::Arrive1 => {
                self.gen = r.as_value();
                Pc::Await1
            }
            Pc::Await1 => {
                if self.is_reducer() {
                    self.acc = 0;
                    self.cursor = 0;
                    Pc::ReduceRead
                } else if self.skip_consume_barrier {
                    // BUG: consume without waiting for the reducer.
                    Pc::Consume
                } else {
                    Pc::Arrive2
                }
            }
            Pc::ReduceRead => {
                self.acc += sh.partials[self.cursor];
                self.cursor += 1;
                if self.cursor < sh.partials.len() {
                    Pc::ReduceRead
                } else {
                    Pc::ReduceWrite
                }
            }
            Pc::ReduceWrite => {
                sh.reduced[self.round as usize] = self.acc;
                if self.skip_consume_barrier {
                    Pc::Consume
                } else {
                    Pc::Arrive2
                }
            }
            Pc::Arrive2 => {
                self.gen = r.as_value();
                Pc::Await2
            }
            Pc::Await2 => Pc::Consume,
            Pc::Consume => {
                let got = sh.reduced[self.round as usize];
                let want = expected_sum(sh.partials.len(), self.round);
                fx.check(
                    got == want,
                    format_args!(
                        "worker {}: round {} reduction is {got}, expected {want}",
                        self.id, self.round
                    ),
                );
                self.next_round()
            }
            Pc::Done => unreachable!(),
        };
    }

    fn name(&self) -> String {
        format!("bsp{}", self.id)
    }

    fn capture(&self, w: &mut StateWriter) {
        w.write_u8(self.pc as u8);
        w.write_u32(self.round);
        w.write_u64(self.gen);
        w.write_u64(self.acc);
        w.write_usize(self.cursor);
    }

    fn box_clone(&self) -> Box<dyn GuestThread<BspShared>> {
        Box::new(self.clone())
    }
}

/// Builds the BSP program.
///
/// # Panics
///
/// Panics on a degenerate configuration.
pub fn bsp(config: BspConfig) -> Kernel<BspShared> {
    assert!(config.workers > 0 && config.rounds > 0);
    let mut k = Kernel::new(BspShared {
        partials: vec![0; config.workers],
        reduced: vec![0; config.rounds as usize],
    });
    // One physical barrier reused for both synchronization points: every
    // worker arrives exactly once per generation, so generations simply
    // alternate publish-sync, consume-sync, publish-sync, ...
    let barrier = k.add_barrier(config.workers as u32);
    for id in 0..config.workers {
        k.spawn(BspWorker {
            id,
            pc: Pc::Publish,
            round: 0,
            rounds: config.rounds,
            gen: 0,
            acc: 0,
            cursor: 0,
            barrier,
            skip_consume_barrier: config.skip_consume_barrier,
        });
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use chess_core::strategy::Dfs;
    use chess_core::{Config, Explorer, SearchOutcome};
    use chess_state::{StateGraph, StatefulLimits};

    #[test]
    fn correct_bsp_is_clean() {
        let factory = || bsp(BspConfig::correct());
        let config = Config::fair().with_max_executions(50_000);
        let report = Explorer::new(factory, Dfs::new(), config).run();
        assert!(!report.outcome.found_error(), "{report}");
    }

    #[test]
    fn small_correct_bsp_ground_truth() {
        let cfg = BspConfig {
            workers: 2,
            rounds: 1,
            skip_consume_barrier: false,
        };
        let g = StateGraph::build(&bsp(cfg), StatefulLimits::default()).unwrap();
        assert!(g.violation_states().is_empty());
        assert!(g.deadlock_states().is_empty());
        assert!(g.find_fair_scc().is_none());
    }

    #[test]
    fn elided_barrier_found() {
        let factory = || bsp(BspConfig::elided_barrier());
        let report = Explorer::new(factory, Dfs::new(), Config::fair()).run();
        match &report.outcome {
            SearchOutcome::SafetyViolation(cex) => {
                assert!(cex.message.contains("reduction is"), "{}", cex.message);
            }
            o => panic!("expected the stale reduction, got {o:?}"),
        }
    }

    #[test]
    fn elided_barrier_needs_interference() {
        // Running the reducer (worker 0) eagerly makes even the buggy
        // version pass: the race needs a consumer to outrun the reducer.
        let mut k = bsp(BspConfig::elided_barrier());
        let t0 = chess_kernel::ThreadId::new(0);
        loop {
            // Round-robin but always give worker 0 priority.
            let t = if k.enabled(t0) {
                t0
            } else if let Some(t) = k.thread_ids().find(|&t| k.enabled(t)) {
                t
            } else {
                break;
            };
            k.step(t, 0);
        }
        assert_eq!(
            chess_core::TransitionSystem::status(&k),
            chess_core::SystemStatus::Terminated
        );
    }

    #[test]
    fn expected_sums() {
        assert_eq!(expected_sum(3, 0), 1 + 2 + 3);
        assert_eq!(expected_sum(3, 1), 2 + 3 + 4);
    }
}
