//! The worker-group task library — §4.3.1's good-samaritan violation.
//!
//! The library maintains worker threads partitioned into groups. Each
//! worker runs (Figure 7):
//!
//! ```text
//! void Worker::Run() {
//!     while (!stop) {
//!         while (!stop && task != null) { /* perform */ task = PopNextTask(); }
//!         if (!stop) task = group.Idle(this);
//!     }
//! }
//! Task WorkerGroup::Idle(Worker w) {
//!     while (!stop) { ... w.YieldExponential(); ... }
//!     return null;
//! }
//! ```
//!
//! During shutdown the group's `stop` flag is set before each worker's
//! `stop` flag. In that window `Idle` returns `null` immediately —
//! **without yielding** — and the worker's outer loop spins: task is
//! null, the worker's own `stop` is still false, so it calls `Idle`
//! again, which again returns immediately. The thread burns its whole
//! time slice without yielding, starving other threads (potentially the
//! very thread that would set its `stop` flag): a violation of the
//! good-samaritan property. The corrected library yields once on the
//! `Idle`-returns-null path.

use chess_kernel::{Capture, Effects, GuestThread, Kernel, OpDesc, OpResult, StateWriter};

/// Worker-pool configuration.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Number of worker threads in the group.
    pub workers: usize,
    /// Number of tasks initially in the queue.
    pub tasks: u32,
    /// Reproduce the Figure 7 bug: `Idle` returns without yielding when
    /// the group is stopping.
    pub buggy_idle: bool,
}

impl PoolConfig {
    /// The corrected library.
    pub fn correct() -> Self {
        PoolConfig {
            workers: 2,
            tasks: 2,
            buggy_idle: false,
        }
    }

    /// §4.3.1's buggy shutdown.
    pub fn figure7() -> Self {
        PoolConfig {
            buggy_idle: true,
            ..PoolConfig::correct()
        }
    }
}

/// Shared state of the pool.
#[derive(Debug, Clone, Default)]
pub struct PoolShared {
    /// The group-level stop flag.
    pub group_stop: bool,
    /// Per-worker stop flags.
    pub worker_stop: Vec<bool>,
    /// Remaining tasks in the queue.
    pub tasks: u32,
    /// Tasks completed by workers.
    pub tasks_done: u32,
}

impl Capture for PoolShared {
    fn capture(&self, w: &mut StateWriter) {
        w.write_bool(self.group_stop);
        for &s in &self.worker_stop {
            w.write_bool(s);
        }
        w.write_u32(self.tasks);
        w.write_u32(self.tasks_done);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WorkerPc {
    /// Outer `while (!stop)` check.
    CheckStop,
    /// Try to pop a task from the queue.
    PopTask,
    /// Perform the popped task.
    Perform,
    /// `Idle`: check the group stop flag.
    IdleCheck,
    /// `Idle`: the `YieldExponential()` call.
    IdleYield,
    /// Corrected library: yield once when `Idle` returned null.
    PostIdleYield,
    Done,
}

/// One worker of the group.
#[derive(Debug, Clone)]
struct Worker {
    id: usize,
    pc: WorkerPc,
    buggy_idle: bool,
}

impl GuestThread<PoolShared> for Worker {
    fn next_op(&self, _: &PoolShared) -> OpDesc {
        match self.pc {
            WorkerPc::IdleYield | WorkerPc::PostIdleYield => OpDesc::Sleep,
            WorkerPc::Done => OpDesc::Finished,
            _ => OpDesc::Local,
        }
    }

    fn on_op(&mut self, _: OpResult, sh: &mut PoolShared, _: &mut Effects<PoolShared>) {
        self.pc = match self.pc {
            WorkerPc::CheckStop => {
                if sh.worker_stop[self.id] {
                    WorkerPc::Done
                } else {
                    WorkerPc::PopTask
                }
            }
            WorkerPc::PopTask => {
                if sh.tasks > 0 {
                    sh.tasks -= 1;
                    WorkerPc::Perform
                } else {
                    WorkerPc::IdleCheck
                }
            }
            WorkerPc::Perform => {
                sh.tasks_done += 1;
                WorkerPc::CheckStop
            }
            WorkerPc::IdleCheck => {
                if sh.group_stop {
                    // Idle returns null. The buggy library goes straight
                    // back to the outer loop; the fix yields first.
                    if self.buggy_idle {
                        WorkerPc::CheckStop
                    } else {
                        WorkerPc::PostIdleYield
                    }
                } else {
                    WorkerPc::IdleYield
                }
            }
            WorkerPc::IdleYield => WorkerPc::IdleCheck,
            WorkerPc::PostIdleYield => WorkerPc::CheckStop,
            WorkerPc::Done => unreachable!(),
        };
    }

    fn name(&self) -> String {
        format!("worker{}", self.id)
    }

    fn capture(&self, w: &mut StateWriter) {
        w.write_u8(self.pc as u8);
    }

    fn box_clone(&self) -> Box<dyn GuestThread<PoolShared>> {
        Box::new(self.clone())
    }
}

/// The shutdown thread: waits (politely) for the queue to drain, then
/// sets the group flag, then each worker flag — the flag ordering whose
/// window Figure 7's bug lives in.
#[derive(Debug, Clone)]
struct Shutdown {
    /// 0 = wait for drain; 1 = set group flag; 1+i+1 = set worker i's
    /// flag; workers+2 = done.
    pc: usize,
    workers: usize,
    wait_for: u32,
}

impl GuestThread<PoolShared> for Shutdown {
    fn next_op(&self, sh: &PoolShared) -> OpDesc {
        if self.pc == 0 {
            if sh.tasks_done < self.wait_for {
                OpDesc::Sleep
            } else {
                OpDesc::Local
            }
        } else if self.pc <= self.workers + 1 {
            OpDesc::Local
        } else {
            OpDesc::Finished
        }
    }

    fn on_op(&mut self, _: OpResult, sh: &mut PoolShared, _: &mut Effects<PoolShared>) {
        if self.pc == 0 {
            if sh.tasks_done < self.wait_for {
                return; // slept; keep waiting
            }
        } else if self.pc == 1 {
            sh.group_stop = true;
        } else {
            sh.worker_stop[self.pc - 2] = true;
        }
        self.pc += 1;
    }

    fn name(&self) -> String {
        "shutdown".to_string()
    }

    fn capture(&self, w: &mut StateWriter) {
        w.write_usize(self.pc);
    }

    fn box_clone(&self) -> Box<dyn GuestThread<PoolShared>> {
        Box::new(self.clone())
    }
}

/// Builds the worker-pool test program: `workers` workers, a task queue,
/// and a shutdown thread.
///
/// # Panics
///
/// Panics if `config.workers == 0`.
pub fn worker_pool(config: PoolConfig) -> Kernel<PoolShared> {
    assert!(config.workers > 0, "need at least one worker");
    let mut k = Kernel::new(PoolShared {
        group_stop: false,
        worker_stop: vec![false; config.workers],
        tasks: config.tasks,
        tasks_done: 0,
    });
    for id in 0..config.workers {
        k.spawn(Worker {
            id,
            pc: WorkerPc::CheckStop,
            buggy_idle: config.buggy_idle,
        });
    }
    let workers = config.workers;
    k.spawn(Shutdown {
        pc: 0,
        workers,
        wait_for: config.tasks,
    });
    k
}

/// §4.3.1's buggy program.
pub fn figure7() -> Kernel<PoolShared> {
    worker_pool(PoolConfig::figure7())
}

#[cfg(test)]
mod tests {
    use super::*;
    use chess_core::strategy::Dfs;
    use chess_core::{Config, DivergenceKind, Explorer, SearchOutcome};
    use chess_state::{StateGraph, StatefulLimits};

    #[test]
    fn corrected_pool_is_clean() {
        let factory = || worker_pool(PoolConfig::correct());
        let config = Config::fair().with_max_executions(5_000);
        let report = Explorer::new(factory, Dfs::new(), config).run();
        assert!(!report.outcome.found_error(), "{report}");
        assert_eq!(report.stats.nonterminating, 0);
    }

    #[test]
    fn corrected_pool_small_completes_fully() {
        let factory = || {
            worker_pool(PoolConfig {
                workers: 1,
                tasks: 1,
                buggy_idle: false,
            })
        };
        let report = Explorer::new(factory, Dfs::new(), Config::fair()).run();
        assert_eq!(report.outcome, SearchOutcome::Complete, "{report}");
    }

    #[test]
    fn figure7_gs_violation_detected() {
        let report = Explorer::new(figure7, Dfs::new(), Config::fair()).run();
        match report.outcome {
            SearchOutcome::Divergence(d) => match d.kind {
                DivergenceKind::UnfairCycle { starved, .. } => {
                    // The spinning worker starves another thread (the
                    // shutdown thread or a sibling worker).
                    assert!(starved.index() <= 2);
                }
                DivergenceKind::GoodSamaritanSuspect { .. } => {}
                k => panic!("expected GS violation, got {k:?}"),
            },
            o => panic!("expected divergence, got {o:?}"),
        }
    }

    /// Ground truth: the buggy pool has no *fair* cycle in which every
    /// enabled thread runs — the spin cycle starves the shutdown thread.
    /// (It is a GS violation, not a livelock.)
    #[test]
    fn figure7_cycle_is_unfair_ground_truth() {
        let factory = || {
            worker_pool(PoolConfig {
                workers: 1,
                tasks: 0,
                buggy_idle: true,
            })
        };
        let g = StateGraph::build(&factory(), StatefulLimits::default()).unwrap();
        assert!(g.find_fair_scc().is_none(), "the spin starves shutdown");
    }

    #[test]
    fn all_tasks_performed_in_serial_run() {
        let mut k = worker_pool(PoolConfig {
            workers: 2,
            tasks: 3,
            buggy_idle: false,
        });
        // Let workers drain the queue before shutting down.
        let worker_tid = |k: &chess_kernel::Kernel<PoolShared>| {
            k.thread_ids()
                .filter(|&t| k.enabled(t))
                .find(|&t| k.thread_name(t).starts_with("worker"))
        };
        while k.shared().tasks > 0 || k.shared().tasks_done < 3 {
            let t = worker_tid(&k).expect("a worker should be runnable");
            k.step(t, 0);
        }
        // Drive the remainder round-robin: first-enabled scheduling would
        // itself starve the shutdown thread — the very phenomenon the
        // fair scheduler exists to prune.
        let mut rr = 0;
        while chess_core::TransitionSystem::status(&k).is_running() {
            let n = k.thread_count();
            let t = (0..n)
                .map(|i| chess_kernel::ThreadId::new((rr + i) % n))
                .find(|&t| k.enabled(t))
                .unwrap();
            k.step(t, 0);
            rr = (t.index() + 1) % n;
        }
        assert_eq!(k.shared().tasks_done, 3);
    }
}
