//! A read-mostly cache guarded by a reader-writer lock, with the classic
//! **lock-upgrade race**: a reader that misses precomputes the refresh
//! value while still under the *read* lock, drops it, re-acquires the
//! lock for writing, and installs the — by then stale — value. The fix
//! recomputes under the write lock.
//!
//! This workload exercises the kernel's reader-writer lock end to end:
//! concurrent readers, writer exclusion, and the release-then-upgrade
//! pattern whose non-atomicity is the bug.

use chess_kernel::{
    Capture, Effects, GuestThread, Kernel, OpDesc, OpResult, RwLockId, StateWriter,
};

/// Read-write-cache workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct RwCacheConfig {
    /// Number of reader threads.
    pub readers: usize,
    /// Successful lookups each reader must perform.
    pub lookups: u32,
    /// Times the updater bumps the source value (invalidating the cache).
    pub updates: u32,
    /// Seed the upgrade race: precompute the refresh value under the
    /// read lock instead of the write lock.
    pub stale_refresh: bool,
}

impl RwCacheConfig {
    /// A small correct instance.
    pub fn correct() -> Self {
        RwCacheConfig {
            readers: 2,
            lookups: 1,
            updates: 1,
            stale_refresh: false,
        }
    }

    /// The upgrade-race bug.
    pub fn upgrade_race() -> Self {
        RwCacheConfig {
            stale_refresh: true,
            ..RwCacheConfig::correct()
        }
    }
}

/// Shared state: the authoritative value and its cache.
#[derive(Debug, Clone, Default)]
pub struct CacheShared {
    /// The authoritative value (bumped by the updater).
    pub source: u64,
    /// The cached value, if any (invalidated by the updater).
    pub cache: Option<u64>,
    /// Completed lookups (for statistics).
    pub hits: u32,
}

impl Capture for CacheShared {
    fn capture(&self, w: &mut StateWriter) {
        w.write_u64(self.source);
        match self.cache {
            None => w.write_u64(u64::MAX),
            Some(v) => w.write_u64(v),
        }
        w.write_u32(self.hits);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReaderPc {
    ReadLock,
    Inspect,
    ReadUnlockHit,
    ReadUnlockMiss,
    WriteLock,
    Install,
    WriteUnlock,
    Done,
}

/// A reader thread: lookups with the miss/upgrade path.
#[derive(Debug, Clone)]
struct Reader {
    id: usize,
    pc: ReaderPc,
    lookups_left: u32,
    /// The refresh value (precomputed under the read lock in the buggy
    /// variant; `None` until computed).
    precomputed: Option<u64>,
    lock: RwLockId,
    stale_refresh: bool,
}

impl GuestThread<CacheShared> for Reader {
    fn next_op(&self, _: &CacheShared) -> OpDesc {
        match self.pc {
            ReaderPc::ReadLock => OpDesc::RwAcquireRead(self.lock),
            ReaderPc::Inspect | ReaderPc::Install => OpDesc::Local,
            ReaderPc::ReadUnlockHit | ReaderPc::ReadUnlockMiss | ReaderPc::WriteUnlock => {
                OpDesc::RwRelease(self.lock)
            }
            ReaderPc::WriteLock => OpDesc::RwAcquireWrite(self.lock),
            ReaderPc::Done => OpDesc::Finished,
        }
    }

    fn on_op(&mut self, _: OpResult, sh: &mut CacheShared, fx: &mut Effects<CacheShared>) {
        self.pc = match self.pc {
            ReaderPc::ReadLock => ReaderPc::Inspect,
            ReaderPc::Inspect => match sh.cache {
                Some(v) => {
                    // The invariant a cache must give its readers: what
                    // you read under the lock is the current value.
                    fx.check(
                        v == sh.source,
                        format_args!(
                            "reader {}: cache serves {v} but source is {}",
                            self.id, sh.source
                        ),
                    );
                    sh.hits += 1;
                    ReaderPc::ReadUnlockHit
                }
                None => {
                    if self.stale_refresh {
                        // BUG: compute the refresh value now, under the
                        // read lock, and install it later.
                        self.precomputed = Some(sh.source);
                    }
                    ReaderPc::ReadUnlockMiss
                }
            },
            ReaderPc::ReadUnlockHit => {
                self.lookups_left -= 1;
                if self.lookups_left == 0 {
                    ReaderPc::Done
                } else {
                    ReaderPc::ReadLock
                }
            }
            ReaderPc::ReadUnlockMiss => ReaderPc::WriteLock,
            ReaderPc::WriteLock => ReaderPc::Install,
            ReaderPc::Install => {
                let fresh = match self.precomputed.take() {
                    Some(stale) => stale, // the bug path
                    None => sh.source,    // the fix: recompute here
                };
                sh.cache = Some(fresh);
                ReaderPc::WriteUnlock
            }
            ReaderPc::WriteUnlock => ReaderPc::ReadLock,
            ReaderPc::Done => unreachable!(),
        };
    }

    fn name(&self) -> String {
        format!("reader{}", self.id)
    }

    fn capture(&self, w: &mut StateWriter) {
        w.write_u8(self.pc as u8);
        w.write_u32(self.lookups_left);
        match self.precomputed {
            None => w.write_u64(u64::MAX),
            Some(v) => w.write_u64(v),
        }
    }

    fn box_clone(&self) -> Box<dyn GuestThread<CacheShared>> {
        Box::new(self.clone())
    }
}

/// The updater: bumps the source and invalidates the cache, atomically
/// under the write lock.
#[derive(Debug, Clone)]
struct Updater {
    pc: u8, // 0 = lock, 1 = update, 2 = unlock
    updates_left: u32,
    lock: RwLockId,
}

impl GuestThread<CacheShared> for Updater {
    fn next_op(&self, _: &CacheShared) -> OpDesc {
        if self.updates_left == 0 {
            return OpDesc::Finished;
        }
        match self.pc {
            0 => OpDesc::RwAcquireWrite(self.lock),
            1 => OpDesc::Local,
            _ => OpDesc::RwRelease(self.lock),
        }
    }

    fn on_op(&mut self, _: OpResult, sh: &mut CacheShared, _: &mut Effects<CacheShared>) {
        match self.pc {
            0 => self.pc = 1,
            1 => {
                sh.source += 1;
                sh.cache = None;
                self.pc = 2;
            }
            _ => {
                self.pc = 0;
                self.updates_left -= 1;
            }
        }
    }

    fn name(&self) -> String {
        "updater".to_string()
    }

    fn capture(&self, w: &mut StateWriter) {
        w.write_u8(self.pc);
        w.write_u32(self.updates_left);
    }

    fn box_clone(&self) -> Box<dyn GuestThread<CacheShared>> {
        Box::new(self.clone())
    }
}

/// Builds the read-write-cache program.
///
/// # Panics
///
/// Panics on a degenerate configuration (no readers or no lookups).
pub fn rw_cache(config: RwCacheConfig) -> Kernel<CacheShared> {
    assert!(config.readers > 0 && config.lookups > 0);
    let mut k = Kernel::new(CacheShared::default());
    let lock = k.add_rwlock();
    for id in 0..config.readers {
        k.spawn(Reader {
            id,
            pc: ReaderPc::ReadLock,
            lookups_left: config.lookups,
            precomputed: None,
            lock,
            stale_refresh: config.stale_refresh,
        });
    }
    k.spawn(Updater {
        pc: 0,
        updates_left: config.updates,
        lock,
    });
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use chess_core::strategy::Dfs;
    use chess_core::{Config, Explorer, SearchOutcome};
    use chess_state::{StateGraph, StatefulLimits};

    #[test]
    fn correct_cache_is_clean() {
        let factory = || rw_cache(RwCacheConfig::correct());
        let report = Explorer::new(factory, Dfs::new(), Config::fair()).run();
        assert_eq!(report.outcome, SearchOutcome::Complete, "{report}");
    }

    #[test]
    fn correct_cache_ground_truth() {
        let g = StateGraph::build(
            &rw_cache(RwCacheConfig::correct()),
            StatefulLimits::default(),
        )
        .unwrap();
        assert!(g.violation_states().is_empty());
        assert!(g.deadlock_states().is_empty());
        assert!(g.find_fair_scc().is_none());
    }

    #[test]
    fn upgrade_race_found() {
        let factory = || rw_cache(RwCacheConfig::upgrade_race());
        let report = Explorer::new(factory, Dfs::new(), Config::fair()).run();
        match &report.outcome {
            SearchOutcome::SafetyViolation(cex) => {
                assert!(cex.message.contains("cache serves"), "{}", cex.message);
            }
            o => panic!("expected the stale cache violation, got {o:?}"),
        }
    }

    /// The bug needs the updater to slip between the read unlock and the
    /// write lock: a serial execution is clean even with the bug.
    #[test]
    fn upgrade_race_is_concurrency_dependent() {
        let mut k = rw_cache(RwCacheConfig::upgrade_race());
        for t in 0..3usize {
            let tid = chess_kernel::ThreadId::new(t);
            while k.enabled(tid) {
                k.step(tid, 0);
            }
        }
        assert_eq!(
            chess_core::TransitionSystem::status(&k),
            chess_core::SystemStatus::Terminated
        );
    }

    #[test]
    fn readers_share_the_lock() {
        // Both readers can hold the read lock at once: from the initial
        // state, step both readers' ReadLock and check both are inside.
        let mut k = rw_cache(RwCacheConfig {
            readers: 2,
            lookups: 1,
            updates: 0,
            stale_refresh: false,
        });
        let r0 = chess_kernel::ThreadId::new(0);
        let r1 = chess_kernel::ThreadId::new(1);
        k.step(r0, 0);
        assert!(k.enabled(r1), "read lock must be shared");
        k.step(r1, 0);
        // The updater (if it had updates) would be excluded here.
        assert_eq!(k.thread_name(r0), "reader0");
    }
}
