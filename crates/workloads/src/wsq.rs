//! The work-stealing queue — the paper's low-level synchronization
//! subject (Table 1 row "Work-Stealing Queue", Table 2 coverage subject,
//! Table 3 bugs 1–3).
//!
//! This is the Cilk-5 THE protocol [Frigo et al., PLDI 98] as used by the
//! C# futures library the paper tested [Leijen, MSR-TR-2006-162]: the
//! owner pushes and pops at the *tail* without locking in the common
//! case, thieves steal from the *head* under a lock, and the owner falls
//! back to the lock only on a potential conflict:
//!
//! ```text
//! pop (owner):                     steal (thief):
//!   T--                              lock
//!   if (H > T) {                     H++
//!     T++                            if (H > T) { H--; unlock; fail }
//!     lock                           v = deque[H-1]
//!     T--                            unlock
//!     if (H > T) {                   return v
//!       T++; unlock; fail
//!     }
//!     unlock
//!   }
//!   return deque[T]
//! ```
//!
//! Every access to `H`, `T`, and a deque cell is one atomic transition,
//! giving the checker the same interleaving granularity CHESS gets from
//! instrumented volatile accesses.
//!
//! The test harness plays an owner script (bursts of pushes with
//! interleaved pops, then a full drain), `K` thieves that steal until the
//! owner is done, and a verifier that joins everyone and asserts that
//! **every item was taken exactly once**.
//!
//! Three seeded bugs reproduce the flavor of Table 3's WSQ bugs:
//!
//! * [`WsqBug::UnlockedConflictPop`] — the owner's conflict fallback
//!   path forgets to take the lock. Its re-check of `H` can then observe
//!   a thief's *transient* `H++`/`H--` spike (the thief is backing off
//!   inside its own critical section), making the owner conclude the
//!   queue is empty and retire while an item is still present — which
//!   the lone thief then never picks up because it sees `owner_done`.
//! * [`WsqBug::UnsynchronizedSteal`] — steal runs without the lock
//!   (read `H`, read cell, bump `H` as separate unprotected steps): two
//!   thieves can take the same item.
//! * [`WsqBug::LostTailRestore`] — the owner's conflict path forgets to
//!   restore `T` after losing the race: the deque size goes negative and
//!   a subsequently pushed item becomes invisible (lost item).

use chess_kernel::{
    Capture, Effects, GuestThread, Kernel, MutexId, OpDesc, OpResult, SharedEffects, StateWriter,
    ThreadId,
};

/// Seeded bugs for the work-stealing queue (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WsqBug {
    /// Owner's conflict pop path runs without holding the lock.
    UnlockedConflictPop,
    /// Steal path runs without holding the lock.
    UnsynchronizedSteal,
    /// Owner's conflict-failure path forgets `T++`.
    LostTailRestore,
}

/// Work-stealing queue workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct WsqConfig {
    /// Number of stealer threads.
    pub stealers: usize,
    /// Number of items the owner pushes (item values are `0..items`).
    pub items: u32,
    /// The owner pushes in bursts of this size, popping one item between
    /// bursts, then drains the queue. `0` means push everything first.
    pub burst: u32,
    /// Optional seeded bug.
    pub bug: Option<WsqBug>,
}

impl WsqConfig {
    /// The Table 2 coverage configuration with `stealers` thieves.
    pub fn table2(stealers: usize) -> Self {
        WsqConfig {
            stealers,
            items: 3,
            burst: 2,
            bug: None,
        }
    }

    /// A Table 3 bug-finding configuration.
    pub fn with_bug(bug: WsqBug) -> Self {
        WsqConfig {
            stealers: 2,
            items: 3,
            burst: 2,
            bug: Some(bug),
        }
    }
}

/// Shared state of the work-stealing queue program.
#[derive(Debug, Clone)]
pub struct WsqShared {
    /// Head index `H` (thieves steal here).
    pub head: i64,
    /// Tail index `T` (the owner pushes/pops here).
    pub tail: i64,
    /// The deque cells.
    pub deque: Vec<u64>,
    /// Take count per item value.
    pub taken: Vec<u8>,
    /// Total takes.
    pub taken_count: u32,
    /// Set by the owner after its final failed pop.
    pub owner_done: bool,
}

impl WsqShared {
    fn new(items: u32) -> Self {
        WsqShared {
            head: 0,
            tail: 0,
            deque: vec![u64::MAX; items as usize],
            taken: vec![0; items as usize],
            taken_count: 0,
            owner_done: false,
        }
    }

    fn record_take(&mut self, v: u64, who: &str, fx: &mut Effects<WsqShared>) {
        let Some(slot) = self.taken.get_mut(v as usize) else {
            fx.fail(format!("{who} took garbage value {v}"));
            return;
        };
        *slot += 1;
        self.taken_count += 1;
        let count = *slot;
        fx.check(
            count == 1,
            format_args!("{who}: item {v} taken {count} times"),
        );
    }

    fn cell(&self, idx: i64) -> Option<u64> {
        if idx < 0 {
            return None;
        }
        self.deque.get(idx as usize).copied()
    }
}

impl Capture for WsqShared {
    fn capture(&self, w: &mut StateWriter) {
        w.write_i64(self.head);
        w.write_i64(self.tail);
        for &c in &self.deque {
            w.write_u64(c);
        }
        for &t in &self.taken {
            w.write_u8(t);
        }
        w.write_bool(self.owner_done);
    }

    // `deque` and `take` are aggregate cells: per-element precision buys
    // little here because every take already serializes on `take`.
    fn cells(&self) -> Vec<(&'static str, u32)> {
        vec![
            ("head", 0),
            ("tail", 0),
            ("deque", 0),
            ("take", 0),
            ("done", 0),
        ]
    }

    fn capture_cell(&self, name: &'static str, _index: u32, w: &mut StateWriter) {
        match name {
            "head" => w.write_i64(self.head),
            "tail" => w.write_i64(self.tail),
            "deque" => {
                for &c in &self.deque {
                    w.write_u64(c);
                }
            }
            "take" => {
                for &t in &self.taken {
                    w.write_u8(t);
                }
                w.write_u32(self.taken_count);
            }
            "done" => w.write_bool(self.owner_done),
            _ => {}
        }
    }
}

/// One entry of the owner's scripted workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OwnerAction {
    Push(u64),
    Pop,
    Drain,
}

fn owner_script(cfg: &WsqConfig) -> Vec<OwnerAction> {
    let mut script = Vec::new();
    if cfg.burst == 0 {
        script.extend((0..cfg.items as u64).map(OwnerAction::Push));
    } else {
        let mut next = 0u64;
        while next < cfg.items as u64 {
            for _ in 0..cfg.burst {
                if next < cfg.items as u64 {
                    script.push(OwnerAction::Push(next));
                    next += 1;
                }
            }
            if next < cfg.items as u64 {
                script.push(OwnerAction::Pop);
            }
        }
    }
    script.push(OwnerAction::Drain);
    script
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OwnerPc {
    Dispatch,
    PushWrite,
    PushBump,
    PopDec,
    PopReadH,
    PopTake,
    PopRestore1,
    PopLock,
    PopDec2,
    PopReadH2,
    PopRestore2,
    PopUnlockFail,
    PopTakeLocked,
    PopUnlockOk,
    SetDone,
    Done,
}

#[derive(Debug, Clone)]
struct Owner {
    pc: OwnerPc,
    script: Vec<OwnerAction>,
    idx: usize,
    /// Local copy of `H` read during pop.
    h: i64,
    /// Value pending a push.
    push_val: u64,
    lock: MutexId,
    bug: Option<WsqBug>,
}

impl Owner {
    fn action(&self) -> OwnerAction {
        self.script[self.idx]
    }

    fn advance(&mut self) -> OwnerPc {
        // Drain repeats; everything else moves to the next script entry.
        if self.action() != OwnerAction::Drain {
            self.idx += 1;
        }
        OwnerPc::Dispatch
    }

    fn dispatch(&mut self) -> OwnerPc {
        match self.action() {
            OwnerAction::Push(v) => {
                self.push_val = v;
                OwnerPc::PushWrite
            }
            OwnerAction::Pop | OwnerAction::Drain => OwnerPc::PopDec,
        }
    }
}

impl GuestThread<WsqShared> for Owner {
    fn next_op(&self, _: &WsqShared) -> OpDesc {
        let unlocked = self.bug == Some(WsqBug::UnlockedConflictPop);
        match self.pc {
            OwnerPc::Done => OpDesc::Finished,
            // BUG variant: the conflict path skips the lock entirely, so
            // it can interleave with a thief's critical section.
            OwnerPc::PopLock if !unlocked => OpDesc::Acquire(self.lock),
            OwnerPc::PopUnlockFail | OwnerPc::PopUnlockOk if !unlocked => {
                OpDesc::Release(self.lock)
            }
            _ => OpDesc::Local,
        }
    }

    fn on_op(&mut self, _: OpResult, sh: &mut WsqShared, fx: &mut Effects<WsqShared>) {
        self.pc = match self.pc {
            OwnerPc::Dispatch => self.dispatch(),
            OwnerPc::PushWrite => {
                let t = sh.tail;
                if t < 0 || t as usize >= sh.deque.len() {
                    fx.fail(format!("push wrote out of bounds at T={t}"));
                    OwnerPc::Done
                } else {
                    sh.deque[t as usize] = self.push_val;
                    OwnerPc::PushBump
                }
            }
            OwnerPc::PushBump => {
                sh.tail += 1;
                self.advance()
            }
            OwnerPc::PopDec => {
                sh.tail -= 1;
                OwnerPc::PopReadH
            }
            OwnerPc::PopReadH => {
                self.h = sh.head;
                if self.h > sh.tail {
                    OwnerPc::PopRestore1
                } else {
                    OwnerPc::PopTake
                }
            }
            OwnerPc::PopTake => {
                match sh.cell(sh.tail) {
                    Some(v) => sh.record_take(v, "owner", fx),
                    None => fx.fail(format!("owner pop read out of bounds at T={}", sh.tail)),
                }
                self.advance()
            }
            OwnerPc::PopRestore1 => {
                sh.tail += 1;
                OwnerPc::PopLock
            }
            OwnerPc::PopLock => OwnerPc::PopDec2,
            OwnerPc::PopDec2 => {
                sh.tail -= 1;
                OwnerPc::PopReadH2
            }
            OwnerPc::PopReadH2 => {
                self.h = sh.head;
                if self.h > sh.tail {
                    if self.bug == Some(WsqBug::LostTailRestore) {
                        // BUG: forget T++ when losing the conflict.
                        OwnerPc::PopUnlockFail
                    } else {
                        OwnerPc::PopRestore2
                    }
                } else {
                    OwnerPc::PopTakeLocked
                }
            }
            OwnerPc::PopRestore2 => {
                sh.tail += 1;
                OwnerPc::PopUnlockFail
            }
            OwnerPc::PopUnlockFail => {
                // Pop failed: on a drain this means the queue is empty and
                // the owner retires.
                if self.action() == OwnerAction::Drain {
                    OwnerPc::SetDone
                } else {
                    self.idx += 1;
                    OwnerPc::Dispatch
                }
            }
            OwnerPc::PopTakeLocked => {
                match sh.cell(sh.tail) {
                    Some(v) => sh.record_take(v, "owner", fx),
                    None => fx.fail(format!("owner pop read out of bounds at T={}", sh.tail)),
                }
                OwnerPc::PopUnlockOk
            }
            OwnerPc::PopUnlockOk => self.advance(),
            OwnerPc::SetDone => {
                sh.owner_done = true;
                OwnerPc::Done
            }
            OwnerPc::Done => unreachable!(),
        };
    }

    fn shared_effects(&self, _: &OpDesc) -> SharedEffects {
        use OwnerPc::*;
        match self.pc {
            Dispatch | PopLock | PopUnlockFail | PopUnlockOk | Done => SharedEffects::Pure,
            PushWrite => SharedEffects::cells([("tail", 0)], [("deque", 0)]),
            // T increments/decrements are read-modify-writes of `tail`.
            PushBump | PopDec | PopRestore1 | PopDec2 | PopRestore2 => {
                SharedEffects::cells([("tail", 0)], [("tail", 0)])
            }
            PopReadH | PopReadH2 => SharedEffects::reads([("head", 0), ("tail", 0)]),
            PopTake | PopTakeLocked => {
                SharedEffects::cells([("tail", 0), ("deque", 0), ("take", 0)], [("take", 0)])
            }
            SetDone => SharedEffects::writes([("done", 0)]),
        }
    }

    fn name(&self) -> String {
        "owner".to_string()
    }

    fn capture(&self, w: &mut StateWriter) {
        w.write_u8(self.pc as u8);
        w.write_usize(self.idx);
        w.write_i64(self.h);
    }

    fn box_clone(&self) -> Box<dyn GuestThread<WsqShared>> {
        Box::new(self.clone())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StealerPc {
    Lock,
    IncH,
    CheckT,
    DecH,
    UnlockFail,
    ReadCell,
    UnlockOk,
    CheckDone,
    Retry,
    Done,
    // Unsynchronized (buggy) path:
    RawReadH,
    RawCheckT,
    RawReadCell,
    RawBumpH,
}

#[derive(Debug, Clone)]
struct Stealer {
    id: usize,
    pc: StealerPc,
    h: i64,
    v: u64,
    lock: MutexId,
    unsynchronized: bool,
}

impl Stealer {
    fn start(&self) -> StealerPc {
        if self.unsynchronized {
            StealerPc::RawReadH
        } else {
            StealerPc::Lock
        }
    }
}

impl GuestThread<WsqShared> for Stealer {
    fn next_op(&self, _: &WsqShared) -> OpDesc {
        match self.pc {
            StealerPc::Lock => OpDesc::Acquire(self.lock),
            StealerPc::UnlockFail | StealerPc::UnlockOk => OpDesc::Release(self.lock),
            StealerPc::Retry => OpDesc::Sleep,
            StealerPc::Done => OpDesc::Finished,
            _ => OpDesc::Local,
        }
    }

    fn on_op(&mut self, _: OpResult, sh: &mut WsqShared, fx: &mut Effects<WsqShared>) {
        let who = format!("stealer{}", self.id);
        self.pc = match self.pc {
            StealerPc::Lock => StealerPc::IncH,
            StealerPc::IncH => {
                sh.head += 1;
                StealerPc::CheckT
            }
            StealerPc::CheckT => {
                if sh.head > sh.tail {
                    StealerPc::DecH
                } else {
                    StealerPc::ReadCell
                }
            }
            StealerPc::DecH => {
                sh.head -= 1;
                StealerPc::UnlockFail
            }
            StealerPc::UnlockFail => StealerPc::CheckDone,
            StealerPc::ReadCell => {
                match sh.cell(sh.head - 1) {
                    Some(v) => sh.record_take(v, &who, fx),
                    None => fx.fail(format!("{who} read out of bounds at H-1={}", sh.head - 1)),
                }
                StealerPc::UnlockOk
            }
            StealerPc::UnlockOk => self.start(),
            StealerPc::CheckDone => {
                if sh.owner_done {
                    StealerPc::Done
                } else {
                    StealerPc::Retry
                }
            }
            StealerPc::Retry => self.start(),
            // BUG path: no lock at all.
            StealerPc::RawReadH => {
                self.h = sh.head;
                StealerPc::RawCheckT
            }
            StealerPc::RawCheckT => {
                if self.h + 1 > sh.tail {
                    StealerPc::CheckDone
                } else {
                    StealerPc::RawReadCell
                }
            }
            StealerPc::RawReadCell => {
                match sh.cell(self.h) {
                    Some(v) => self.v = v,
                    None => {
                        fx.fail(format!("{who} read out of bounds at h={}", self.h));
                        self.v = u64::MAX;
                    }
                }
                StealerPc::RawBumpH
            }
            StealerPc::RawBumpH => {
                sh.head = self.h + 1;
                sh.record_take(self.v, &who, fx);
                self.start()
            }
            StealerPc::Done => unreachable!(),
        };
    }

    fn shared_effects(&self, _: &OpDesc) -> SharedEffects {
        use StealerPc::*;
        match self.pc {
            Lock | UnlockFail | UnlockOk | Retry | Done => SharedEffects::Pure,
            IncH | DecH => SharedEffects::cells([("head", 0)], [("head", 0)]),
            CheckT => SharedEffects::reads([("head", 0), ("tail", 0)]),
            ReadCell => {
                SharedEffects::cells([("head", 0), ("deque", 0), ("take", 0)], [("take", 0)])
            }
            CheckDone => SharedEffects::reads([("done", 0)]),
            RawReadH => SharedEffects::reads([("head", 0)]),
            RawCheckT => SharedEffects::reads([("tail", 0)]),
            RawReadCell => SharedEffects::reads([("deque", 0)]),
            RawBumpH => SharedEffects::cells([("take", 0)], [("head", 0), ("take", 0)]),
        }
    }

    fn name(&self) -> String {
        format!("stealer{}", self.id)
    }

    fn capture(&self, w: &mut StateWriter) {
        w.write_u8(self.pc as u8);
        w.write_i64(self.h);
        w.write_u64(self.v);
    }

    fn box_clone(&self) -> Box<dyn GuestThread<WsqShared>> {
        Box::new(self.clone())
    }
}

/// Joins every worker, then asserts that each item was taken exactly once.
#[derive(Debug, Clone)]
struct Verifier {
    joined: usize,
    workers: Vec<ThreadId>,
    items: u32,
    checked: bool,
}

impl GuestThread<WsqShared> for Verifier {
    fn next_op(&self, _: &WsqShared) -> OpDesc {
        if self.joined < self.workers.len() {
            OpDesc::Join(self.workers[self.joined])
        } else if !self.checked {
            OpDesc::Local
        } else {
            OpDesc::Finished
        }
    }

    fn on_op(&mut self, _: OpResult, sh: &mut WsqShared, fx: &mut Effects<WsqShared>) {
        if self.joined < self.workers.len() {
            self.joined += 1;
            return;
        }
        fx.check(
            sh.taken_count == self.items,
            format_args!("{} of {} items taken", sh.taken_count, self.items),
        );
        for (v, &count) in sh.taken.iter().enumerate() {
            fx.check(count == 1, format_args!("item {v} taken {count} times"));
        }
        self.checked = true;
    }

    fn shared_effects(&self, _: &OpDesc) -> SharedEffects {
        if self.joined < self.workers.len() || self.checked {
            SharedEffects::Pure
        } else {
            SharedEffects::reads([("take", 0)])
        }
    }

    fn name(&self) -> String {
        "verifier".to_string()
    }

    fn capture(&self, w: &mut StateWriter) {
        w.write_usize(self.joined);
        w.write_bool(self.checked);
    }

    fn box_clone(&self) -> Box<dyn GuestThread<WsqShared>> {
        Box::new(self.clone())
    }
}

/// Builds the work-stealing-queue test program.
///
/// # Panics
///
/// Panics if `config.items == 0`.
pub fn wsq(config: WsqConfig) -> Kernel<WsqShared> {
    assert!(config.items > 0, "need at least one item");
    let mut k = Kernel::new(WsqShared::new(config.items));
    let lock = k.add_mutex();
    let mut workers = Vec::new();
    workers.push(k.spawn(Owner {
        pc: OwnerPc::Dispatch,
        script: owner_script(&config),
        idx: 0,
        h: 0,
        push_val: 0,
        lock,
        bug: config.bug,
    }));
    for id in 0..config.stealers {
        workers.push(k.spawn(Stealer {
            id,
            pc: StealerPc::Lock,
            h: 0,
            v: 0,
            lock,
            unsynchronized: config.bug == Some(WsqBug::UnsynchronizedSteal),
        }));
    }
    let items = config.items;
    k.spawn(Verifier {
        joined: 0,
        workers,
        items,
        checked: false,
    });
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use chess_core::strategy::{ContextBounded, Dfs};
    use chess_core::{Config, Explorer, SearchOutcome};
    use chess_state::{StateGraph, StatefulLimits};

    #[test]
    fn owner_script_shape() {
        let cfg = WsqConfig {
            stealers: 1,
            items: 5,
            burst: 2,
            bug: None,
        };
        use OwnerAction::*;
        assert_eq!(
            owner_script(&cfg),
            vec![Push(0), Push(1), Pop, Push(2), Push(3), Pop, Push(4), Drain]
        );
        let cfg0 = WsqConfig { burst: 0, ..cfg };
        assert_eq!(
            owner_script(&cfg0),
            vec![Push(0), Push(1), Push(2), Push(3), Push(4), Drain]
        );
    }

    #[test]
    fn correct_queue_single_stealer_is_clean() {
        let factory = || wsq(WsqConfig::table2(1));
        let config = Config::fair()
            .with_detect_cycles(false)
            .with_max_executions(20_000);
        let report = Explorer::new(factory, ContextBounded::new(2), config).run();
        assert!(!report.outcome.found_error(), "{report}");
    }

    #[test]
    fn correct_queue_has_no_livelock_ground_truth() {
        let factory = || {
            wsq(WsqConfig {
                stealers: 1,
                items: 2,
                burst: 2,
                bug: None,
            })
        };
        let g = StateGraph::build(&factory(), StatefulLimits::default()).unwrap();
        assert!(g.violation_states().is_empty(), "correct WSQ must be safe");
        assert!(g.deadlock_states().is_empty());
        assert!(
            g.find_fair_scc().is_none(),
            "correct WSQ is fair-terminating"
        );
    }

    fn find_bug(bug: WsqBug) -> chess_core::SearchReport {
        let factory = move || wsq(WsqConfig::with_bug(bug));
        let config = Config::fair().with_detect_cycles(false);
        Explorer::new(factory, ContextBounded::new(2), config).run()
    }

    #[test]
    fn bug1_unlocked_conflict_pop_found() {
        let report = find_bug(WsqBug::UnlockedConflictPop);
        match &report.outcome {
            // The unlocked conflict path loses an item (the owner retires
            // on a phantom-empty view) or double-takes under deeper races.
            SearchOutcome::SafetyViolation(cex) => {
                assert!(
                    cex.message.contains("items taken")
                        || cex.message.contains("taken 2 times")
                        || cex.message.contains("out of bounds"),
                    "{}",
                    cex.message
                );
            }
            o => panic!("expected a safety violation, got {o:?}"),
        }
    }

    /// The unlocked conflict path needs a real race: a single-threaded
    /// (round-robin-free) owner-only drain behaves correctly.
    #[test]
    fn bug1_is_concurrency_dependent() {
        let mut k = wsq(WsqConfig {
            stealers: 0,
            items: 3,
            burst: 2,
            bug: Some(WsqBug::UnlockedConflictPop),
        });
        while chess_core::TransitionSystem::status(&k).is_running() {
            let t = k.thread_ids().find(|&t| k.enabled(t)).unwrap();
            k.step(t, 0);
        }
        assert_eq!(
            chess_core::TransitionSystem::status(&k),
            chess_core::SystemStatus::Terminated,
            "owner-only run must be clean"
        );
    }

    #[test]
    fn bug2_unsynchronized_steal_found() {
        let report = find_bug(WsqBug::UnsynchronizedSteal);
        assert!(
            matches!(report.outcome, SearchOutcome::SafetyViolation(_)),
            "{report}"
        );
    }

    #[test]
    fn bug3_lost_tail_restore_found() {
        let report = find_bug(WsqBug::LostTailRestore);
        assert!(
            matches!(report.outcome, SearchOutcome::SafetyViolation(_)),
            "{report}"
        );
    }

    #[test]
    fn counterexamples_replay_deterministically() {
        let report = find_bug(WsqBug::UnlockedConflictPop);
        let cex = report.outcome.counterexample().unwrap().clone();
        let rendered = cex.render(|| wsq(WsqConfig::with_bug(WsqBug::UnlockedConflictPop)));
        assert!(rendered.contains("violation"), "{rendered}");
        assert!(
            rendered.contains("stealer") || rendered.contains("owner"),
            "{rendered}"
        );
    }

    /// The full DFS fair search is large; a bounded fair DFS stays clean
    /// on the correct queue.
    #[test]
    fn bounded_fair_dfs_clean_on_correct_queue() {
        let factory = || {
            wsq(WsqConfig {
                stealers: 1,
                items: 2,
                burst: 0,
                bug: None,
            })
        };
        let config = Config::fair()
            .with_detect_cycles(false)
            .with_max_executions(5_000);
        let report = Explorer::new(factory, Dfs::new(), config).run();
        assert!(!report.outcome.found_error(), "{report}");
        assert_eq!(report.stats.nonterminating, 0);
    }
}
