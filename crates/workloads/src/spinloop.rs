//! The running example of the paper (Figure 3):
//!
//! ```text
//! Init x := 0;
//! Thread t             Thread u
//! a: x := 1;           c: while (x != 1)
//! b: end;              d:     yield();
//!                      e: end;
//! ```
//!
//! The state space has a cycle between `(a,c)` and `(a,d)` produced by
//! `u`'s spin loop. The program is *fair-terminating*: its only infinite
//! execution starves `t`, which is enabled throughout — an unfair
//! schedule. It also satisfies the good-samaritan property thanks to the
//! `yield` in the loop body.

use chess_kernel::{Capture, Effects, GuestThread, Kernel, OpDesc, OpResult, StateWriter};

/// Shared state: the flag `x`.
#[derive(Debug, Clone, Default)]
pub struct SpinShared {
    /// The flag thread `t` sets and thread `u` spins on.
    pub x: u64,
}

impl Capture for SpinShared {
    fn capture(&self, w: &mut StateWriter) {
        w.write_u64(self.x);
    }
}

/// Thread `t`: sets `x := 1` and ends.
#[derive(Debug, Clone)]
struct Setter {
    done: bool,
}

impl GuestThread<SpinShared> for Setter {
    fn next_op(&self, _: &SpinShared) -> OpDesc {
        if self.done {
            OpDesc::Finished
        } else {
            OpDesc::Local
        }
    }

    fn on_op(&mut self, _: OpResult, sh: &mut SpinShared, _: &mut Effects<SpinShared>) {
        sh.x = 1;
        self.done = true;
    }

    fn name(&self) -> String {
        "t".to_string()
    }

    fn capture(&self, w: &mut StateWriter) {
        w.write_bool(self.done);
    }

    fn box_clone(&self) -> Box<dyn GuestThread<SpinShared>> {
        Box::new(self.clone())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SpinPc {
    /// `c`: test `x != 1`.
    Check,
    /// `d`: `yield()`.
    Yield,
    /// `e`: end.
    End,
}

/// Thread `u`: spins `while (x != 1) yield();`.
///
/// When `with_yield` is false, the loop body is an ordinary transition —
/// the program then violates the good-samaritan property, which is the
/// ablation used to demonstrate why GS matters for the scheduler.
#[derive(Debug, Clone)]
struct Spinner {
    pc: SpinPc,
    with_yield: bool,
}

impl GuestThread<SpinShared> for Spinner {
    fn next_op(&self, _: &SpinShared) -> OpDesc {
        match self.pc {
            SpinPc::Check => OpDesc::Local,
            SpinPc::Yield => {
                if self.with_yield {
                    OpDesc::Yield
                } else {
                    OpDesc::Local
                }
            }
            SpinPc::End => OpDesc::Finished,
        }
    }

    fn on_op(&mut self, _: OpResult, sh: &mut SpinShared, _: &mut Effects<SpinShared>) {
        self.pc = match self.pc {
            SpinPc::Check => {
                if sh.x == 1 {
                    SpinPc::End
                } else {
                    SpinPc::Yield
                }
            }
            SpinPc::Yield => SpinPc::Check,
            SpinPc::End => unreachable!(),
        };
    }

    fn name(&self) -> String {
        "u".to_string()
    }

    fn capture(&self, w: &mut StateWriter) {
        w.write_u8(match self.pc {
            SpinPc::Check => 0,
            SpinPc::Yield => 1,
            SpinPc::End => 2,
        });
    }

    fn box_clone(&self) -> Box<dyn GuestThread<SpinShared>> {
        Box::new(self.clone())
    }
}

/// Builds the Figure 3 program.
pub fn figure3() -> Kernel<SpinShared> {
    spinloop(1, true)
}

/// Builds a generalization of Figure 3 with `spinners` threads spinning
/// on the same flag. With `with_yield = false` the spin loops violate
/// the good-samaritan property.
pub fn spinloop(spinners: usize, with_yield: bool) -> Kernel<SpinShared> {
    let mut k = Kernel::new(SpinShared::default());
    k.spawn(Setter { done: false });
    for _ in 0..spinners {
        k.spawn(Spinner {
            pc: SpinPc::Check,
            with_yield,
        });
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use chess_core::strategy::Dfs;
    use chess_core::{Config, Explorer, SearchOutcome};
    use chess_state::{StateGraph, StatefulLimits};

    #[test]
    fn fair_search_terminates_and_finds_no_errors() {
        let report = Explorer::new(figure3, Dfs::new(), Config::fair()).run();
        assert_eq!(report.outcome, SearchOutcome::Complete);
        assert_eq!(report.stats.nonterminating, 0);
    }

    /// Without fairness, full DFS on Figure 3 unrolls the spin cycle up
    /// to the depth bound: nonterminating executions appear.
    #[test]
    fn unfair_search_wastes_executions_on_the_cycle() {
        let config = Config::unfair().with_depth_bound(24);
        let report = Explorer::new(figure3, Dfs::new(), config).run();
        assert_eq!(report.outcome, SearchOutcome::Complete);
        assert!(
            report.stats.nonterminating > 0,
            "expected depth-bound hits, got {:?}",
            report.stats
        );
    }

    #[test]
    fn no_livelock_ground_truth() {
        let g = StateGraph::build(&figure3(), StatefulLimits::default()).unwrap();
        assert!(g.find_fair_scc().is_none());
        assert!(g.deadlock_states().is_empty());
    }

    /// Figure 3's abstract state space (right side of the figure) has 5
    /// states: (a,c), (a,d), (b,c), (b,d), (b,e) — ours adds the spinner
    /// exit state after t finished; exact count depends on the encoding,
    /// but it must be tiny and cycle-bearing.
    #[test]
    fn state_space_is_tiny() {
        let g = StateGraph::build(&figure3(), StatefulLimits::default()).unwrap();
        assert!(g.state_count() <= 8, "got {}", g.state_count());
    }

    /// The no-yield ablation: the spinner violates GS; the fair scheduler
    /// never penalizes it (no yields → P stays empty), so the cycle is
    /// explored and detected as an unfair cycle (a GS violation).
    #[test]
    fn gs_violation_detected_without_yield() {
        let factory = || spinloop(1, false);
        let report = Explorer::new(factory, Dfs::new(), Config::fair()).run();
        match report.outcome {
            SearchOutcome::Divergence(d) => {
                assert!(
                    matches!(
                        d.kind,
                        chess_core::DivergenceKind::UnfairCycle { .. }
                            | chess_core::DivergenceKind::GoodSamaritanSuspect { .. }
                    ),
                    "got {:?}",
                    d.kind
                );
            }
            o => panic!("expected divergence, got {o:?}"),
        }
    }
}
