//! A condition-variable bounded buffer — the classic monitor workload,
//! exercising the kernel's two-phase condvar protocol
//! (`CondEnroll`/`CondConsume`) under the fair scheduler.
//!
//! Producers put `items` values, consumers take them; both wait on
//! condition variables when the buffer is full/empty. Two seeded bugs:
//!
//! * [`BufferBug::IfInsteadOfWhile`] — the guard is re-checked with `if`
//!   instead of `while` after waking. Under spurious-looking wakeup
//!   orders (two waiters, one signal consumed by the "wrong" one — or a
//!   producer slot immediately re-stolen), the woken thread proceeds on
//!   a false guard and corrupts the buffer.
//! * [`BufferBug::SharedCondvarSignal`] — producers and consumers share
//!   a single condition variable (a common "simplification") and notify
//!   with `signal`. The signal can wake a waiter of the *wrong class*
//!   (a producer when a consumer was needed), losing the wakeup and
//!   deadlocking the monitor.

use chess_kernel::{
    Capture, CondvarId, Effects, GuestThread, Kernel, MutexId, OpDesc, OpResult, StateWriter,
};

/// Seeded bugs for the bounded buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferBug {
    /// Re-check the monitor guard with `if` instead of `while`.
    IfInsteadOfWhile,
    /// One shared condition variable with single-waiter signals: a
    /// wakeup can land on the wrong class of waiter and be lost.
    SharedCondvarSignal,
}

/// Bounded-buffer workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct BufferConfig {
    /// Buffer capacity.
    pub capacity: usize,
    /// Number of producer threads.
    pub producers: usize,
    /// Number of consumer threads.
    pub consumers: usize,
    /// Items produced by each producer. Total production must equal
    /// total consumption: `producers * items_per_producer` must be
    /// divisible by `consumers`.
    pub items_per_producer: u32,
    /// Optional seeded bug.
    pub bug: Option<BufferBug>,
}

impl BufferConfig {
    /// A small correct instance: 2 producers, 2 consumers, capacity 1.
    pub fn correct() -> Self {
        BufferConfig {
            capacity: 1,
            producers: 2,
            consumers: 2,
            items_per_producer: 1,
            bug: None,
        }
    }

    /// A configuration seeding the given bug.
    pub fn with_bug(bug: BufferBug) -> Self {
        BufferConfig {
            bug: Some(bug),
            ..BufferConfig::correct()
        }
    }
}

/// Shared state: the ring buffer and production/consumption counters.
#[derive(Debug, Clone, Default)]
pub struct BufferShared {
    /// The buffer contents (up to `capacity` values).
    pub buffer: Vec<u64>,
    /// Capacity of the buffer.
    pub capacity: usize,
    /// Values produced so far (also the next value).
    pub produced: u64,
    /// Values consumed so far.
    pub consumed: u64,
    /// Sum of consumed values, checked at the end.
    pub checksum: u64,
}

impl Capture for BufferShared {
    fn capture(&self, w: &mut StateWriter) {
        w.write_usize(self.buffer.len());
        for &v in &self.buffer {
            w.write_u64(v);
        }
        w.write_u64(self.produced);
        w.write_u64(self.consumed);
        w.write_u64(self.checksum);
    }
}

/// Monitor wiring shared by producers and consumers.
#[derive(Debug, Clone, Copy)]
struct Monitor {
    lock: MutexId,
    not_full: CondvarId,
    not_empty: CondvarId,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pc {
    Lock,
    Guard,
    WaitEnroll,
    WaitConsume,
    Relock,
    Action,
    Notify,
    Unlock,
    Done,
}

/// A producer or consumer thread over the monitor.
#[derive(Debug, Clone)]
struct Party {
    id: usize,
    producer: bool,
    pc: Pc,
    remaining: u32,
    monitor: Monitor,
    bug: Option<BufferBug>,
}

impl Party {
    fn guard_blocked(&self, sh: &BufferShared) -> bool {
        if self.producer {
            sh.buffer.len() >= sh.capacity
        } else {
            sh.buffer.is_empty()
        }
    }

    fn wait_cv(&self) -> CondvarId {
        if self.bug == Some(BufferBug::SharedCondvarSignal) {
            // BUG: a single condvar for both guards.
            self.monitor.not_full
        } else if self.producer {
            self.monitor.not_full
        } else {
            self.monitor.not_empty
        }
    }

    fn notify_cv(&self) -> CondvarId {
        if self.bug == Some(BufferBug::SharedCondvarSignal) {
            self.monitor.not_full
        } else if self.producer {
            self.monitor.not_empty
        } else {
            self.monitor.not_full
        }
    }
}

impl GuestThread<BufferShared> for Party {
    fn next_op(&self, _: &BufferShared) -> OpDesc {
        match self.pc {
            Pc::Lock | Pc::Relock => OpDesc::Acquire(self.monitor.lock),
            Pc::Guard | Pc::Action => OpDesc::Local,
            Pc::WaitEnroll => OpDesc::CondEnroll(self.wait_cv(), self.monitor.lock),
            Pc::WaitConsume => OpDesc::CondConsume(self.wait_cv()),
            Pc::Notify => {
                if self.bug == Some(BufferBug::SharedCondvarSignal) {
                    // BUG: one signal on the shared condvar; may wake the
                    // wrong class of waiter.
                    OpDesc::CondSignal(self.notify_cv())
                } else {
                    OpDesc::CondBroadcast(self.notify_cv())
                }
            }
            Pc::Unlock => OpDesc::Release(self.monitor.lock),
            Pc::Done => OpDesc::Finished,
        }
    }

    fn on_op(&mut self, _: OpResult, sh: &mut BufferShared, fx: &mut Effects<BufferShared>) {
        self.pc = match self.pc {
            Pc::Lock => Pc::Guard,
            // The correct monitor re-checks the guard after re-acquiring
            // the lock (`while`); the `if` bug proceeds straight to the
            // action on a possibly-false guard.
            Pc::Relock => {
                if self.bug == Some(BufferBug::IfInsteadOfWhile) {
                    Pc::Action
                } else {
                    Pc::Guard
                }
            }
            Pc::Guard => {
                if self.guard_blocked(sh) {
                    Pc::WaitEnroll
                } else {
                    Pc::Action
                }
            }
            Pc::WaitEnroll => Pc::WaitConsume,
            Pc::WaitConsume => Pc::Relock,
            Pc::Action => {
                if self.producer {
                    if sh.buffer.len() >= sh.capacity {
                        fx.fail(format!(
                            "producer {} overfilled the buffer ({} of {})",
                            self.id,
                            sh.buffer.len(),
                            sh.capacity
                        ));
                    } else {
                        let v = sh.produced;
                        sh.produced += 1;
                        sh.buffer.push(v);
                    }
                } else if let Some(v) = sh.buffer.pop() {
                    sh.consumed += 1;
                    sh.checksum += v;
                } else {
                    fx.fail(format!("consumer {} took from an empty buffer", self.id));
                }
                Pc::Notify
            }
            Pc::Notify => Pc::Unlock,
            Pc::Unlock => {
                self.remaining -= 1;
                if self.remaining == 0 {
                    Pc::Done
                } else {
                    Pc::Lock
                }
            }
            Pc::Done => unreachable!(),
        };
    }

    fn name(&self) -> String {
        format!(
            "{}{}",
            if self.producer {
                "producer"
            } else {
                "consumer"
            },
            self.id
        )
    }

    fn capture(&self, w: &mut StateWriter) {
        w.write_u8(self.pc as u8);
        w.write_u32(self.remaining);
    }

    fn box_clone(&self) -> Box<dyn GuestThread<BufferShared>> {
        Box::new(self.clone())
    }
}

/// Builds the bounded-buffer program.
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero parties/capacity) or
/// production does not divide evenly among consumers.
pub fn bounded_buffer(config: BufferConfig) -> Kernel<BufferShared> {
    assert!(config.capacity > 0, "capacity must be positive");
    assert!(config.producers > 0 && config.consumers > 0);
    let total = config.producers as u32 * config.items_per_producer;
    assert!(
        total.is_multiple_of(config.consumers as u32),
        "production must divide evenly among consumers"
    );
    let mut k = Kernel::new(BufferShared {
        buffer: Vec::new(),
        capacity: config.capacity,
        ..BufferShared::default()
    });
    let monitor = Monitor {
        lock: k.add_mutex(),
        not_full: k.add_condvar(),
        not_empty: k.add_condvar(),
    };
    for id in 0..config.producers {
        k.spawn(Party {
            id,
            producer: true,
            pc: Pc::Lock,
            remaining: config.items_per_producer,
            monitor,
            bug: config.bug,
        });
    }
    for id in 0..config.consumers {
        k.spawn(Party {
            id,
            producer: false,
            pc: Pc::Lock,
            remaining: total / config.consumers as u32,
            monitor,
            bug: config.bug,
        });
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use chess_core::strategy::Dfs;
    use chess_core::{Config, Explorer, SearchOutcome};
    use chess_state::{StateGraph, StatefulLimits};

    #[test]
    fn correct_buffer_is_clean() {
        let factory = || bounded_buffer(BufferConfig::correct());
        let report = Explorer::new(factory, Dfs::new(), Config::fair()).run();
        assert_eq!(report.outcome, SearchOutcome::Complete, "{report}");
    }

    #[test]
    fn correct_buffer_ground_truth() {
        let g = StateGraph::build(
            &bounded_buffer(BufferConfig::correct()),
            StatefulLimits::default(),
        )
        .unwrap();
        assert!(g.violation_states().is_empty());
        assert!(g.deadlock_states().is_empty());
        assert!(g.find_fair_scc().is_none());
    }

    #[test]
    fn if_instead_of_while_found() {
        let factory = || bounded_buffer(BufferConfig::with_bug(BufferBug::IfInsteadOfWhile));
        let report = Explorer::new(factory, Dfs::new(), Config::fair()).run();
        match &report.outcome {
            SearchOutcome::SafetyViolation(cex) => {
                assert!(
                    cex.message.contains("overfilled") || cex.message.contains("empty buffer"),
                    "{}",
                    cex.message
                );
            }
            SearchOutcome::Deadlock(_) => {} // also a legitimate symptom
            o => panic!("expected violation, got {o:?}"),
        }
    }

    #[test]
    fn shared_condvar_signal_deadlocks() {
        let cfg = BufferConfig {
            consumers: 2,
            producers: 2,
            ..BufferConfig::with_bug(BufferBug::SharedCondvarSignal)
        };
        let factory = move || bounded_buffer(cfg);
        let report = Explorer::new(factory, Dfs::new(), Config::fair()).run();
        assert!(
            matches!(
                report.outcome,
                SearchOutcome::Deadlock(_) | SearchOutcome::SafetyViolation(_)
            ),
            "{report}"
        );
    }

    #[test]
    fn checksum_adds_up_on_a_serial_run() {
        let mut k = bounded_buffer(BufferConfig {
            capacity: 2,
            producers: 1,
            consumers: 1,
            items_per_producer: 4,
            bug: None,
        });
        let mut rr = 0usize;
        while chess_core::TransitionSystem::status(&k).is_running() {
            let n = k.thread_count();
            let t = (0..n)
                .map(|i| chess_kernel::ThreadId::new((rr + i) % n))
                .find(|&t| k.enabled(t))
                .unwrap();
            k.step(t, 0);
            rr = (t.index() + 1) % n;
        }
        assert_eq!(k.shared().consumed, 4);
        assert_eq!(k.shared().checksum, 6);
    }
}
