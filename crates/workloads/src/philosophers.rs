//! Dining philosophers — the paper's introductory example (Figure 1) and
//! one of the two coverage subjects of Table 2.
//!
//! Three variants:
//!
//! * [`Variant::Trylock`] — **Figure 1 verbatim** (generalized to a ring):
//!   each philosopher blocks on its first fork, *tries* the second, and on
//!   failure releases and retries. With the figure's ring order this has
//!   the paper's livelock: all philosophers can acquire–fail–release in
//!   lockstep forever, a *fair* cycle.
//! * [`Variant::TrylockOrdered`] — the same retry structure but forks are
//!   always grabbed lowest-id first, with a yield before retrying. The
//!   retry loops create cycles in the state space (which unfair search
//!   wastes executions unrolling — Figures 2/5/6) but the ordering makes
//!   the program fair-terminating: no livelock, no deadlock.
//! * [`Variant::OrderedBlocking`] — both forks acquired blocking in
//!   ascending order: the terminating, acyclic textbook fix.
//!
//! Safety instrumentation: a philosopher eating asserts that no neighbor
//! is eating, and the harness counts meals.

use chess_kernel::{Capture, Effects, GuestThread, Kernel, MutexId, OpDesc, OpResult, StateWriter};

/// Which philosopher protocol to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Figure 1: block on first fork (ring order), try second, release
    /// and retry on failure. Contains a livelock.
    Trylock,
    /// Lowest-fork-first trylock with a polite yield before retrying:
    /// cyclic state space but fair-terminating.
    TrylockOrdered,
    /// Lowest-fork-first blocking acquisition: terminating, acyclic.
    OrderedBlocking,
}

/// Configuration for the dining-philosophers workload.
#[derive(Debug, Clone, Copy)]
pub struct PhilosophersConfig {
    /// Number of philosophers (and forks). Must be at least 2.
    pub n: usize,
    /// Protocol variant.
    pub variant: Variant,
    /// Meals each philosopher must eat before finishing.
    pub meals: u32,
    /// Insert a yield (sleep) before retrying after a failed try-acquire.
    /// Figure 1 has no yield; the fair-terminating variant needs one for
    /// the good-samaritan property.
    pub polite: bool,
    /// Local "thinking" steps before each meal attempt (adds scheduling
    /// interleavings without synchronization).
    pub think_steps: u32,
}

impl PhilosophersConfig {
    /// Figure 1's two-philosopher livelocking program.
    pub fn figure1() -> Self {
        PhilosophersConfig {
            n: 2,
            variant: Variant::Trylock,
            meals: 1,
            polite: false,
            think_steps: 0,
        }
    }

    /// The Table 2 coverage subject with `n` philosophers:
    /// fair-terminating, cyclic for `n >= 3`.
    pub fn table2(n: usize) -> Self {
        PhilosophersConfig {
            n,
            variant: Variant::TrylockOrdered,
            meals: 1,
            polite: true,
            think_steps: 1,
        }
    }
}

/// Shared state: who is eating, and meal counts.
#[derive(Debug, Clone, Default)]
pub struct PhilShared {
    /// `eating[i]` while philosopher `i` holds both forks and eats.
    pub eating: Vec<bool>,
    /// Completed meals per philosopher.
    pub meals_eaten: Vec<u32>,
}

impl Capture for PhilShared {
    fn capture(&self, w: &mut StateWriter) {
        for &e in &self.eating {
            w.write_bool(e);
        }
        for &m in &self.meals_eaten {
            w.write_u32(m);
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pc {
    Think,
    AcqFirst,
    TrySecond,
    AcqSecond,
    RelFirstRetry,
    YieldRetry,
    Eat,
    RelSecond,
    RelFirst,
    Done,
}

/// One philosopher thread.
#[derive(Debug, Clone)]
struct Philosopher {
    id: usize,
    pc: Pc,
    first: MutexId,
    second: MutexId,
    blocking_second: bool,
    polite: bool,
    meals_left: u32,
    think_steps: u32,
    thinks_left: u32,
}

impl Philosopher {
    fn after_think(&self) -> Pc {
        if self.thinks_left > 0 {
            Pc::Think
        } else {
            Pc::AcqFirst
        }
    }
}

impl GuestThread<PhilShared> for Philosopher {
    fn next_op(&self, _: &PhilShared) -> OpDesc {
        match self.pc {
            Pc::Think | Pc::Eat => OpDesc::Local,
            Pc::AcqFirst => OpDesc::Acquire(self.first),
            Pc::TrySecond => OpDesc::TryAcquire(self.second),
            Pc::AcqSecond => OpDesc::Acquire(self.second),
            Pc::RelFirstRetry => OpDesc::Release(self.first),
            Pc::YieldRetry => OpDesc::Sleep,
            Pc::RelSecond => OpDesc::Release(self.second),
            Pc::RelFirst => OpDesc::Release(self.first),
            Pc::Done => OpDesc::Finished,
        }
    }

    fn on_op(&mut self, r: OpResult, sh: &mut PhilShared, fx: &mut Effects<PhilShared>) {
        self.pc = match self.pc {
            Pc::Think => {
                self.thinks_left -= 1;
                self.after_think()
            }
            Pc::AcqFirst => {
                if self.blocking_second {
                    Pc::AcqSecond
                } else {
                    Pc::TrySecond
                }
            }
            Pc::AcqSecond => Pc::Eat,
            Pc::TrySecond => {
                if r.as_bool() {
                    Pc::Eat
                } else {
                    Pc::RelFirstRetry
                }
            }
            Pc::RelFirstRetry => {
                if self.polite {
                    Pc::YieldRetry
                } else {
                    Pc::AcqFirst
                }
            }
            Pc::YieldRetry => Pc::AcqFirst,
            Pc::Eat => {
                let n = sh.eating.len();
                let left = (self.id + n - 1) % n;
                let right = (self.id + 1) % n;
                fx.check(
                    !sh.eating[left] && !sh.eating[right],
                    format_args!("philosopher {} eating next to an eating neighbor", self.id),
                );
                sh.eating[self.id] = true;
                Pc::RelSecond
            }
            Pc::RelSecond => {
                // Eating requires both forks; once the first is given up
                // the philosopher no longer counts as eating.
                sh.eating[self.id] = false;
                sh.meals_eaten[self.id] += 1;
                Pc::RelFirst
            }
            Pc::RelFirst => {
                self.meals_left -= 1;
                if self.meals_left == 0 {
                    Pc::Done
                } else {
                    self.thinks_left = self.think_steps;
                    self.after_think()
                }
            }
            Pc::Done => unreachable!(),
        };
    }

    fn name(&self) -> String {
        format!("phil{}", self.id)
    }

    fn capture(&self, w: &mut StateWriter) {
        w.write_u8(self.pc as u8);
        w.write_u32(self.meals_left);
        w.write_u32(self.thinks_left);
    }

    fn box_clone(&self) -> Box<dyn GuestThread<PhilShared>> {
        Box::new(self.clone())
    }
}

/// Builds a dining-philosophers kernel from a configuration.
///
/// # Panics
///
/// Panics if `config.n < 2` or `config.meals == 0`.
pub fn philosophers(config: PhilosophersConfig) -> Kernel<PhilShared> {
    assert!(config.n >= 2, "need at least two philosophers");
    assert!(config.meals > 0, "each philosopher must eat at least once");
    let mut k = Kernel::new(PhilShared {
        eating: vec![false; config.n],
        meals_eaten: vec![0; config.n],
    });
    let forks: Vec<MutexId> = (0..config.n).map(|_| k.add_mutex()).collect();
    for i in 0..config.n {
        let (a, b) = (forks[i], forks[(i + 1) % config.n]);
        let (first, second) = match config.variant {
            // Figure 1 ring order: grab "your" fork, then the next one.
            Variant::Trylock => (a, b),
            // Global fork ordering: lowest id first.
            Variant::TrylockOrdered | Variant::OrderedBlocking => {
                if a.index() < b.index() {
                    (a, b)
                } else {
                    (b, a)
                }
            }
        };
        let phil = Philosopher {
            id: i,
            pc: Pc::AcqFirst,
            first,
            second,
            blocking_second: config.variant == Variant::OrderedBlocking,
            polite: config.polite,
            meals_left: config.meals,
            think_steps: config.think_steps,
            thinks_left: config.think_steps,
        };
        let pc = phil.after_think();
        k.spawn(Philosopher { pc, ..phil });
    }
    k
}

/// Figure 1's program: two philosophers, try-locks, no yields — contains
/// the paper's livelock.
pub fn figure1() -> Kernel<PhilShared> {
    philosophers(PhilosophersConfig::figure1())
}

/// Figure 1 with a polite yield before each retry: the program then
/// satisfies the good-samaritan property, so the *only* error left is the
/// genuine livelock (the fair acquire–fail–release cycle of both
/// philosophers), and solo spinning is pruned by the fair scheduler
/// (Theorem 4).
pub fn figure1_polite() -> Kernel<PhilShared> {
    philosophers(PhilosophersConfig {
        polite: true,
        ..PhilosophersConfig::figure1()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chess_core::strategy::Dfs;
    use chess_core::{Config, DivergenceKind, Explorer, SearchOutcome};
    use chess_state::{StateGraph, StatefulLimits};

    #[test]
    fn figure1_has_a_livelock_ground_truth() {
        let g = StateGraph::build(&figure1(), StatefulLimits::default()).unwrap();
        assert!(
            g.find_fair_scc().is_some(),
            "figure 1 must contain a fair cycle (livelock)"
        );
        assert!(g.deadlock_states().is_empty(), "trylock avoids deadlock");
    }

    /// Figure 1 has no yields, so both genuine livelock cycles (fair) and
    /// solo-spin cycles (unfair, i.e. good-samaritan violations) loop
    /// forever; either is a correct error report.
    #[test]
    fn fair_search_detects_figure1_divergence() {
        let report = Explorer::new(figure1, Dfs::new(), Config::fair()).run();
        match report.outcome {
            SearchOutcome::Divergence(d) => assert!(matches!(
                d.kind,
                DivergenceKind::FairCycle { .. } | DivergenceKind::UnfairCycle { .. }
            )),
            o => panic!("expected divergence, got {o:?}"),
        }
    }

    /// With polite retries the program satisfies GS: the fair scheduler
    /// prunes solo spinning (Theorem 4) and the *livelock itself* is the
    /// divergence that remains.
    #[test]
    fn fair_search_pinpoints_the_livelock_in_polite_figure1() {
        let report = Explorer::new(figure1_polite, Dfs::new(), Config::fair()).run();
        match report.outcome {
            SearchOutcome::Divergence(d) => match d.kind {
                DivergenceKind::FairCycle { cycle_len, .. } => assert!(cycle_len >= 4),
                k => panic!("expected fair cycle (livelock), got {k:?}"),
            },
            o => panic!("expected divergence, got {o:?}"),
        }
    }

    #[test]
    fn table2_variant_is_fair_terminating() {
        for n in [2, 3] {
            let factory = move || philosophers(PhilosophersConfig::table2(n));
            let g = StateGraph::build(&factory(), StatefulLimits::default()).unwrap();
            assert!(
                g.find_fair_scc().is_none(),
                "ordered trylock must be livelock-free (n={n})"
            );
            assert!(g.deadlock_states().is_empty());
            assert!(g.violation_states().is_empty());
        }
        // Full fair DFS on the 2-philosopher instance: must complete with
        // every execution terminating (the 3-philosopher DFS is large and
        // is exercised with a budget in the benches).
        let factory = || philosophers(PhilosophersConfig::table2(2));
        let report = Explorer::new(factory, Dfs::new(), Config::fair()).run();
        assert_eq!(report.outcome, SearchOutcome::Complete);
        assert_eq!(report.stats.nonterminating, 0);
        // With a budget, the 3-philosopher fair search stays error-free
        // and never hits the depth bound.
        let factory = || philosophers(PhilosophersConfig::table2(3));
        let config = Config::fair().with_max_executions(3_000);
        let report = Explorer::new(factory, Dfs::new(), config).run();
        assert!(!report.outcome.found_error(), "{report}");
        assert_eq!(report.stats.nonterminating, 0);
    }

    /// Unfair depth-bounded DFS wastes executions unrolling the retry
    /// cycles (the phenomenon of Figure 2).
    #[test]
    fn table2_variant_has_cycles_for_three_philosophers() {
        let factory = || philosophers(PhilosophersConfig::table2(3));
        let config = Config::unfair()
            .with_depth_bound(40)
            .with_max_executions(20_000);
        let report = Explorer::new(factory, Dfs::new(), config).run();
        assert!(
            report.stats.nonterminating > 0,
            "expected depth-bound hits from cycle unrolling: {:?}",
            report.stats
        );
    }

    #[test]
    fn ordered_blocking_terminates_everywhere() {
        let factory = || {
            philosophers(PhilosophersConfig {
                n: 3,
                variant: Variant::OrderedBlocking,
                meals: 1,
                polite: false,
                think_steps: 0,
            })
        };
        let g = StateGraph::build(&factory(), StatefulLimits::default()).unwrap();
        assert!(g.deadlock_states().is_empty());
        assert!(g.find_fair_scc().is_none());
        let report = Explorer::new(factory, Dfs::new(), Config::fair()).run();
        assert_eq!(report.outcome, SearchOutcome::Complete);
    }

    #[test]
    fn meals_are_eaten_on_every_terminating_execution() {
        let factory = || {
            philosophers(PhilosophersConfig {
                n: 2,
                variant: Variant::OrderedBlocking,
                meals: 2,
                polite: false,
                think_steps: 0,
            })
        };
        // Run one arbitrary execution to completion and check meal counts.
        let mut k = factory();
        while chess_core::TransitionSystem::status(&k).is_running() {
            let t = k.thread_ids().find(|&t| k.enabled(t)).unwrap();
            k.step(t, 0);
        }
        assert_eq!(k.shared().meals_eaten, vec![2, 2]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_philosopher_rejected() {
        let _ = philosophers(PhilosophersConfig {
            n: 1,
            variant: Variant::Trylock,
            meals: 1,
            polite: false,
            think_steps: 0,
        });
    }
}
