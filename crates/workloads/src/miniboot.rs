//! A miniature operating-system boot/shutdown scenario — the stand-in
//! for the paper's headline demonstration: "we have successfully booted
//! the Singularity operating system under the control of CHESS"
//! (Sections 1 and 4.1).
//!
//! The real experiment drives the entire Singularity boot (174 kLOC, 14
//! threads, ~168k sync ops per execution). We reproduce its *shape*: a
//! boot controller dynamically spawns a set of services with a
//! dependency DAG; each service waits for its dependencies' ready
//! events, initializes, signals ready, then serves a message loop; the
//! controller drives a steady-state workload through every service's
//! inbox, collects acknowledgements, shuts the system down by closing
//! inboxes, joins every service, and verifies the final state.
//!
//! The program is fair-terminating (all waits are on events/channels or
//! yield-free), dynamically creates threads (exercising the scheduler's
//! `Tid` growth path), and produces executions hundreds of transitions
//! deep — far beyond what exhaustive search covers, which is exactly why
//! the paper emphasizes that fairness makes *unmodified* nonterminating
//! programs checkable at all.

use chess_kernel::{
    Capture, ChannelId, Effects, EventId, GuestThread, Kernel, OpDesc, OpResult, SharedEffects,
    StateWriter, ThreadId,
};

/// Boot scenario configuration.
#[derive(Debug, Clone, Copy)]
pub struct BootConfig {
    /// Number of services (the paper's run has 13 + the boot thread).
    pub services: usize,
    /// Work messages sent to each service in the steady phase.
    pub work_per_service: u32,
    /// Local initialization steps per service.
    pub init_steps: u32,
}

impl BootConfig {
    /// The full-size scenario: 13 services + controller = 14 threads.
    pub fn full() -> Self {
        BootConfig {
            services: 13,
            work_per_service: 2,
            init_steps: 2,
        }
    }

    /// A small instance for exhaustive exploration in tests.
    pub fn small() -> Self {
        BootConfig {
            services: 2,
            work_per_service: 1,
            init_steps: 1,
        }
    }
}

/// Shared state of the boot scenario.
#[derive(Debug, Clone, Default)]
pub struct BootShared {
    /// Services that have signalled ready.
    pub ready_count: u32,
    /// Messages handled per service.
    pub handled: Vec<u32>,
    /// Acknowledgements received by the controller.
    pub acks: u32,
}

impl Capture for BootShared {
    fn capture(&self, w: &mut StateWriter) {
        w.write_u32(self.ready_count);
        for &h in &self.handled {
            w.write_u32(h);
        }
        w.write_u32(self.acks);
    }

    fn cells(&self) -> Vec<(&'static str, u32)> {
        vec![("ready", 0), ("handled", 0), ("acks", 0)]
    }

    fn capture_cell(&self, name: &'static str, _index: u32, w: &mut StateWriter) {
        match name {
            "ready" => w.write_u32(self.ready_count),
            "handled" => {
                for &h in &self.handled {
                    w.write_u32(h);
                }
            }
            "acks" => w.write_u32(self.acks),
            _ => {}
        }
    }
}

/// Wiring of one service: its dependencies' ready events, its own ready
/// event, its inbox, and the shared ack channel.
#[derive(Debug, Clone)]
struct ServiceWiring {
    deps: Vec<EventId>,
    ready: EventId,
    inbox: ChannelId,
    ack: ChannelId,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ServicePc {
    WaitDep,
    Init,
    SignalReady,
    Serve,
    Ack,
    Cleanup,
    Done,
}

/// A system service thread.
#[derive(Debug, Clone)]
struct Service {
    id: usize,
    pc: ServicePc,
    dep_idx: usize,
    init_left: u32,
    wiring: ServiceWiring,
}

impl GuestThread<BootShared> for Service {
    fn next_op(&self, _: &BootShared) -> OpDesc {
        match self.pc {
            ServicePc::WaitDep => OpDesc::EventWait(self.wiring.deps[self.dep_idx]),
            ServicePc::Init | ServicePc::Cleanup => OpDesc::Local,
            ServicePc::SignalReady => OpDesc::EventSet(self.wiring.ready),
            ServicePc::Serve => OpDesc::Recv(self.wiring.inbox),
            ServicePc::Ack => OpDesc::Send(self.wiring.ack, self.id as u64),
            ServicePc::Done => OpDesc::Finished,
        }
    }

    fn on_op(&mut self, r: OpResult, sh: &mut BootShared, fx: &mut Effects<BootShared>) {
        self.pc = match self.pc {
            ServicePc::WaitDep => {
                self.dep_idx += 1;
                if self.dep_idx < self.wiring.deps.len() {
                    ServicePc::WaitDep
                } else {
                    ServicePc::Init
                }
            }
            ServicePc::Init => {
                if self.init_left > 1 {
                    self.init_left -= 1;
                    ServicePc::Init
                } else {
                    ServicePc::SignalReady
                }
            }
            ServicePc::SignalReady => {
                sh.ready_count += 1;
                ServicePc::Serve
            }
            ServicePc::Serve => match r.as_message() {
                Some(_work) => {
                    sh.handled[self.id] += 1;
                    ServicePc::Ack
                }
                None => ServicePc::Cleanup,
            },
            ServicePc::Ack => {
                fx.check(r.as_bool(), "ack channel closed prematurely");
                ServicePc::Serve
            }
            ServicePc::Cleanup => ServicePc::Done,
            ServicePc::Done => unreachable!(),
        };
    }

    fn shared_effects(&self, _: &OpDesc) -> SharedEffects {
        match self.pc {
            ServicePc::SignalReady => SharedEffects::cells([("ready", 0)], [("ready", 0)]),
            ServicePc::Serve => SharedEffects::cells([("handled", 0)], [("handled", 0)]),
            _ => SharedEffects::Pure,
        }
    }

    fn name(&self) -> String {
        format!("svc{}", self.id)
    }

    fn capture(&self, w: &mut StateWriter) {
        w.write_u8(self.pc as u8);
        w.write_usize(self.dep_idx);
        w.write_u32(self.init_left);
    }

    fn box_clone(&self) -> Box<dyn GuestThread<BootShared>> {
        Box::new(self.clone())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BootPc {
    SpawnService,
    AwaitReady,
    SendWork,
    CollectAcks,
    CloseInbox,
    JoinService,
    FinalCheck,
    Done,
}

/// The boot controller: spawns services, awaits readiness, drives the
/// steady-state workload, shuts down, and verifies.
#[derive(Debug, Clone)]
struct BootController {
    pc: BootPc,
    cursor: usize,
    work_sent: u32,
    config: BootConfig,
    wirings: Vec<ServiceWiring>,
    ack: ChannelId,
    spawned: Vec<ThreadId>,
}

impl BootController {
    fn total_work(&self) -> u32 {
        self.config.work_per_service * self.config.services as u32
    }
}

impl GuestThread<BootShared> for BootController {
    fn next_op(&self, _: &BootShared) -> OpDesc {
        match self.pc {
            BootPc::SpawnService | BootPc::FinalCheck => OpDesc::Local,
            BootPc::AwaitReady => OpDesc::EventWait(self.wirings[self.cursor].ready),
            BootPc::SendWork => {
                OpDesc::Send(self.wirings[self.cursor].inbox, self.work_sent as u64)
            }
            BootPc::CollectAcks => OpDesc::Recv(self.ack),
            BootPc::CloseInbox => OpDesc::Close(self.wirings[self.cursor].inbox),
            BootPc::JoinService => OpDesc::Join(self.spawned[self.cursor]),
            BootPc::Done => OpDesc::Finished,
        }
    }

    fn on_op(&mut self, r: OpResult, sh: &mut BootShared, fx: &mut Effects<BootShared>) {
        let n = self.config.services;
        self.pc = match self.pc {
            BootPc::SpawnService => {
                let id = self.cursor;
                let tid = fx.spawn(Box::new(Service {
                    id,
                    pc: if self.wirings[id].deps.is_empty() {
                        ServicePc::Init
                    } else {
                        ServicePc::WaitDep
                    },
                    dep_idx: 0,
                    init_left: self.config.init_steps.max(1),
                    wiring: self.wirings[id].clone(),
                }));
                self.spawned.push(tid);
                self.cursor += 1;
                if self.cursor < n {
                    BootPc::SpawnService
                } else {
                    self.cursor = 0;
                    BootPc::AwaitReady
                }
            }
            BootPc::AwaitReady => {
                self.cursor += 1;
                if self.cursor < n {
                    BootPc::AwaitReady
                } else {
                    self.cursor = 0;
                    BootPc::SendWork
                }
            }
            BootPc::SendWork => {
                fx.check(r.as_bool(), "inbox closed during steady state");
                self.work_sent += 1;
                if self.work_sent.is_multiple_of(self.config.work_per_service) {
                    self.cursor += 1;
                }
                if self.work_sent < self.total_work() {
                    BootPc::SendWork
                } else {
                    BootPc::CollectAcks
                }
            }
            BootPc::CollectAcks => {
                match r.as_message() {
                    Some(_) => sh.acks += 1,
                    None => fx.fail("ack channel closed by someone else"),
                }
                if sh.acks < self.total_work() {
                    BootPc::CollectAcks
                } else {
                    self.cursor = 0;
                    BootPc::CloseInbox
                }
            }
            BootPc::CloseInbox => {
                self.cursor += 1;
                if self.cursor < n {
                    BootPc::CloseInbox
                } else {
                    self.cursor = 0;
                    BootPc::JoinService
                }
            }
            BootPc::JoinService => {
                self.cursor += 1;
                if self.cursor < n {
                    BootPc::JoinService
                } else {
                    BootPc::FinalCheck
                }
            }
            BootPc::FinalCheck => {
                fx.check(
                    sh.ready_count == n as u32,
                    format_args!("{} of {n} services became ready", sh.ready_count),
                );
                fx.check(
                    sh.acks == self.total_work(),
                    format_args!("{} of {} acks", sh.acks, self.total_work()),
                );
                for (i, &h) in sh.handled.iter().enumerate() {
                    fx.check(
                        h == self.config.work_per_service,
                        format_args!("service {i} handled {h} messages"),
                    );
                }
                BootPc::Done
            }
            BootPc::Done => unreachable!(),
        };
    }

    fn shared_effects(&self, _: &OpDesc) -> SharedEffects {
        match self.pc {
            BootPc::CollectAcks => SharedEffects::cells([("acks", 0)], [("acks", 0)]),
            BootPc::FinalCheck => SharedEffects::reads([("ready", 0), ("acks", 0), ("handled", 0)]),
            _ => SharedEffects::Pure,
        }
    }

    fn name(&self) -> String {
        "boot".to_string()
    }

    fn capture(&self, w: &mut StateWriter) {
        w.write_u8(self.pc as u8);
        w.write_usize(self.cursor);
        w.write_u32(self.work_sent);
    }

    fn box_clone(&self) -> Box<dyn GuestThread<BootShared>> {
        Box::new(self.clone())
    }
}

/// Builds the boot scenario. Service `i > 0` depends on service
/// `(i - 1) / 2` (a binary tree), so boot order is partially concurrent.
///
/// # Panics
///
/// Panics if `config.services == 0` or `config.work_per_service == 0`.
pub fn miniboot(config: BootConfig) -> Kernel<BootShared> {
    assert!(config.services > 0, "need at least one service");
    assert!(config.work_per_service > 0, "need steady-state work");
    let mut k = Kernel::new(BootShared {
        ready_count: 0,
        handled: vec![0; config.services],
        acks: 0,
    });
    let ready: Vec<EventId> = (0..config.services)
        .map(|_| k.add_manual_event(false))
        .collect();
    let ack = k.add_channel(config.services.max(2));
    let wirings: Vec<ServiceWiring> = (0..config.services)
        .map(|i| ServiceWiring {
            deps: if i == 0 {
                Vec::new()
            } else {
                vec![ready[(i - 1) / 2]]
            },
            ready: ready[i],
            inbox: k.add_channel(config.work_per_service as usize),
            ack,
        })
        .collect();
    k.spawn(BootController {
        pc: BootPc::SpawnService,
        cursor: 0,
        work_sent: 0,
        config,
        wirings,
        ack,
        spawned: Vec::new(),
    });
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use chess_core::strategy::{ContextBounded, RandomWalk};
    use chess_core::{Config, Explorer};
    use chess_state::{StateGraph, StatefulLimits};

    #[test]
    fn small_boot_ground_truth() {
        let g =
            StateGraph::build(&miniboot(BootConfig::small()), StatefulLimits::default()).unwrap();
        assert!(g.violation_states().is_empty(), "boot must be safe");
        assert!(g.deadlock_states().is_empty(), "boot must not deadlock");
        assert!(g.find_fair_scc().is_none(), "boot is fair-terminating");
    }

    #[test]
    fn small_boot_fair_cb2_clean() {
        let factory = || miniboot(BootConfig::small());
        let config = Config::fair()
            .with_detect_cycles(false)
            .with_max_executions(20_000);
        let report = Explorer::new(factory, ContextBounded::new(2), config).run();
        assert!(!report.outcome.found_error(), "{report}");
    }

    #[test]
    fn full_boot_random_fair_smoke() {
        let factory = || miniboot(BootConfig::full());
        let config = Config::fair()
            .with_detect_cycles(false)
            .with_max_executions(50);
        let report = Explorer::new(factory, RandomWalk::new(7), config).run();
        assert!(!report.outcome.found_error(), "{report}");
        assert_eq!(report.stats.nonterminating, 0);
        // 14 threads: controller + 13 services.
        let k = factory();
        assert_eq!(chess_core::TransitionSystem::thread_count(&k), 1);
    }

    #[test]
    fn full_boot_single_run_verifies() {
        let mut k = miniboot(BootConfig::full());
        let mut steps = 0u64;
        while chess_core::TransitionSystem::status(&k).is_running() {
            let t = k.thread_ids().find(|&t| k.enabled(t)).unwrap();
            k.step(t, 0);
            steps += 1;
            assert!(steps < 100_000, "boot should terminate");
        }
        assert_eq!(
            chess_core::TransitionSystem::status(&k),
            chess_core::SystemStatus::Terminated
        );
        assert_eq!(k.thread_count(), 14);
        assert_eq!(k.shared().ready_count, 13);
    }
}
