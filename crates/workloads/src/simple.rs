//! Tiny teaching programs used throughout the documentation and tests:
//! a racy counter, its lock-protected fix, and an AB–BA deadlock pair.

use chess_kernel::{
    Effects, GuestThread, Kernel, MutexId, OpDesc, OpResult, SharedEffects, StateWriter,
};

/// Shared state of the counter programs.
#[derive(Debug, Clone, Default)]
pub struct CounterShared {
    /// The counter.
    pub count: u64,
    /// Threads that finished their increment.
    pub done: u32,
    /// Number of increment threads (for the final assertion).
    pub expected: u32,
}

impl chess_kernel::Capture for CounterShared {
    fn capture(&self, w: &mut StateWriter) {
        w.write_u64(self.count);
        w.write_u32(self.done);
    }

    fn cells(&self) -> Vec<(&'static str, u32)> {
        vec![("count", 0), ("done", 0)]
    }

    fn capture_cell(&self, name: &'static str, _index: u32, w: &mut StateWriter) {
        match name {
            "count" => w.write_u64(self.count),
            "done" => w.write_u32(self.done),
            _ => {}
        }
    }
}

/// A thread performing `count += 1` as two transitions (load then store):
/// the canonical lost-update race.
#[derive(Debug, Clone)]
struct RacyIncrement {
    pc: u8,
    loaded: u64,
}

impl GuestThread<CounterShared> for RacyIncrement {
    fn next_op(&self, _: &CounterShared) -> OpDesc {
        match self.pc {
            0..=2 => OpDesc::Local,
            _ => OpDesc::Finished,
        }
    }

    fn on_op(&mut self, _: OpResult, sh: &mut CounterShared, fx: &mut Effects<CounterShared>) {
        match self.pc {
            0 => self.loaded = sh.count,
            1 => sh.count = self.loaded + 1,
            2 => {
                sh.done += 1;
                if sh.done == sh.expected {
                    fx.check(
                        sh.count == sh.expected as u64,
                        format_args!("lost update: count = {} != {}", sh.count, sh.expected),
                    );
                }
            }
            _ => unreachable!(),
        }
        self.pc += 1;
    }

    fn shared_effects(&self, _: &OpDesc) -> SharedEffects {
        match self.pc {
            0 => SharedEffects::reads([("count", 0)]),
            1 => SharedEffects::writes([("count", 0)]),
            // The retiring step bumps `done` and, when last, checks `count`.
            2 => SharedEffects::cells([("count", 0), ("done", 0)], [("done", 0)]),
            _ => SharedEffects::Pure,
        }
    }

    fn name(&self) -> String {
        "racy-inc".to_string()
    }

    fn capture(&self, w: &mut StateWriter) {
        w.write_u8(self.pc);
        w.write_u64(self.loaded);
    }

    fn box_clone(&self) -> Box<dyn GuestThread<CounterShared>> {
        Box::new(self.clone())
    }
}

/// Lock-protected increment: load and store under a mutex.
#[derive(Debug, Clone)]
struct LockedIncrement {
    pc: u8,
    loaded: u64,
    lock: MutexId,
}

impl GuestThread<CounterShared> for LockedIncrement {
    fn next_op(&self, _: &CounterShared) -> OpDesc {
        match self.pc {
            0 => OpDesc::Acquire(self.lock),
            1 | 2 => OpDesc::Local,
            3 => OpDesc::Release(self.lock),
            4 => OpDesc::Local,
            _ => OpDesc::Finished,
        }
    }

    fn on_op(&mut self, _: OpResult, sh: &mut CounterShared, fx: &mut Effects<CounterShared>) {
        match self.pc {
            0 => {}
            1 => self.loaded = sh.count,
            2 => sh.count = self.loaded + 1,
            3 => {}
            4 => {
                sh.done += 1;
                if sh.done == sh.expected {
                    fx.check(
                        sh.count == sh.expected as u64,
                        format_args!("lost update: count = {} != {}", sh.count, sh.expected),
                    );
                }
            }
            _ => unreachable!(),
        }
        self.pc += 1;
    }

    fn shared_effects(&self, _: &OpDesc) -> SharedEffects {
        match self.pc {
            1 => SharedEffects::reads([("count", 0)]),
            2 => SharedEffects::writes([("count", 0)]),
            4 => SharedEffects::cells([("count", 0), ("done", 0)], [("done", 0)]),
            // Lock acquire/release touch no shared-state cells (their
            // synchronization footprint comes from the op itself).
            _ => SharedEffects::Pure,
        }
    }

    fn name(&self) -> String {
        "locked-inc".to_string()
    }

    fn capture(&self, w: &mut StateWriter) {
        w.write_u8(self.pc);
        w.write_u64(self.loaded);
    }

    fn box_clone(&self) -> Box<dyn GuestThread<CounterShared>> {
        Box::new(self.clone())
    }
}

/// Builds the racy counter program: `threads` threads each perform an
/// unprotected two-step increment; the last to finish asserts the total.
/// Any interleaving that overlaps two increments loses an update.
pub fn racy_counter(threads: u32) -> Kernel<CounterShared> {
    let mut k = Kernel::new(CounterShared {
        expected: threads,
        ..CounterShared::default()
    });
    for _ in 0..threads {
        k.spawn(RacyIncrement { pc: 0, loaded: 0 });
    }
    k
}

/// Builds the corrected counter program: increments under a mutex. No
/// interleaving violates the final assertion.
pub fn locked_counter(threads: u32) -> Kernel<CounterShared> {
    let mut k = Kernel::new(CounterShared {
        expected: threads,
        ..CounterShared::default()
    });
    let lock = k.add_mutex();
    for _ in 0..threads {
        k.spawn(LockedIncrement {
            pc: 0,
            loaded: 0,
            lock,
        });
    }
    k
}

/// A thread acquiring `first` then `second`, then releasing both.
#[derive(Debug, Clone)]
struct TwoLocks {
    pc: u8,
    first: MutexId,
    second: MutexId,
}

impl GuestThread<()> for TwoLocks {
    fn next_op(&self, _: &()) -> OpDesc {
        match self.pc {
            0 => OpDesc::Acquire(self.first),
            1 => OpDesc::Acquire(self.second),
            2 => OpDesc::Release(self.second),
            3 => OpDesc::Release(self.first),
            _ => OpDesc::Finished,
        }
    }

    fn on_op(&mut self, _: OpResult, _: &mut (), _: &mut Effects<()>) {
        self.pc += 1;
    }

    fn shared_effects(&self, _: &OpDesc) -> SharedEffects {
        SharedEffects::Pure
    }

    fn name(&self) -> String {
        "two-locks".to_string()
    }

    fn capture(&self, w: &mut StateWriter) {
        w.write_u8(self.pc);
    }

    fn box_clone(&self) -> Box<dyn GuestThread<()>> {
        Box::new(self.clone())
    }
}

/// The classic AB–BA deadlock: one thread takes the locks in order
/// (a, b), the other in order (b, a).
pub fn deadlock_pair() -> Kernel<()> {
    let mut k = Kernel::new(());
    let a = k.add_mutex();
    let b = k.add_mutex();
    k.spawn(TwoLocks {
        pc: 0,
        first: a,
        second: b,
    });
    k.spawn(TwoLocks {
        pc: 0,
        first: b,
        second: a,
    });
    k
}

/// The same two threads taking locks in a consistent order: deadlock-free.
pub fn ordered_pair() -> Kernel<()> {
    let mut k = Kernel::new(());
    let a = k.add_mutex();
    let b = k.add_mutex();
    for _ in 0..2 {
        k.spawn(TwoLocks {
            pc: 0,
            first: a,
            second: b,
        });
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use chess_core::strategy::Dfs;
    use chess_core::{Config, Explorer, SearchOutcome};

    #[test]
    fn racy_counter_loses_updates() {
        let report = Explorer::new(|| racy_counter(2), Dfs::new(), Config::fair()).run();
        match report.outcome {
            SearchOutcome::SafetyViolation(cex) => {
                assert!(cex.message.contains("lost update"));
            }
            o => panic!("expected violation, got {o:?}"),
        }
    }

    #[test]
    fn locked_counter_is_correct() {
        let report = Explorer::new(|| locked_counter(2), Dfs::new(), Config::fair()).run();
        assert_eq!(report.outcome, SearchOutcome::Complete);
        assert!(report.stats.executions >= 2);
    }

    #[test]
    fn deadlock_pair_deadlocks() {
        let report = Explorer::new(deadlock_pair, Dfs::new(), Config::fair()).run();
        assert!(matches!(report.outcome, SearchOutcome::Deadlock(_)));
    }

    #[test]
    fn ordered_pair_is_deadlock_free() {
        let report = Explorer::new(ordered_pair, Dfs::new(), Config::fair()).run();
        assert_eq!(report.outcome, SearchOutcome::Complete);
    }
}
