//! The Promise library — §4.3.2's livelock subject.
//!
//! Promises are single-assignment cells used for data parallelism: a
//! producer fulfills each promise, consumers wait for it. The library is
//! "optimized for efficiency and selectively uses low-level primitives":
//! waiting has a lock-free fast path (read the state word) and a slow
//! path that spins with `Sleep(1)`.
//!
//! Figure 8's bug: for performance, the waiter caches the shared state
//! word in a local, and the uncommon slow path spins on the **stale
//! local copy** without re-reading shared memory:
//!
//! ```text
//! int x_temp = InterlockedRead(x);
//! if (common case 1) break;
//! if (common case 2) break;
//! while (x_temp != 1) {          // BUG: should re-read x
//!     Sleep(1);                  // yield
//! }
//! ```
//!
//! Because the spin *does* yield, the buggy infinite execution satisfies
//! the good-samaritan property and is perfectly fair once the producer
//! has finished — a textbook **livelock**, which is exactly what the fair
//! scheduler reports. The bug "only occurred in those rare thread
//! interleavings in which the common cases were inapplicable": if the
//! producer wins the race the fast path hides the bug.

use chess_kernel::{Capture, Effects, EventId, GuestThread, Kernel, OpDesc, OpResult, StateWriter};

/// How a consumer waits for a promise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitMode {
    /// Block on the promise's completion event.
    Blocking,
    /// Fast-path read, then spin re-reading the shared state with a
    /// `Sleep(1)` yield per iteration (correct spin).
    SpinYield,
    /// Figure 8: fast-path read, then spin on the **stale local copy**.
    StaleSpin,
}

/// Promise workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct PromiseConfig {
    /// Number of promises (one producer each).
    pub promises: usize,
    /// The consumer's waiting strategy.
    pub wait_mode: WaitMode,
    /// Local computation steps each producer performs before fulfilling
    /// its promise (widens the racy window).
    pub compute_steps: u32,
}

impl PromiseConfig {
    /// The correct library.
    pub fn correct() -> Self {
        PromiseConfig {
            promises: 2,
            wait_mode: WaitMode::SpinYield,
            compute_steps: 1,
        }
    }

    /// The Figure 8 configuration with the stale-read livelock.
    pub fn figure8() -> Self {
        PromiseConfig {
            wait_mode: WaitMode::StaleSpin,
            ..PromiseConfig::correct()
        }
    }
}

/// One promise cell.
#[derive(Debug, Clone, Default)]
pub struct PromiseSlot {
    /// 0 = pending, 1 = fulfilled (the `x` of Figure 8).
    pub state: u64,
    /// The fulfilled value.
    pub value: u64,
}

/// Shared state: the promise cells.
#[derive(Debug, Clone, Default)]
pub struct PromiseShared {
    /// All promise cells.
    pub slots: Vec<PromiseSlot>,
}

impl Capture for PromiseShared {
    fn capture(&self, w: &mut StateWriter) {
        for s in &self.slots {
            w.write_u64(s.state);
            w.write_u64(s.value);
        }
    }
}

/// Fulfills promise `idx` with value `100 + idx` after some computation.
#[derive(Debug, Clone)]
struct Producer {
    idx: usize,
    steps_left: u32,
    pc: u8, // 0 = compute, 1 = write value, 2 = publish state, 3 = set event, 4 = done
    event: EventId,
}

impl GuestThread<PromiseShared> for Producer {
    fn next_op(&self, _: &PromiseShared) -> OpDesc {
        match self.pc {
            0..=2 => OpDesc::Local,
            3 => OpDesc::EventSet(self.event),
            _ => OpDesc::Finished,
        }
    }

    fn on_op(&mut self, _: OpResult, sh: &mut PromiseShared, _: &mut Effects<PromiseShared>) {
        match self.pc {
            0 => {
                if self.steps_left > 0 {
                    self.steps_left -= 1;
                    return; // stay in compute
                }
                self.pc = 1;
            }
            1 => {
                sh.slots[self.idx].value = 100 + self.idx as u64;
                self.pc = 2;
            }
            2 => {
                sh.slots[self.idx].state = 1;
                self.pc = 3;
            }
            3 => self.pc = 4,
            _ => unreachable!(),
        }
    }

    fn name(&self) -> String {
        format!("producer{}", self.idx)
    }

    fn capture(&self, w: &mut StateWriter) {
        w.write_u8(self.pc);
        w.write_u32(self.steps_left);
    }

    fn box_clone(&self) -> Box<dyn GuestThread<PromiseShared>> {
        Box::new(self.clone())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WaitPc {
    FastRead,
    BlockingWait,
    SpinCheck,
    SpinSleep,
    Collect,
    Done,
}

/// Waits for every promise in order, then checks all values.
#[derive(Debug, Clone)]
struct Consumer {
    pc: WaitPc,
    current: usize,
    /// Figure 8's `x_temp`: the locally cached state word.
    cached_state: u64,
    mode: WaitMode,
    events: Vec<EventId>,
}

impl Consumer {
    fn next_promise(&mut self, n: usize) -> WaitPc {
        self.current += 1;
        if self.current >= n {
            WaitPc::Collect
        } else {
            WaitPc::FastRead
        }
    }
}

impl GuestThread<PromiseShared> for Consumer {
    fn next_op(&self, _: &PromiseShared) -> OpDesc {
        match self.pc {
            WaitPc::FastRead | WaitPc::SpinCheck | WaitPc::Collect => OpDesc::Local,
            WaitPc::BlockingWait => OpDesc::EventWait(self.events[self.current]),
            WaitPc::SpinSleep => OpDesc::Sleep,
            WaitPc::Done => OpDesc::Finished,
        }
    }

    fn on_op(&mut self, _: OpResult, sh: &mut PromiseShared, fx: &mut Effects<PromiseShared>) {
        let n = sh.slots.len();
        self.pc = match self.pc {
            WaitPc::FastRead => {
                // The InterlockedRead of Figure 8.
                self.cached_state = sh.slots[self.current].state;
                if self.cached_state == 1 {
                    // Common case: already fulfilled.
                    self.next_promise(n)
                } else {
                    match self.mode {
                        WaitMode::Blocking => WaitPc::BlockingWait,
                        WaitMode::SpinYield | WaitMode::StaleSpin => WaitPc::SpinCheck,
                    }
                }
            }
            WaitPc::BlockingWait => self.next_promise(n),
            WaitPc::SpinCheck => {
                let observed = match self.mode {
                    // Correct: re-read shared memory each iteration.
                    WaitMode::SpinYield => sh.slots[self.current].state,
                    // BUG (Figure 8): consult the stale local copy.
                    WaitMode::StaleSpin => self.cached_state,
                    WaitMode::Blocking => unreachable!(),
                };
                if observed == 1 {
                    self.next_promise(n)
                } else {
                    WaitPc::SpinSleep
                }
            }
            WaitPc::SpinSleep => WaitPc::SpinCheck,
            WaitPc::Collect => {
                for (i, slot) in sh.slots.iter().enumerate() {
                    fx.check(
                        slot.value == 100 + i as u64,
                        format_args!("promise {i} delivered {}", slot.value),
                    );
                }
                WaitPc::Done
            }
            WaitPc::Done => unreachable!(),
        };
    }

    fn name(&self) -> String {
        "consumer".to_string()
    }

    fn capture(&self, w: &mut StateWriter) {
        w.write_u8(self.pc as u8);
        w.write_usize(self.current);
        w.write_u64(self.cached_state);
    }

    fn box_clone(&self) -> Box<dyn GuestThread<PromiseShared>> {
        Box::new(self.clone())
    }
}

/// Builds the promise test program: one producer per promise and a
/// consumer awaiting all of them.
///
/// # Panics
///
/// Panics if `config.promises == 0`.
pub fn promises(config: PromiseConfig) -> Kernel<PromiseShared> {
    assert!(config.promises > 0, "need at least one promise");
    let mut k = Kernel::new(PromiseShared {
        slots: vec![PromiseSlot::default(); config.promises],
    });
    let events: Vec<EventId> = (0..config.promises)
        .map(|_| k.add_manual_event(false))
        .collect();
    for (idx, &event) in events.iter().enumerate() {
        k.spawn(Producer {
            idx,
            steps_left: config.compute_steps,
            pc: 0,
            event,
        });
    }
    k.spawn(Consumer {
        pc: WaitPc::FastRead,
        current: 0,
        cached_state: 0,
        mode: config.wait_mode,
        events,
    });
    k
}

/// Figure 8's buggy program.
pub fn figure8() -> Kernel<PromiseShared> {
    promises(PromiseConfig::figure8())
}

#[cfg(test)]
mod tests {
    use super::*;
    use chess_core::strategy::Dfs;
    use chess_core::{Config, DivergenceKind, Explorer, SearchOutcome};
    use chess_state::{StateGraph, StatefulLimits};

    #[test]
    fn correct_spin_yield_is_clean() {
        // One promise: the full fair DFS completes. (With several spin
        // loops the *path* count explodes even though the state space is
        // tiny — the fundamental stateless-search tradeoff.)
        let factory = || {
            promises(PromiseConfig {
                promises: 1,
                ..PromiseConfig::correct()
            })
        };
        let report = Explorer::new(factory, Dfs::new(), Config::fair()).run();
        assert_eq!(report.outcome, SearchOutcome::Complete, "{report}");
        assert_eq!(report.stats.nonterminating, 0);
        // Two promises: bounded fair search stays clean.
        let factory = || promises(PromiseConfig::correct());
        let config = Config::fair().with_max_executions(5_000);
        let report = Explorer::new(factory, Dfs::new(), config).run();
        assert!(!report.outcome.found_error(), "{report}");
        assert_eq!(report.stats.nonterminating, 0);
    }

    #[test]
    fn correct_blocking_is_clean() {
        let factory = || {
            promises(PromiseConfig {
                wait_mode: WaitMode::Blocking,
                ..PromiseConfig::correct()
            })
        };
        let report = Explorer::new(factory, Dfs::new(), Config::fair()).run();
        assert_eq!(report.outcome, SearchOutcome::Complete, "{report}");
    }

    #[test]
    fn figure8_livelock_ground_truth() {
        let g = StateGraph::build(&figure8(), StatefulLimits::default()).unwrap();
        assert!(
            g.find_fair_scc().is_some(),
            "the stale spin must loop fairly forever"
        );
    }

    #[test]
    fn fair_search_reports_figure8_as_livelock() {
        let report = Explorer::new(figure8, Dfs::new(), Config::fair()).run();
        match report.outcome {
            SearchOutcome::Divergence(d) => match d.kind {
                DivergenceKind::FairCycle { .. } => {}
                k => panic!("expected a fair cycle (livelock), got {k:?}"),
            },
            o => panic!("expected divergence, got {o:?}"),
        }
    }

    /// The common case hides the bug: if every producer finishes before
    /// the consumer's first read, the fast path succeeds. This is why
    /// stress testing misses it ("only occurred in rare interleavings").
    #[test]
    fn figure8_common_case_terminates() {
        let mut k = figure8();
        // Run producers to completion first, then the consumer.
        loop {
            let Some(t) = k
                .thread_ids()
                .filter(|&t| k.enabled(t))
                .find(|&t| k.thread_name(t).starts_with("producer"))
            else {
                break;
            };
            k.step(t, 0);
        }
        while chess_core::TransitionSystem::status(&k).is_running() {
            let t = k.thread_ids().find(|&t| k.enabled(t)).unwrap();
            k.step(t, 0);
        }
        assert_eq!(
            chess_core::TransitionSystem::status(&k),
            chess_core::SystemStatus::Terminated
        );
    }
}
