//! # chess-workloads — the evaluation subjects of the PLDI 2008 paper
//!
//! Guest programs for the fair stateless model checker, re-implementing
//! (as kernel guest programs) every subject of the paper's evaluation:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`spinloop`] | Figure 3's running example |
//! | [`philosophers`] | Figure 1 (livelock) and the Table 2 coverage subject |
//! | [`wsq`] | the Cilk-style work-stealing queue, with Table 3's seeded bugs |
//! | [`promise`] | the Promise library, with Figure 8's stale-read livelock |
//! | [`workerpool`] | the task library of §4.3.1, with its good-samaritan violation |
//! | [`channels`] | Dryad-like credit-based channels/fifo, with Table 3's seeded bugs |
//! | [`miniboot`] | a Singularity stand-in: multi-service OS boot and shutdown |
//! | [`treiber`] | lock-free Treiber stack with the classic ABA bug |
//! | [`rwcache`] | rwlock-guarded cache with the lock-upgrade race |
//! | [`bsp`] | barrier-synchronized BSP computation with a barrier-elision race |
//! | [`boundedbuffer`] | condvar monitor with if-vs-while and lost-wakeup bugs |
//! | [`simple`] | tiny teaching programs (racy counter, deadlock pair) |
//! | [`litmus`] | relaxed-memory litmus tests (SB/Dekker, MP, LB, IRIW) |
//!
//! Every workload is parameterized by a config struct, instrumented with
//! safety assertions, and implements state capture so the coverage
//! experiments of Table 2 can measure it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boundedbuffer;
pub mod bsp;
pub mod channels;
pub mod litmus;
pub mod miniboot;
pub mod philosophers;
pub mod promise;
pub mod rwcache;
pub mod simple;
pub mod spinloop;
pub mod treiber;
pub mod workerpool;
pub mod wsq;
