//! Classic relaxed-memory litmus tests, parameterized by
//! [`MemoryModel`]: the store-buffering/Dekker shape, message passing,
//! load buffering, IRIW, and a fenced Dekker fix.
//!
//! Every litmus workload asserts that its *forbidden outcome* is
//! unreachable, so `fair-chess check` reports a safety violation exactly
//! on the models that allow the relaxation:
//!
//! | workload | forbidden outcome | sc | tso | pso |
//! |---|---|---|---|---|
//! | [`store_buffering`] | both loads see 0 | forbidden | **allowed** | **allowed** |
//! | [`dekker`] | both threads enter the critical section | forbidden | **allowed** | **allowed** |
//! | [`dekker_fenced`] | same, with store→load fences | forbidden | forbidden | forbidden |
//! | [`message_passing`] | flag seen set, data seen stale | forbidden | forbidden | **allowed** |
//! | [`load_buffering`] | both loads see the other's later store | forbidden | forbidden | forbidden |
//! | [`iriw`] | the two readers disagree on the store order | forbidden | forbidden | forbidden |
//!
//! The split is exactly what per-thread FIFO store buffers predict: TSO's
//! single FIFO still commits one thread's stores in program order (so
//! message passing is safe), PSO's per-location FIFOs may commit the flag
//! before the data; neither model reorders loads (so load buffering stays
//! forbidden) and both keep stores globally atomic once flushed (so IRIW
//! stays forbidden).

use chess_kernel::{
    AtomicId, Effects, GuestThread, Kernel, MemoryModel, OpDesc, OpResult, SharedEffects,
    StateWriter,
};

/// Shared state of a litmus program: a global register file the loads
/// record their observations into.
#[derive(Debug, Clone)]
pub struct LitmusShared {
    /// Observed values, one slot per load in the whole program.
    pub regs: Vec<u64>,
    done: u32,
    expected: u32,
}

impl chess_kernel::Capture for LitmusShared {
    fn capture(&self, w: &mut StateWriter) {
        for &r in &self.regs {
            w.write_u64(r);
        }
        w.write_u32(self.done);
    }

    fn cells(&self) -> Vec<(&'static str, u32)> {
        let mut cells: Vec<(&'static str, u32)> =
            (0..self.regs.len()).map(|i| ("reg", i as u32)).collect();
        cells.push(("done", 0));
        cells
    }

    fn capture_cell(&self, name: &'static str, index: u32, w: &mut StateWriter) {
        match name {
            "reg" => {
                if let Some(&r) = self.regs.get(index as usize) {
                    w.write_u64(r);
                }
            }
            "done" => w.write_u32(self.done),
            _ => {}
        }
    }
}

/// One straight-line operation of a litmus thread.
#[derive(Debug, Clone, Copy)]
enum LOp {
    /// Store `1` (the value is immaterial — every litmus cell is a flag).
    Store(AtomicId, u64),
    /// Load into the global register `reg`.
    Load(AtomicId, usize),
    /// A full fence (drains the issuing thread's store buffer).
    Fence,
}

/// The forbidden-outcome predicate of a workload: returns the violation
/// message when the terminal register file exhibits the outcome.
type Verdict = fn(&[u64]) -> Option<String>;

#[derive(Clone)]
struct LitmusThread {
    label: &'static str,
    ops: Vec<LOp>,
    pc: usize,
    verdict: Verdict,
    /// Size of the program's register file (the verdict reads all of it).
    regs: u32,
}

impl GuestThread<LitmusShared> for LitmusThread {
    fn next_op(&self, _: &LitmusShared) -> OpDesc {
        match self.ops.get(self.pc) {
            None => OpDesc::Finished,
            Some(&LOp::Store(cell, v)) => OpDesc::AtomicStore(cell, v),
            Some(&LOp::Load(cell, _)) => OpDesc::AtomicLoad(cell),
            Some(LOp::Fence) => OpDesc::Fence,
        }
    }

    fn on_op(&mut self, r: OpResult, sh: &mut LitmusShared, fx: &mut Effects<LitmusShared>) {
        if let (Some(&LOp::Load(_, reg)), OpResult::Value(v)) = (self.ops.get(self.pc), r) {
            sh.regs[reg] = v;
        }
        self.pc += 1;
        if self.pc == self.ops.len() {
            sh.done += 1;
            if sh.done == sh.expected {
                if let Some(message) = (self.verdict)(&sh.regs) {
                    fx.fail(message);
                }
            }
        }
    }

    fn shared_effects(&self, _: &OpDesc) -> SharedEffects {
        let mut reads: Vec<(&'static str, u32)> = Vec::new();
        let mut writes: Vec<(&'static str, u32)> = Vec::new();
        match self.ops.get(self.pc) {
            None => return SharedEffects::Pure,
            Some(&LOp::Load(_, reg)) => writes.push(("reg", reg as u32)),
            // Stores and fences touch only atomics/buffers, not the
            // shared register file.
            Some(LOp::Store(..) | LOp::Fence) => {}
        }
        if self.pc + 1 == self.ops.len() {
            // The retiring op bumps `done` and, when last to retire,
            // runs the verdict over the whole register file.
            reads.push(("done", 0));
            reads.extend((0..self.regs).map(|i| ("reg", i)));
            writes.push(("done", 0));
        }
        if reads.is_empty() && writes.is_empty() {
            SharedEffects::Pure
        } else {
            SharedEffects::cells(reads, writes)
        }
    }

    fn name(&self) -> String {
        self.label.to_string()
    }

    fn capture(&self, w: &mut StateWriter) {
        w.write_usize(self.pc);
    }

    fn box_clone(&self) -> Box<dyn GuestThread<LitmusShared>> {
        Box::new(self.clone())
    }
}

/// A thread's script builder: maps the minted atomic ids to its ops.
type ScriptBuilder = dyn Fn(&[AtomicId]) -> Vec<LOp>;

/// Builds a litmus kernel: `cells` zero-initialized atomics, `regs`
/// registers, one thread per `(label, script builder)` pair. The verdict
/// runs once, when the last thread retires its last operation (buffers
/// may still hold stores at that point, which is precisely what lets a
/// relaxed outcome surface — the registers are already final).
fn litmus(
    model: MemoryModel,
    cells: usize,
    regs: usize,
    verdict: Verdict,
    threads: &[(&'static str, &ScriptBuilder)],
) -> Kernel<LitmusShared> {
    let mut k = Kernel::with_memory(
        LitmusShared {
            regs: vec![0; regs],
            done: 0,
            expected: threads.len() as u32,
        },
        model,
    );
    let ids: Vec<AtomicId> = (0..cells).map(|_| k.add_atomic(0)).collect();
    for &(label, build) in threads {
        k.spawn(LitmusThread {
            label,
            ops: build(&ids),
            pc: 0,
            verdict,
            regs: regs as u32,
        });
    }
    k
}

/// The store-buffering (SB) litmus: each thread stores to its own cell
/// then loads the other's. Forbidden outcome: both loads observe the
/// initial 0 — impossible under SC, reachable as soon as stores buffer.
pub fn store_buffering(model: MemoryModel) -> Kernel<LitmusShared> {
    litmus(
        model,
        2,
        2,
        |r| {
            (r[0] == 0 && r[1] == 0).then(|| {
                format!(
                    "relaxed outcome: both loads read 0 (r0={}, r1={})",
                    r[0], r[1]
                )
            })
        },
        &[
            ("sb0", &|x| vec![LOp::Store(x[0], 1), LOp::Load(x[1], 0)]),
            ("sb1", &|x| vec![LOp::Store(x[1], 1), LOp::Load(x[0], 1)]),
        ],
    )
}

/// Dekker's mutual-exclusion entry protocol: each thread raises its flag
/// then checks the other's, entering the critical section when it reads
/// 0. Forbidden outcome: both enter. The SB shape wearing its original
/// motivation — store buffering breaks Dekker's algorithm.
pub fn dekker(model: MemoryModel) -> Kernel<LitmusShared> {
    litmus(
        model,
        2,
        2,
        |r| {
            (r[0] == 0 && r[1] == 0).then(|| {
                "mutual exclusion violated: both threads entered the critical section".to_string()
            })
        },
        &[
            ("dekker0", &|f| {
                vec![LOp::Store(f[0], 1), LOp::Load(f[1], 0)]
            }),
            ("dekker1", &|f| {
                vec![LOp::Store(f[1], 1), LOp::Load(f[0], 1)]
            }),
        ],
    )
}

/// Dekker with a full fence between the flag store and the flag load:
/// the store is committed to memory before the other flag is examined,
/// restoring mutual exclusion under every supported model.
pub fn dekker_fenced(model: MemoryModel) -> Kernel<LitmusShared> {
    litmus(
        model,
        2,
        2,
        |r| {
            (r[0] == 0 && r[1] == 0).then(|| "mutual exclusion violated despite fences".to_string())
        },
        &[
            ("dekker0", &|f| {
                vec![LOp::Store(f[0], 1), LOp::Fence, LOp::Load(f[1], 0)]
            }),
            ("dekker1", &|f| {
                vec![LOp::Store(f[1], 1), LOp::Fence, LOp::Load(f[0], 1)]
            }),
        ],
    )
}

/// Message passing (MP): the writer publishes data then sets a flag; the
/// reader loads the flag then the data. Forbidden outcome: flag observed
/// set but data observed stale. TSO's single FIFO commits the two stores
/// in order, so only PSO (per-location FIFOs) reaches it.
pub fn message_passing(model: MemoryModel) -> Kernel<LitmusShared> {
    litmus(
        model,
        2,
        2,
        |r| {
            (r[0] == 1 && r[1] == 0)
                .then(|| "stale read: flag was set but data reads 0".to_string())
        },
        &[
            ("writer", &|x| {
                vec![LOp::Store(x[0], 1), LOp::Store(x[1], 1)]
            }),
            ("reader", &|x| vec![LOp::Load(x[1], 0), LOp::Load(x[0], 1)]),
        ],
    )
}

/// Load buffering (LB): each thread loads the other's cell then stores
/// its own. Forbidden outcome: both loads observe the other's *later*
/// store. Store buffers delay stores but never advance loads, so the
/// outcome stays forbidden under SC, TSO and PSO alike.
pub fn load_buffering(model: MemoryModel) -> Kernel<LitmusShared> {
    litmus(
        model,
        2,
        2,
        |r| {
            (r[0] == 1 && r[1] == 1)
                .then(|| "load buffering: both loads read the later stores".to_string())
        },
        &[
            ("lb0", &|x| vec![LOp::Load(x[1], 0), LOp::Store(x[0], 1)]),
            ("lb1", &|x| vec![LOp::Load(x[0], 1), LOp::Store(x[1], 1)]),
        ],
    )
}

/// Independent reads of independent writes (IRIW): two writers store to
/// distinct cells, two readers load both in opposite orders. Forbidden
/// outcome: the readers disagree on which store happened first. Flushing
/// through a single shared memory keeps stores atomic, so TSO and PSO
/// both forbid it — a model with shared/partially ordered buffers would
/// not.
pub fn iriw(model: MemoryModel) -> Kernel<LitmusShared> {
    litmus(
        model,
        2,
        4,
        |r| {
            (r[0] == 1 && r[1] == 0 && r[2] == 1 && r[3] == 0).then(|| {
                "store order disagreement: reader0 saw x before y, reader1 saw y before x"
                    .to_string()
            })
        },
        &[
            ("w-x", &|c| vec![LOp::Store(c[0], 1)]),
            ("w-y", &|c| vec![LOp::Store(c[1], 1)]),
            ("r-xy", &|c| vec![LOp::Load(c[0], 0), LOp::Load(c[1], 1)]),
            ("r-yx", &|c| vec![LOp::Load(c[1], 2), LOp::Load(c[0], 3)]),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use chess_core::strategy::Dfs;
    use chess_core::{Config, Explorer, SearchOutcome};

    fn violates(factory: impl Fn() -> Kernel<LitmusShared> + Copy) -> bool {
        let report = Explorer::new(
            factory,
            Dfs::new(),
            Config::fair().with_max_executions(500_000),
        )
        .run();
        match report.outcome {
            SearchOutcome::SafetyViolation(_) => true,
            SearchOutcome::Complete => false,
            o => panic!("unexpected litmus outcome: {o:?}"),
        }
    }

    /// The full allowed/forbidden matrix from the module table, each cell
    /// asserted by an exhaustive search.
    type LitmusFactory = fn(MemoryModel) -> Kernel<LitmusShared>;

    #[test]
    fn litmus_matrix_holds() {
        use MemoryModel::{Pso, Sc, Tso};
        let cases: &[(&str, LitmusFactory, &[bool; 3])] = &[
            ("sb", store_buffering, &[false, true, true]),
            ("dekker", dekker, &[false, true, true]),
            ("dekker-fenced", dekker_fenced, &[false, false, false]),
            ("mp", message_passing, &[false, false, true]),
            ("lb", load_buffering, &[false, false, false]),
            ("iriw", iriw, &[false, false, false]),
        ];
        for &(name, factory, expect) in cases {
            for (model, &allowed) in [Sc, Tso, Pso].iter().zip(expect) {
                assert_eq!(
                    violates(|| factory(*model)),
                    allowed,
                    "{name} under {model}: expected the relaxed outcome to be {}",
                    if allowed { "reachable" } else { "forbidden" },
                );
            }
        }
    }

    /// A TSO counterexample on Dekker names the violation in terms of the
    /// critical section, so `fair-chess check --memory tso` reads well.
    #[test]
    fn dekker_violation_message_mentions_mutual_exclusion() {
        let report = Explorer::new(
            || dekker(MemoryModel::Tso),
            Dfs::new(),
            Config::fair().with_max_executions(500_000),
        )
        .run();
        let SearchOutcome::SafetyViolation(cex) = report.outcome else {
            panic!("expected a violation under tso");
        };
        assert!(cex.message.contains("mutual exclusion"), "{}", cex.message);
    }
}
