//! Memory-model monotonicity oracle: SC ⊆ TSO ⊆ PSO.
//!
//! A store-buffer semantics is *monotone*: every SC execution is a TSO
//! execution in which each store is flushed immediately, and every TSO
//! flush order (oldest entry first) is a PSO flush order (the scheduler
//! always may pick the location holding the globally oldest entry). The
//! sets of reachable terminal outcomes of one program must therefore be
//! nested across the three models — and because the kernel's state
//! capture omits empty buffers, terminal captures are byte-comparable
//! across models.
//!
//! [`memory_monotonicity_check`] makes that executable: it enumerates
//! every execution of an [`AtomicProgram`] under each model, collects the
//! terminal outcome sets, and reports a [`Discrepancy`] for any oracle
//! that fails:
//!
//! | oracle | claim checked |
//! |---|---|
//! | `memory-clean` | atomic programs terminate without errors under every model |
//! | `memory-monotonicity-sc-tso` | every SC outcome is reachable under TSO |
//! | `memory-monotonicity-tso-pso` | every TSO outcome is reachable under PSO |

use std::collections::BTreeSet;

use chess_core::fuzz::{render_atomic_scripts, AtomicProgram};
use chess_core::strategy::Dfs;
use chess_core::{Config, Explorer, Observer, SearchOutcome, SystemStatus, TransitionSystem};
use chess_kernel::MemoryModel;

use crate::differential::Discrepancy;

/// Budgets protecting one monotonicity check from state-space blowup.
/// Exceeding one yields [`MemoryVerdict::skipped`], never a discrepancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryLimits {
    /// Maximum executions to enumerate per model.
    pub max_executions: u64,
    /// Per-execution depth bound.
    pub depth_bound: usize,
}

impl Default for MemoryLimits {
    fn default() -> Self {
        MemoryLimits {
            max_executions: 200_000,
            depth_bound: 5_000,
        }
    }
}

/// Result of one monotonicity check.
#[derive(Debug, Clone)]
pub struct MemoryVerdict {
    /// Distinct terminal outcomes per model, in `[sc, tso, pso]` order.
    pub outcomes: [usize; 3],
    /// Executions enumerated per model, in the same order.
    pub executions: [u64; 3],
    /// A budget was exceeded before the oracles could run.
    pub skipped: Option<String>,
    /// Oracle failures; empty means the models nest as required.
    pub discrepancies: Vec<Discrepancy>,
}

impl MemoryVerdict {
    /// Whether every oracle agreed (a skipped check counts as agreeing).
    pub fn agreed(&self) -> bool {
        self.discrepancies.is_empty()
    }
}

/// Collects the state bytes of every fully terminated execution.
struct Terminals(BTreeSet<Vec<u8>>);

impl<P: TransitionSystem + ?Sized> Observer<P> for Terminals {
    fn on_execution_end(&mut self, sys: &P, _depth: usize) {
        if matches!(sys.status(), SystemStatus::Terminated) {
            self.0.insert(sys.state_bytes());
        }
    }
}

/// Enumerates `prog` under SC, TSO and PSO and checks that the terminal
/// outcome sets nest: SC ⊆ TSO ⊆ PSO.
pub fn memory_monotonicity_check(prog: &AtomicProgram, limits: &MemoryLimits) -> MemoryVerdict {
    let mut verdict = MemoryVerdict {
        outcomes: [0; 3],
        executions: [0; 3],
        skipped: None,
        discrepancies: Vec::new(),
    };
    let config = Config::fair()
        .with_stop_on_error(false)
        .with_max_executions(limits.max_executions)
        .with_depth_bound(limits.depth_bound);
    let mut sets: Vec<BTreeSet<Vec<u8>>> = Vec::with_capacity(3);
    for (i, model) in MemoryModel::ALL.into_iter().enumerate() {
        let mut obs = Terminals(BTreeSet::new());
        let report = Explorer::new(|| prog.instantiate(model), Dfs::new(), config.clone())
            .run_observed(&mut obs);
        verdict.executions[i] = report.stats.executions;
        match report.outcome {
            SearchOutcome::Complete => {}
            SearchOutcome::BudgetExhausted(k) => {
                verdict.skipped = Some(format!("{model} pass budget exhausted: {k:?}"));
                return verdict;
            }
            o => {
                verdict.discrepancies.push(Discrepancy {
                    oracle: "memory-clean",
                    detail: format!(
                        "atomic program errored under {model}: {o:?}\n{}",
                        render_atomic_scripts(prog)
                    ),
                });
                return verdict;
            }
        }
        verdict.outcomes[i] = obs.0.len();
        sets.push(obs.0);
    }
    let pairs = [
        ("memory-monotonicity-sc-tso", 0, 1),
        ("memory-monotonicity-tso-pso", 1, 2),
    ];
    for (oracle, lo, hi) in pairs {
        let missing = sets[lo].difference(&sets[hi]).count();
        if missing > 0 {
            let (lo_m, hi_m) = (MemoryModel::ALL[lo], MemoryModel::ALL[hi]);
            verdict.discrepancies.push(Discrepancy {
                oracle,
                detail: format!(
                    "{missing} terminal outcome(s) reachable under {lo_m} vanished under {hi_m} \
                     ({} vs {} outcomes)\n{}",
                    sets[lo].len(),
                    sets[hi].len(),
                    render_atomic_scripts(prog),
                ),
            });
        }
    }
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;
    use chess_core::fuzz::{derive_seed, generate_atomic_program, AtomicFuzzOp, FuzzConfig};

    /// The acceptance corpus: 200 fixed-seed atomic programs, zero
    /// monotonicity discrepancies.
    #[test]
    fn monotonicity_holds_on_the_fixed_corpus() {
        let mut checked = 0;
        let mut widened = 0;
        for i in 0..200u64 {
            let cfg = FuzzConfig {
                max_threads: 3,
                max_ops: 3,
                ..FuzzConfig::default().with_seed(derive_seed(0x7050, i))
            };
            let prog = generate_atomic_program(&cfg);
            // A tight budget: the corpus is 200 systems × 3 models, and
            // the handful of largest programs would dominate the runtime
            // without making the oracle any stronger. Skips don't count.
            let limits = MemoryLimits {
                max_executions: 20_000,
                depth_bound: 1_000,
            };
            let verdict = memory_monotonicity_check(&prog, &limits);
            assert!(
                verdict.agreed(),
                "seed index {i}: {:?}",
                verdict.discrepancies
            );
            if verdict.skipped.is_none() {
                checked += 1;
                if verdict.outcomes[2] > verdict.outcomes[0] {
                    widened += 1;
                }
            }
        }
        assert!(checked >= 150, "only {checked}/200 programs fit the budget");
        // The oracle is vacuous if buffering never changes anything.
        assert!(widened > 0, "no program showed a relaxed outcome");
    }

    /// A hand-built SB program widens strictly at each step down the
    /// hierarchy is too strong (TSO = PSO on single-location-per-thread
    /// programs); but SC ⊊ TSO must hold and the verdict must report the
    /// outcome counts.
    #[test]
    fn store_buffering_widens_under_tso() {
        let sb = AtomicProgram::from_scripts(
            vec![
                vec![
                    AtomicFuzzOp::Store {
                        location: 0,
                        value: 1,
                    },
                    AtomicFuzzOp::Load { location: 1 },
                ],
                vec![
                    AtomicFuzzOp::Store {
                        location: 1,
                        value: 2,
                    },
                    AtomicFuzzOp::Load { location: 0 },
                ],
            ],
            2,
        );
        let verdict = memory_monotonicity_check(&sb, &MemoryLimits::default());
        assert!(verdict.agreed(), "{:?}", verdict.discrepancies);
        assert!(verdict.skipped.is_none());
        assert!(
            verdict.outcomes[1] > verdict.outcomes[0],
            "TSO should add the both-read-0 outcome: {:?}",
            verdict.outcomes
        );
        assert!(verdict.outcomes[2] >= verdict.outcomes[1]);
    }
}
