//! Heap canonicalization: first-visit renumbering of object identities.
//!
//! The paper (Section 4.2.1) measures state coverage after abstracting
//! program states, "using a simple heap-canonicalization algorithm
//! [Iosif 01]" so that behaviorally equivalent heaps have a single
//! representation. Guest programs whose shared state contains identity-
//! bearing values (allocation ids, task ids handed out by a counter,
//! pointer-like indices) use a [`Canonicalizer`] inside their `Capture`
//! implementation: each distinct id is replaced by the order in which the
//! capture traversal first encounters it.

use std::collections::HashMap;

/// First-visit renumbering of `u64` identities within one capture pass.
///
/// # Examples
///
/// Two states that allocated the same logical objects in different order
/// canonicalize identically:
///
/// ```
/// use chess_state::Canonicalizer;
///
/// let mut c1 = Canonicalizer::new();
/// let a = [c1.canon(77), c1.canon(12), c1.canon(77)];
/// let mut c2 = Canonicalizer::new();
/// let b = [c2.canon(500), c2.canon(9), c2.canon(500)];
/// assert_eq!(a, b); // [0, 1, 0]
/// ```
#[derive(Debug, Clone, Default)]
pub struct Canonicalizer {
    map: HashMap<u64, u64>,
}

impl Canonicalizer {
    /// Creates an empty canonicalizer (use one per capture pass).
    pub fn new() -> Self {
        Canonicalizer::default()
    }

    /// Returns the canonical id for `id`, assigning the next dense number
    /// on first visit.
    pub fn canon(&mut self, id: u64) -> u64 {
        let next = self.map.len() as u64;
        *self.map.entry(id).or_insert(next)
    }

    /// Number of distinct identities seen so far.
    pub fn seen(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_in_first_visit_order() {
        let mut c = Canonicalizer::new();
        assert_eq!(c.canon(1000), 0);
        assert_eq!(c.canon(3), 1);
        assert_eq!(c.canon(1000), 0);
        assert_eq!(c.canon(7), 2);
        assert_eq!(c.seen(), 3);
    }

    #[test]
    fn equivalent_heaps_capture_identically() {
        // Heap A: objects x=10,y=20 linked x->y; heap B: x=90,y=80 x->y.
        let capture = |x: u64, y: u64| {
            let mut c = Canonicalizer::new();
            vec![c.canon(x), c.canon(y), c.canon(x)]
        };
        assert_eq!(capture(10, 20), capture(90, 80));
        assert_ne!(capture(10, 20), capture(10, 10));
    }
}
