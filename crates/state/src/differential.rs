//! Differential checking of the stateless fair explorer against the
//! stateful reference.
//!
//! [`differential_check`] drives one program through both engines and
//! cross-examines the results with an *executable oracle* per theorem of
//! the paper:
//!
//! | oracle | theorem | claim checked |
//! |---|---|---|
//! | `visited-unreachable` | — | every state the explorer visits exists in the state graph |
//! | `yield-free-coverage` | Thm 5 | every yield-free-reachable state is visited by the fair search |
//! | `deadlock-missed` / `deadlock-phantom` | Thm 3 | yield-free-reachable deadlocks are found; reported deadlocks exist |
//! | `violation-missed` / `violation-phantom` | Thm 3 | same for safety violations |
//! | `livelock-missed` / `livelock-phantom` | Thm 6 | fair cycles are found iff the graph has a fair SCC |
//! | `unrolling-bound` | Thm 4 | no program state recurs unboundedly within one execution |
//! | `error-pass-disagrees` | — | the stop-at-first-error pass agrees with the counting pass |
//! | `replay-*` | — | counterexamples replay deterministically and land on real graph states |
//! | `sleep-verdict` | — | sleep-set DFS reports the same verdict class as unreduced DFS |
//! | `sleep-executions` | — | sleep-set DFS explores a subset (never more executions) |
//! | `sleep-coverage` | Thm 5 | on violation-free systems the reduced search still covers every yield-free-reachable state |
//! | `sleep-terminal-states` | — | on error-free systems both searches reach exactly the same terminal states |
//! | `sleep-parallel-agreement` | — | reduced parallel DFS agrees on error existence |
//!
//! The `sleep-*` oracles run only when [`OracleLimits::reduce`] is set:
//! they add a third counting pass with [`Dfs::with_sleep_sets`] and
//! compare it against the unreduced pass A.
//!
//! The harness runs two stateless passes over the same program: pass A
//! counts every error without stopping (so the completeness oracles can
//! compare totals), pass B stops at the first error (producing the
//! counterexample that is verified, cross-checked against the graph,
//! minimized, and ultimately persisted to the fuzzing corpus).

use std::collections::{HashMap, HashSet};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use chess_core::minimize::{minimize_schedule, reproduces, OutcomeKind};
use chess_core::strategy::{Dfs, FixedSchedule};
use chess_core::{
    replay, Config, Explorer, Observer, ParallelExplorer, Progress, Schedule, SearchOutcome,
    SystemStatus, TransitionSystem,
};

use crate::coverage::CoverageTracker;
use crate::stateful::{StateGraph, StatefulLimits};

/// Budgets protecting one differential check from state-space blowup.
/// Exceeding any of them yields [`SystemOutcome::Skipped`], never a
/// discrepancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleLimits {
    /// Maximum distinct states for the stateful reference.
    pub max_states: usize,
    /// Maximum executions for each stateless pass.
    pub max_executions: u64,
    /// Per-execution depth bound for the stateless passes.
    pub depth_bound: usize,
    /// Also re-run error detection through a 2-worker
    /// [`ParallelExplorer`] DFS and require it to agree on whether an
    /// error exists.
    pub parallel_cross_check: bool,
    /// Run the `sleep-*` oracles: a third counting pass with sleep-set
    /// DFS must report the same verdict class as the unreduced pass while
    /// exploring no more executions.
    pub reduce: bool,
}

impl Default for OracleLimits {
    fn default() -> Self {
        OracleLimits {
            max_states: 200_000,
            max_executions: 500_000,
            depth_bound: 10_000,
            parallel_cross_check: true,
            reduce: false,
        }
    }
}

/// One oracle failure: the engines disagree about this program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Discrepancy {
    /// Stable oracle identifier (see the module table).
    pub oracle: &'static str,
    /// Human-readable description of the disagreement.
    pub detail: String,
}

/// What the differential check concluded about one program.
#[derive(Debug, Clone)]
pub enum SystemOutcome {
    /// A budget was exceeded before the oracles could run.
    Skipped(String),
    /// The program has no errors and every oracle passed.
    Clean,
    /// An error was found, verified against the graph, and minimized.
    Buggy {
        /// Kind of the first error found by pass B.
        kind: OutcomeKind,
        /// Human-readable message of the error.
        message: String,
        /// The schedule pass B recorded.
        schedule: Schedule,
        /// The ddmin-minimized schedule (reproduces the same kind).
        minimized: Schedule,
    },
}

/// Result of one differential check.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// Distinct reachable states (ground truth).
    pub graph_states: usize,
    /// States reachable through yield-free transitions only (Theorem 5's
    /// mandatory coverage set).
    pub yield_free_states: usize,
    /// Distinct states visited by the stateless fair search.
    pub covered_states: usize,
    /// Largest number of times any single program state recurred within
    /// one execution (the Theorem 4 unrolling metric).
    pub max_unrolling: u32,
    /// Executions explored by the unreduced counting pass (pass A).
    pub dfs_executions: u64,
    /// Executions explored by the sleep-set counting pass; `0` unless
    /// [`OracleLimits::reduce`] was set.
    pub sleep_executions: u64,
    /// Classification of the program.
    pub outcome: SystemOutcome,
    /// Oracle failures; empty means the engines agree.
    pub discrepancies: Vec<Discrepancy>,
}

impl Verdict {
    /// Whether every oracle agreed (a skipped system counts as agreeing).
    pub fn agreed(&self) -> bool {
        self.discrepancies.is_empty()
    }
}

/// Coverage plus the Theorem 4 unrolling metric, observed in one pass.
struct DifferentialObserver {
    coverage: CoverageTracker,
    in_execution: HashMap<u64, u32>,
    max_unrolling: u32,
    /// Distinct final states of executions that ran to clean termination,
    /// for the `sleep-terminal-states` oracle.
    terminal_states: HashSet<Vec<u8>>,
}

impl DifferentialObserver {
    fn new() -> Self {
        DifferentialObserver {
            coverage: CoverageTracker::new(),
            in_execution: HashMap::new(),
            max_unrolling: 0,
            terminal_states: HashSet::new(),
        }
    }
}

impl<P: TransitionSystem + ?Sized> Observer<P> for DifferentialObserver {
    fn on_state(&mut self, sys: &P, _depth: usize) {
        self.coverage.insert(sys.state_bytes());
        let n = self.in_execution.entry(sys.fingerprint()).or_insert(0);
        *n += 1;
        self.max_unrolling = self.max_unrolling.max(*n);
    }

    fn on_execution_end(&mut self, sys: &P, _depth: usize) {
        self.in_execution.clear();
        if sys.status() == SystemStatus::Terminated {
            self.terminal_states.insert(sys.state_bytes());
        }
    }
}

/// Runs the full differential check of one program.
///
/// `factory` must produce identical fresh instances on every call (the
/// stateless-checking contract). The `Sync` bound exists for the
/// parallel cross-check; it is trivially satisfied by closures over
/// immutable configuration.
pub fn differential_check<P, F>(factory: F, limits: &OracleLimits) -> Verdict
where
    P: TransitionSystem + Clone,
    F: Fn() -> P + Sync,
{
    differential_check_with_progress(factory, limits, &Arc::new(Progress::default()))
}

/// [`differential_check`] with live progress publication: the graph
/// build ticks `progress.transitions` per interned state and every
/// sequential stateless pass publishes its execution counters, so a
/// watchdog keyed on [`Progress::tick`] (the campaign runner's
/// heartbeat gate) sees a slow-but-live check advancing. The parallel
/// cross-check keeps its own private counters (its supervision loop
/// harvests them per attempt), so callers needing a pulse through
/// every phase should disable it via
/// [`OracleLimits::parallel_cross_check`].
pub fn differential_check_with_progress<P, F>(
    factory: F,
    limits: &OracleLimits,
    progress: &Arc<Progress>,
) -> Verdict
where
    P: TransitionSystem + Clone,
    F: Fn() -> P + Sync,
{
    let mut verdict = Verdict {
        graph_states: 0,
        yield_free_states: 0,
        covered_states: 0,
        max_unrolling: 0,
        dfs_executions: 0,
        sleep_executions: 0,
        outcome: SystemOutcome::Clean,
        discrepancies: Vec::new(),
    };
    let disc = |v: &mut Verdict, oracle: &'static str, detail: String| {
        v.discrepancies.push(Discrepancy { oracle, detail });
    };

    // Ground truth: the explicit state graph.
    let graph = match StateGraph::build_observed(
        &factory(),
        StatefulLimits {
            max_states: limits.max_states,
        },
        &mut || {
            progress.transitions.fetch_add(1, Ordering::Relaxed);
        },
    ) {
        Ok(g) => g,
        Err(e) => {
            verdict.outcome = SystemOutcome::Skipped(e.to_string());
            return verdict;
        }
    };
    verdict.graph_states = graph.state_count();
    let r0 = graph.yield_free_reachable();
    verdict.yield_free_states = r0.iter().filter(|&&b| b).count();

    // Pass A: count every error, never stop, observe coverage.
    let config_a = Config::fair()
        .with_stop_on_error(false)
        .with_max_executions(limits.max_executions)
        .with_depth_bound(limits.depth_bound);
    let mut obs = DifferentialObserver::new();
    let report_a = Explorer::new(&factory, Dfs::new(), config_a.clone())
        .with_progress(Arc::clone(progress))
        .run_observed(&mut obs);
    verdict.covered_states = obs.coverage.distinct_states();
    verdict.max_unrolling = obs.max_unrolling;
    verdict.dfs_executions = report_a.stats.executions;
    if let SearchOutcome::BudgetExhausted(k) = report_a.outcome {
        verdict.outcome = SystemOutcome::Skipped(format!("counting pass budget exhausted: {k:?}"));
        return verdict;
    }

    // Pass R (optional): sleep-set reduction soundness. The reduced
    // search must classify the system identically — same existence of
    // violations, deadlocks, and fair cycles — while exploring a subset
    // of the executions, and on violation-free systems it must still
    // cover every yield-free-reachable state (sleep sets prune redundant
    // *transitions*; every state stays visited via the commuted path).
    if limits.reduce {
        let mut obs_r = DifferentialObserver::new();
        let report_r = Explorer::new(&factory, Dfs::with_sleep_sets(), config_a)
            .with_progress(Arc::clone(progress))
            .run_observed(&mut obs_r);
        verdict.sleep_executions = report_r.stats.executions;
        if matches!(report_r.outcome, SearchOutcome::BudgetExhausted(_)) {
            // Unreachable in practice: the reduced search explores a
            // subset of pass A, which fit the budget. Flag rather than
            // skip so a regression cannot hide here.
            disc(
                &mut verdict,
                "sleep-executions",
                "reduced pass exhausted a budget the unreduced pass fit".into(),
            );
        }
        let classes = [
            (
                "violations",
                report_a.stats.violations,
                report_r.stats.violations,
            ),
            (
                "deadlocks",
                report_a.stats.deadlocks,
                report_r.stats.deadlocks,
            ),
            (
                "fair cycles",
                report_a.stats.fair_cycles,
                report_r.stats.fair_cycles,
            ),
        ];
        for (what, plain, reduced) in classes {
            if (plain > 0) != (reduced > 0) {
                disc(
                    &mut verdict,
                    "sleep-verdict",
                    format!("unreduced DFS saw {plain} {what}, sleep-set DFS saw {reduced}"),
                );
            }
        }
        if report_r.stats.executions > report_a.stats.executions {
            disc(
                &mut verdict,
                "sleep-executions",
                format!(
                    "sleep-set DFS explored {} executions, unreduced DFS {}",
                    report_r.stats.executions, report_a.stats.executions
                ),
            );
        }
        let errors_a =
            report_a.stats.violations + report_a.stats.deadlocks + report_a.stats.divergences;
        if errors_a == 0 {
            let missed_r = (0..graph.state_count())
                .filter(|&i| r0[i] && !obs_r.coverage.contains(graph.node_bytes(i)))
                .count();
            if missed_r > 0 {
                let total_r0 = verdict.yield_free_states;
                disc(
                    &mut verdict,
                    "sleep-coverage",
                    format!(
                        "{missed_r} of {total_r0} yield-free-reachable states not visited \
                         by the reduced search"
                    ),
                );
            }
            // Sleep sets prune redundant interleavings, never outcomes:
            // on an error-free system both searches must run every
            // execution to clean termination and agree exactly on the
            // set of terminal states reached.
            if obs_r.terminal_states != obs.terminal_states {
                let only_plain = obs
                    .terminal_states
                    .difference(&obs_r.terminal_states)
                    .count();
                let only_reduced = obs_r
                    .terminal_states
                    .difference(&obs.terminal_states)
                    .count();
                disc(
                    &mut verdict,
                    "sleep-terminal-states",
                    format!(
                        "terminal-state sets differ: {only_plain} states only in the \
                         unreduced search, {only_reduced} only in the reduced search"
                    ),
                );
            }
        }
    }

    // Oracle: soundness of visits — the stateless engine may not invent
    // states the reference cannot reach.
    let graph_set: HashSet<&[u8]> = (0..graph.state_count())
        .map(|i| graph.node_bytes(i))
        .collect();
    for sig in obs.coverage.iter() {
        if !graph_set.contains(sig.as_slice()) {
            disc(
                &mut verdict,
                "visited-unreachable",
                format!("stateless search visited a state absent from the graph: {sig:?}"),
            );
            break;
        }
    }

    // Oracle (Theorem 5): every yield-free-reachable state is covered.
    let mut missed = 0usize;
    for (i, &in_r0) in r0.iter().enumerate() {
        if in_r0 && !obs.coverage.contains(graph.node_bytes(i)) {
            missed += 1;
        }
    }
    if missed > 0 {
        let total_r0 = verdict.yield_free_states;
        disc(
            &mut verdict,
            "yield-free-coverage",
            format!(
                "{missed} of {total_r0} yield-free-reachable states not visited by the fair search"
            ),
        );
    }

    // Oracles (Theorem 3): deadlocks found iff real. Completeness is
    // required only for yield-free-reachable deadlocks — a deadlock
    // behind a yield is still guaranteed found by fair DFS, but Theorem 5
    // is the form we can state without a scheduler-completeness proof.
    let graph_deadlocks = graph.deadlock_states();
    let graph_violations = graph.violation_states();
    if report_a.stats.deadlocks > 0 && graph_deadlocks.is_empty() {
        disc(
            &mut verdict,
            "deadlock-phantom",
            format!(
                "stateless search reported {} deadlocks; graph has none",
                report_a.stats.deadlocks
            ),
        );
    }
    if graph_deadlocks.iter().any(|&i| r0[i]) && report_a.stats.deadlocks == 0 {
        disc(
            &mut verdict,
            "deadlock-missed",
            "graph has a yield-free-reachable deadlock; stateless search reported none".into(),
        );
    }
    if report_a.stats.violations > 0 && graph_violations.is_empty() {
        disc(
            &mut verdict,
            "violation-phantom",
            format!(
                "stateless search reported {} violations; graph has none",
                report_a.stats.violations
            ),
        );
    }
    if graph_violations.iter().any(|&i| r0[i]) && report_a.stats.violations == 0 {
        disc(
            &mut verdict,
            "violation-missed",
            "graph has a yield-free-reachable violation; stateless search reported none".into(),
        );
    }

    // Oracle (Theorem 6): livelocks. The Streett check on the graph
    // decides fair-cycle existence exactly; the fair stateless search
    // must agree in both directions.
    let fair_scc = graph.find_fair_scc();
    if fair_scc.is_some() && report_a.stats.fair_cycles == 0 {
        disc(
            &mut verdict,
            "livelock-missed",
            format!(
                "graph has a fair SCC of {} states; stateless search found no fair cycle",
                fair_scc.as_ref().map_or(0, Vec::len)
            ),
        );
    }
    if fair_scc.is_none() && report_a.stats.fair_cycles > 0 {
        disc(
            &mut verdict,
            "livelock-phantom",
            format!(
                "stateless search reported {} fair cycles; graph has no fair SCC",
                report_a.stats.fair_cycles
            ),
        );
    }

    // Oracle (Theorem 4): bounded unrolling. The theorem bounds unfair
    // cycle unrollings at two; executable form: within one execution no
    // program state recurs more than `4·threads + 4` times (slack covers
    // overlapping per-thread spin windows).
    let threads = factory().thread_count() as u32;
    if obs.max_unrolling > 4 * threads + 4 {
        disc(
            &mut verdict,
            "unrolling-bound",
            format!(
                "a program state recurred {} times within one execution (bound {})",
                obs.max_unrolling,
                4 * threads + 4
            ),
        );
    }

    // Pass B: stop at the first error — the counterexample producer.
    let config_b = Config::fair()
        .with_max_executions(limits.max_executions)
        .with_depth_bound(limits.depth_bound);
    let report_b = Explorer::new(&factory, Dfs::new(), config_b.clone())
        .with_progress(Arc::clone(progress))
        .run();
    let errors_a =
        report_a.stats.violations + report_a.stats.deadlocks + report_a.stats.divergences;

    if limits.parallel_cross_check {
        let par = ParallelExplorer::new(&factory, config_b.clone(), 2).run_dfs();
        if par.outcome.found_error() != (errors_a > 0) {
            disc(
                &mut verdict,
                "error-pass-disagrees",
                format!(
                    "parallel DFS found_error = {}, counting pass saw {errors_a} errors",
                    par.outcome.found_error()
                ),
            );
        }
        if limits.reduce {
            // Per-shard sleep sets compose with root partitioning; the
            // reduced parallel search must agree on error existence.
            let red = ParallelExplorer::new(&factory, config_b.clone(), 2)
                .run_dfs_with(chess_core::Reduction::SleepSets);
            if red.outcome.found_error() != (errors_a > 0) {
                disc(
                    &mut verdict,
                    "sleep-parallel-agreement",
                    format!(
                        "reduced parallel DFS found_error = {}, counting pass saw {errors_a} errors",
                        red.outcome.found_error()
                    ),
                );
            }
        }
    }

    match &report_b.outcome {
        SearchOutcome::Complete => {
            if errors_a > 0 {
                disc(
                    &mut verdict,
                    "error-pass-disagrees",
                    format!("counting pass saw {errors_a} errors; error pass completed cleanly"),
                );
            }
            verdict.outcome = SystemOutcome::Clean;
        }
        SearchOutcome::BudgetExhausted(k) => {
            verdict.outcome = SystemOutcome::Skipped(format!("error pass budget exhausted: {k:?}"));
        }
        outcome => {
            if errors_a == 0 {
                disc(
                    &mut verdict,
                    "error-pass-disagrees",
                    format!("error pass found {outcome:?}; counting pass saw none"),
                );
            }
            let kind = OutcomeKind::of(outcome).expect("error outcome has a kind");
            let (schedule, message) = match outcome {
                SearchOutcome::SafetyViolation(c)
                | SearchOutcome::Deadlock(c)
                | SearchOutcome::Panic(c) => (c.schedule.clone(), c.message.clone()),
                SearchOutcome::Divergence(d) => (d.schedule.clone(), d.kind.to_string()),
                _ => unreachable!(),
            };

            // Replay determinism: two fixed-schedule replays must agree
            // with each other and with the original outcome kind.
            let replay_once = || {
                Explorer::new(
                    &factory,
                    FixedSchedule::new(schedule.clone()),
                    config_b.clone(),
                )
                .with_progress(Arc::clone(progress))
                .run()
                .outcome
            };
            let (r1, r2) = (replay_once(), replay_once());
            if r1 != r2 {
                disc(
                    &mut verdict,
                    "replay-nondeterministic",
                    format!("two replays disagree: {r1:?} vs {r2:?}"),
                );
            }
            if OutcomeKind::of(&r1) != Some(kind) {
                disc(
                    &mut verdict,
                    "replay-kind-changed",
                    format!("replay produced {r1:?}, expected kind {kind:?}"),
                );
            }

            // Graph cross-check of the counterexample itself.
            match kind {
                OutcomeKind::Safety | OutcomeKind::Deadlock => {
                    let mut sys = factory();
                    let status = replay(&mut sys, &schedule);
                    let final_bytes = sys.state_bytes();
                    let node = graph.state_index(&final_bytes);
                    let ok = match (kind, node) {
                        (OutcomeKind::Safety, Some(i)) => {
                            matches!(graph.nodes()[i].status, SystemStatus::Violation(..))
                        }
                        (OutcomeKind::Deadlock, Some(i)) => {
                            matches!(graph.nodes()[i].status, SystemStatus::Deadlock)
                        }
                        _ => false,
                    };
                    if !ok {
                        disc(
                            &mut verdict,
                            "replay-state-unreal",
                            format!(
                                "counterexample replays to {status:?} at graph node {node:?}, \
                                 which is not a matching terminal state"
                            ),
                        );
                    }
                }
                OutcomeKind::Panic => {
                    // A panic counterexample has no final state to look
                    // up — the unwind destroys it. Cross-check by direct
                    // replay (the schedule must make the bare system
                    // panic) and against the graph's synthetic nodes.
                    let replays_to_panic = chess_core::panics::catch_silent(|| {
                        let mut sys = factory();
                        replay(&mut sys, &schedule)
                    })
                    .is_err();
                    if !replays_to_panic {
                        disc(
                            &mut verdict,
                            "replay-state-unreal",
                            "panic counterexample did not panic on direct replay".into(),
                        );
                    }
                    if graph.panicked_states().is_empty() {
                        disc(
                            &mut verdict,
                            "violation-phantom",
                            "error pass reported a panic; graph has no panic node".into(),
                        );
                    }
                }
                OutcomeKind::FairCycle if fair_scc.is_none() => {
                    disc(
                        &mut verdict,
                        "livelock-phantom",
                        "error pass reported a fair cycle; graph has no fair SCC".into(),
                    );
                }
                _ => {}
            }

            // Shrink. The minimizer re-verifies reproduction internally;
            // double-check its contract here so a minimizer regression
            // surfaces as a discrepancy too.
            let minimized = minimize_schedule(&factory, &config_b, &schedule, kind);
            if !reproduces(&factory, &config_b, &minimized, kind) {
                disc(
                    &mut verdict,
                    "minimizer-broken",
                    format!(
                        "minimized schedule ({} of {} decisions) stopped reproducing {kind:?}",
                        minimized.len(),
                        schedule.len()
                    ),
                );
            }
            verdict.outcome = SystemOutcome::Buggy {
                kind,
                message,
                schedule,
                minimized,
            };
        }
    }
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;
    use chess_core::fuzz::{derive_seed, generate_system, FuzzConfig};

    #[test]
    fn clean_fuzz_systems_agree() {
        for i in 0..10 {
            let cfg = FuzzConfig::default().with_seed(derive_seed(0xC1EA, i));
            let v = differential_check(|| generate_system(&cfg), &OracleLimits::default());
            assert!(v.agreed(), "seed {i}: {:?}", v.discrepancies);
            if let SystemOutcome::Clean = v.outcome {
                assert!(v.covered_states <= v.graph_states);
                assert!(v.yield_free_states <= v.graph_states);
            }
        }
    }

    #[test]
    fn sleep_reduction_oracles_pass_on_clean_systems() {
        let limits = OracleLimits {
            reduce: true,
            ..OracleLimits::default()
        };
        let mut pruned_somewhere = false;
        for i in 0..10 {
            let cfg = FuzzConfig::default().with_seed(derive_seed(0x51E3, i));
            let v = differential_check(|| generate_system(&cfg), &limits);
            assert!(v.agreed(), "seed {i}: {:?}", v.discrepancies);
            if matches!(v.outcome, SystemOutcome::Clean) {
                assert!(v.sleep_executions <= v.dfs_executions, "seed {i}");
                pruned_somewhere |= v.sleep_executions < v.dfs_executions;
            }
        }
        assert!(pruned_somewhere, "sleep sets pruned nothing on 10 systems");
    }

    #[test]
    fn sleep_reduction_oracles_pass_on_injected_bugs() {
        let limits = OracleLimits {
            reduce: true,
            ..OracleLimits::default()
        };
        for (i, mutate) in [
            (|c: &mut FuzzConfig| c.inject_safety = true) as fn(&mut FuzzConfig),
            |c| c.inject_deadlock = true,
            |c| c.inject_livelock = true,
        ]
        .into_iter()
        .enumerate()
        {
            let mut cfg = FuzzConfig {
                yield_percent: 100,
                ..FuzzConfig::default().with_seed(derive_seed(0x51E4, i as u64))
            };
            mutate(&mut cfg);
            let v = differential_check(|| generate_system(&cfg), &limits);
            assert!(v.agreed(), "injection {i}: {:?}", v.discrepancies);
        }
    }

    #[test]
    fn injected_safety_bug_yields_minimized_counterexample() {
        let cfg = FuzzConfig {
            inject_safety: true,
            yield_percent: 100,
            ..FuzzConfig::default().with_seed(derive_seed(0xB06, 0))
        };
        let v = differential_check(|| generate_system(&cfg), &OracleLimits::default());
        assert!(v.agreed(), "{:?}", v.discrepancies);
        match v.outcome {
            SystemOutcome::Buggy {
                kind,
                ref minimized,
                ref schedule,
                ..
            } => {
                assert_eq!(kind, OutcomeKind::Safety);
                assert!(minimized.len() <= schedule.len());
            }
            ref o => panic!("expected a bug, got {o:?}"),
        }
    }

    #[test]
    fn injected_panic_yields_minimized_panic_counterexample() {
        let cfg = FuzzConfig {
            inject_panic: true,
            yield_percent: 100,
            ..FuzzConfig::default().with_seed(derive_seed(0x9A1C, 0))
        };
        let v = differential_check(|| generate_system(&cfg), &OracleLimits::default());
        assert!(v.agreed(), "{:?}", v.discrepancies);
        match v.outcome {
            SystemOutcome::Buggy {
                kind,
                ref message,
                ref minimized,
                ref schedule,
            } => {
                assert_eq!(kind, OutcomeKind::Panic);
                assert!(message.starts_with("injected panic"), "{message}");
                assert!(minimized.len() <= schedule.len());
            }
            ref o => panic!("expected a panic bug, got {o:?}"),
        }
    }

    #[test]
    fn injected_livelock_agrees_with_streett_check() {
        let cfg = FuzzConfig {
            inject_livelock: true,
            yield_percent: 100,
            ..FuzzConfig::default().with_seed(derive_seed(0x11FE, 0))
        };
        let v = differential_check(|| generate_system(&cfg), &OracleLimits::default());
        assert!(v.agreed(), "{:?}", v.discrepancies);
        assert!(
            matches!(
                v.outcome,
                SystemOutcome::Buggy { .. } | SystemOutcome::Skipped(_)
            ),
            "{:?}",
            v.outcome
        );
    }
}
