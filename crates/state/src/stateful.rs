//! Stateful *reference* search.
//!
//! The paper measures the quality of stateless search against ground
//! truth: "To measure the total number of states reachable with a
//! strategy, we also performed a stateful search of the state space and
//! stored the state signatures in a hash table" (Section 4.2.1). This
//! module provides that reference: full state-graph construction, a
//! preemption-bounded reachable-state count, and a strong-fairness
//! (Streett) cycle detector that decides *exactly* whether a finite-state
//! program has a livelock — the ground truth for Theorem 6 tests.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;

use chess_core::{Decision, SystemStatus, TransitionSystem};
use chess_kernel::{StepKind, ThreadId, TidSet};

/// Limits protecting the stateful search from state-space explosion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatefulLimits {
    /// Maximum number of distinct states to enumerate.
    pub max_states: usize,
}

impl Default for StatefulLimits {
    fn default() -> Self {
        StatefulLimits {
            max_states: 1_000_000,
        }
    }
}

/// The stateful search exceeded a limit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatefulError {
    /// More than `max_states` distinct states are reachable.
    StateLimitExceeded(usize),
}

impl fmt::Display for StatefulError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatefulError::StateLimitExceeded(n) => {
                write!(f, "state limit exceeded: more than {n} reachable states")
            }
        }
    }
}

impl std::error::Error for StatefulError {}

/// One outgoing transition of a state-graph node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// The decision labelling the transition.
    pub decision: Decision,
    /// Index of the successor state.
    pub target: usize,
    /// Whether the transition was a yield ([`StepKind::Yield`]) — needed
    /// by [`StateGraph::yield_free_reachable`], the reference set of
    /// Theorem 5.
    pub is_yield: bool,
}

/// One state of the explicit state graph.
#[derive(Debug, Clone)]
pub struct StateNode {
    /// Threads enabled in this state.
    pub enabled: TidSet,
    /// Outgoing transitions.
    pub edges: Vec<Edge>,
    /// Terminal classification of this state.
    pub status: SystemStatus,
    /// Whether this node is the *synthetic* target of a transition whose
    /// `step` panicked. The real post-state is unknowable (the unwind
    /// left the clone half-mutated), so the graph records a terminal
    /// violation node keyed by the source state and decision instead.
    /// Synthetic nodes are excluded from the Theorem 5 coverage reference
    /// — the stateless side never captures a state for a panicked step.
    pub panicked: bool,
}

/// An explicitly constructed reachable state graph.
#[derive(Debug, Clone)]
pub struct StateGraph {
    nodes: Vec<StateNode>,
    /// Canonical state bytes of each node, parallel to `nodes`.
    bytes: Vec<Vec<u8>>,
}

impl StateGraph {
    /// Builds the full reachable state graph of `initial` by stateful
    /// breadth-first search (cloning program snapshots).
    ///
    /// # Errors
    ///
    /// Returns [`StatefulError::StateLimitExceeded`] if more than
    /// `limits.max_states` distinct states are reachable.
    pub fn build<P>(initial: &P, limits: StatefulLimits) -> Result<StateGraph, StatefulError>
    where
        P: TransitionSystem + Clone,
    {
        StateGraph::build_observed(initial, limits, &mut || {})
    }

    /// [`StateGraph::build`] with a liveness callback, invoked once per
    /// freshly interned state. Long graph builds otherwise look like
    /// hangs to watchdogs keyed on observable progress (the campaign
    /// runner's heartbeat gate); the callback gives them a pulse.
    ///
    /// # Errors
    ///
    /// Returns [`StatefulError::StateLimitExceeded`] if more than
    /// `limits.max_states` distinct states are reachable.
    pub fn build_observed<P>(
        initial: &P,
        limits: StatefulLimits,
        on_state: &mut dyn FnMut(),
    ) -> Result<StateGraph, StatefulError>
    where
        P: TransitionSystem + Clone,
    {
        fn intern_node(
            key: Vec<u8>,
            node: StateNode,
            index: &mut HashMap<Vec<u8>, usize>,
            nodes: &mut Vec<StateNode>,
            limits: StatefulLimits,
        ) -> Result<(usize, bool), StatefulError> {
            match index.entry(key) {
                Entry::Occupied(e) => Ok((*e.get(), false)),
                Entry::Vacant(e) => {
                    let id = nodes.len();
                    if id >= limits.max_states {
                        return Err(StatefulError::StateLimitExceeded(limits.max_states));
                    }
                    e.insert(id);
                    nodes.push(node);
                    Ok((id, true))
                }
            }
        }

        let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
        let mut nodes: Vec<StateNode> = Vec::new();
        let mut frontier: Vec<(P, usize)> = Vec::new();

        let intern = |sys: &P,
                      index: &mut HashMap<Vec<u8>, usize>,
                      nodes: &mut Vec<StateNode>,
                      frontier: &mut Vec<(P, usize)>,
                      on_state: &mut dyn FnMut()|
         -> Result<usize, StatefulError> {
            let node = StateNode {
                enabled: sys.enabled_set(),
                edges: Vec::new(),
                status: sys.status(),
                panicked: false,
            };
            let (id, fresh) = intern_node(sys.state_bytes(), node, index, nodes, limits)?;
            if fresh {
                on_state();
                frontier.push((sys.clone(), id));
            }
            Ok(id)
        };

        intern(initial, &mut index, &mut nodes, &mut frontier, on_state)?;
        while let Some((sys, id)) = frontier.pop() {
            if !nodes[id].status.is_running() {
                continue;
            }
            let enabled = nodes[id].enabled.clone();
            let mut edges = Vec::new();
            for t in enabled.iter() {
                for c in 0..sys.branching(t) {
                    let mut succ = sys.clone();
                    let sid = match chess_core::panics::catch_silent(|| succ.step(t, c as u32)) {
                        Ok(kind) => {
                            let sid =
                                intern(&succ, &mut index, &mut nodes, &mut frontier, on_state)?;
                            edges.push(Edge {
                                decision: Decision {
                                    thread: t,
                                    choice: c as u32,
                                },
                                target: sid,
                                is_yield: kind == StepKind::Yield,
                            });
                            continue;
                        }
                        Err(message) => {
                            // The clone is poisoned; record a synthetic
                            // terminal violation node keyed by (source
                            // state, decision) so the edge stays in the
                            // graph and the panic counts as a violation.
                            let mut key = sys.state_bytes();
                            key.push(0xFF);
                            key.extend_from_slice(&(t.index() as u64).to_le_bytes());
                            key.extend_from_slice(&(c as u32).to_le_bytes());
                            let node = StateNode {
                                enabled: TidSet::new(),
                                edges: Vec::new(),
                                status: SystemStatus::Violation(t, format!("panic: {message}")),
                                panicked: true,
                            };
                            intern_node(key, node, &mut index, &mut nodes, limits)?.0
                        }
                    };
                    edges.push(Edge {
                        decision: Decision {
                            thread: t,
                            choice: c as u32,
                        },
                        target: sid,
                        is_yield: false,
                    });
                }
            }
            nodes[id].edges = edges;
        }
        // Move the interning keys into per-node storage so callers can
        // compare stateless coverage signatures against the graph.
        let mut bytes = vec![Vec::new(); nodes.len()];
        for (b, id) in index {
            bytes[id] = b;
        }
        Ok(StateGraph { nodes, bytes })
    }

    /// Number of distinct reachable states — the "Total States" column of
    /// Table 2 for an unrestricted (dfs) strategy.
    pub fn state_count(&self) -> usize {
        self.nodes.len()
    }

    /// The nodes of the graph (index 0 is the initial state).
    pub fn nodes(&self) -> &[StateNode] {
        &self.nodes
    }

    /// The canonical state bytes of node `i` — the same signature the
    /// stateless side's `CoverageTracker` records.
    pub fn node_bytes(&self, i: usize) -> &[u8] {
        &self.bytes[i]
    }

    /// Looks up a state signature; returns its node index if reachable.
    pub fn state_index(&self, bytes: &[u8]) -> Option<usize> {
        // Linear scan is fine for oracle-sized graphs; callers needing
        // many lookups should build a set from `node_bytes` once.
        self.bytes.iter().position(|b| b == bytes)
    }

    /// Marks the states reachable from the initial state through
    /// **yield-free** transitions only — the set `R0` of Theorem 5, which
    /// a fair demonic scheduler must still cover entirely. Synthetic
    /// panic nodes are excluded: a panicked step has no post-state the
    /// stateless side could ever capture.
    pub fn yield_free_reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        if self.nodes.is_empty() {
            return seen;
        }
        seen[0] = true;
        let mut stack = vec![0usize];
        while let Some(i) = stack.pop() {
            for e in &self.nodes[i].edges {
                if !e.is_yield && !seen[e.target] && !self.nodes[e.target].panicked {
                    seen[e.target] = true;
                    stack.push(e.target);
                }
            }
        }
        seen
    }

    /// Indices of deadlock states.
    pub fn deadlock_states(&self) -> Vec<usize> {
        self.filter_status(|s| matches!(s, SystemStatus::Deadlock))
    }

    /// Indices of violation states.
    pub fn violation_states(&self) -> Vec<usize> {
        self.filter_status(|s| matches!(s, SystemStatus::Violation(..)))
    }

    /// Indices of synthetic panic nodes (a subset of
    /// [`StateGraph::violation_states`]).
    pub fn panicked_states(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.panicked)
            .map(|(i, _)| i)
            .collect()
    }

    fn filter_status(&self, f: impl Fn(&SystemStatus) -> bool) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| f(&n.status))
            .map(|(i, _)| i)
            .collect()
    }

    /// Decides whether the program has a **fair cycle** — a reachable
    /// cycle in which every thread enabled somewhere on the cycle is also
    /// scheduled on the cycle. By the paper's definitions this is exactly
    /// a livelock witness: an infinite *fair* execution.
    ///
    /// Implemented as the classical Streett-condition check: compute
    /// SCCs; an SCC is *fair* if every thread enabled somewhere in it
    /// labels some internal edge; otherwise delete the states where a
    /// missing thread is enabled and recurse. Returns the states of a
    /// fair SCC, if one exists.
    pub fn find_fair_scc(&self) -> Option<Vec<usize>> {
        let all: Vec<usize> = (0..self.nodes.len()).collect();
        self.find_fair_in(&all)
    }

    fn find_fair_in(&self, subset: &[usize]) -> Option<Vec<usize>> {
        let mut member = vec![false; self.nodes.len()];
        for &i in subset {
            member[i] = true;
        }
        for scc in self.sccs(subset, &member) {
            let in_scc = {
                let mut m = vec![false; self.nodes.len()];
                for &i in &scc {
                    m[i] = true;
                }
                m
            };
            // Internal edges and the threads that label them.
            let mut scheduled = TidSet::new();
            let mut has_internal_edge = false;
            for &i in &scc {
                for e in &self.nodes[i].edges {
                    if in_scc[e.target] {
                        has_internal_edge = true;
                        scheduled.insert(e.decision.thread);
                    }
                }
            }
            if !has_internal_edge {
                continue; // trivial SCC: no cycle through it
            }
            let mut enabled_somewhere = TidSet::new();
            for &i in &scc {
                enabled_somewhere.union_with(&self.nodes[i].enabled);
            }
            let bad = enabled_somewhere.difference(&scheduled);
            if bad.is_empty() {
                return Some(scc);
            }
            // Remove states where a bad thread is enabled; a fair cycle,
            // if any, lives in the remainder.
            let remainder: Vec<usize> = scc
                .iter()
                .copied()
                .filter(|&i| !self.nodes[i].enabled.intersects(&bad))
                .collect();
            if !remainder.is_empty() {
                if let Some(found) = self.find_fair_in(&remainder) {
                    return Some(found);
                }
            }
        }
        None
    }

    /// Tarjan SCCs restricted to `subset` (`member` is its indicator).
    fn sccs(&self, subset: &[usize], member: &[bool]) -> Vec<Vec<usize>> {
        #[derive(Clone, Copy)]
        struct NodeData {
            index: i64,
            lowlink: i64,
            on_stack: bool,
        }
        let n = self.nodes.len();
        let mut data = vec![
            NodeData {
                index: -1,
                lowlink: -1,
                on_stack: false
            };
            n
        ];
        let mut counter: i64 = 0;
        let mut stack: Vec<usize> = Vec::new();
        let mut result: Vec<Vec<usize>> = Vec::new();

        // Iterative Tarjan with an explicit work stack of (node, edge
        // cursor) frames.
        for &root in subset {
            if data[root].index != -1 {
                continue;
            }
            let mut work: Vec<(usize, usize)> = vec![(root, 0)];
            while let Some(&mut (v, ref mut cursor)) = work.last_mut() {
                if *cursor == 0 {
                    data[v].index = counter;
                    data[v].lowlink = counter;
                    counter += 1;
                    stack.push(v);
                    data[v].on_stack = true;
                }
                let mut advanced = false;
                while *cursor < self.nodes[v].edges.len() {
                    let w = self.nodes[v].edges[*cursor].target;
                    *cursor += 1;
                    if !member[w] {
                        continue;
                    }
                    if data[w].index == -1 {
                        work.push((w, 0));
                        advanced = true;
                        break;
                    } else if data[w].on_stack {
                        data[v].lowlink = data[v].lowlink.min(data[w].index);
                    }
                }
                if advanced {
                    continue;
                }
                // v finished.
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    data[parent].lowlink = data[parent].lowlink.min(data[v].lowlink);
                }
                if data[v].lowlink == data[v].index {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        data[w].on_stack = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    result.push(scc);
                }
            }
        }
        result
    }
}

/// Counts the distinct states reachable by schedules with at most `bound`
/// preemptions — the stateful reference for Table 2's `cb=k` rows.
///
/// A preemption is a context switch away from a thread that is still
/// enabled (no fairness is involved in the reference semantics).
///
/// # Errors
///
/// Returns [`StatefulError::StateLimitExceeded`] if the count exceeds
/// `limits.max_states`.
pub fn preemption_bounded_states<P>(
    initial: &P,
    bound: u32,
    limits: StatefulLimits,
) -> Result<usize, StatefulError>
where
    P: TransitionSystem + Clone,
{
    // Configurations are (state, last scheduled thread, remaining budget);
    // a configuration dominates another with the same (state, last) and a
    // smaller budget.
    let mut state_ids: HashMap<Vec<u8>, usize> = HashMap::new();
    let mut best: HashMap<(usize, Option<ThreadId>), u32> = HashMap::new();
    let mut frontier: Vec<(P, usize, Option<ThreadId>, u32)> = Vec::new();

    let intern =
        |sys: &P, state_ids: &mut HashMap<Vec<u8>, usize>| -> Result<usize, StatefulError> {
            let bytes = sys.state_bytes();
            let next = state_ids.len();
            let id = *state_ids.entry(bytes).or_insert(next);
            if state_ids.len() > limits.max_states {
                return Err(StatefulError::StateLimitExceeded(limits.max_states));
            }
            Ok(id)
        };

    let id0 = intern(initial, &mut state_ids)?;
    best.insert((id0, None), bound);
    frontier.push((initial.clone(), id0, None, bound));

    while let Some((sys, id, last, budget)) = frontier.pop() {
        // Skip if a better configuration has been recorded since this one
        // was enqueued.
        if best.get(&(id, last)).is_some_and(|&b| b > budget) {
            continue;
        }
        if !sys.status().is_running() {
            continue;
        }
        let es = sys.enabled_set();
        let last_enabled = last.is_some_and(|p| es.contains(p));
        for t in es.iter() {
            let cost = u32::from(last_enabled && Some(t) != last);
            if cost > budget {
                continue;
            }
            let new_budget = budget - cost;
            for c in 0..sys.branching(t) {
                let mut succ = sys.clone();
                if chess_core::panics::catch_silent(|| succ.step(t, c as u32)).is_err() {
                    // A panicked step has no post-state to count.
                    continue;
                }
                let sid = intern(&succ, &mut state_ids)?;
                let key = (sid, Some(t));
                let improved = match best.get(&key) {
                    Some(&b) => new_budget > b,
                    None => true,
                };
                if improved {
                    best.insert(key, new_budget);
                    frontier.push((succ, sid, Some(t), new_budget));
                }
            }
        }
    }
    Ok(state_ids.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use chess_kernel::{Effects, GuestThread, Kernel, OpDesc, OpResult};

    /// Two threads, each takes `steps` Local steps.
    #[derive(Clone)]
    struct Stepper {
        pc: u8,
        steps: u8,
    }
    impl GuestThread<()> for Stepper {
        fn next_op(&self, _: &()) -> OpDesc {
            if self.pc < self.steps {
                OpDesc::Local
            } else {
                OpDesc::Finished
            }
        }
        fn on_op(&mut self, _: OpResult, _: &mut (), _: &mut Effects<()>) {
            self.pc += 1;
        }
        fn capture(&self, w: &mut chess_kernel::StateWriter) {
            w.write_u8(self.pc);
        }
        fn box_clone(&self) -> Box<dyn GuestThread<()>> {
            Box::new(self.clone())
        }
    }

    fn grid(steps: u8) -> Kernel<()> {
        let mut k = Kernel::new(());
        k.spawn(Stepper { pc: 0, steps });
        k.spawn(Stepper { pc: 0, steps });
        k
    }

    #[test]
    fn full_graph_of_independent_steppers_is_a_grid() {
        // Two independent threads of n steps: (n+1)^2 states.
        let g = StateGraph::build(&grid(2), StatefulLimits::default()).unwrap();
        assert_eq!(g.state_count(), 9);
        assert!(g.deadlock_states().is_empty());
        assert!(g.violation_states().is_empty());
    }

    #[test]
    fn state_limit_enforced() {
        let limits = StatefulLimits { max_states: 4 };
        let err = StateGraph::build(&grid(3), limits).unwrap_err();
        assert_eq!(err, StatefulError::StateLimitExceeded(4));
    }

    #[test]
    fn preemption_bound_zero_covers_two_paths() {
        // With 0 preemptions only the two "all of one thread, then all of
        // the other" paths exist: 2n+... states on the grid boundary.
        let n = 3;
        let count = preemption_bounded_states(&grid(n), 0, StatefulLimits::default()).unwrap();
        // Boundary of the (n+1)x(n+1) grid reachable monotone without
        // interior: the two axis paths then the far edges: states
        // (i,0), (n,j), (0,j), (i,n) reachable: 4n states +1? Count
        // exactly: paths are (k,0)* then (n,j)*, and (0,k)* then (j,n)*.
        // That is {(i,0)} ∪ {(n,j)} ∪ {(0,j)} ∪ {(i,n)} = 4(n+1)-4 = 4n.
        assert_eq!(count, 4 * n as usize);
    }

    #[test]
    fn preemption_bounds_are_monotone_and_reach_total() {
        let total = StateGraph::build(&grid(2), StatefulLimits::default())
            .unwrap()
            .state_count();
        let mut prev = 0;
        for cb in 0..=4 {
            let c = preemption_bounded_states(&grid(2), cb, StatefulLimits::default()).unwrap();
            assert!(c >= prev, "cb={cb} shrank coverage");
            prev = c;
        }
        assert_eq!(prev, total, "large bound must reach every state");
    }

    /// Data choices branch the reference search too.
    #[derive(Clone)]
    struct Chooser {
        picked: Option<u32>,
    }
    impl GuestThread<()> for Chooser {
        fn next_op(&self, _: &()) -> OpDesc {
            if self.picked.is_none() {
                OpDesc::Choose(3)
            } else {
                OpDesc::Finished
            }
        }
        fn on_op(&mut self, r: OpResult, _: &mut (), _: &mut Effects<()>) {
            self.picked = Some(r.as_choice());
        }
        fn capture(&self, w: &mut chess_kernel::StateWriter) {
            w.write_u32(self.picked.map_or(u32::MAX, |c| c));
        }
        fn box_clone(&self) -> Box<dyn GuestThread<()>> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn choose_branches_in_reference_searches() {
        let mut k = Kernel::new(());
        k.spawn(Chooser { picked: None });
        // Initial + 3 outcomes.
        let g = StateGraph::build(&k, StatefulLimits::default()).unwrap();
        assert_eq!(g.state_count(), 4);
        let c = preemption_bounded_states(&k, 0, StatefulLimits::default()).unwrap();
        assert_eq!(c, 4, "data choices are free of preemptions");
    }

    /// A spin loop with no exit: thread 1 loops (Local, Yield) forever
    /// while thread 0 is finished — a fair cycle exists trivially? No:
    /// thread 0 finished means not enabled, so a cycle scheduling only
    /// thread 1 is fair. (A "livelock" by the definition; used to test
    /// the detector mechanics.)
    #[derive(Clone)]
    struct Spinner {
        phase: u8,
    }
    impl GuestThread<()> for Spinner {
        fn next_op(&self, _: &()) -> OpDesc {
            if self.phase == 0 {
                OpDesc::Local
            } else {
                OpDesc::Yield
            }
        }
        fn on_op(&mut self, _: OpResult, _: &mut (), _: &mut Effects<()>) {
            self.phase = 1 - self.phase;
        }
        fn capture(&self, w: &mut chess_kernel::StateWriter) {
            w.write_u8(self.phase);
        }
        fn box_clone(&self) -> Box<dyn GuestThread<()>> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn fair_cycle_detected_in_pure_spinner() {
        let mut k = Kernel::new(());
        k.spawn(Spinner { phase: 0 });
        let g = StateGraph::build(&k, StatefulLimits::default()).unwrap();
        assert_eq!(g.state_count(), 2);
        let scc = g.find_fair_scc().expect("spinner loops fairly forever");
        assert_eq!(scc.len(), 2);
    }

    /// Figure 3's program: u spins (check, yield) until t sets x. The
    /// only cycle starves t, which stays enabled — an *unfair* cycle, so
    /// no livelock.
    #[derive(Clone)]
    struct SetX;
    impl GuestThread<bool> for SetX {
        fn next_op(&self, x: &bool) -> OpDesc {
            if *x {
                OpDesc::Finished
            } else {
                OpDesc::Local
            }
        }
        fn on_op(&mut self, _: OpResult, x: &mut bool, _: &mut Effects<bool>) {
            *x = true;
        }
        fn box_clone(&self) -> Box<dyn GuestThread<bool>> {
            Box::new(self.clone())
        }
    }
    #[derive(Clone)]
    struct SpinOnX {
        at_yield: bool,
        done: bool,
    }
    impl GuestThread<bool> for SpinOnX {
        fn next_op(&self, _x: &bool) -> OpDesc {
            if self.done {
                OpDesc::Finished
            } else if self.at_yield {
                OpDesc::Yield
            } else {
                OpDesc::Local
            }
        }
        fn on_op(&mut self, _: OpResult, x: &mut bool, _: &mut Effects<bool>) {
            if self.at_yield {
                self.at_yield = false;
            } else if *x {
                self.done = true;
            } else {
                self.at_yield = true;
            }
        }
        fn capture(&self, w: &mut chess_kernel::StateWriter) {
            w.write_bool(self.at_yield);
            w.write_bool(self.done);
        }
        fn box_clone(&self) -> Box<dyn GuestThread<bool>> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn panicking_step_becomes_a_synthetic_violation_node() {
        use chess_core::{FuzzOp, FuzzSystem};
        // The injected-panic shape: the panic fires only between the inc
        // and the dec, so some interleavings are clean and some unwind.
        let sys = FuzzSystem::from_scripts(
            vec![
                vec![FuzzOp::Inc(0), FuzzOp::Step, FuzzOp::Dec(0)],
                vec![FuzzOp::Step, FuzzOp::PanicIfNonZero(0)],
            ],
            1,
            0,
            0,
        );
        let g = StateGraph::build(&sys, StatefulLimits::default()).unwrap();
        let panicked = g.panicked_states();
        assert!(!panicked.is_empty(), "the racy panic must be reachable");
        for &i in &panicked {
            let n = &g.nodes()[i];
            assert!(n.edges.is_empty(), "panic nodes are terminal");
            assert!(matches!(n.status, SystemStatus::Violation(..)));
            assert!(g.violation_states().contains(&i));
        }
        // Theorem 5's reference set never contains a panic node: the
        // stateless side has no post-state to capture for those steps.
        let r0 = g.yield_free_reachable();
        assert!(panicked.iter().all(|&i| !r0[i]));
        // The bounded reference count tolerates the panic too.
        preemption_bounded_states(&sys, 2, StatefulLimits::default()).unwrap();
    }

    #[test]
    fn figure3_has_no_fair_cycle() {
        let mut k = Kernel::new(false);
        k.spawn(SetX);
        k.spawn(SpinOnX {
            at_yield: false,
            done: false,
        });
        let g = StateGraph::build(&k, StatefulLimits::default()).unwrap();
        assert!(
            g.find_fair_scc().is_none(),
            "figure 3's only cycle starves the setter: unfair"
        );
    }
}
