//! State-coverage tracking for stateless searches.
//!
//! The model checker itself stores no states; these observers plug into
//! `chess_core::Explorer::run_observed` and record the distinct abstract
//! states visited, reproducing the measurement methodology of Table 2.

use std::collections::HashSet;

use chess_core::{Observer, TransitionSystem};

/// Exact coverage tracker: keys the visited set on the full state byte
/// signature, so distinct states are never conflated.
///
/// The per-state capture lands in a reused scratch buffer
/// ([`TransitionSystem::state_bytes_into`]); a signature is cloned into
/// the set only when it is genuinely new, so re-visiting known states —
/// the overwhelmingly common case in a long search — allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct CoverageTracker {
    visited: HashSet<Vec<u8>>,
    occurrences: u64,
    scratch: Vec<u8>,
}

impl CoverageTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        CoverageTracker::default()
    }

    /// Number of distinct states visited.
    pub fn distinct_states(&self) -> usize {
        self.visited.len()
    }

    /// Total state occurrences observed (with repetition).
    pub fn occurrences(&self) -> u64 {
        self.occurrences
    }

    /// Whether the given exact state signature was visited.
    pub fn contains(&self, state: &[u8]) -> bool {
        self.visited.contains(state)
    }

    /// Iterates over the visited signatures.
    pub fn iter(&self) -> impl Iterator<Item = &Vec<u8>> {
        self.visited.iter()
    }

    /// Records a state signature directly (used by the stateful reference
    /// search when cross-checking coverage).
    pub fn insert(&mut self, state: Vec<u8>) -> bool {
        self.occurrences += 1;
        self.visited.insert(state)
    }

    /// Records a borrowed state signature, cloning it only if unseen.
    pub fn insert_ref(&mut self, state: &[u8]) -> bool {
        self.occurrences += 1;
        if self.visited.contains(state) {
            false
        } else {
            self.visited.insert(state.to_vec())
        }
    }

    /// Fraction of `total` states covered, in percent.
    pub fn percent_of(&self, total: usize) -> f64 {
        if total == 0 {
            100.0
        } else {
            100.0 * self.distinct_states() as f64 / total as f64
        }
    }
}

impl<P: TransitionSystem + ?Sized> Observer<P> for CoverageTracker {
    fn on_state(&mut self, sys: &P, _depth: usize) {
        let mut scratch = std::mem::take(&mut self.scratch);
        sys.state_bytes_into(&mut scratch);
        self.insert_ref(&scratch);
        self.scratch = scratch;
    }
}

/// Memory-light coverage tracker keyed on 64-bit fingerprints. Suitable
/// for very large state counts where a rare collision is an acceptable
/// undercount (the paper's hash-table methodology).
#[derive(Debug, Clone, Default)]
pub struct FingerprintCoverage {
    visited: HashSet<u64>,
}

impl FingerprintCoverage {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        FingerprintCoverage::default()
    }

    /// Number of distinct fingerprints visited.
    pub fn distinct_states(&self) -> usize {
        self.visited.len()
    }
}

impl<P: TransitionSystem + ?Sized> Observer<P> for FingerprintCoverage {
    fn on_state(&mut self, sys: &P, _depth: usize) {
        self.visited.insert(sys.fingerprint());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_vs_occurrences() {
        let mut c = CoverageTracker::new();
        assert!(c.insert(vec![1]));
        assert!(!c.insert(vec![1]));
        assert!(c.insert(vec![2]));
        assert_eq!(c.distinct_states(), 2);
        assert_eq!(c.occurrences(), 3);
        assert!(c.contains(&[1]));
        assert!(!c.contains(&[3]));
    }

    #[test]
    fn percent_of_handles_zero_total() {
        let c = CoverageTracker::new();
        assert_eq!(c.percent_of(0), 100.0);
        let mut c = CoverageTracker::new();
        c.insert(vec![1]);
        assert_eq!(c.percent_of(4), 25.0);
    }
}
