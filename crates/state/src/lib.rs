//! # chess-state — state capture, coverage, and stateful reference search
//!
//! Companion crate to `chess-core` reproducing the *measurement*
//! methodology of "Fair Stateless Model Checking" (PLDI 2008), Section
//! 4.2: the model checker itself is stateless, but the evaluation
//! extracts abstract states on demand to measure coverage and compares
//! against a stateful reference search.
//!
//! * [`Canonicalizer`] — heap canonicalization by first-visit renumbering
//!   (the paper cites Iosif's heap-symmetry reduction).
//! * [`CoverageTracker`] / [`FingerprintCoverage`] — observers plugged
//!   into `chess_core::Explorer::run_observed` that record distinct
//!   visited states (Table 2's "states visited" columns).
//! * [`StateGraph`] — full stateful BFS producing the explicit state
//!   graph: the "Total States" reference, deadlock/violation inventory,
//!   and a strong-fairness (Streett) cycle detector
//!   ([`StateGraph::find_fair_scc`]) that decides livelock-freedom
//!   exactly on finite-state programs.
//! * [`preemption_bounded_states`] — the stateful reference for the
//!   context-bounded rows of Table 2.
//!
//! ```
//! use chess_core::{Config, Explorer};
//! use chess_core::strategy::Dfs;
//! use chess_kernel::{Effects, GuestThread, Kernel, OpDesc, OpResult};
//! use chess_state::{CoverageTracker, StateGraph, StatefulLimits};
//!
//! #[derive(Clone)]
//! struct Once(bool);
//! impl GuestThread<()> for Once {
//!     fn next_op(&self, _: &()) -> OpDesc {
//!         if self.0 { OpDesc::Finished } else { OpDesc::Local }
//!     }
//!     fn on_op(&mut self, _: OpResult, _: &mut (), _: &mut Effects<()>) { self.0 = true; }
//!     fn capture(&self, w: &mut chess_kernel::StateWriter) { w.write_bool(self.0); }
//!     fn box_clone(&self) -> Box<dyn GuestThread<()>> { Box::new(self.clone()) }
//! }
//!
//! let factory = || {
//!     let mut k = Kernel::new(());
//!     k.spawn(Once(false));
//!     k.spawn(Once(false));
//!     k
//! };
//!
//! // Ground truth: the full state graph.
//! let total = StateGraph::build(&factory(), StatefulLimits::default())
//!     .unwrap()
//!     .state_count();
//!
//! // Stateless DFS with a coverage observer reaches all of it.
//! let mut coverage = CoverageTracker::new();
//! Explorer::new(factory, Dfs::new(), Config::fair()).run_observed(&mut coverage);
//! assert_eq!(coverage.distinct_states(), total);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod canonical;
mod coverage;
mod differential;
mod memory;
mod stateful;

pub use canonical::Canonicalizer;
pub use coverage::{CoverageTracker, FingerprintCoverage};
pub use differential::{
    differential_check, differential_check_with_progress, Discrepancy, OracleLimits, SystemOutcome,
    Verdict,
};
pub use memory::{memory_monotonicity_check, MemoryLimits, MemoryVerdict};
pub use stateful::{
    preemption_bounded_states, Edge, StateGraph, StateNode, StatefulError, StatefulLimits,
};
