//! Property-based tests of the kernel's foundations: `TidSet` against a
//! `BTreeSet` model, and the object table's enabledness invariants under
//! random operation sequences.

use std::collections::BTreeSet;

use chess_kernel::{Kernel, KernelStatus, OpDesc, ThreadId, TidSet};
use proptest::prelude::*;

fn tid(i: usize) -> ThreadId {
    ThreadId::new(i)
}

#[derive(Debug, Clone)]
enum SetOp {
    Insert(usize),
    Remove(usize),
    Clear,
}

fn set_op() -> impl Strategy<Value = SetOp> {
    prop_oneof![
        8 => (0usize..200).prop_map(SetOp::Insert),
        4 => (0usize..200).prop_map(SetOp::Remove),
        1 => Just(SetOp::Clear),
    ]
}

proptest! {
    /// TidSet behaves exactly like a BTreeSet<usize> model.
    #[test]
    fn tidset_matches_model(ops in prop::collection::vec(set_op(), 0..120)) {
        let mut sut = TidSet::new();
        let mut model = BTreeSet::new();
        for op in ops {
            match op {
                SetOp::Insert(i) => {
                    prop_assert_eq!(sut.insert(tid(i)), model.insert(i));
                }
                SetOp::Remove(i) => {
                    prop_assert_eq!(sut.remove(tid(i)), model.remove(&i));
                }
                SetOp::Clear => {
                    sut.clear();
                    model.clear();
                }
            }
            prop_assert_eq!(sut.len(), model.len());
            prop_assert_eq!(sut.is_empty(), model.is_empty());
            let got: Vec<usize> = sut.iter().map(|t| t.index()).collect();
            let want: Vec<usize> = model.iter().copied().collect();
            prop_assert_eq!(got, want, "iteration order must be ascending");
        }
    }

    /// Set algebra agrees with the model on random operand pairs.
    #[test]
    fn tidset_algebra_matches_model(
        a in prop::collection::btree_set(0usize..150, 0..40),
        b in prop::collection::btree_set(0usize..150, 0..40),
    ) {
        let sa: TidSet = a.iter().map(|&i| tid(i)).collect();
        let sb: TidSet = b.iter().map(|&i| tid(i)).collect();
        let check = |s: &TidSet, m: &BTreeSet<usize>| {
            let got: BTreeSet<usize> = s.iter().map(|t| t.index()).collect();
            got == *m
        };
        prop_assert!(check(&sa.union(&sb), &a.union(&b).copied().collect()));
        prop_assert!(check(
            &sa.intersection(&sb),
            &a.intersection(&b).copied().collect()
        ));
        prop_assert!(check(
            &sa.difference(&sb),
            &a.difference(&b).copied().collect()
        ));
        prop_assert_eq!(sa.intersects(&sb), !a.is_disjoint(&b));
        prop_assert_eq!(sa.is_subset(&sb), a.is_subset(&b));
    }
}

/// A guest that performs a scripted list of operations on a fixed set of
/// objects, skipping ops that would block by going to the next (models
/// "some thread doing random synchronization").
#[derive(Clone)]
struct Scripted {
    ops: Vec<OpDesc>,
    pc: usize,
}

impl chess_kernel::GuestThread<()> for Scripted {
    fn next_op(&self, _: &()) -> OpDesc {
        self.ops.get(self.pc).copied().unwrap_or(OpDesc::Finished)
    }
    fn on_op(&mut self, _: chess_kernel::OpResult, _: &mut (), _: &mut chess_kernel::Effects<()>) {
        self.pc += 1;
    }
    fn capture(&self, w: &mut chess_kernel::StateWriter) {
        w.write_usize(self.pc);
    }
    fn box_clone(&self) -> Box<dyn chess_kernel::GuestThread<()>> {
        Box::new(self.clone())
    }
}

/// Random (non-lock) op scripts over shared objects. Lock ops need
/// balanced acquire/release, so this generator sticks to semaphores,
/// events and channels, whose misuse cannot occur.
fn safe_op(sems: u32, events: u32, chans: u32) -> impl Strategy<Value = u8> {
    let _ = (sems, events, chans);
    0u8..9
}

proptest! {
    /// Under any schedule of scripted safe ops, the kernel never panics,
    /// `enabled` implies a step succeeds, and steps are deterministic
    /// (same schedule twice ⇒ same fingerprints).
    #[test]
    fn kernel_random_programs_are_deterministic(
        scripts in prop::collection::vec(
            prop::collection::vec(safe_op(2, 2, 2), 1..12), 1..4),
        schedule_seed in any::<u64>(),
    ) {
        let build = || {
            let mut k = Kernel::new(());
            let sem = k.add_semaphore(1);
            let ev = k.add_auto_event(false);
            let mv = k.add_manual_event(false);
            let ch = k.add_channel(2);
            for script in &scripts {
                let ops: Vec<OpDesc> = script
                    .iter()
                    .map(|&x| match x {
                        0 => OpDesc::Local,
                        1 => OpDesc::Yield,
                        2 => OpDesc::SemUp(sem),
                        3 => OpDesc::SemDownTimeout(sem),
                        4 => OpDesc::EventSet(ev),
                        5 => OpDesc::EventWaitTimeout(ev),
                        6 => OpDesc::EventSet(mv),
                        7 => OpDesc::TrySend(ch, 7),
                        _ => OpDesc::TryRecv(ch),
                    })
                    .collect();
                k.spawn(Scripted { ops, pc: 0 });
            }
            k
        };

        let run = |mut k: Kernel<()>|
            -> Result<(Vec<u64>, KernelStatus), TestCaseError> {
            let mut rng = schedule_seed | 1;
            let mut fps = vec![k.fingerprint()];
            for _ in 0..200 {
                if !k.status().is_running() {
                    break;
                }
                let enabled: Vec<ThreadId> =
                    k.thread_ids().filter(|&t| k.enabled(t)).collect();
                prop_assert!(!enabled.is_empty());
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                let t = enabled[(rng % enabled.len() as u64) as usize];
                k.step(t, 0);
                fps.push(k.fingerprint());
            }
            Ok((fps, k.status()))
        };

        let (f1, s1) = run(build())?;
        let (f2, s2) = run(build())?;
        prop_assert_eq!(f1, f2, "same schedule must replay identically");
        prop_assert_eq!(s1, s2);
    }

    /// Scripted programs of non-blocking ops always terminate (never
    /// deadlock): timeouts and try-ops keep every unfinished thread
    /// enabled.
    #[test]
    fn nonblocking_scripts_never_deadlock(
        scripts in prop::collection::vec(
            prop::collection::vec(safe_op(2, 2, 2), 1..10), 1..4),
    ) {
        let mut k = Kernel::new(());
        let sem = k.add_semaphore(1);
        let ev = k.add_auto_event(false);
        let mv = k.add_manual_event(true);
        let ch = k.add_channel(2);
        for script in &scripts {
            let ops: Vec<OpDesc> = script
                .iter()
                .map(|&x| match x {
                    0 => OpDesc::Local,
                    1 => OpDesc::Yield,
                    2 => OpDesc::SemUp(sem),
                    3 => OpDesc::SemDownTimeout(sem),
                    4 => OpDesc::EventSet(ev),
                    5 => OpDesc::EventWaitTimeout(ev),
                    6 => OpDesc::EventWait(mv), // manual event starts set
                    7 => OpDesc::TrySend(ch, 7),
                    _ => OpDesc::TryRecv(ch),
                })
                .collect();
            k.spawn(Scripted { ops, pc: 0 });
        }
        let mut steps = 0;
        while k.status().is_running() {
            let t = k.thread_ids().find(|&t| k.enabled(t)).unwrap();
            k.step(t, 0);
            steps += 1;
            prop_assert!(steps < 10_000);
        }
        prop_assert_eq!(k.status(), KernelStatus::Terminated);
    }
}
