//! Dependence footprints: which objects a transition touches, and how.
//!
//! Partial-order reduction needs to know when two transitions *commute*:
//! executing them in either order from the same state reaches the same
//! state. The kernel answers this question conservatively by attaching a
//! [`Footprint`] — a small set of [`Access`]es — to every operation. Two
//! footprints are [*dependent*](Footprint::dependent) when they touch a
//! common object and at least one of the accesses is not a read; dependent
//! transitions may not commute, independent ones provably do.
//!
//! Footprints flow through three surfaces:
//!
//! * [`Kernel::next_footprint`](crate::Kernel::next_footprint) — the
//!   footprint of the transition a thread *would* take, queryable before
//!   stepping (this is what exploration strategies consume);
//! * [`StepInfo::footprint`](crate::StepInfo) — the footprint of the
//!   transition that *was* taken, reported by
//!   [`Kernel::step`](crate::Kernel::step);
//! * `chess_core::TransitionSystem::footprint` — the abstract-system hook
//!   that the model-checking strategies key their sleep sets on.
//!
//! # Conservatism
//!
//! Every kernel operation's footprint includes a write to
//! [`ObjectRef::SharedState`]: the guest's *apply* half
//! (`GuestThread::on_op`) receives `&mut S` on every step, so the kernel
//! cannot prove that any two guest transitions commute on the shared
//! state. This keeps kernel footprints sound (all kernel transitions are
//! pairwise dependent, so reduction degenerates to no pruning) while still
//! carrying precise per-object information for trace rendering and for
//! systems — like the fuzz generator's — whose shared-state accesses are
//! statically known and can override the conservative default.

use std::fmt;

use crate::ids::{
    AtomicId, BarrierId, ChannelId, CondvarId, EventId, MutexId, RwLockId, SemaphoreId,
};
use crate::op::OpDesc;
use crate::tid::ThreadId;

/// How an access interacts with the object it touches.
///
/// Only [`AccessKind::Read`] commutes with itself; every other pairing on
/// the same object is a conflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Observes the object without changing it (atomic load, flag poll).
    Read,
    /// Mutates the object (atomic store, counter update, channel send).
    Write,
    /// Takes ownership or a unit of the object (mutex/rwlock/semaphore).
    Acquire,
    /// Returns ownership or a unit of the object.
    Release,
    /// Enqueues a store into the issuing thread's store buffer without
    /// writing memory (a buffered `AtomicStore` under TSO/PSO). Conflicts
    /// like a write: its eventual flush changes the object.
    Buffered,
    /// Drains a buffered store of this object to memory (the flusher
    /// lane's pseudo-transition).
    Flush,
    /// Waits for the issuing thread's store buffer to drain
    /// ([`OpDesc::Fence`]).
    Fence,
}

impl AccessKind {
    /// Returns true when two accesses of these kinds on the *same* object
    /// conflict (i.e. the transitions may not commute).
    pub fn conflicts(self, other: AccessKind) -> bool {
        !(self == AccessKind::Read && other == AccessKind::Read)
    }

    /// Short lower-case label used in trace rendering.
    pub fn label(self) -> &'static str {
        match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::Acquire => "acquire",
            AccessKind::Release => "release",
            AccessKind::Buffered => "buffer",
            AccessKind::Flush => "flush",
            AccessKind::Fence => "fence",
        }
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A reference to one object a transition may touch.
///
/// Kernel synchronization objects each get their own variant; abstract
/// transition systems outside the kernel (the fuzz generator, test
/// scripts) use [`ObjectRef::Custom`] with a static class label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ObjectRef {
    /// The kernel's shared guest state `S` (conservative: every guest
    /// `on_op` may mutate it).
    SharedState,
    /// Another thread, as touched by `Join`.
    Thread(ThreadId),
    /// A kernel mutex.
    Mutex(MutexId),
    /// A kernel reader-writer lock.
    RwLock(RwLockId),
    /// A kernel counting semaphore.
    Semaphore(SemaphoreId),
    /// A kernel event.
    Event(EventId),
    /// A kernel condition variable.
    Condvar(CondvarId),
    /// A kernel bounded channel (both endpoints share one id: send and
    /// receive race on the same buffer).
    Channel(ChannelId),
    /// A kernel atomic cell.
    Atomic(AtomicId),
    /// A kernel barrier.
    Barrier(BarrierId),
    /// A thread's store buffer, as drained by a fence. Used as a marker
    /// object so fences render as a bare `fence` annotation; flushes name
    /// the [`Atomic`](ObjectRef::Atomic) cells they drain instead.
    Buffer(ThreadId),
    /// An object of a non-kernel transition system: a static class label
    /// (e.g. `"counter"`) plus a dense index.
    Custom(&'static str, u32),
}

impl fmt::Display for ObjectRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectRef::SharedState => write!(f, "shared"),
            ObjectRef::Thread(t) => write!(f, "{t:?}"),
            ObjectRef::Mutex(id) => write!(f, "{id}"),
            ObjectRef::RwLock(id) => write!(f, "{id}"),
            ObjectRef::Semaphore(id) => write!(f, "{id}"),
            ObjectRef::Event(id) => write!(f, "{id}"),
            ObjectRef::Condvar(id) => write!(f, "{id}"),
            ObjectRef::Channel(id) => write!(f, "{id}"),
            ObjectRef::Atomic(id) => write!(f, "{id}"),
            ObjectRef::Barrier(id) => write!(f, "{id}"),
            ObjectRef::Buffer(t) => write!(f, "buffer({t})"),
            ObjectRef::Custom(class, index) => write!(f, "{class}{index}"),
        }
    }
}

/// One object access within a footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Access {
    /// The object touched.
    pub object: ObjectRef,
    /// How it is touched.
    pub kind: AccessKind,
}

impl Access {
    /// Builds an access.
    pub const fn new(object: ObjectRef, kind: AccessKind) -> Self {
        Access { object, kind }
    }

    /// Returns true when this access conflicts with `other`: same object,
    /// and not both reads.
    pub fn conflicts(&self, other: &Access) -> bool {
        self.object == other.object && self.kind.conflicts(other.kind)
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.kind, self.object)
    }
}

/// The dependence footprint of one transition: the set of object accesses
/// it may perform.
///
/// A footprint may additionally be [*universal*](Footprint::universal) —
/// dependent with every other footprint regardless of accesses. Universal
/// footprints model transitions whose effects the analysis cannot bound
/// (and yielding transitions, which interact with the fair scheduler's
/// global priority state and must never be pruned).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Footprint {
    accesses: Vec<Access>,
    universal: bool,
}

impl Footprint {
    /// An empty footprint: a purely thread-local transition, independent
    /// of everything (except universal footprints).
    pub const fn local() -> Self {
        Footprint {
            accesses: Vec::new(),
            universal: false,
        }
    }

    /// A footprint conservatively dependent with every other footprint.
    pub const fn universal() -> Self {
        Footprint {
            accesses: Vec::new(),
            universal: true,
        }
    }

    /// Builds a footprint from a list of accesses.
    pub fn from_accesses(accesses: impl IntoIterator<Item = Access>) -> Self {
        Footprint {
            accesses: accesses.into_iter().collect(),
            universal: false,
        }
    }

    /// Adds one access.
    pub fn push(&mut self, object: ObjectRef, kind: AccessKind) {
        self.accesses.push(Access::new(object, kind));
    }

    /// Returns the accesses in this footprint (empty for universal
    /// footprints, whose dependence is unconditional).
    pub fn accesses(&self) -> &[Access] {
        &self.accesses
    }

    /// Returns true when this footprint is dependent with everything.
    pub fn is_universal(&self) -> bool {
        self.universal
    }

    /// Returns true when two transitions with these footprints may fail
    /// to commute: either footprint is universal, or some access pair
    /// touches the same object with at least one non-read.
    pub fn dependent(&self, other: &Footprint) -> bool {
        if self.universal || other.universal {
            return true;
        }
        self.accesses
            .iter()
            .any(|a| other.accesses.iter().any(|b| a.conflicts(b)))
    }

    /// Renders the non-[`SharedState`](ObjectRef::SharedState) accesses as
    /// a compact annotation (e.g. `acquire mutex0`), or `None` when there
    /// is nothing informative to show.
    ///
    /// The conservative shared-state write that every kernel op carries is
    /// omitted: it annotates every line identically and would drown the
    /// per-object information this rendering exists to surface.
    pub fn describe(&self) -> Option<String> {
        let parts: Vec<String> = self
            .accesses
            .iter()
            .filter(|a| a.object != ObjectRef::SharedState)
            .map(|a| match a.object {
                // The buffer is implied by the issuing thread: `[fence]`
                // reads better than `[fence buffer(t0)]`.
                ObjectRef::Buffer(_) => a.kind.to_string(),
                _ => a.to_string(),
            })
            .collect();
        if parts.is_empty() {
            None
        } else {
            Some(parts.join(", "))
        }
    }
}

/// Maps a kernel operation to its footprint.
///
/// Every non-`Finished` op carries a conservative write to
/// [`ObjectRef::SharedState`] on top of its precise sync-object accesses,
/// because the guest's `on_op` receives `&mut S` when the op executes (see
/// the module docs). `Finished` threads never step, so their footprint is
/// empty.
pub fn footprint_of_op(op: &OpDesc) -> Footprint {
    use AccessKind::{Acquire, Read, Release, Write};
    let mut fp = Footprint::local();
    match *op {
        OpDesc::Finished => return fp,
        OpDesc::Local | OpDesc::Yield | OpDesc::Sleep | OpDesc::Choose(_) => {}
        OpDesc::Acquire(m) | OpDesc::TryAcquire(m) | OpDesc::AcquireTimeout(m) => {
            fp.push(ObjectRef::Mutex(m), Acquire);
        }
        OpDesc::Release(m) => fp.push(ObjectRef::Mutex(m), Release),
        OpDesc::RwAcquireRead(l) | OpDesc::RwAcquireWrite(l) | OpDesc::RwTryAcquireWrite(l) => {
            fp.push(ObjectRef::RwLock(l), Acquire);
        }
        OpDesc::RwRelease(l) => fp.push(ObjectRef::RwLock(l), Release),
        OpDesc::SemDown(s) | OpDesc::SemDownTimeout(s) => {
            fp.push(ObjectRef::Semaphore(s), Acquire);
        }
        OpDesc::SemUp(s) => fp.push(ObjectRef::Semaphore(s), Release),
        OpDesc::EventWait(e) | OpDesc::EventWaitTimeout(e) => {
            // Auto-reset events consume the signal, so a wait is a write.
            fp.push(ObjectRef::Event(e), Write);
        }
        OpDesc::EventSet(e) | OpDesc::EventReset(e) => fp.push(ObjectRef::Event(e), Write),
        OpDesc::CondEnroll(c, m) => {
            fp.push(ObjectRef::Condvar(c), Write);
            fp.push(ObjectRef::Mutex(m), Release);
        }
        OpDesc::CondConsume(c) | OpDesc::CondSignal(c) | OpDesc::CondBroadcast(c) => {
            fp.push(ObjectRef::Condvar(c), Write);
        }
        OpDesc::Send(ch, _)
        | OpDesc::TrySend(ch, _)
        | OpDesc::Recv(ch)
        | OpDesc::TryRecv(ch)
        | OpDesc::Close(ch) => {
            fp.push(ObjectRef::Channel(ch), Write);
        }
        OpDesc::Join(t) => fp.push(ObjectRef::Thread(t), Read),
        OpDesc::AtomicLoad(a) => fp.push(ObjectRef::Atomic(a), Read),
        OpDesc::AtomicStore(a, _)
        | OpDesc::AtomicCas(a, _, _)
        | OpDesc::AtomicSwap(a, _)
        | OpDesc::AtomicAdd(a, _) => fp.push(ObjectRef::Atomic(a), Write),
        OpDesc::BarrierArrive(b) | OpDesc::BarrierAwait(b, _) => {
            fp.push(ObjectRef::Barrier(b), Write);
        }
        // The precise buffered/flush/fence footprints depend on memory
        // model and buffer contents, which only the kernel knows; see
        // `Kernel::next_footprint`. These are the context-free fallbacks.
        OpDesc::Fence => {}
        OpDesc::Flush(t) => fp.push(ObjectRef::Buffer(t), AccessKind::Flush),
    }
    // Conservative: the guest's apply half may mutate the shared state on
    // every executed op.
    fp.push(ObjectRef::SharedState, Write);
    fp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_commute_everything_else_conflicts() {
        let a = ObjectRef::Custom("counter", 0);
        let read = Footprint::from_accesses([Access::new(a, AccessKind::Read)]);
        let write = Footprint::from_accesses([Access::new(a, AccessKind::Write)]);
        assert!(!read.dependent(&read));
        assert!(read.dependent(&write));
        assert!(write.dependent(&write));
    }

    #[test]
    fn distinct_objects_are_independent() {
        let w0 = Footprint::from_accesses([Access::new(
            ObjectRef::Custom("counter", 0),
            AccessKind::Write,
        )]);
        let w1 = Footprint::from_accesses([Access::new(
            ObjectRef::Custom("counter", 1),
            AccessKind::Write,
        )]);
        assert!(!w0.dependent(&w1));
    }

    #[test]
    fn universal_is_dependent_with_everything() {
        let u = Footprint::universal();
        assert!(u.dependent(&Footprint::local()));
        assert!(Footprint::local().dependent(&u));
        assert!(!Footprint::local().dependent(&Footprint::local()));
    }

    #[test]
    fn kernel_ops_carry_conservative_shared_write() {
        let fp = footprint_of_op(&OpDesc::Local);
        assert!(fp
            .accesses()
            .iter()
            .any(|a| a.object == ObjectRef::SharedState && a.kind == AccessKind::Write));
        // Finished never steps: empty footprint.
        assert!(footprint_of_op(&OpDesc::Finished).accesses().is_empty());
    }

    #[test]
    fn mutex_ops_name_the_mutex() {
        let m = MutexId::new(3);
        let fp = footprint_of_op(&OpDesc::Acquire(m));
        assert!(fp
            .accesses()
            .iter()
            .any(|a| a.object == ObjectRef::Mutex(m) && a.kind == AccessKind::Acquire));
        assert_eq!(
            fp.describe().as_deref(),
            Some("acquire mutex3"),
            "shared-state access must be omitted from the annotation"
        );
    }
}
