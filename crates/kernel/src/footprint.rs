//! Dependence footprints: which objects a transition touches, and how.
//!
//! Partial-order reduction needs to know when two transitions *commute*:
//! executing them in either order from the same state reaches the same
//! state. The kernel answers this question conservatively by attaching a
//! [`Footprint`] — a small set of [`Access`]es — to every operation. Two
//! footprints are [*dependent*](Footprint::dependent) when they touch a
//! common object and at least one of the accesses is not a read; dependent
//! transitions may not commute, independent ones provably do.
//!
//! Footprints flow through three surfaces:
//!
//! * [`Kernel::next_footprint`](crate::Kernel::next_footprint) — the
//!   footprint of the transition a thread *would* take, queryable before
//!   stepping (this is what exploration strategies consume);
//! * [`StepInfo::footprint`](crate::StepInfo) — the footprint of the
//!   transition that *was* taken, reported by
//!   [`Kernel::step`](crate::Kernel::step);
//! * `chess_core::TransitionSystem::footprint` — the abstract-system hook
//!   that the model-checking strategies key their sleep sets on.
//!
//! # Shared-state precision
//!
//! The guest's *apply* half (`GuestThread::on_op`) receives `&mut S` on
//! every step, so the kernel cannot prove on its own that any two guest
//! transitions commute on the shared state. Guests therefore *declare*
//! their shared-state effects through
//! [`GuestThread::shared_effects`](crate::GuestThread::shared_effects):
//! a read-set/write-set over named cells
//! ([`ObjectRef::Cell`]) that
//! [`Kernel::next_footprint`](crate::Kernel::next_footprint) merges into
//! the op's sync-object accesses. The default declaration is
//! [`SharedEffects::Whole`](crate::SharedEffects) — a conservative write
//! to [`ObjectRef::SharedState`], which [overlaps](ObjectRef::overlaps)
//! every cell — so guests that do not opt in stay sound (all of their
//! transitions remain pairwise dependent and reduction degenerates to no
//! pruning for them). Declarations can be checked at runtime: see
//! [`Kernel::set_validate_effects`](crate::Kernel::set_validate_effects).

use std::fmt;

use crate::ids::{
    AtomicId, BarrierId, ChannelId, CondvarId, EventId, MutexId, RwLockId, SemaphoreId,
};
use crate::op::OpDesc;
use crate::tid::ThreadId;

/// How an access interacts with the object it touches.
///
/// Only [`AccessKind::Read`] commutes with itself; every other pairing on
/// the same object is a conflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Observes the object without changing it (atomic load, flag poll).
    Read,
    /// Mutates the object (atomic store, counter update, channel send).
    Write,
    /// Takes ownership or a unit of the object (mutex/rwlock/semaphore).
    Acquire,
    /// Returns ownership or a unit of the object.
    Release,
    /// Enqueues a store into the issuing thread's store buffer without
    /// writing memory (a buffered `AtomicStore` under TSO/PSO). Conflicts
    /// like a write: its eventual flush changes the object.
    Buffered,
    /// Drains a buffered store of this object to memory (the flusher
    /// lane's pseudo-transition).
    Flush,
    /// Waits for the issuing thread's store buffer to drain
    /// ([`OpDesc::Fence`]).
    Fence,
}

impl AccessKind {
    /// Returns true when two accesses of these kinds on the *same* object
    /// conflict (i.e. the transitions may not commute).
    ///
    /// Two reads commute. A [`Fence`](AccessKind::Fence) only waits for
    /// the issuing thread's own store buffer to drain, so it conflicts
    /// with the transitions that change that buffer's contents —
    /// [`Buffered`](AccessKind::Buffered) enqueues and
    /// [`Flush`](AccessKind::Flush) drains — and with nothing else: two
    /// fences on the same buffer commute (both are no-ops on an empty
    /// buffer), and a fence never conflicts with plain reads or writes.
    /// Every other same-object pairing conflicts.
    pub fn conflicts(self, other: AccessKind) -> bool {
        use AccessKind::{Buffered, Fence, Flush, Read};
        match (self, other) {
            (Read, Read) => false,
            (Fence, o) | (o, Fence) => matches!(o, Buffered | Flush),
            _ => true,
        }
    }

    /// Short lower-case label used in trace rendering.
    pub fn label(self) -> &'static str {
        match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::Acquire => "acquire",
            AccessKind::Release => "release",
            AccessKind::Buffered => "buffer",
            AccessKind::Flush => "flush",
            AccessKind::Fence => "fence",
        }
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A reference to one object a transition may touch.
///
/// Kernel synchronization objects each get their own variant; abstract
/// transition systems outside the kernel (the fuzz generator, test
/// scripts) use [`ObjectRef::Custom`] with a static class label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ObjectRef {
    /// The kernel's shared guest state `S` as a whole (conservative:
    /// the guest declared no precise effects, so its `on_op` may mutate
    /// anything). Overlaps every [`Cell`](ObjectRef::Cell).
    SharedState,
    /// One named cell of the kernel's shared guest state, as declared by
    /// a guest's `shared_effects` hook: a static cell name plus an index
    /// for array-shaped cells (scalar cells use index 0).
    Cell(&'static str, u32),
    /// Another thread, as touched by `Join`.
    Thread(ThreadId),
    /// A kernel mutex.
    Mutex(MutexId),
    /// A kernel reader-writer lock.
    RwLock(RwLockId),
    /// A kernel counting semaphore.
    Semaphore(SemaphoreId),
    /// A kernel event.
    Event(EventId),
    /// A kernel condition variable.
    Condvar(CondvarId),
    /// A kernel bounded channel (both endpoints share one id: send and
    /// receive race on the same buffer).
    Channel(ChannelId),
    /// A kernel atomic cell.
    Atomic(AtomicId),
    /// A kernel barrier.
    Barrier(BarrierId),
    /// A thread's store buffer, as drained by a fence. Used as a marker
    /// object so fences render as a bare `fence` annotation; flushes name
    /// the [`Atomic`](ObjectRef::Atomic) cells they drain instead.
    Buffer(ThreadId),
    /// An object of a non-kernel transition system: a static class label
    /// (e.g. `"counter"`) plus a dense index.
    Custom(&'static str, u32),
}

impl ObjectRef {
    /// Returns true when two object references may denote overlapping
    /// state. Distinct references are disjoint, except that the whole
    /// shared state overlaps every declared cell: a guest that declares
    /// precise effects must still conflict with one that keeps the
    /// conservative whole-state default.
    pub fn overlaps(self, other: ObjectRef) -> bool {
        self == other
            || matches!(
                (self, other),
                (ObjectRef::SharedState, ObjectRef::Cell(..))
                    | (ObjectRef::Cell(..), ObjectRef::SharedState)
            )
    }
}

impl fmt::Display for ObjectRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectRef::SharedState => write!(f, "shared"),
            ObjectRef::Cell(name, 0) => write!(f, "{name}"),
            ObjectRef::Cell(name, index) => write!(f, "{name}[{index}]"),
            ObjectRef::Thread(t) => write!(f, "{t:?}"),
            ObjectRef::Mutex(id) => write!(f, "{id}"),
            ObjectRef::RwLock(id) => write!(f, "{id}"),
            ObjectRef::Semaphore(id) => write!(f, "{id}"),
            ObjectRef::Event(id) => write!(f, "{id}"),
            ObjectRef::Condvar(id) => write!(f, "{id}"),
            ObjectRef::Channel(id) => write!(f, "{id}"),
            ObjectRef::Atomic(id) => write!(f, "{id}"),
            ObjectRef::Barrier(id) => write!(f, "{id}"),
            ObjectRef::Buffer(t) => write!(f, "buffer({t})"),
            ObjectRef::Custom(class, index) => write!(f, "{class}{index}"),
        }
    }
}

/// One object access within a footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Access {
    /// The object touched.
    pub object: ObjectRef,
    /// How it is touched.
    pub kind: AccessKind,
}

impl Access {
    /// Builds an access.
    pub const fn new(object: ObjectRef, kind: AccessKind) -> Self {
        Access { object, kind }
    }

    /// Returns true when this access conflicts with `other`: the objects
    /// [overlap](ObjectRef::overlaps), and the kinds
    /// [conflict](AccessKind::conflicts).
    pub fn conflicts(&self, other: &Access) -> bool {
        self.object.overlaps(other.object) && self.kind.conflicts(other.kind)
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.kind, self.object)
    }
}

/// The dependence footprint of one transition: the set of object accesses
/// it may perform.
///
/// A footprint may additionally be [*universal*](Footprint::universal) —
/// dependent with every other footprint regardless of accesses. Universal
/// footprints model transitions whose effects the analysis cannot bound
/// (and yielding transitions, which interact with the fair scheduler's
/// global priority state and must never be pruned).
#[derive(Debug, PartialEq, Eq, Default)]
pub struct Footprint {
    accesses: Vec<Access>,
    universal: bool,
}

impl Clone for Footprint {
    fn clone(&self) -> Self {
        Footprint {
            accesses: self.accesses.clone(),
            universal: self.universal,
        }
    }

    // The derived impl would fall back to a fresh allocation here; the
    // explorer clones footprints into per-schedule-point buffers on every
    // step, so reusing the access buffer matters.
    fn clone_from(&mut self, source: &Self) {
        self.accesses.clone_from(&source.accesses);
        self.universal = source.universal;
    }
}

impl Footprint {
    /// An empty footprint: a purely thread-local transition, independent
    /// of everything (except universal footprints).
    pub const fn local() -> Self {
        Footprint {
            accesses: Vec::new(),
            universal: false,
        }
    }

    /// A footprint conservatively dependent with every other footprint.
    pub const fn universal() -> Self {
        Footprint {
            accesses: Vec::new(),
            universal: true,
        }
    }

    /// Builds a footprint from a list of accesses.
    pub fn from_accesses(accesses: impl IntoIterator<Item = Access>) -> Self {
        Footprint {
            accesses: accesses.into_iter().collect(),
            universal: false,
        }
    }

    /// Adds one access.
    pub fn push(&mut self, object: ObjectRef, kind: AccessKind) {
        self.accesses.push(Access::new(object, kind));
    }

    /// Resets to the empty (local) footprint, keeping the access buffer's
    /// allocation for reuse.
    pub fn clear(&mut self) {
        self.accesses.clear();
        self.universal = false;
    }

    /// Marks this footprint universal (dependent with everything),
    /// dropping any named accesses so the result matches
    /// [`Footprint::universal`] exactly.
    pub fn make_universal(&mut self) {
        self.accesses.clear();
        self.universal = true;
    }

    /// Returns the accesses in this footprint (empty for universal
    /// footprints, whose dependence is unconditional).
    pub fn accesses(&self) -> &[Access] {
        &self.accesses
    }

    /// Returns true when this footprint is dependent with everything.
    pub fn is_universal(&self) -> bool {
        self.universal
    }

    /// Returns true when two transitions with these footprints may fail
    /// to commute: either footprint is universal, or some access pair
    /// touches the same object with at least one non-read.
    pub fn dependent(&self, other: &Footprint) -> bool {
        if self.universal || other.universal {
            return true;
        }
        self.accesses
            .iter()
            .any(|a| other.accesses.iter().any(|b| a.conflicts(b)))
    }

    /// Renders the non-[`SharedState`](ObjectRef::SharedState) accesses as
    /// a compact annotation (e.g. `acquire mutex0`), or `None` when there
    /// is nothing informative to show.
    ///
    /// The conservative whole-state write that undeclared kernel ops carry
    /// is omitted: it annotates every line identically and would drown the
    /// per-object information this rendering exists to surface. The
    /// [`Buffer`](ObjectRef::Buffer) bookkeeping markers that buffered
    /// stores and flushes carry (so a sleeping flush wakes when its
    /// owner's buffer changes) are likewise omitted — the
    /// [`Atomic`](ObjectRef::Atomic) access already names the cell.
    pub fn describe(&self) -> Option<String> {
        let parts: Vec<String> = self
            .accesses
            .iter()
            .filter(|a| {
                a.object != ObjectRef::SharedState
                    && !matches!(
                        (a.object, a.kind),
                        (
                            ObjectRef::Buffer(_),
                            AccessKind::Buffered | AccessKind::Flush
                        )
                    )
            })
            .map(|a| match a.object {
                // The buffer is implied by the issuing thread: `[fence]`
                // reads better than `[fence buffer(t0)]`.
                ObjectRef::Buffer(_) => a.kind.to_string(),
                _ => a.to_string(),
            })
            .collect();
        if parts.is_empty() {
            None
        } else {
            Some(parts.join(", "))
        }
    }
}

/// Maps a kernel operation to its *synchronization-object* footprint.
///
/// This covers only the kernel-owned objects the op touches (mutexes,
/// channels, atomics, ...). What the op does to the guest's shared state
/// `S` is not the op's to know: the guest declares it through
/// [`GuestThread::shared_effects`](crate::GuestThread::shared_effects),
/// and [`Kernel::next_footprint`](crate::Kernel::next_footprint) merges
/// the declaration (default: a conservative whole-state write) into the
/// accesses returned here. Purely local ops (`Local`, `Yield`, `Sleep`,
/// `Choose`) therefore map to [`Footprint::local`] at this layer.
pub fn footprint_of_op(op: &OpDesc) -> Footprint {
    let mut fp = Footprint::local();
    footprint_of_op_into(op, &mut fp);
    fp
}

/// [`footprint_of_op`] writing into a caller-provided footprint, clearing
/// it first — the allocation-free form for per-step scratch reuse.
pub fn footprint_of_op_into(op: &OpDesc, fp: &mut Footprint) {
    use AccessKind::{Acquire, Read, Release, Write};
    fp.clear();
    match *op {
        OpDesc::Finished => {}
        OpDesc::Local | OpDesc::Yield | OpDesc::Sleep | OpDesc::Choose(_) => {}
        OpDesc::Acquire(m) | OpDesc::TryAcquire(m) | OpDesc::AcquireTimeout(m) => {
            fp.push(ObjectRef::Mutex(m), Acquire);
        }
        OpDesc::Release(m) => fp.push(ObjectRef::Mutex(m), Release),
        OpDesc::RwAcquireRead(l) | OpDesc::RwAcquireWrite(l) | OpDesc::RwTryAcquireWrite(l) => {
            fp.push(ObjectRef::RwLock(l), Acquire);
        }
        OpDesc::RwRelease(l) => fp.push(ObjectRef::RwLock(l), Release),
        OpDesc::SemDown(s) | OpDesc::SemDownTimeout(s) => {
            fp.push(ObjectRef::Semaphore(s), Acquire);
        }
        OpDesc::SemUp(s) => fp.push(ObjectRef::Semaphore(s), Release),
        OpDesc::EventWait(e) | OpDesc::EventWaitTimeout(e) => {
            // Auto-reset events consume the signal, so a wait is a write.
            fp.push(ObjectRef::Event(e), Write);
        }
        OpDesc::EventSet(e) | OpDesc::EventReset(e) => fp.push(ObjectRef::Event(e), Write),
        OpDesc::CondEnroll(c, m) => {
            fp.push(ObjectRef::Condvar(c), Write);
            fp.push(ObjectRef::Mutex(m), Release);
        }
        OpDesc::CondConsume(c) | OpDesc::CondSignal(c) | OpDesc::CondBroadcast(c) => {
            fp.push(ObjectRef::Condvar(c), Write);
        }
        OpDesc::Send(ch, _)
        | OpDesc::TrySend(ch, _)
        | OpDesc::Recv(ch)
        | OpDesc::TryRecv(ch)
        | OpDesc::Close(ch) => {
            fp.push(ObjectRef::Channel(ch), Write);
        }
        OpDesc::Join(t) => fp.push(ObjectRef::Thread(t), Read),
        OpDesc::AtomicLoad(a) => fp.push(ObjectRef::Atomic(a), Read),
        OpDesc::AtomicStore(a, _)
        | OpDesc::AtomicCas(a, _, _)
        | OpDesc::AtomicSwap(a, _)
        | OpDesc::AtomicAdd(a, _) => fp.push(ObjectRef::Atomic(a), Write),
        OpDesc::BarrierArrive(b) | OpDesc::BarrierAwait(b, _) => {
            fp.push(ObjectRef::Barrier(b), Write);
        }
        // The precise buffered/flush/fence footprints depend on memory
        // model and buffer contents, which only the kernel knows; see
        // `Kernel::next_footprint`. These are the context-free fallbacks.
        OpDesc::Fence => {}
        OpDesc::Flush(t) => fp.push(ObjectRef::Buffer(t), AccessKind::Flush),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_commute_everything_else_conflicts() {
        let a = ObjectRef::Custom("counter", 0);
        let read = Footprint::from_accesses([Access::new(a, AccessKind::Read)]);
        let write = Footprint::from_accesses([Access::new(a, AccessKind::Write)]);
        assert!(!read.dependent(&read));
        assert!(read.dependent(&write));
        assert!(write.dependent(&write));
    }

    #[test]
    fn distinct_objects_are_independent() {
        let w0 = Footprint::from_accesses([Access::new(
            ObjectRef::Custom("counter", 0),
            AccessKind::Write,
        )]);
        let w1 = Footprint::from_accesses([Access::new(
            ObjectRef::Custom("counter", 1),
            AccessKind::Write,
        )]);
        assert!(!w0.dependent(&w1));
    }

    #[test]
    fn universal_is_dependent_with_everything() {
        let u = Footprint::universal();
        assert!(u.dependent(&Footprint::local()));
        assert!(Footprint::local().dependent(&u));
        assert!(!Footprint::local().dependent(&Footprint::local()));
    }

    #[test]
    fn local_ops_have_no_sync_accesses() {
        // The shared-state effect is the guest's declaration, merged in
        // by `Kernel::next_footprint` — not the op's.
        for op in [
            OpDesc::Local,
            OpDesc::Yield,
            OpDesc::Sleep,
            OpDesc::Finished,
        ] {
            assert!(
                footprint_of_op(&op).accesses().is_empty(),
                "{op:?} should carry no sync-object access"
            );
        }
    }

    #[test]
    fn whole_state_overlaps_every_cell() {
        let whole =
            Footprint::from_accesses([Access::new(ObjectRef::SharedState, AccessKind::Write)]);
        let cell =
            Footprint::from_accesses([Access::new(ObjectRef::Cell("count", 0), AccessKind::Read)]);
        let other =
            Footprint::from_accesses([Access::new(ObjectRef::Cell("done", 1), AccessKind::Write)]);
        assert!(whole.dependent(&cell), "Whole must conflict with any cell");
        assert!(cell.dependent(&whole));
        assert!(!cell.dependent(&other), "distinct cells are disjoint");
        assert!(!cell.dependent(&cell), "two reads of the same cell commute");
    }

    #[test]
    fn fence_conflicts_only_with_own_buffer_traffic() {
        use AccessKind::{Buffered, Fence, Flush, Read, Write};
        assert!(Fence.conflicts(Buffered));
        assert!(Fence.conflicts(Flush));
        assert!(Buffered.conflicts(Fence));
        assert!(Flush.conflicts(Fence));
        // A fence waits only on the issuing thread's own buffer: it
        // commutes with reads, writes, and other fences.
        assert!(!Fence.conflicts(Read));
        assert!(!Read.conflicts(Fence));
        assert!(!Fence.conflicts(Write));
        assert!(!Write.conflicts(Fence));
        assert!(!Fence.conflicts(Fence));
    }

    #[test]
    fn mutex_ops_name_the_mutex() {
        let m = MutexId::new(3);
        let fp = footprint_of_op(&OpDesc::Acquire(m));
        assert!(fp
            .accesses()
            .iter()
            .any(|a| a.object == ObjectRef::Mutex(m) && a.kind == AccessKind::Acquire));
        assert_eq!(
            fp.describe().as_deref(),
            Some("acquire mutex3"),
            "shared-state access must be omitted from the annotation"
        );
    }
}
