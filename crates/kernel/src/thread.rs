//! Guest threads: the programs the model checker executes.
//!
//! A guest thread is an explicit small-step state machine. Its transition
//! relation is split into a pure *describe* half ([`GuestThread::next_op`])
//! and an *apply* half ([`GuestThread::on_op`]); the kernel executes the
//! described operation atomically in between. Exactly one operation is
//! performed per transition, which makes every transition a scheduling
//! point — the same granularity CHESS uses (it preempts at synchronization
//! operations).

use std::fmt;

use crate::capture::StateWriter;
use crate::effects::SharedEffects;
use crate::op::{OpDesc, OpResult};
use crate::tid::ThreadId;

/// A guest thread over shared state `S`.
///
/// # Writing guests
///
/// Guests are typically written as a `pc` (program counter) enum plus a
/// `match` in both methods:
///
/// ```
/// use chess_kernel::{Effects, GuestThread, MutexId, OpDesc, OpResult};
///
/// #[derive(Clone)]
/// struct LockAndBump {
///     pc: u8,
///     lock: MutexId,
/// }
///
/// impl GuestThread<u64> for LockAndBump {
///     fn next_op(&self, _shared: &u64) -> OpDesc {
///         match self.pc {
///             0 => OpDesc::Acquire(self.lock),
///             1 => OpDesc::Local, // the critical section
///             2 => OpDesc::Release(self.lock),
///             _ => OpDesc::Finished,
///         }
///     }
///
///     fn on_op(&mut self, _r: OpResult, shared: &mut u64, _fx: &mut Effects<u64>) {
///         if self.pc == 1 {
///             *shared += 1;
///         }
///         self.pc += 1;
///     }
///
///     fn box_clone(&self) -> Box<dyn GuestThread<u64>> {
///         Box::new(self.clone())
///     }
/// }
/// ```
///
/// # Contract
///
/// * `next_op` must be a **pure** function of `(self, shared)`: the kernel
///   calls it repeatedly to evaluate the `enabled(t)` and `yield(t)`
///   predicates of the paper.
/// * `on_op` is called exactly once per executed transition, after the
///   kernel has applied the operation's effect on its object. It updates
///   the thread's local state (advance the pc) and may mutate the shared
///   state; together with the object effect this forms one atomic
///   transition.
/// * A thread signals completion by returning [`OpDesc::Finished`]; it is
///   then never scheduled again.
pub trait GuestThread<S> {
    /// Describes the next operation this thread will perform, as a pure
    /// function of the thread-local and shared state.
    fn next_op(&self, shared: &S) -> OpDesc;

    /// Applies the transition body after the kernel executed the operation
    /// described by [`GuestThread::next_op`].
    fn on_op(&mut self, result: OpResult, shared: &mut S, fx: &mut Effects<S>);

    /// Declares which named shared-state cells the transition executing
    /// `op` touches, for dependence-aware reduction.
    ///
    /// The default, [`SharedEffects::Whole`], is the sound conservative
    /// answer: `on_op` receives `&mut S`, so an undeclared guest is
    /// assumed to write the whole shared state and its transitions stay
    /// pairwise dependent. Overriding this with precise per-cell
    /// read/write sets is what lets sleep-set reduction prune kernel
    /// schedules.
    ///
    /// The declaration is a *promise* (see the
    /// [`SharedEffects`] soundness contract): the write set must cover
    /// every cell `on_op` may mutate, and the read set every cell that
    /// can influence the thread — including cells `next_op` consults to
    /// choose `op`. Promises about the write half are checkable: run the
    /// kernel with
    /// [`set_validate_effects`](crate::Kernel::set_validate_effects) and
    /// any mutation outside the declared write set becomes a violation.
    fn shared_effects(&self, op: &OpDesc) -> SharedEffects {
        let _ = op;
        SharedEffects::Whole
    }

    /// A human-readable name for traces and counterexamples.
    fn name(&self) -> String {
        "thread".to_string()
    }

    /// Writes the thread-local state (typically the pc and local
    /// variables) for state-coverage fingerprinting. The default writes
    /// nothing, which is only sound for threads whose relevant state is
    /// entirely in the shared state.
    fn capture(&self, w: &mut StateWriter) {
        let _ = w;
    }

    /// Clones this thread into a box, enabling snapshot-based *stateful*
    /// reference search (used to compute the "Total States" column of
    /// Table 2). Typically `Box::new(self.clone())`.
    fn box_clone(&self) -> Box<dyn GuestThread<S>>;
}

/// Side effects a transition body may request beyond mutating shared
/// state: spawning threads and reporting safety violations.
///
/// Collected during [`GuestThread::on_op`] and applied by the kernel when
/// the call returns, keeping the borrow structure simple and the
/// transition atomic.
pub struct Effects<S> {
    pub(crate) spawns: Vec<Box<dyn GuestThread<S>>>,
    pub(crate) violation: Option<String>,
    pub(crate) next_tid: usize,
    /// Thread-id distance between consecutive spawns: 1 under sequential
    /// consistency, 2 under a buffering memory model (each spawned guest
    /// is followed by its flusher lane).
    pub(crate) stride: usize,
}

impl<S> Effects<S> {
    #[cfg(test)]
    pub(crate) fn new(next_tid: usize) -> Self {
        Effects::with_stride(next_tid, 1)
    }

    pub(crate) fn with_stride(next_tid: usize, stride: usize) -> Self {
        Effects {
            spawns: Vec::new(),
            violation: None,
            next_tid,
            stride,
        }
    }

    /// Spawns a new guest thread; it becomes schedulable from the next
    /// scheduling point. Returns the id the new thread will receive.
    pub fn spawn(&mut self, guest: Box<dyn GuestThread<S>>) -> ThreadId {
        let tid = ThreadId::new(self.next_tid + self.spawns.len() * self.stride);
        self.spawns.push(guest);
        tid
    }

    /// Reports a safety violation, terminating the execution with a
    /// counterexample. The first violation of a transition wins.
    pub fn fail(&mut self, message: impl Into<String>) {
        if self.violation.is_none() {
            self.violation = Some(message.into());
        }
    }

    /// Reports a violation if `condition` is false (a guest-level
    /// assertion).
    pub fn check(&mut self, condition: bool, message: impl fmt::Display) {
        if !condition {
            self.fail(format!("assertion failed: {message}"));
        }
    }
}

impl<S> fmt::Debug for Effects<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Effects")
            .field("spawns", &self.spawns.len())
            .field("violation", &self.violation)
            .finish()
    }
}

/// Scheduling status of a thread slot inside the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreadStatus {
    /// The thread may still take transitions (it may currently be blocked,
    /// i.e. not enabled, but it has not finished).
    Active,
    /// The thread returned [`OpDesc::Finished`] and will never run again.
    Finished,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone)]
    struct Nop;

    impl GuestThread<()> for Nop {
        fn next_op(&self, _: &()) -> OpDesc {
            OpDesc::Finished
        }
        fn on_op(&mut self, _: OpResult, _: &mut (), _: &mut Effects<()>) {}
        fn box_clone(&self) -> Box<dyn GuestThread<()>> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn effects_assign_sequential_tids() {
        let mut fx = Effects::<()>::new(3);
        assert_eq!(fx.spawn(Box::new(Nop)), ThreadId::new(3));
        assert_eq!(fx.spawn(Box::new(Nop)), ThreadId::new(4));
        assert_eq!(fx.spawns.len(), 2);
    }

    #[test]
    fn strided_effects_skip_flusher_lanes() {
        let mut fx = Effects::<()>::with_stride(4, 2);
        assert_eq!(fx.spawn(Box::new(Nop)), ThreadId::new(4));
        assert_eq!(fx.spawn(Box::new(Nop)), ThreadId::new(6));
    }

    #[test]
    fn first_violation_wins() {
        let mut fx = Effects::<()>::new(0);
        fx.check(true, "fine");
        assert!(fx.violation.is_none());
        fx.fail("first");
        fx.fail("second");
        assert_eq!(fx.violation.as_deref(), Some("first"));
    }

    #[test]
    fn check_formats_message() {
        let mut fx = Effects::<()>::new(0);
        fx.check(false, format_args!("x = {}", 3));
        assert_eq!(fx.violation.as_deref(), Some("assertion failed: x = 3"));
    }

    #[test]
    fn default_name() {
        assert_eq!(Nop.name(), "thread");
    }
}
