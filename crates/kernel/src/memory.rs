//! Relaxed-memory models: TSO/PSO store buffers as schedulable state.
//!
//! The kernel optionally executes atomic stores under a *relaxed* memory
//! model. Following "Stateless Model Checking for TSO and PSO" (Abdulla et
//! al.), buffering is made explicit: each guest thread owns a FIFO
//! [`StoreBuffer`]; an `AtomicStore` enqueues into the issuing thread's
//! buffer instead of writing memory, an `AtomicLoad` forwards from the
//! youngest buffered store to the same location (else reads memory), and
//! every non-empty buffer contributes an always-enabled
//! [`Flush`](crate::OpDesc::Flush) pseudo-transition that the scheduler
//! picks like any other thread step. Nondeterminism stays fully external:
//! *when* a store drains to memory is a scheduling choice, so the fair
//! scheduler, sleep sets, context bounding and replay all apply to flushes
//! unchanged — which is exactly the fairness story "Making Weak Memory
//! Models Fair" (Lahav et al.) asks for (a buffered store must eventually
//! propagate; Algorithm 1 guarantees the flusher eventually runs).
//!
//! Under [`MemoryModel::Tso`] the buffer drains in program order (one FIFO
//! per thread). Under [`MemoryModel::Pso`] stores to *different* locations
//! may drain in any order (a FIFO per location, modeled here as a flush
//! *choice* per buffered location), while same-location stores stay
//! ordered. [`MemoryModel::Sc`] bypasses buffering entirely and is
//! bit-for-bit the kernel's historical behavior.

use std::collections::VecDeque;
use std::fmt;
use std::str::FromStr;

use crate::ids::AtomicId;

/// Which memory model the kernel executes atomic operations under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemoryModel {
    /// Sequential consistency: stores hit memory immediately (the
    /// kernel's historical behavior, and the model the CHESS paper
    /// assumes).
    #[default]
    Sc,
    /// Total store order (x86-like): per-thread FIFO store buffers;
    /// stores drain to memory in program order.
    Tso,
    /// Partial store order (SPARC PSO-like): per-thread, per-*location*
    /// FIFO store buffers; stores to different locations may drain in any
    /// order.
    Pso,
}

impl MemoryModel {
    /// All models, weakest-last (the order the monotonicity oracle
    /// compares outcome sets in: SC ⊆ TSO ⊆ PSO).
    pub const ALL: [MemoryModel; 3] = [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso];

    /// Is this sequential consistency (no buffering)?
    pub fn is_sc(self) -> bool {
        matches!(self, MemoryModel::Sc)
    }

    /// Does this model buffer stores (and thus add flusher lanes)?
    pub fn buffers(self) -> bool {
        !self.is_sc()
    }

    /// The CLI/serialization name of the model.
    pub fn as_str(self) -> &'static str {
        match self {
            MemoryModel::Sc => "sc",
            MemoryModel::Tso => "tso",
            MemoryModel::Pso => "pso",
        }
    }

    /// Parses a CLI/serialization name (`sc`, `tso`, `pso`).
    pub fn parse(s: &str) -> Option<MemoryModel> {
        match s {
            "sc" => Some(MemoryModel::Sc),
            "tso" => Some(MemoryModel::Tso),
            "pso" => Some(MemoryModel::Pso),
            _ => None,
        }
    }
}

impl fmt::Display for MemoryModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for MemoryModel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        MemoryModel::parse(s).ok_or_else(|| format!("unknown memory model `{s}` (want sc|tso|pso)"))
    }
}

/// One thread's store buffer: the pending atomic stores that have been
/// issued but not yet drained to memory.
///
/// A single program-order queue serves both buffering models: TSO drains
/// from the front ([`StoreBuffer::pop_oldest`]); PSO drains the oldest
/// entry of a chosen *location* ([`StoreBuffer::pop_location`]), which
/// preserves per-location FIFO order while letting different locations
/// overtake each other. Load forwarding reads the *youngest* entry for the
/// location ([`StoreBuffer::lookup`]) — a thread always sees its own
/// stores.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct StoreBuffer {
    entries: VecDeque<(AtomicId, u64)>,
}

impl Clone for StoreBuffer {
    fn clone(&self) -> Self {
        StoreBuffer {
            entries: self.entries.clone(),
        }
    }

    // Keeps the queue's allocation alive when the kernel pool resets a
    // buffer from an execution template (see `Kernel::reset_from`).
    fn clone_from(&mut self, source: &Self) {
        self.entries.clone_from(&source.entries);
    }
}

impl StoreBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        StoreBuffer::default()
    }

    /// Is the buffer drained?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of buffered stores.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Enqueues a store in program order.
    pub fn push(&mut self, location: AtomicId, value: u64) {
        self.entries.push_back((location, value));
    }

    /// The value the issuing thread observes for `location`: the youngest
    /// buffered store to it, or `None` if the thread must read memory.
    pub fn lookup(&self, location: AtomicId) -> Option<u64> {
        self.entries
            .iter()
            .rev()
            .find(|(a, _)| *a == location)
            .map(|&(_, v)| v)
    }

    /// The distinct buffered locations, in ascending id order. Under PSO
    /// each is a separate flush choice.
    pub fn locations(&self) -> Vec<AtomicId> {
        let mut locs: Vec<AtomicId> = self.entries.iter().map(|&(a, _)| a).collect();
        locs.sort_by_key(|a| a.index());
        locs.dedup();
        locs
    }

    /// Number of distinct buffered locations (the PSO flush branching).
    pub fn location_count(&self) -> usize {
        self.locations().len()
    }

    /// The location of the oldest buffered store — the only one a TSO
    /// flush can drain next.
    pub fn oldest_location(&self) -> Option<AtomicId> {
        self.entries.front().map(|&(a, _)| a)
    }

    /// Drains the oldest buffered store (TSO flush order).
    pub fn pop_oldest(&mut self) -> Option<(AtomicId, u64)> {
        self.entries.pop_front()
    }

    /// Drains the oldest buffered store *to `location`* (PSO flush order:
    /// per-location FIFO, cross-location free).
    pub fn pop_location(&mut self, location: AtomicId) -> Option<u64> {
        let pos = self.entries.iter().position(|(a, _)| *a == location)?;
        self.entries.remove(pos).map(|(_, v)| v)
    }

    /// Iterates the buffered `(location, value)` entries in program order
    /// (oldest first), for state capture and diagnostics.
    pub fn entries(&self) -> impl Iterator<Item = (AtomicId, u64)> + '_ {
        self.entries.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: usize) -> AtomicId {
        AtomicId::new(i)
    }

    #[test]
    fn model_names_round_trip() {
        for m in MemoryModel::ALL {
            assert_eq!(MemoryModel::parse(m.as_str()), Some(m));
            assert_eq!(m.as_str().parse::<MemoryModel>(), Ok(m));
        }
        assert_eq!(MemoryModel::parse("weak"), None);
        assert!("weak".parse::<MemoryModel>().is_err());
        assert_eq!(MemoryModel::default(), MemoryModel::Sc);
        assert!(MemoryModel::Sc.is_sc() && !MemoryModel::Sc.buffers());
        assert!(MemoryModel::Tso.buffers() && MemoryModel::Pso.buffers());
    }

    #[test]
    fn lookup_forwards_youngest_store() {
        let mut b = StoreBuffer::new();
        assert_eq!(b.lookup(a(0)), None);
        b.push(a(0), 1);
        b.push(a(1), 7);
        b.push(a(0), 2);
        assert_eq!(b.lookup(a(0)), Some(2), "youngest same-location store");
        assert_eq!(b.lookup(a(1)), Some(7));
        assert_eq!(b.lookup(a(2)), None);
    }

    #[test]
    fn tso_drains_in_program_order() {
        let mut b = StoreBuffer::new();
        b.push(a(1), 10);
        b.push(a(0), 20);
        b.push(a(1), 30);
        assert_eq!(b.pop_oldest(), Some((a(1), 10)));
        assert_eq!(b.pop_oldest(), Some((a(0), 20)));
        assert_eq!(b.pop_oldest(), Some((a(1), 30)));
        assert_eq!(b.pop_oldest(), None);
    }

    #[test]
    fn pso_preserves_per_location_fifo() {
        let mut b = StoreBuffer::new();
        b.push(a(1), 10);
        b.push(a(0), 20);
        b.push(a(1), 30);
        assert_eq!(b.locations(), vec![a(0), a(1)]);
        assert_eq!(b.location_count(), 2);
        // Location 0 may overtake, but stores to location 1 stay ordered.
        assert_eq!(b.pop_location(a(0)), Some(20));
        assert_eq!(b.pop_location(a(1)), Some(10));
        assert_eq!(b.pop_location(a(1)), Some(30));
        assert_eq!(b.pop_location(a(1)), None);
        assert!(b.is_empty());
    }

    #[test]
    fn entries_report_program_order() {
        let mut b = StoreBuffer::new();
        b.push(a(2), 1);
        b.push(a(0), 2);
        assert_eq!(b.entries().collect::<Vec<_>>(), vec![(a(2), 1), (a(0), 2)]);
        assert_eq!(b.len(), 2);
    }
}
