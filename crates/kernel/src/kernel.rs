//! The kernel: a deterministic world of guest threads, shared state and
//! synchronization objects, driven one transition at a time by a scheduler.

use std::cell::RefCell;
use std::fmt;

use crate::capture::{Capture, StateWriter, FNV_OFFSET, FNV_PRIME};
use crate::effects::SharedEffects;
use crate::footprint::{footprint_of_op_into, AccessKind, Footprint, ObjectRef};
use crate::ids::{
    AtomicId, BarrierId, ChannelId, CondvarId, EventId, MutexId, RwLockId, SemaphoreId,
};
use crate::memory::{MemoryModel, StoreBuffer};
use crate::objects::Objects;
use crate::op::{OpDesc, OpResult, StepKind};
use crate::thread::{Effects, GuestThread};
use crate::tid::{ThreadId, TidSet};

/// A safety violation detected during an execution: a failed guest
/// assertion or a misuse of a kernel object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The thread whose transition triggered the violation.
    pub thread: ThreadId,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "violation in {}: {}", self.thread, self.message)
    }
}

impl std::error::Error for Violation {}

/// Overall status of a kernel execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelStatus {
    /// At least one thread is enabled.
    Running,
    /// Every thread finished: a terminating execution.
    Terminated,
    /// No thread is enabled but some have not finished: a deadlock.
    Deadlock,
    /// A safety violation was detected.
    Violation(Violation),
}

impl KernelStatus {
    /// Returns whether the execution can take another transition.
    pub fn is_running(&self) -> bool {
        matches!(self, KernelStatus::Running)
    }
}

/// Statistics accumulated over one execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Total transitions executed.
    pub steps: u64,
    /// Transitions that were synchronization operations (Table 1's
    /// "Synch Ops" metric).
    pub sync_ops: u64,
    /// Transitions that were yields (explicit yields, sleeps, timeouts).
    pub yields: u64,
}

/// Information about one executed transition, for traces.
#[derive(Debug, Clone, PartialEq)]
pub struct StepInfo {
    /// The operation that was executed.
    pub op: OpDesc,
    /// Whether the transition was yielding.
    pub kind: StepKind,
    /// The operation's result as delivered to the guest.
    pub result: OpResult,
    /// The dependence footprint of the executed operation: its
    /// sync-object accesses merged with the guest's declared
    /// shared-state effects (see [`crate::footprint`]).
    pub footprint: Footprint,
}

struct Slot<S> {
    guest: Box<dyn GuestThread<S>>,
    name: String,
}

/// One schedulable unit. Thread ids index the lane table: under
/// sequential consistency every lane is a guest and ids match the
/// historical numbering; under a buffering memory model every guest lane
/// is immediately followed by its *flusher* lane, the pseudo-thread that
/// drains the guest's store buffer one store per step.
enum Lane {
    /// A guest thread (index into the guest slot table).
    Guest(usize),
    /// The store-buffer flusher of guest `guest`; `owner` is the guest's
    /// lane id (what [`OpDesc::Flush`] reports in traces).
    Flusher {
        guest: usize,
        owner: ThreadId,
        name: String,
    },
}

impl Clone for Lane {
    fn clone(&self) -> Self {
        match self {
            Lane::Guest(g) => Lane::Guest(*g),
            Lane::Flusher { guest, owner, name } => Lane::Flusher {
                guest: *guest,
                owner: *owner,
                name: name.clone(),
            },
        }
    }

    // Reuses the flusher-name buffer when the kernel pool resets the lane
    // table from an execution template (see `Kernel::reset_from`).
    fn clone_from(&mut self, source: &Self) {
        match (self, source) {
            (
                Lane::Flusher { guest, owner, name },
                Lane::Flusher {
                    guest: sg,
                    owner: so,
                    name: sn,
                },
            ) => {
                *guest = *sg;
                *owner = *so;
                name.clone_from(sn);
            }
            (dst, src) => *dst = src.clone(),
        }
    }
}

/// Cached per-segment state captures for incremental fingerprinting.
///
/// The abstract state splits into segments — the shared state, one per
/// guest thread (locals plus pending op), the object table, and the
/// non-empty store buffers — and every kernel mutation dirties exactly
/// the segments it can change (marked at the mutation sites in
/// [`Kernel::step`], [`Kernel::spawn_boxed`] via the length check, and
/// friends). A [`Kernel::fingerprint`] or [`Kernel::state_bytes_into`]
/// query then re-captures only the dirty segments.
///
/// Shared-state writes by guest code are detected through the guest's
/// [`SharedEffects`] declaration — the same trust boundary sleep-set
/// reduction stands on, mechanically checkable with
/// [`Kernel::set_validate_effects`].
///
/// Each thread segment is cached in two parts: the guest's locals
/// capture and its pending-op capture. A guest's own step dirties both;
/// a declared shared write dirties only the op tails (pending ops are
/// `next_op(&shared)`, locals are untouched), and a tail whose
/// recomputed op is unchanged costs nothing to re-hash — the common
/// case, since most shared writes leave other threads' pending ops
/// alone. The combined segment hash is the FNV continuation of the
/// locals hash through the op bytes, byte-identical to hashing the
/// concatenated segment.
///
/// Lives in a `RefCell` so the read-only queries (`&self`) can refresh
/// it; the kernel holds `dyn` guests and is never shared across threads.
struct FpCache {
    /// Fast path armed? Off = the from-scratch reference path the
    /// equivalence tests compare against.
    enabled: bool,
    shared: StateWriter,
    /// Per-guest locals captures (`guest.capture` bytes only).
    threads: Vec<StateWriter>,
    /// Per-guest pending-op captures — the tail of each thread segment.
    thread_ops: Vec<StateWriter>,
    /// The op whose bytes sit in `thread_ops` (the equality shortcut for
    /// op-tail refreshes).
    pending: Vec<OpDesc>,
    /// Combined per-thread segment hashes: FNV over locals ++ op bytes.
    seg_hash: Vec<u64>,
    objects: StateWriter,
    buffers: StateWriter,
    shared_dirty: bool,
    /// Whole-segment staleness: the guest stepped, locals and op alike.
    threads_dirty: Vec<bool>,
    /// Op-tail-only staleness: a shared write may have changed the
    /// pending op, but the locals capture is still good.
    ops_dirty: Vec<bool>,
    objects_dirty: bool,
    buffers_dirty: bool,
}

impl FpCache {
    fn new(enabled: bool) -> Self {
        FpCache {
            enabled,
            shared: StateWriter::new(),
            threads: Vec::new(),
            thread_ops: Vec::new(),
            pending: Vec::new(),
            seg_hash: Vec::new(),
            objects: StateWriter::new(),
            buffers: StateWriter::new(),
            shared_dirty: true,
            threads_dirty: Vec::new(),
            ops_dirty: Vec::new(),
            objects_dirty: true,
            buffers_dirty: true,
        }
    }

    /// Marks every segment dirty and resizes the thread segments to
    /// `threads` entries, keeping existing writer allocations.
    fn invalidate_all(&mut self, threads: usize) {
        self.shared_dirty = true;
        self.objects_dirty = true;
        self.buffers_dirty = true;
        if self.threads.len() < threads {
            self.threads.resize_with(threads, StateWriter::new);
            self.thread_ops.resize_with(threads, StateWriter::new);
        } else {
            self.threads.truncate(threads);
            self.thread_ops.truncate(threads);
        }
        self.pending.clear();
        self.pending.resize(threads, OpDesc::Finished);
        self.seg_hash.clear();
        self.seg_hash.resize(threads, 0);
        self.threads_dirty.clear();
        self.threads_dirty.resize(threads, true);
        self.ops_dirty.clear();
        self.ops_dirty.resize(threads, false);
    }

    /// The shared state (may have) changed: its segment is stale, and so
    /// is every thread segment's op tail — pending ops are
    /// `next_op(&shared)`. The locals captures stay good.
    fn mark_shared_dirty(&mut self) {
        self.shared_dirty = true;
        for d in &mut self.ops_dirty {
            *d = true;
        }
    }
}

/// One fold step of the segment-combined fingerprint: FNV-1a over the
/// per-segment hashes.
fn fold_fp(h: u64, segment: u64) -> u64 {
    (h ^ segment).wrapping_mul(FNV_PRIME)
}

/// Memoized pending operations, one per guest slot.
///
/// `GuestThread::next_op` is a pure function of the guest's local state
/// and the shared state, and the exploration loop asks for it many times
/// per transition (status, enabled sets, yield/branching queries, the
/// step itself, capture refresh). The memo computes it once per
/// (guest-state, shared-state) pair and invalidates on exactly the events
/// that can change the answer: the guest's own step, and any declared
/// shared write — the same [`SharedEffects`] trust boundary the
/// fingerprint cache stands on. Flusher-lane ops are never memoized;
/// they are derived directly from the buffers.
///
/// Armed and disarmed together with [`FpCache`] through
/// [`Kernel::set_fingerprint_caching`], so the reference path recomputes
/// everything from scratch. Lives in its own `RefCell` because the
/// capture refresh reads it while holding the `FpCache` borrow.
struct OpMemo {
    /// Mirrors [`FpCache::enabled`]; kept as a copy so reads do not
    /// alias the `FpCache` borrow.
    enabled: bool,
    ops: Vec<Option<OpDesc>>,
}

impl OpMemo {
    fn new(enabled: bool) -> Self {
        OpMemo {
            enabled,
            ops: Vec::new(),
        }
    }

    /// Forgets every memoized op and resizes to `threads` slots.
    fn invalidate_all(&mut self, threads: usize) {
        self.ops.clear();
        self.ops.resize(threads, None);
    }

    /// Forgets guest `g`'s memoized op (no-op if the table has not
    /// caught up with a spawn yet — the length check on read handles it).
    fn invalidate(&mut self, g: usize) {
        if let Some(slot) = self.ops.get_mut(g) {
            *slot = None;
        }
    }
}

/// A deterministic multithreaded program instance: shared state `S`, a set
/// of guest threads, and a table of synchronization objects.
///
/// The kernel exposes exactly the interface the paper's Algorithm 1 needs:
/// the `enabled(t)` and `yield(t)` predicates, and a `NextState` function
/// ([`Kernel::step`]) executing one transition of a chosen thread. All
/// nondeterminism is external: the kernel never makes a scheduling choice
/// itself.
///
/// # Examples
///
/// ```
/// use chess_kernel::{Effects, GuestThread, Kernel, OpDesc, OpResult, ThreadId};
///
/// #[derive(Clone)]
/// struct SetFlag;
/// impl GuestThread<bool> for SetFlag {
///     fn next_op(&self, shared: &bool) -> OpDesc {
///         if *shared { OpDesc::Finished } else { OpDesc::Local }
///     }
///     fn on_op(&mut self, _: OpResult, shared: &mut bool, _: &mut Effects<bool>) {
///         *shared = true;
///     }
///     fn box_clone(&self) -> Box<dyn GuestThread<bool>> { Box::new(self.clone()) }
/// }
///
/// let mut k = Kernel::new(false);
/// let t = k.spawn(SetFlag);
/// assert!(k.enabled(t));
/// k.step(t, 0);
/// assert!(!k.enabled(t));
/// assert!(!k.status().is_running());
/// ```
pub struct Kernel<S> {
    shared: S,
    threads: Vec<Slot<S>>,
    /// Schedulable lanes; thread ids index this table.
    lanes: Vec<Lane>,
    memory: MemoryModel,
    /// Per-guest store buffers (parallel to `threads`; always empty under
    /// [`MemoryModel::Sc`]).
    buffers: Vec<StoreBuffer>,
    objects: Objects,
    violation: Option<Violation>,
    stats: ExecStats,
    /// When set, [`Kernel::step_validated`] (reached through the
    /// `TransitionSystem` impl) diffs the shared state around every step
    /// and reports mutations outside the guest's declared write-set.
    validate_effects: bool,
    /// Per-segment capture cache backing incremental fingerprints; see
    /// [`FpCache`]. Interior mutability lets the read-only queries
    /// refresh it.
    fp_cache: RefCell<FpCache>,
    /// Memoized pending guest ops; see [`OpMemo`].
    op_memo: RefCell<OpMemo>,
}

impl<S> Kernel<S> {
    /// Creates a kernel with the given shared state and no threads,
    /// executing under sequential consistency.
    pub fn new(shared: S) -> Self {
        Kernel::with_memory(shared, MemoryModel::Sc)
    }

    /// Creates a kernel executing atomic operations under `memory`.
    ///
    /// Under [`MemoryModel::Tso`]/[`MemoryModel::Pso`] every spawned guest
    /// gets a companion *flusher* lane (an extra thread id, directly after
    /// the guest's) that drains the guest's store buffer one store per
    /// scheduled step; see [`crate::memory`] for the semantics.
    pub fn with_memory(shared: S, memory: MemoryModel) -> Self {
        Kernel {
            shared,
            threads: Vec::new(),
            lanes: Vec::new(),
            memory,
            buffers: Vec::new(),
            objects: Objects::default(),
            violation: None,
            stats: ExecStats::default(),
            validate_effects: false,
            fp_cache: RefCell::new(FpCache::new(true)),
            op_memo: RefCell::new(OpMemo::new(true)),
        }
    }

    /// Arms (or disarms) per-step effect validation: with it on, the
    /// `TransitionSystem` impl routes every step through
    /// [`Kernel::step_validated`], which diffs the shared-state capture
    /// around the step and reports any mutation outside the guest's
    /// declared write-set as a violation. Off by default — the diff
    /// costs two captures per step.
    pub fn set_validate_effects(&mut self, on: bool) {
        self.validate_effects = on;
    }

    /// Is per-step effect validation armed?
    pub fn validate_effects(&self) -> bool {
        self.validate_effects
    }

    /// Arms (or disarms) incremental fingerprint caching. On by default;
    /// disabling it forces every [`Kernel::fingerprint`] and
    /// [`Kernel::state_bytes_into`] query down the from-scratch reference
    /// path. Both paths produce identical values — this switch exists so
    /// the equivalence tests can compare them.
    pub fn set_fingerprint_caching(&mut self, on: bool) {
        let n = self.threads.len();
        let cache = self.fp_cache.get_mut();
        cache.enabled = on;
        cache.invalidate_all(n);
        let memo = self.op_memo.get_mut();
        memo.enabled = on;
        memo.invalidate_all(n);
    }

    /// Is incremental fingerprint caching armed?
    pub fn fingerprint_caching(&self) -> bool {
        self.fp_cache.borrow().enabled
    }

    /// Dirties the object-table segment of the fingerprint cache.
    fn touch_objects(&mut self) {
        self.fp_cache.get_mut().objects_dirty = true;
    }

    /// The memory model this kernel executes under.
    pub fn memory_model(&self) -> MemoryModel {
        self.memory
    }

    /// Adds a guest thread and returns its id. Threads are identified by
    /// the order in which they are added.
    pub fn spawn(&mut self, guest: impl GuestThread<S> + 'static) -> ThreadId {
        self.spawn_boxed(Box::new(guest))
    }

    /// Adds an already-boxed guest thread.
    pub fn spawn_boxed(&mut self, guest: Box<dyn GuestThread<S>>) -> ThreadId {
        let name = guest.name();
        self.threads.push(Slot { guest, name });
        self.buffers.push(StoreBuffer::new());
        let g = self.threads.len() - 1;
        let owner = ThreadId::new(self.lanes.len());
        self.lanes.push(Lane::Guest(g));
        if self.memory.buffers() {
            let name = format!("{}:flush", self.threads[g].name);
            self.lanes.push(Lane::Flusher {
                guest: g,
                owner,
                name,
            });
        }
        owner
    }

    /// Creates a mutex.
    pub fn add_mutex(&mut self) -> MutexId {
        self.touch_objects();
        self.objects.add_mutex()
    }

    /// Creates a reader-writer lock.
    pub fn add_rwlock(&mut self) -> RwLockId {
        self.touch_objects();
        self.objects.add_rwlock()
    }

    /// Creates a counting semaphore with `permits` initial permits.
    pub fn add_semaphore(&mut self, permits: u32) -> SemaphoreId {
        self.touch_objects();
        self.objects.add_semaphore(permits)
    }

    /// Creates an auto-reset event (consumed by the first completed wait).
    pub fn add_auto_event(&mut self, initially_set: bool) -> EventId {
        self.touch_objects();
        self.objects.add_event(true, initially_set)
    }

    /// Creates a manual-reset event (stays set until explicitly reset).
    pub fn add_manual_event(&mut self, initially_set: bool) -> EventId {
        self.touch_objects();
        self.objects.add_event(false, initially_set)
    }

    /// Creates a condition variable.
    pub fn add_condvar(&mut self) -> CondvarId {
        self.touch_objects();
        self.objects.add_condvar()
    }

    /// Creates an atomic cell with an initial value.
    pub fn add_atomic(&mut self, value: u64) -> AtomicId {
        self.touch_objects();
        self.objects.add_atomic(value)
    }

    /// Creates an `parties`-party reusable barrier.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    pub fn add_barrier(&mut self, parties: u32) -> BarrierId {
        assert!(parties > 0, "a barrier needs at least one party");
        self.touch_objects();
        self.objects.add_barrier(parties)
    }

    /// Creates a bounded channel with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (rendezvous channels are not
    /// supported; use capacity 1 plus an event for a handshake).
    pub fn add_channel(&mut self, capacity: usize) -> ChannelId {
        assert!(capacity > 0, "channel capacity must be positive");
        self.touch_objects();
        self.objects.add_channel(capacity)
    }

    /// Number of schedulable lanes ever added (including finished ones).
    /// Under a buffering memory model this counts flusher lanes too: each
    /// guest contributes two ids.
    pub fn thread_count(&self) -> usize {
        self.lanes.len()
    }

    /// Iterates over all thread ids.
    pub fn thread_ids(&self) -> impl Iterator<Item = ThreadId> {
        (0..self.lanes.len()).map(ThreadId::new)
    }

    /// The display name of a thread (flusher lanes are named after their
    /// guest, e.g. `writer:flush`).
    pub fn thread_name(&self, t: ThreadId) -> &str {
        match &self.lanes[t.index()] {
            Lane::Guest(g) => &self.threads[*g].name,
            Lane::Flusher { name, .. } => name,
        }
    }

    /// Is thread `t` a store-buffer flusher lane?
    pub fn is_flush(&self, t: ThreadId) -> bool {
        matches!(self.lanes[t.index()], Lane::Flusher { .. })
    }

    /// The store buffer of the guest behind lane `t` (its own for a guest
    /// lane, the owner's for a flusher lane), or `None` under sequential
    /// consistency where no buffering happens.
    pub fn store_buffer(&self, t: ThreadId) -> Option<&StoreBuffer> {
        let (Lane::Guest(g) | Lane::Flusher { guest: g, .. }) = &self.lanes[t.index()];
        self.memory.buffers().then(|| &self.buffers[*g])
    }

    /// The guest slot index behind lane `t`.
    fn guest_of(&self, t: ThreadId) -> usize {
        let (Lane::Guest(g) | Lane::Flusher { guest: g, .. }) = &self.lanes[t.index()];
        *g
    }

    /// Shared state accessor (for assertions and result extraction).
    pub fn shared(&self) -> &S {
        &self.shared
    }

    /// Mutable shared state accessor, intended for test-harness setup
    /// before the search starts.
    pub fn shared_mut(&mut self) -> &mut S {
        self.fp_cache.get_mut().mark_shared_dirty();
        let n = self.threads.len();
        self.op_memo.get_mut().invalidate_all(n);
        &mut self.shared
    }

    /// The next operation thread `t` would perform (for traces). A
    /// flusher lane reports [`OpDesc::Flush`] while its guest's buffer is
    /// non-empty and [`OpDesc::Finished`] once drained, so termination
    /// requires every buffered store to reach memory.
    pub fn next_op(&self, t: ThreadId) -> OpDesc {
        self.next_op_in(&mut self.op_memo.borrow_mut(), t)
    }

    /// [`Kernel::next_op`] against an already-borrowed memo — the form
    /// the whole-table scans use, so one scan costs one `RefCell` borrow
    /// instead of one per thread.
    fn next_op_in(&self, memo: &mut OpMemo, t: ThreadId) -> OpDesc {
        match &self.lanes[t.index()] {
            Lane::Guest(g) => self.guest_op_in(memo, *g),
            Lane::Flusher { guest, owner, .. } => {
                if self.buffers[*guest].is_empty() {
                    OpDesc::Finished
                } else {
                    OpDesc::Flush(*owner)
                }
            }
        }
    }

    /// The pending op of guest slot `g`, memoized while fast caching is
    /// armed (see [`OpMemo`]); recomputed from the guest on every call
    /// otherwise.
    fn guest_op(&self, g: usize) -> OpDesc {
        self.guest_op_in(&mut self.op_memo.borrow_mut(), g)
    }

    /// [`Kernel::guest_op`] against an already-borrowed memo.
    fn guest_op_in(&self, memo: &mut OpMemo, g: usize) -> OpDesc {
        if !memo.enabled {
            return self.threads[g].guest.next_op(&self.shared);
        }
        // A spawn since the last invalidation grew the thread table;
        // resizing here both covers it and keeps indexing in bounds.
        if memo.ops.len() != self.threads.len() {
            memo.invalidate_all(self.threads.len());
        }
        if let Some(op) = memo.ops[g] {
            return op;
        }
        let op = self.threads[g].guest.next_op(&self.shared);
        memo.ops[g] = Some(op);
        op
    }

    /// Has thread `t` finished?
    pub fn is_finished(&self, t: ThreadId) -> bool {
        matches!(self.next_op(t), OpDesc::Finished)
    }

    /// The paper's `enabled(t)` predicate: can `t` take a transition now?
    pub fn enabled(&self, t: ThreadId) -> bool {
        self.enabled_in(&mut self.op_memo.borrow_mut(), t)
    }

    /// [`Kernel::enabled`] against an already-borrowed memo.
    fn enabled_in(&self, memo: &mut OpMemo, t: ThreadId) -> bool {
        match self.next_op_in(memo, t) {
            OpDesc::Finished => false,
            OpDesc::Join(u) => matches!(self.next_op_in(memo, u), OpDesc::Finished),
            // A flusher only reports Flush while its buffer is non-empty,
            // and draining one store is always possible.
            OpDesc::Flush(_) => true,
            // A fence waits for the issuing thread's buffer to drain
            // (no-op under SC, where nothing buffers).
            OpDesc::Fence => self.memory.is_sc() || self.buffers[self.guest_of(t)].is_empty(),
            // Read-modify-write ops act on memory directly and carry an
            // implicit fence (x86 LOCK semantics): they wait out the
            // issuing thread's own buffered stores.
            OpDesc::AtomicCas(..) | OpDesc::AtomicSwap(..) | OpDesc::AtomicAdd(..)
                if self.memory.buffers() =>
            {
                self.buffers[self.guest_of(t)].is_empty()
            }
            op => self.objects.satisfiable(t, &op),
        }
    }

    /// The set of enabled threads (the paper's `ES`).
    pub fn enabled_set(&self) -> TidSet {
        let mut out = TidSet::new();
        self.enabled_set_into(&mut out);
        out
    }

    /// [`Kernel::enabled_set`] writing into a caller-provided set,
    /// clearing it first — the allocation-free form for the explorer's
    /// per-step loop. One memo borrow covers the whole scan.
    pub fn enabled_set_into(&self, out: &mut TidSet) {
        out.clear();
        let memo = &mut *self.op_memo.borrow_mut();
        for t in self.thread_ids() {
            if self.enabled_in(memo, t) {
                out.insert(t);
            }
        }
    }

    /// The paper's `yield(t)` predicate: is `t` enabled and would its next
    /// transition be a yield?
    pub fn is_yielding(&self, t: ThreadId) -> bool {
        self.enabled(t) && self.objects.is_yielding(&self.next_op(t))
    }

    /// The number of branches exploring thread `t` requires (1 except for
    /// [`OpDesc::Choose`], and PSO flushers with several distinct buffered
    /// locations, which may drain in any cross-location order).
    pub fn branching(&self, t: ThreadId) -> usize {
        match &self.lanes[t.index()] {
            Lane::Flusher { guest, .. } if self.memory == MemoryModel::Pso => {
                self.buffers[*guest].location_count().max(1)
            }
            _ => self.next_op(t).branching(),
        }
    }

    /// The dependence footprint of the transition thread `t` would take,
    /// queryable before stepping.
    ///
    /// Sync-object accesses come from the op itself
    /// ([`footprint_of_op_into`]); shared-state accesses come from the
    /// guest's [`GuestThread::shared_effects`] declaration (default: a
    /// conservative whole-state write, which keeps undeclared guests
    /// pairwise dependent).
    pub fn next_footprint(&self, t: ThreadId) -> Footprint {
        let mut fp = Footprint::local();
        self.next_footprint_into(t, &mut fp);
        fp
    }

    /// [`Kernel::next_footprint`] writing into a caller-provided
    /// footprint, clearing it first — the allocation-free form for the
    /// explorer's per-option loop.
    pub fn next_footprint_into(&self, t: ThreadId, fp: &mut Footprint) {
        fp.clear();
        match &self.lanes[t.index()] {
            // A flush writes memory cells but never the shared guest
            // state (no `on_op` runs), so it provably commutes with
            // transitions that touch neither its locations nor its
            // buffer. Under TSO only the oldest store can drain, so only
            // its location is named; under PSO the choice picks any
            // distinct location, so all of them are. The `Buffer(owner)`
            // marker keeps a sleeping flush decision dependent with the
            // owner's later buffered stores, which can change the
            // flusher's choice set (see [`Kernel::branching`]).
            Lane::Flusher { guest, owner, .. } => {
                match self.memory {
                    MemoryModel::Pso => {
                        for a in self.buffers[*guest].locations() {
                            fp.push(ObjectRef::Atomic(a), AccessKind::Flush);
                        }
                    }
                    _ => {
                        if let Some(a) = self.buffers[*guest].oldest_location() {
                            fp.push(ObjectRef::Atomic(a), AccessKind::Flush);
                        }
                    }
                }
                fp.push(ObjectRef::Buffer(*owner), AccessKind::Flush);
            }
            Lane::Guest(g) => {
                let op = self.guest_op(*g);
                match op {
                    // A buffered store touches the cell (its flush will
                    // change it) but as a `Buffered` access, so traces
                    // distinguish `[buffer atomic0]` from `[write
                    // atomic0]`; the `Buffer(t)` marker makes it
                    // dependent with sleeping flush and fence decisions
                    // on this thread's buffer.
                    OpDesc::AtomicStore(a, _) if self.memory.buffers() => {
                        fp.push(ObjectRef::Atomic(a), AccessKind::Buffered);
                        fp.push(ObjectRef::Buffer(t), AccessKind::Buffered);
                    }
                    OpDesc::Fence => {
                        fp.push(ObjectRef::Buffer(t), AccessKind::Fence);
                    }
                    ref op => footprint_of_op_into(op, fp),
                }
                // Finished threads never step: keep their footprint
                // empty rather than asking for effects they won't have.
                if !matches!(op, OpDesc::Finished) {
                    self.threads[*g].guest.shared_effects(&op).apply_to(fp);
                }
            }
        }
    }

    /// Executes one transition of thread `t`.
    ///
    /// `choice` selects the branch for a [`OpDesc::Choose`] operation and
    /// is ignored otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not enabled or `choice` is out of range; both
    /// indicate a scheduler bug, not a guest bug.
    pub fn step(&mut self, t: ThreadId, choice: u32) -> StepInfo {
        // Query the footprint before mutating anything so StepInfo agrees
        // with what `next_footprint` reported to the strategy.
        let footprint = self.next_footprint(t);
        self.step_with_footprint(t, choice, footprint)
    }

    /// [`Kernel::step`] without the footprint query: the returned
    /// `StepInfo` carries an empty placeholder footprint. For drivers
    /// that never read it (the default `TransitionSystem` stepping path,
    /// which uses only the step kind) this skips a footprint computation
    /// per transition.
    pub fn step_fast(&mut self, t: ThreadId, choice: u32) -> StepInfo {
        self.step_with_footprint(t, choice, Footprint::local())
    }

    fn step_with_footprint(&mut self, t: ThreadId, choice: u32, footprint: Footprint) -> StepInfo {
        assert!(
            self.enabled(t),
            "scheduler bug: stepped disabled thread {t}"
        );
        let g = match &self.lanes[t.index()] {
            Lane::Guest(g) => *g,
            Lane::Flusher { guest, owner, .. } => {
                let (guest, owner) = (*guest, *owner);
                return self.flush_step(t, guest, owner, choice, footprint);
            }
        };
        let op = self.next_op(t);
        let cache_on = self.fp_cache.get_mut().enabled;
        // Whether `on_op` may mutate the shared state, per the guest's
        // declaration — the write half of the same contract sleep-set
        // reduction trusts (checked by `--validate-effects`). Queried
        // before the step because the op changes under it.
        let shared_write = cache_on && self.threads[g].guest.shared_effects(&op).may_write();
        let mut objects_touched = false;
        let mut buffers_touched = false;
        let (result, kind) = match op {
            OpDesc::Local | OpDesc::Join(_) => (OpResult::Unit, StepKind::Normal),
            // `enabled` guarantees the buffer already drained (or SC,
            // where there is nothing to drain): the fence itself is a
            // no-op transition.
            OpDesc::Fence => (OpResult::Unit, StepKind::Normal),
            // Under a buffering model a store goes to the issuing
            // thread's buffer, not memory; its flusher lane becomes
            // schedulable.
            OpDesc::AtomicStore(a, v) if self.memory.buffers() => {
                self.buffers[g].push(a, v);
                buffers_touched = true;
                (OpResult::Unit, StepKind::Normal)
            }
            // A load forwards from the youngest buffered store to the
            // same location; only on a miss does it read memory.
            OpDesc::AtomicLoad(a) if self.memory.buffers() => match self.buffers[g].lookup(a) {
                Some(v) => (OpResult::Value(v), StepKind::Normal),
                None => self
                    .objects
                    .execute(t, &op)
                    .expect("atomic loads cannot fault"),
            },
            OpDesc::Choose(n) => {
                if n == 0 {
                    self.violation = Some(Violation {
                        thread: t,
                        message: "Choose(0) has no branches".to_string(),
                    });
                    // The violating transition still executed: count it,
                    // or kernel and search stats disagree by one.
                    self.stats.steps += 1;
                    return StepInfo {
                        footprint,
                        op,
                        kind: StepKind::Normal,
                        result: OpResult::Choice(0),
                    };
                }
                assert!(choice < n, "scheduler bug: choice {choice} out of {n}");
                (OpResult::Choice(choice), StepKind::Normal)
            }
            OpDesc::Finished => unreachable!("finished threads are never enabled"),
            ref obj_op => match self.objects.execute(t, obj_op) {
                Ok(r) => {
                    objects_touched = true;
                    r
                }
                Err(v) => {
                    // Conservatively stale: `execute` may have mutated the
                    // table before faulting.
                    self.touch_objects();
                    self.violation = Some(Violation {
                        thread: t,
                        message: v.0,
                    });
                    // The violating transition still executed: count it
                    // (and the sync op it attempted), or kernel and
                    // search stats disagree by one.
                    self.stats.steps += 1;
                    if op.is_sync_op() {
                        self.stats.sync_ops += 1;
                    }
                    return StepInfo {
                        footprint,
                        op,
                        kind: StepKind::Normal,
                        result: OpResult::Unit,
                    };
                }
            },
        };
        self.stats.steps += 1;
        if op.is_sync_op() {
            self.stats.sync_ops += 1;
        }
        if kind.is_yield() {
            self.stats.yields += 1;
        }
        let stride = if self.memory.buffers() { 2 } else { 1 };
        let mut fx = Effects::with_stride(self.lanes.len(), stride);
        {
            let slot = &mut self.threads[g];
            slot.guest.on_op(result, &mut self.shared, &mut fx);
        }
        for guest in fx.spawns {
            self.spawn_boxed(guest);
        }
        if let Some(message) = fx.violation {
            self.violation = Some(Violation { thread: t, message });
        }
        if cache_on {
            // Spawns grew the thread table; `refresh_cache`'s length
            // check already invalidates everything in that (rare) case.
            let cache = self.fp_cache.get_mut();
            if let Some(d) = cache.threads_dirty.get_mut(g) {
                *d = true;
            }
            if shared_write {
                cache.mark_shared_dirty();
            }
            if objects_touched {
                cache.objects_dirty = true;
            }
            if buffers_touched {
                cache.buffers_dirty = true;
            }
            // `on_op` ran: the stepping guest's pending op is stale, and
            // so is everyone's if the shared state was (declared)
            // written. The early-return paths above skip this because no
            // guest code ran there — neither locals nor shared changed.
            let n = self.threads.len();
            let memo = self.op_memo.get_mut();
            if shared_write {
                memo.invalidate_all(n);
            } else {
                memo.invalidate(g);
            }
        }
        StepInfo {
            footprint,
            op,
            kind,
            result,
        }
    }

    /// Executes one flusher-lane transition: drains one buffered store of
    /// guest `g` to memory. No guest code runs (`on_op` is not called) —
    /// the flush is a pure memory-system step, which is why its footprint
    /// carries no shared-state write.
    fn flush_step(
        &mut self,
        t: ThreadId,
        g: usize,
        owner: ThreadId,
        choice: u32,
        footprint: Footprint,
    ) -> StepInfo {
        let (a, v) = match self.memory {
            MemoryModel::Pso => {
                let locs = self.buffers[g].locations();
                assert!(
                    (choice as usize) < locs.len(),
                    "scheduler bug: flush choice {choice} out of {}",
                    locs.len()
                );
                let a = locs[choice as usize];
                let v = self.buffers[g]
                    .pop_location(a)
                    .expect("chosen location has a buffered store");
                (a, v)
            }
            _ => self.buffers[g]
                .pop_oldest()
                .expect("flusher lanes are only enabled while the buffer is non-empty"),
        };
        let (result, kind) = self
            .objects
            .execute(t, &OpDesc::AtomicStore(a, v))
            .expect("atomic stores cannot fault");
        self.stats.steps += 1;
        self.stats.sync_ops += 1;
        {
            // A flush moves a store from the buffer into the atomic
            // table; no guest code runs, so the owner's pending op (a
            // function of guest locals and shared state only) is intact.
            let cache = self.fp_cache.get_mut();
            if cache.enabled {
                cache.objects_dirty = true;
                cache.buffers_dirty = true;
            }
        }
        StepInfo {
            footprint,
            op: OpDesc::Flush(owner),
            kind,
            result,
        }
    }

    /// Current execution status.
    pub fn status(&self) -> KernelStatus {
        if let Some(v) = &self.violation {
            return KernelStatus::Violation(v.clone());
        }
        let memo = &mut *self.op_memo.borrow_mut();
        let mut any_active = false;
        for t in self.thread_ids() {
            if !matches!(self.next_op_in(memo, t), OpDesc::Finished) {
                any_active = true;
                if self.enabled_in(memo, t) {
                    return KernelStatus::Running;
                }
            }
        }
        if any_active {
            KernelStatus::Deadlock
        } else {
            KernelStatus::Terminated
        }
    }

    /// Injects a violation from outside a transition (used by external
    /// monitors checking whole-program invariants between transitions).
    pub fn report_violation(&mut self, thread: ThreadId, message: impl Into<String>) {
        if self.violation.is_none() {
            self.violation = Some(Violation {
                thread,
                message: message.into(),
            });
        }
    }

    /// Statistics of this execution so far.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Number of synchronization objects created.
    pub fn object_count(&self) -> usize {
        self.objects.count()
    }
}

impl<S: Capture> Kernel<S> {
    /// Captures the complete abstract state: shared state, every thread's
    /// local state plus its next operation, and all object states.
    ///
    /// Two kernels with equal captures are behaviorally equivalent (given
    /// faithful [`Capture`]/[`GuestThread::capture`] implementations), so
    /// the returned writer's bytes serve as an exact visited-set key.
    pub fn capture_state(&self) -> StateWriter {
        let mut w = StateWriter::new();
        self.shared.capture(&mut w);
        for g in 0..self.threads.len() {
            self.capture_thread_seg(g, &mut w);
        }
        self.objects.capture(&mut w);
        self.capture_buffers_seg(&mut w);
        w
    }

    /// Captures one guest-thread segment: the guest's local state plus
    /// its pending op. The pending op disambiguates threads whose
    /// `capture` is coarse; it is part of the control state.
    fn capture_thread_seg(&self, g: usize, w: &mut StateWriter) {
        self.threads[g].guest.capture(w);
        self.guest_op(g).capture(w);
    }

    /// Captures the store-buffer segment. Buffer contents are control
    /// state too (they decide what loads forward and what flushes
    /// remain). Only non-empty buffers are written, so a terminal state
    /// (all buffers drained) captures to exactly the same bytes as the
    /// equivalent SC state — the property the cross-model
    /// outcome-monotonicity oracle relies on.
    fn capture_buffers_seg(&self, w: &mut StateWriter) {
        for (g, buf) in self.buffers.iter().enumerate() {
            if !buf.is_empty() {
                w.write_u32(g as u32 + 1);
                w.write_usize(buf.len());
                for (a, v) in buf.entries() {
                    w.write_u32(a.index() as u32);
                    w.write_u64(v);
                }
            }
        }
    }

    /// Re-captures the dirty segments of the fingerprint cache (and
    /// everything, if the thread table changed size under it).
    fn refresh_cache(&self, cache: &mut FpCache) {
        if cache.threads.len() != self.threads.len() {
            cache.invalidate_all(self.threads.len());
        }
        if cache.shared_dirty {
            cache.shared.clear();
            self.shared.capture(&mut cache.shared);
            cache.shared_dirty = false;
        }
        let memo = &mut *self.op_memo.borrow_mut();
        for g in 0..self.threads.len() {
            if cache.threads_dirty[g] {
                // The guest stepped: locals and op tail both stale.
                cache.threads[g].clear();
                self.threads[g].guest.capture(&mut cache.threads[g]);
                let op = self.guest_op_in(memo, g);
                cache.thread_ops[g].clear();
                op.capture(&mut cache.thread_ops[g]);
                cache.pending[g] = op;
                cache.seg_hash[g] = crate::capture::fnv_continue(
                    cache.threads[g].fingerprint(),
                    cache.thread_ops[g].as_bytes(),
                );
                cache.threads_dirty[g] = false;
                cache.ops_dirty[g] = false;
            } else if cache.ops_dirty[g] {
                // A shared write elsewhere: only the pending op can have
                // changed — and usually it hasn't.
                let op = self.guest_op_in(memo, g);
                if op != cache.pending[g] {
                    cache.thread_ops[g].clear();
                    op.capture(&mut cache.thread_ops[g]);
                    cache.pending[g] = op;
                    cache.seg_hash[g] = crate::capture::fnv_continue(
                        cache.threads[g].fingerprint(),
                        cache.thread_ops[g].as_bytes(),
                    );
                }
                cache.ops_dirty[g] = false;
            }
        }
        if cache.objects_dirty {
            cache.objects.clear();
            self.objects.capture(&mut cache.objects);
            cache.objects_dirty = false;
        }
        if cache.buffers_dirty {
            cache.buffers.clear();
            self.capture_buffers_seg(&mut cache.buffers);
            cache.buffers_dirty = false;
        }
    }

    /// 64-bit fingerprint of the abstract state: a fold of the
    /// per-segment FNV-1a hashes (shared state, each guest thread, the
    /// object table, the store buffers).
    ///
    /// With fingerprint caching armed (the default) only segments dirtied
    /// since the last query are re-captured; the value is identical on
    /// the cached and from-scratch paths, which the equivalence tests and
    /// the `proptest` in `crates/tests` pin. Cycle detection feeds these
    /// values into scheduling decisions, so the two paths agreeing is a
    /// correctness requirement, not a nicety.
    pub fn fingerprint(&self) -> u64 {
        let mut cache = self.fp_cache.borrow_mut();
        if !cache.enabled {
            drop(cache);
            return self.fresh_fingerprint();
        }
        self.refresh_cache(&mut cache);
        let mut h = fold_fp(FNV_OFFSET, cache.shared.fingerprint());
        for &sh in &cache.seg_hash {
            h = fold_fp(h, sh);
        }
        h = fold_fp(h, cache.objects.fingerprint());
        fold_fp(h, cache.buffers.fingerprint())
    }

    /// The from-scratch fingerprint: same per-segment fold as the cached
    /// path, computed through one reused writer.
    fn fresh_fingerprint(&self) -> u64 {
        let mut w = StateWriter::new();
        self.shared.capture(&mut w);
        let mut h = fold_fp(FNV_OFFSET, w.fingerprint());
        for g in 0..self.threads.len() {
            w.clear();
            self.capture_thread_seg(g, &mut w);
            h = fold_fp(h, w.fingerprint());
        }
        w.clear();
        self.objects.capture(&mut w);
        h = fold_fp(h, w.fingerprint());
        w.clear();
        self.capture_buffers_seg(&mut w);
        fold_fp(h, w.fingerprint())
    }

    /// Writes the bytes of [`Kernel::capture_state`] into a
    /// caller-provided buffer, clearing it first. With fingerprint
    /// caching armed the bytes are assembled from the cached segments
    /// without re-capturing clean ones; the result is byte-identical to
    /// the from-scratch capture either way.
    pub fn state_bytes_into(&self, out: &mut Vec<u8>) {
        out.clear();
        let mut cache = self.fp_cache.borrow_mut();
        if !cache.enabled {
            drop(cache);
            out.extend_from_slice(self.capture_state().as_bytes());
            return;
        }
        self.refresh_cache(&mut cache);
        out.extend_from_slice(cache.shared.as_bytes());
        for (tw, ow) in cache.threads.iter().zip(&cache.thread_ops) {
            out.extend_from_slice(tw.as_bytes());
            out.extend_from_slice(ow.as_bytes());
        }
        out.extend_from_slice(cache.objects.as_bytes());
        out.extend_from_slice(cache.buffers.as_bytes());
    }

    /// Captures the shared state alone (not threads or objects).
    fn capture_shared(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        self.shared.capture(&mut w);
        w.into_bytes()
    }

    /// Captures one named cell of the shared state.
    fn capture_cell(&self, name: &'static str, index: u32) -> Vec<u8> {
        let mut w = StateWriter::new();
        self.shared.capture_cell(name, index, &mut w);
        w.into_bytes()
    }

    /// Executes one transition like [`Kernel::step`], additionally
    /// checking the guest's [`GuestThread::shared_effects`] declaration
    /// against the mutation the step actually performed.
    ///
    /// The check diffs the per-cell captures ([`Capture::cells`] /
    /// [`Capture::capture_cell`]) and the whole shared-state capture
    /// around the step. A changed cell outside the declared write-set —
    /// or a changed whole-state capture with no named cell changed, i.e.
    /// a mutation of un-named residue — is reported as a violation.
    /// Steps declared [`SharedEffects::Whole`] and flusher-lane steps
    /// (which never run guest code) skip the diff.
    ///
    /// This is the validation mode behind the `TransitionSystem` impl
    /// when [`Kernel::set_validate_effects`] is armed; it checks the
    /// write half of the declaration contract mechanically (the read
    /// half is not observable from state diffs).
    pub fn step_validated(&mut self, t: ThreadId, choice: u32) -> StepInfo {
        let effects = match &self.lanes[t.index()] {
            // A flush never runs guest code: `on_op` is not called and
            // the shared state cannot change.
            Lane::Flusher { .. } => SharedEffects::Pure,
            Lane::Guest(g) => {
                let op = self.threads[*g].guest.next_op(&self.shared);
                self.threads[*g].guest.shared_effects(&op)
            }
        };
        if effects.is_whole() {
            // Nothing to check: the declaration permits any mutation.
            return self.step(t, choice);
        }
        let label = self.thread_name(t).to_string();
        let op = self.next_op(t);
        let cells = self.shared.cells();
        let before: Vec<Vec<u8>> = cells
            .iter()
            .map(|&(n, i)| self.capture_cell(n, i))
            .collect();
        let whole_before = self.capture_shared();
        let info = self.step(t, choice);
        let undeclared: Vec<String> = cells
            .iter()
            .enumerate()
            .filter(|&(idx, &(n, i))| {
                !effects.allows_write(n, i) && self.capture_cell(n, i) != before[idx]
            })
            .map(|(_, &(n, i))| ObjectRef::Cell(n, i).to_string())
            .collect();
        if !undeclared.is_empty() {
            self.report_violation(
                t,
                format!(
                    "undeclared shared-state write: '{label}' ({op:?}) declared {} but \
                     mutated [{}]",
                    effects.describe(),
                    undeclared.join(", ")
                ),
            );
        } else if self.capture_shared() != whole_before
            && cells
                .iter()
                .enumerate()
                .all(|(idx, &(n, i))| self.capture_cell(n, i) == before[idx])
        {
            self.report_violation(
                t,
                format!(
                    "undeclared shared-state write: '{label}' ({op:?}) declared {} but \
                     mutated shared state outside the named cells",
                    effects.describe()
                ),
            );
        }
        info
    }
}

impl<S: Clone> Clone for Kernel<S> {
    fn clone(&self) -> Self {
        Kernel {
            shared: self.shared.clone(),
            threads: self
                .threads
                .iter()
                .map(|s| Slot {
                    guest: s.guest.box_clone(),
                    name: s.name.clone(),
                })
                .collect(),
            lanes: self.lanes.clone(),
            memory: self.memory,
            buffers: self.buffers.clone(),
            objects: self.objects.clone(),
            violation: self.violation.clone(),
            stats: self.stats,
            validate_effects: self.validate_effects,
            // A fresh all-dirty cache: captures are lazily rebuilt on the
            // clone's first fingerprint query.
            fp_cache: RefCell::new(FpCache::new(self.fp_cache.borrow().enabled)),
            op_memo: RefCell::new(OpMemo::new(self.op_memo.borrow().enabled)),
        }
    }
}

impl<S: Clone> Kernel<S> {
    /// Rebuilds this kernel into a fresh copy of `template`, reusing the
    /// allocations this instance already owns (thread/lane/buffer tables,
    /// object tables, buffer queues, name strings, cache writers).
    ///
    /// This is the allocation-pooling path behind the explorer's
    /// per-execution reset: behaviorally it is exactly
    /// `*self = template.clone()`, which the `reset_from` tests pin. The
    /// guest boxes themselves are re-cloned — trait objects cannot be
    /// reset in place — so the per-execution cost drops to one small
    /// allocation per thread.
    pub fn reset_from(&mut self, template: &Self) {
        self.shared.clone_from(&template.shared);
        self.threads.truncate(template.threads.len());
        let have = self.threads.len();
        for (dst, src) in self.threads.iter_mut().zip(&template.threads) {
            dst.guest = src.guest.box_clone();
            dst.name.clone_from(&src.name);
        }
        for src in &template.threads[have..] {
            self.threads.push(Slot {
                guest: src.guest.box_clone(),
                name: src.name.clone(),
            });
        }
        self.lanes.clone_from(&template.lanes);
        self.memory = template.memory;
        self.buffers.clone_from(&template.buffers);
        self.objects.clone_from(&template.objects);
        self.violation.clone_from(&template.violation);
        self.stats = template.stats;
        self.validate_effects = template.validate_effects;
        let enabled = template.fp_cache.borrow().enabled;
        let n = self.threads.len();
        let cache = self.fp_cache.get_mut();
        cache.enabled = enabled;
        cache.invalidate_all(n);
        let memo = self.op_memo.get_mut();
        memo.enabled = enabled;
        memo.invalidate_all(n);
    }
}

impl<S: fmt::Debug> fmt::Debug for Kernel<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kernel")
            .field("shared", &self.shared)
            .field("threads", &self.threads.len())
            .field("memory", &self.memory)
            .field("objects", &self.objects.count())
            .field("violation", &self.violation)
            .field("stats", &self.stats)
            .field("validate_effects", &self.validate_effects)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone)]
    struct Locker {
        pc: u8,
        m: MutexId,
    }

    impl GuestThread<u32> for Locker {
        fn next_op(&self, _: &u32) -> OpDesc {
            match self.pc {
                0 => OpDesc::Acquire(self.m),
                1 => OpDesc::Local,
                2 => OpDesc::Release(self.m),
                _ => OpDesc::Finished,
            }
        }
        fn on_op(&mut self, _: OpResult, shared: &mut u32, _: &mut Effects<u32>) {
            if self.pc == 1 {
                *shared += 1;
            }
            self.pc += 1;
        }
        fn name(&self) -> String {
            "locker".to_string()
        }
        fn box_clone(&self) -> Box<dyn GuestThread<u32>> {
            Box::new(self.clone())
        }
    }

    fn two_lockers() -> (Kernel<u32>, ThreadId, ThreadId) {
        let mut k = Kernel::new(0u32);
        let m = k.add_mutex();
        let a = k.spawn(Locker { pc: 0, m });
        let b = k.spawn(Locker { pc: 0, m });
        (k, a, b)
    }

    #[test]
    fn mutual_exclusion_disables_contender() {
        let (mut k, a, b) = two_lockers();
        assert!(k.enabled(a) && k.enabled(b));
        k.step(a, 0);
        assert!(k.enabled(a));
        assert!(!k.enabled(b), "b must be disabled while a holds the lock");
        k.step(a, 0);
        k.step(a, 0); // release
        assert!(k.enabled(b));
    }

    #[test]
    fn terminating_execution_counts_state() {
        let (mut k, a, b) = two_lockers();
        for t in [a, a, a, b, b, b] {
            k.step(t, 0);
        }
        assert_eq!(*k.shared(), 2);
        assert_eq!(k.status(), KernelStatus::Terminated);
        assert_eq!(k.stats().steps, 6);
        assert_eq!(k.stats().sync_ops, 4); // 2 acquires + 2 releases
    }

    #[test]
    fn deadlock_detected() {
        // Two threads each holding one lock and wanting the other.
        #[derive(Clone)]
        struct Deadlocker {
            pc: u8,
            first: MutexId,
            second: MutexId,
        }
        impl GuestThread<()> for Deadlocker {
            fn next_op(&self, _: &()) -> OpDesc {
                match self.pc {
                    0 => OpDesc::Acquire(self.first),
                    1 => OpDesc::Acquire(self.second),
                    _ => OpDesc::Finished,
                }
            }
            fn on_op(&mut self, _: OpResult, _: &mut (), _: &mut Effects<()>) {
                self.pc += 1;
            }
            fn box_clone(&self) -> Box<dyn GuestThread<()>> {
                Box::new(self.clone())
            }
        }
        let mut k = Kernel::new(());
        let m1 = k.add_mutex();
        let m2 = k.add_mutex();
        let a = k.spawn(Deadlocker {
            pc: 0,
            first: m1,
            second: m2,
        });
        let b = k.spawn(Deadlocker {
            pc: 0,
            first: m2,
            second: m1,
        });
        k.step(a, 0);
        k.step(b, 0);
        assert_eq!(k.status(), KernelStatus::Deadlock);
    }

    #[test]
    fn violation_from_guest_assertion() {
        #[derive(Clone)]
        struct Failer(bool);
        impl GuestThread<()> for Failer {
            fn next_op(&self, _: &()) -> OpDesc {
                if self.0 {
                    OpDesc::Finished
                } else {
                    OpDesc::Local
                }
            }
            fn on_op(&mut self, _: OpResult, _: &mut (), fx: &mut Effects<()>) {
                fx.fail("boom");
                self.0 = true;
            }
            fn box_clone(&self) -> Box<dyn GuestThread<()>> {
                Box::new(self.clone())
            }
        }
        let mut k = Kernel::new(());
        let t = k.spawn(Failer(false));
        k.step(t, 0);
        match k.status() {
            KernelStatus::Violation(v) => {
                assert_eq!(v.thread, t);
                assert_eq!(v.message, "boom");
            }
            s => panic!("expected violation, got {s:?}"),
        }
    }

    #[test]
    fn dynamic_spawn_and_join() {
        #[derive(Clone)]
        struct Child;
        impl GuestThread<u32> for Child {
            fn next_op(&self, shared: &u32) -> OpDesc {
                if *shared == 0 {
                    OpDesc::Local
                } else {
                    OpDesc::Finished
                }
            }
            fn on_op(&mut self, _: OpResult, shared: &mut u32, _: &mut Effects<u32>) {
                *shared = 1;
            }
            fn box_clone(&self) -> Box<dyn GuestThread<u32>> {
                Box::new(self.clone())
            }
        }
        #[derive(Clone)]
        struct Parent {
            pc: u8,
            child: Option<ThreadId>,
        }
        impl GuestThread<u32> for Parent {
            fn next_op(&self, _: &u32) -> OpDesc {
                match self.pc {
                    0 => OpDesc::Local,
                    1 => OpDesc::Join(self.child.unwrap()),
                    _ => OpDesc::Finished,
                }
            }
            fn on_op(&mut self, _: OpResult, _: &mut u32, fx: &mut Effects<u32>) {
                if self.pc == 0 {
                    self.child = Some(fx.spawn(Box::new(Child)));
                }
                self.pc += 1;
            }
            fn box_clone(&self) -> Box<dyn GuestThread<u32>> {
                Box::new(self.clone())
            }
        }
        let mut k = Kernel::new(0u32);
        let p = k.spawn(Parent { pc: 0, child: None });
        k.step(p, 0);
        assert_eq!(k.thread_count(), 2);
        let c = ThreadId::new(1);
        // Parent blocked on join until the child finishes.
        assert!(!k.enabled(p));
        assert!(k.enabled(c));
        k.step(c, 0);
        assert!(k.enabled(p));
        k.step(p, 0);
        assert_eq!(k.status(), KernelStatus::Terminated);
    }

    #[test]
    fn choose_branches() {
        #[derive(Clone)]
        struct Chooser {
            picked: Option<u32>,
        }
        impl GuestThread<()> for Chooser {
            fn next_op(&self, _: &()) -> OpDesc {
                if self.picked.is_none() {
                    OpDesc::Choose(3)
                } else {
                    OpDesc::Finished
                }
            }
            fn on_op(&mut self, r: OpResult, _: &mut (), _: &mut Effects<()>) {
                self.picked = Some(r.as_choice());
            }
            fn box_clone(&self) -> Box<dyn GuestThread<()>> {
                Box::new(self.clone())
            }
        }
        let mut k = Kernel::new(());
        let t = k.spawn(Chooser { picked: None });
        assert_eq!(k.branching(t), 3);
        k.step(t, 2);
        assert_eq!(k.status(), KernelStatus::Terminated);
    }

    #[test]
    fn clone_snapshots_full_state() {
        let (mut k, a, b) = two_lockers();
        k.step(a, 0);
        let snap = k.clone();
        k.step(a, 0);
        k.step(a, 0);
        k.step(b, 0);
        // The snapshot still has a holding the lock and b disabled.
        assert!(!snap.enabled(b));
        assert_eq!(*snap.shared(), 0);
        assert_eq!(*k.shared(), 1);
    }

    #[test]
    fn object_misuse_becomes_violation() {
        #[derive(Clone)]
        struct BadRelease(MutexId, bool);
        impl GuestThread<()> for BadRelease {
            fn next_op(&self, _: &()) -> OpDesc {
                if self.1 {
                    OpDesc::Finished
                } else {
                    OpDesc::Release(self.0)
                }
            }
            fn on_op(&mut self, _: OpResult, _: &mut (), _: &mut Effects<()>) {
                self.1 = true;
            }
            fn box_clone(&self) -> Box<dyn GuestThread<()>> {
                Box::new(self.clone())
            }
        }
        let mut k = Kernel::new(());
        let m = k.add_mutex();
        let t = k.spawn(BadRelease(m, false));
        k.step(t, 0);
        assert!(matches!(k.status(), KernelStatus::Violation(_)));
    }

    /// An object-misuse violation is still a transition that executed:
    /// `steps` (and `sync_ops` for a sync op) must count it, or the
    /// kernel's stats disagree with the search layer's by one.
    #[test]
    fn object_misuse_violation_counts_step_and_sync_op() {
        #[derive(Clone)]
        struct BadRelease(MutexId);
        impl GuestThread<()> for BadRelease {
            fn next_op(&self, _: &()) -> OpDesc {
                OpDesc::Release(self.0)
            }
            fn on_op(&mut self, _: OpResult, _: &mut (), _: &mut Effects<()>) {}
            fn box_clone(&self) -> Box<dyn GuestThread<()>> {
                Box::new(self.clone())
            }
        }
        let mut k = Kernel::new(());
        let m = k.add_mutex();
        let t = k.spawn(BadRelease(m));
        k.step(t, 0);
        assert!(matches!(k.status(), KernelStatus::Violation(_)));
        assert_eq!(k.stats().steps, 1);
        assert_eq!(k.stats().sync_ops, 1);
    }

    /// Same for the `Choose(0)` violation path.
    #[test]
    fn choose_zero_violation_counts_step() {
        #[derive(Clone)]
        struct NoBranches;
        impl GuestThread<()> for NoBranches {
            fn next_op(&self, _: &()) -> OpDesc {
                OpDesc::Choose(0)
            }
            fn on_op(&mut self, _: OpResult, _: &mut (), _: &mut Effects<()>) {}
            fn box_clone(&self) -> Box<dyn GuestThread<()>> {
                Box::new(self.clone())
            }
        }
        let mut k = Kernel::new(());
        let t = k.spawn(NoBranches);
        k.step(t, 0);
        assert!(matches!(k.status(), KernelStatus::Violation(_)));
        assert_eq!(k.stats().steps, 1);
        assert_eq!(k.stats().sync_ops, 0);
    }

    #[test]
    fn step_info_reports_op_and_result() {
        let (mut k, a, b) = two_lockers();
        let fp = k.next_footprint(a);
        let info = k.step(a, 0);
        assert!(matches!(info.op, OpDesc::Acquire(_)));
        assert_eq!(info.result, OpResult::Unit);
        assert!(!info.kind.is_yield());
        assert_eq!(
            info.footprint, fp,
            "pre-step query matches executed footprint"
        );
        assert!(
            info.footprint.describe().unwrap().contains("acquire mutex"),
            "footprint names the mutex"
        );
        let _ = b;
    }

    #[test]
    fn external_monitor_can_report_violations() {
        let (mut k, a, _b) = two_lockers();
        k.report_violation(a, "monitor saw an invariant break");
        match k.status() {
            KernelStatus::Violation(v) => {
                assert_eq!(v.thread, a);
                assert!(v.message.contains("invariant"));
            }
            s => panic!("expected violation, got {s:?}"),
        }
        // First violation wins.
        k.report_violation(a, "second");
        if let KernelStatus::Violation(v) = k.status() {
            assert!(v.message.contains("invariant"));
        }
    }

    #[test]
    fn yields_counted_in_stats() {
        #[derive(Clone)]
        struct Napper(u8);
        impl GuestThread<()> for Napper {
            fn next_op(&self, _: &()) -> OpDesc {
                match self.0 {
                    0 => OpDesc::Sleep,
                    1 => OpDesc::Yield,
                    2 => OpDesc::Local,
                    _ => OpDesc::Finished,
                }
            }
            fn on_op(&mut self, _: OpResult, _: &mut (), _: &mut Effects<()>) {
                self.0 += 1;
            }
            fn box_clone(&self) -> Box<dyn GuestThread<()>> {
                Box::new(self.clone())
            }
        }
        let mut k = Kernel::new(());
        let t = k.spawn(Napper(0));
        assert!(k.is_yielding(t));
        k.step(t, 0);
        k.step(t, 0);
        assert!(!k.is_yielding(t));
        k.step(t, 0);
        assert_eq!(k.stats().yields, 2);
        assert_eq!(k.stats().steps, 3);
    }

    #[test]
    fn names_and_object_counts() {
        let (k, a, _b) = two_lockers();
        assert_eq!(k.thread_name(a), "locker");
        assert_eq!(k.object_count(), 1);
    }

    #[test]
    #[should_panic(expected = "scheduler bug")]
    fn stepping_disabled_thread_panics() {
        let (mut k, a, b) = two_lockers();
        k.step(a, 0);
        k.step(b, 0); // b is disabled: scheduler bug
    }

    /// A store/load/fence straight-line guest over two atomic cells, for
    /// the memory-model tests below.
    #[derive(Clone)]
    struct Writer {
        pc: u8,
        ops: Vec<OpDesc>,
    }

    impl GuestThread<()> for Writer {
        fn next_op(&self, _: &()) -> OpDesc {
            self.ops
                .get(self.pc as usize)
                .copied()
                .unwrap_or(OpDesc::Finished)
        }
        fn on_op(&mut self, _: OpResult, _: &mut (), _: &mut Effects<()>) {
            self.pc += 1;
        }
        fn name(&self) -> String {
            "writer".to_string()
        }
        fn box_clone(&self) -> Box<dyn GuestThread<()>> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn sc_never_buffers() {
        let mut k = Kernel::with_memory((), crate::MemoryModel::Sc);
        let x = k.add_atomic(0);
        let t = k.spawn(Writer {
            pc: 0,
            ops: vec![OpDesc::AtomicStore(x, 7)],
        });
        assert_eq!(k.thread_count(), 1, "no flusher lane under SC");
        k.step(t, 0);
        assert!(k.store_buffer(t).is_none());
        assert_eq!(k.status(), KernelStatus::Terminated);
    }

    #[test]
    fn tso_buffers_store_until_flush() {
        let mut k = Kernel::with_memory((), crate::MemoryModel::Tso);
        let x = k.add_atomic(0);
        let t = k.spawn(Writer {
            pc: 0,
            ops: vec![OpDesc::AtomicStore(x, 7), OpDesc::AtomicLoad(x)],
        });
        let f = ThreadId::new(t.index() + 1);
        assert_eq!(k.thread_count(), 2);
        assert!(k.is_flush(f) && !k.is_flush(t));
        assert_eq!(k.thread_name(f), "writer:flush");
        // Before the store the flusher has nothing to do.
        assert!(!k.enabled(f));
        assert!(k.is_finished(f));
        k.step(t, 0); // store goes to the buffer
        assert_eq!(k.store_buffer(t).unwrap().len(), 1);
        assert!(k.enabled(f), "non-empty buffer enables the flusher");
        assert_eq!(k.next_op(f), OpDesc::Flush(t));
        // The issuing thread forwards from its own buffer.
        let info = k.step(t, 0);
        assert_eq!(info.result, OpResult::Value(7));
        // Termination requires the drain.
        assert_eq!(k.status(), KernelStatus::Running);
        let info = k.step(f, 0);
        assert_eq!(info.op, OpDesc::Flush(t));
        assert!(k.store_buffer(t).unwrap().is_empty());
        assert_eq!(k.status(), KernelStatus::Terminated);
    }

    #[test]
    fn load_reads_memory_on_buffer_miss() {
        let mut k = Kernel::with_memory((), crate::MemoryModel::Tso);
        let x = k.add_atomic(3);
        let y = k.add_atomic(0);
        let t = k.spawn(Writer {
            pc: 0,
            ops: vec![OpDesc::AtomicStore(y, 1), OpDesc::AtomicLoad(x)],
        });
        k.step(t, 0);
        let info = k.step(t, 0);
        assert_eq!(info.result, OpResult::Value(3), "x is not buffered");
    }

    #[test]
    fn fence_blocks_until_drained() {
        let mut k = Kernel::with_memory((), crate::MemoryModel::Tso);
        let x = k.add_atomic(0);
        let t = k.spawn(Writer {
            pc: 0,
            ops: vec![OpDesc::AtomicStore(x, 1), OpDesc::Fence],
        });
        let f = ThreadId::new(t.index() + 1);
        k.step(t, 0);
        assert!(!k.enabled(t), "fence waits for the buffer to drain");
        k.step(f, 0);
        assert!(k.enabled(t), "drained buffer unblocks the fence");
        k.step(t, 0);
        assert_eq!(k.status(), KernelStatus::Terminated);
    }

    #[test]
    fn rmw_waits_for_own_buffer() {
        let mut k = Kernel::with_memory((), crate::MemoryModel::Tso);
        let x = k.add_atomic(0);
        let t = k.spawn(Writer {
            pc: 0,
            ops: vec![OpDesc::AtomicStore(x, 1), OpDesc::AtomicAdd(x, 1)],
        });
        let f = ThreadId::new(t.index() + 1);
        k.step(t, 0);
        assert!(!k.enabled(t), "RMW carries an implicit fence");
        k.step(f, 0);
        let info = k.step(t, 0);
        assert_eq!(
            info.result,
            OpResult::Value(1),
            "add sees the flushed store"
        );
    }

    #[test]
    fn pso_flush_choices_cover_distinct_locations() {
        let mut k = Kernel::with_memory((), crate::MemoryModel::Pso);
        let x = k.add_atomic(0);
        let y = k.add_atomic(0);
        let t = k.spawn(Writer {
            pc: 0,
            ops: vec![
                OpDesc::AtomicStore(x, 1),
                OpDesc::AtomicStore(y, 2),
                OpDesc::AtomicStore(x, 3),
            ],
        });
        let f = ThreadId::new(t.index() + 1);
        k.step(t, 0);
        k.step(t, 0);
        k.step(t, 0);
        assert_eq!(k.branching(f), 2, "two distinct buffered locations");
        // Drain y (choice 1) before either store to x: cross-location
        // reorder that TSO forbids.
        k.step(f, 1);
        assert_eq!(k.branching(f), 1);
        // Per-location FIFO: x drains 1 then 3.
        k.step(f, 0);
        k.step(f, 0);
        assert_eq!(k.status(), KernelStatus::Terminated);
    }

    #[test]
    fn buffered_execution_reaches_same_terminal_capture_as_sc() {
        let run = |memory: crate::MemoryModel| {
            let mut k = Kernel::with_memory((), memory);
            let x = k.add_atomic(0);
            let t = k.spawn(Writer {
                pc: 0,
                ops: vec![OpDesc::AtomicStore(x, 5)],
            });
            k.step(t, 0);
            if memory.buffers() {
                k.step(ThreadId::new(t.index() + 1), 0);
            }
            assert_eq!(k.status(), KernelStatus::Terminated);
            k.capture_state().into_bytes()
        };
        let sc = run(crate::MemoryModel::Sc);
        assert_eq!(sc, run(crate::MemoryModel::Tso));
        assert_eq!(sc, run(crate::MemoryModel::Pso));
    }

    #[test]
    fn dynamic_spawn_predicts_ids_across_flusher_lanes() {
        #[derive(Clone)]
        struct Spawner {
            pc: u8,
            predicted: Option<ThreadId>,
        }
        impl GuestThread<()> for Spawner {
            fn next_op(&self, _: &()) -> OpDesc {
                match self.pc {
                    0 => OpDesc::Local,
                    1 => OpDesc::Join(self.predicted.unwrap()),
                    _ => OpDesc::Finished,
                }
            }
            fn on_op(&mut self, _: OpResult, _: &mut (), fx: &mut Effects<()>) {
                if self.pc == 0 {
                    self.predicted = Some(fx.spawn(Box::new(Writer { pc: 0, ops: vec![] })));
                }
                self.pc += 1;
            }
            fn box_clone(&self) -> Box<dyn GuestThread<()>> {
                Box::new(self.clone())
            }
        }
        let mut k = Kernel::with_memory((), crate::MemoryModel::Tso);
        let p = k.spawn(Spawner {
            pc: 0,
            predicted: None,
        });
        k.step(p, 0);
        // Parent (lane 0) + its flusher (1) + child (2) + child's flusher (3).
        assert_eq!(k.thread_count(), 4);
        let c = ThreadId::new(2);
        assert!(!k.is_flush(c) && k.is_flush(ThreadId::new(3)));
        // The join on the predicted id resolves: the child is finished.
        assert!(k.enabled(p));
        k.step(p, 0);
        assert_eq!(k.status(), KernelStatus::Terminated);
    }

    #[test]
    fn flush_and_fence_footprints_render() {
        let mut k = Kernel::with_memory((), crate::MemoryModel::Tso);
        let x = k.add_atomic(0);
        let t = k.spawn(Writer {
            pc: 0,
            ops: vec![OpDesc::AtomicStore(x, 1), OpDesc::Fence],
        });
        let f = ThreadId::new(t.index() + 1);
        assert_eq!(
            k.next_footprint(t).describe().as_deref(),
            Some("buffer atomic0")
        );
        k.step(t, 0);
        assert_eq!(
            k.next_footprint(f).describe().as_deref(),
            Some("flush atomic0")
        );
        assert_eq!(k.next_footprint(t).describe().as_deref(), Some("fence"));
        // The flush carries no shared-state write: it commutes with
        // guest-local transitions.
        assert!(k
            .next_footprint(f)
            .accesses()
            .iter()
            .all(|a| a.object != crate::ObjectRef::SharedState));
    }

    /// Shared state with two named cells for the effect-API tests.
    #[derive(Clone, Default)]
    struct Pair {
        x: u64,
        y: u64,
    }

    impl Capture for Pair {
        fn capture(&self, w: &mut StateWriter) {
            w.write_u64(self.x);
            w.write_u64(self.y);
        }
        fn cells(&self) -> Vec<(&'static str, u32)> {
            vec![("x", 0), ("y", 0)]
        }
        fn capture_cell(&self, name: &'static str, _index: u32, w: &mut StateWriter) {
            match name {
                "x" => w.write_u64(self.x),
                "y" => w.write_u64(self.y),
                _ => {}
            }
        }
    }

    /// Bumps one cell; declares either the truth or a lie.
    #[derive(Clone)]
    struct CellBumper {
        pc: u8,
        target: &'static str,
        honest: bool,
    }

    impl GuestThread<Pair> for CellBumper {
        fn next_op(&self, _: &Pair) -> OpDesc {
            if self.pc == 0 {
                OpDesc::Local
            } else {
                OpDesc::Finished
            }
        }
        fn on_op(&mut self, _: OpResult, sh: &mut Pair, _: &mut Effects<Pair>) {
            match self.target {
                "x" => sh.x += 1,
                _ => sh.y += 1,
            }
            self.pc += 1;
        }
        fn shared_effects(&self, _: &OpDesc) -> SharedEffects {
            if self.honest {
                SharedEffects::writes([(self.target, 0)])
            } else {
                SharedEffects::Pure
            }
        }
        fn box_clone(&self) -> Box<dyn GuestThread<Pair>> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn declared_effects_make_disjoint_cell_writers_independent() {
        let mut k = Kernel::new(Pair::default());
        let a = k.spawn(CellBumper {
            pc: 0,
            target: "x",
            honest: true,
        });
        let b = k.spawn(CellBumper {
            pc: 0,
            target: "y",
            honest: true,
        });
        let fa = k.next_footprint(a);
        let fb = k.next_footprint(b);
        assert_eq!(fa.describe().as_deref(), Some("write x"));
        assert!(!fa.dependent(&fb), "writes to distinct cells commute");
        assert!(fa.dependent(&fa.clone()), "same-cell writes conflict");
    }

    #[test]
    fn pure_yields_are_independent() {
        // Regression: pure scheduling ops used to stamp a whole-state
        // write, making two yielding threads' transitions dependent at
        // the kernel level.
        #[derive(Clone)]
        struct Yielder(u8);
        impl GuestThread<Pair> for Yielder {
            fn next_op(&self, _: &Pair) -> OpDesc {
                if self.0 == 0 {
                    OpDesc::Yield
                } else {
                    OpDesc::Finished
                }
            }
            fn on_op(&mut self, _: OpResult, _: &mut Pair, _: &mut Effects<Pair>) {
                self.0 += 1;
            }
            fn shared_effects(&self, _: &OpDesc) -> SharedEffects {
                SharedEffects::Pure
            }
            fn box_clone(&self) -> Box<dyn GuestThread<Pair>> {
                Box::new(self.clone())
            }
        }
        let mut k = Kernel::new(Pair::default());
        let a = k.spawn(Yielder(0));
        let b = k.spawn(Yielder(0));
        let (fa, fb) = (k.next_footprint(a), k.next_footprint(b));
        assert!(fa.accesses().is_empty(), "a pure yield has no accesses");
        assert!(!fa.dependent(&fb), "two pure yields are independent");
        // An undeclared guest's op stays conservatively dependent.
        let mut conservative = Kernel::new(0u32);
        let m = conservative.add_mutex();
        let c = conservative.spawn(Locker { pc: 0, m });
        let d = conservative.spawn(Locker { pc: 0, m });
        assert!(conservative
            .next_footprint(c)
            .dependent(&conservative.next_footprint(d)));
    }

    #[test]
    fn validation_accepts_honest_declarations() {
        let mut k = Kernel::new(Pair::default());
        let a = k.spawn(CellBumper {
            pc: 0,
            target: "x",
            honest: true,
        });
        k.step_validated(a, 0);
        assert_eq!(k.status(), KernelStatus::Terminated);
        assert_eq!(k.shared().x, 1);
    }

    #[test]
    fn validation_flags_undeclared_cell_write() {
        let mut k = Kernel::new(Pair::default());
        let a = k.spawn(CellBumper {
            pc: 0,
            target: "y",
            honest: false,
        });
        k.step_validated(a, 0);
        match k.status() {
            KernelStatus::Violation(v) => {
                assert!(
                    v.message.contains("undeclared shared-state write"),
                    "unexpected message: {}",
                    v.message
                );
                assert!(
                    v.message.contains("[y]"),
                    "must name the cell: {}",
                    v.message
                );
            }
            s => panic!("expected a violation, got {s:?}"),
        }
    }

    #[test]
    fn validation_flags_mutation_outside_named_cells() {
        // `z` is captured but not named as a cell: mutating it changes
        // the whole-state capture while every named cell stays equal.
        #[derive(Clone, Default)]
        struct WithResidue {
            x: u64,
            z: u64,
        }
        impl Capture for WithResidue {
            fn capture(&self, w: &mut StateWriter) {
                w.write_u64(self.x);
                w.write_u64(self.z);
            }
            fn cells(&self) -> Vec<(&'static str, u32)> {
                vec![("x", 0)]
            }
            fn capture_cell(&self, name: &'static str, _i: u32, w: &mut StateWriter) {
                if name == "x" {
                    w.write_u64(self.x);
                }
            }
        }
        #[derive(Clone)]
        struct ResidueWriter(u8);
        impl GuestThread<WithResidue> for ResidueWriter {
            fn next_op(&self, _: &WithResidue) -> OpDesc {
                if self.0 == 0 {
                    OpDesc::Local
                } else {
                    OpDesc::Finished
                }
            }
            fn on_op(&mut self, _: OpResult, sh: &mut WithResidue, _: &mut Effects<WithResidue>) {
                sh.z += 1;
                self.0 += 1;
            }
            fn shared_effects(&self, _: &OpDesc) -> SharedEffects {
                SharedEffects::writes([("x", 0)])
            }
            fn box_clone(&self) -> Box<dyn GuestThread<WithResidue>> {
                Box::new(self.clone())
            }
        }
        let mut k = Kernel::new(WithResidue::default());
        let a = k.spawn(ResidueWriter(0));
        k.step_validated(a, 0);
        match k.status() {
            KernelStatus::Violation(v) => assert!(
                v.message.contains("outside the named cells"),
                "unexpected message: {}",
                v.message
            ),
            s => panic!("expected a violation, got {s:?}"),
        }
    }

    /// Two kernels built identically: `fast` keeps fingerprint caching
    /// armed, `slow` is forced down the from-scratch path. Drives both
    /// through the same schedule to termination, checking after every
    /// transition that fingerprints, state bytes, and the full capture
    /// agree — the incremental-fingerprint invariant in one place.
    fn lockstep_cache_agreement<S: Capture>(mut fast: Kernel<S>, mut slow: Kernel<S>) {
        fast.set_fingerprint_caching(true);
        slow.set_fingerprint_caching(false);
        let mut bytes_fast = Vec::new();
        let mut bytes_slow = Vec::new();
        for steps in 0usize..10_000 {
            assert_eq!(fast.fingerprint(), slow.fingerprint(), "fp at step {steps}");
            assert_eq!(
                fast.fingerprint(),
                fast.fresh_fingerprint(),
                "cached vs fresh at step {steps}"
            );
            fast.state_bytes_into(&mut bytes_fast);
            slow.state_bytes_into(&mut bytes_slow);
            assert_eq!(bytes_fast, bytes_slow, "bytes at step {steps}");
            assert_eq!(
                bytes_fast,
                fast.capture_state().as_bytes(),
                "cached bytes vs capture at step {steps}"
            );
            let enabled: Vec<ThreadId> = fast.thread_ids().filter(|&t| fast.enabled(t)).collect();
            if enabled.is_empty() {
                return;
            }
            let t = enabled[steps % enabled.len()];
            let choice = (steps % fast.branching(t).max(1)) as u32;
            fast.step(t, choice);
            slow.step(t, choice);
        }
        panic!("workload did not terminate");
    }

    /// A two-writer store/load/fence workload over two atomic cells,
    /// buffered under `model`.
    fn buffered_pair(model: crate::MemoryModel) -> Kernel<()> {
        let mut k = Kernel::with_memory((), model);
        let x = k.add_atomic(0);
        let y = k.add_atomic(0);
        k.spawn(Writer {
            pc: 0,
            ops: vec![
                OpDesc::AtomicStore(x, 1),
                OpDesc::AtomicLoad(y),
                OpDesc::Fence,
            ],
        });
        k.spawn(Writer {
            pc: 0,
            ops: vec![
                OpDesc::AtomicStore(y, 2),
                OpDesc::AtomicStore(x, 3),
                OpDesc::AtomicLoad(x),
            ],
        });
        k
    }

    #[test]
    fn cached_fingerprint_agrees_with_fresh_on_a_mutex_workload() {
        let (fast, _, _) = two_lockers();
        let (slow, _, _) = two_lockers();
        lockstep_cache_agreement(fast, slow);
    }

    #[test]
    fn cached_fingerprint_agrees_with_fresh_under_buffering() {
        for model in [crate::MemoryModel::Tso, crate::MemoryModel::Pso] {
            lockstep_cache_agreement(buffered_pair(model), buffered_pair(model));
        }
    }

    #[test]
    fn shared_mut_dirties_the_cached_fingerprint() {
        let (mut k, _, _) = two_lockers();
        let before = k.fingerprint();
        *k.shared_mut() += 7;
        assert_ne!(k.fingerprint(), before);
        assert_eq!(k.fingerprint(), k.fresh_fingerprint());
    }

    #[test]
    fn spawn_after_fingerprint_query_invalidates_the_cache() {
        let (mut k, a, _) = two_lockers();
        let _ = k.fingerprint();
        k.step(a, 0);
        let m2 = k.add_mutex();
        k.spawn(Locker { pc: 0, m: m2 });
        assert_eq!(k.fingerprint(), k.fresh_fingerprint());
        let mut bytes = Vec::new();
        k.state_bytes_into(&mut bytes);
        assert_eq!(bytes, k.capture_state().as_bytes());
    }

    #[test]
    fn reset_from_is_equivalent_to_cloning_the_template() {
        let (template, a, b) = two_lockers();
        let mut pooled = template.clone();
        for t in [a, a, a, b] {
            pooled.step(t, 0);
        }
        pooled.reset_from(&template);
        let fresh = template.clone();
        assert_eq!(pooled.stats().steps, fresh.stats().steps);
        assert_eq!(pooled.fingerprint(), fresh.fingerprint());
        assert_eq!(
            pooled.capture_state().as_bytes(),
            fresh.capture_state().as_bytes()
        );
        // And the reset kernel replays exactly like the fresh clone.
        let (mut p, mut f) = (pooled, fresh);
        for t in [a, a, a, b, b, b] {
            p.step(t, 0);
            f.step(t, 0);
            assert_eq!(p.fingerprint(), f.fingerprint());
        }
        assert_eq!(p.status(), KernelStatus::Terminated);
        assert_eq!(*p.shared(), *f.shared());
    }

    #[test]
    fn reset_from_clears_buffered_state() {
        let template = buffered_pair(crate::MemoryModel::Tso);
        let mut pooled = template.clone();
        let t0 = ThreadId::new(0);
        pooled.step(t0, 0);
        assert!(!pooled.store_buffer(t0).unwrap().is_empty());
        pooled.reset_from(&template);
        assert!(pooled.store_buffer(t0).unwrap().is_empty());
        assert_eq!(pooled.fingerprint(), template.fingerprint());
        assert_eq!(
            pooled.capture_state().as_bytes(),
            template.capture_state().as_bytes()
        );
    }
}
