//! The kernel: a deterministic world of guest threads, shared state and
//! synchronization objects, driven one transition at a time by a scheduler.

use std::fmt;

use crate::capture::{Capture, StateWriter};
use crate::effects::SharedEffects;
use crate::footprint::{footprint_of_op, AccessKind, Footprint, ObjectRef};
use crate::ids::{
    AtomicId, BarrierId, ChannelId, CondvarId, EventId, MutexId, RwLockId, SemaphoreId,
};
use crate::memory::{MemoryModel, StoreBuffer};
use crate::objects::Objects;
use crate::op::{OpDesc, OpResult, StepKind};
use crate::thread::{Effects, GuestThread};
use crate::tid::{ThreadId, TidSet};

/// A safety violation detected during an execution: a failed guest
/// assertion or a misuse of a kernel object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The thread whose transition triggered the violation.
    pub thread: ThreadId,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "violation in {}: {}", self.thread, self.message)
    }
}

impl std::error::Error for Violation {}

/// Overall status of a kernel execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelStatus {
    /// At least one thread is enabled.
    Running,
    /// Every thread finished: a terminating execution.
    Terminated,
    /// No thread is enabled but some have not finished: a deadlock.
    Deadlock,
    /// A safety violation was detected.
    Violation(Violation),
}

impl KernelStatus {
    /// Returns whether the execution can take another transition.
    pub fn is_running(&self) -> bool {
        matches!(self, KernelStatus::Running)
    }
}

/// Statistics accumulated over one execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Total transitions executed.
    pub steps: u64,
    /// Transitions that were synchronization operations (Table 1's
    /// "Synch Ops" metric).
    pub sync_ops: u64,
    /// Transitions that were yields (explicit yields, sleeps, timeouts).
    pub yields: u64,
}

/// Information about one executed transition, for traces.
#[derive(Debug, Clone, PartialEq)]
pub struct StepInfo {
    /// The operation that was executed.
    pub op: OpDesc,
    /// Whether the transition was yielding.
    pub kind: StepKind,
    /// The operation's result as delivered to the guest.
    pub result: OpResult,
    /// The dependence footprint of the executed operation: its
    /// sync-object accesses merged with the guest's declared
    /// shared-state effects (see [`crate::footprint`]).
    pub footprint: Footprint,
}

struct Slot<S> {
    guest: Box<dyn GuestThread<S>>,
    name: String,
}

/// One schedulable unit. Thread ids index the lane table: under
/// sequential consistency every lane is a guest and ids match the
/// historical numbering; under a buffering memory model every guest lane
/// is immediately followed by its *flusher* lane, the pseudo-thread that
/// drains the guest's store buffer one store per step.
#[derive(Clone)]
enum Lane {
    /// A guest thread (index into the guest slot table).
    Guest(usize),
    /// The store-buffer flusher of guest `guest`; `owner` is the guest's
    /// lane id (what [`OpDesc::Flush`] reports in traces).
    Flusher {
        guest: usize,
        owner: ThreadId,
        name: String,
    },
}

/// A deterministic multithreaded program instance: shared state `S`, a set
/// of guest threads, and a table of synchronization objects.
///
/// The kernel exposes exactly the interface the paper's Algorithm 1 needs:
/// the `enabled(t)` and `yield(t)` predicates, and a `NextState` function
/// ([`Kernel::step`]) executing one transition of a chosen thread. All
/// nondeterminism is external: the kernel never makes a scheduling choice
/// itself.
///
/// # Examples
///
/// ```
/// use chess_kernel::{Effects, GuestThread, Kernel, OpDesc, OpResult, ThreadId};
///
/// #[derive(Clone)]
/// struct SetFlag;
/// impl GuestThread<bool> for SetFlag {
///     fn next_op(&self, shared: &bool) -> OpDesc {
///         if *shared { OpDesc::Finished } else { OpDesc::Local }
///     }
///     fn on_op(&mut self, _: OpResult, shared: &mut bool, _: &mut Effects<bool>) {
///         *shared = true;
///     }
///     fn box_clone(&self) -> Box<dyn GuestThread<bool>> { Box::new(self.clone()) }
/// }
///
/// let mut k = Kernel::new(false);
/// let t = k.spawn(SetFlag);
/// assert!(k.enabled(t));
/// k.step(t, 0);
/// assert!(!k.enabled(t));
/// assert!(!k.status().is_running());
/// ```
pub struct Kernel<S> {
    shared: S,
    threads: Vec<Slot<S>>,
    /// Schedulable lanes; thread ids index this table.
    lanes: Vec<Lane>,
    memory: MemoryModel,
    /// Per-guest store buffers (parallel to `threads`; always empty under
    /// [`MemoryModel::Sc`]).
    buffers: Vec<StoreBuffer>,
    objects: Objects,
    violation: Option<Violation>,
    stats: ExecStats,
    /// When set, [`Kernel::step_validated`] (reached through the
    /// `TransitionSystem` impl) diffs the shared state around every step
    /// and reports mutations outside the guest's declared write-set.
    validate_effects: bool,
}

impl<S> Kernel<S> {
    /// Creates a kernel with the given shared state and no threads,
    /// executing under sequential consistency.
    pub fn new(shared: S) -> Self {
        Kernel::with_memory(shared, MemoryModel::Sc)
    }

    /// Creates a kernel executing atomic operations under `memory`.
    ///
    /// Under [`MemoryModel::Tso`]/[`MemoryModel::Pso`] every spawned guest
    /// gets a companion *flusher* lane (an extra thread id, directly after
    /// the guest's) that drains the guest's store buffer one store per
    /// scheduled step; see [`crate::memory`] for the semantics.
    pub fn with_memory(shared: S, memory: MemoryModel) -> Self {
        Kernel {
            shared,
            threads: Vec::new(),
            lanes: Vec::new(),
            memory,
            buffers: Vec::new(),
            objects: Objects::default(),
            violation: None,
            stats: ExecStats::default(),
            validate_effects: false,
        }
    }

    /// Arms (or disarms) per-step effect validation: with it on, the
    /// `TransitionSystem` impl routes every step through
    /// [`Kernel::step_validated`], which diffs the shared-state capture
    /// around the step and reports any mutation outside the guest's
    /// declared write-set as a violation. Off by default — the diff
    /// costs two captures per step.
    pub fn set_validate_effects(&mut self, on: bool) {
        self.validate_effects = on;
    }

    /// Is per-step effect validation armed?
    pub fn validate_effects(&self) -> bool {
        self.validate_effects
    }

    /// The memory model this kernel executes under.
    pub fn memory_model(&self) -> MemoryModel {
        self.memory
    }

    /// Adds a guest thread and returns its id. Threads are identified by
    /// the order in which they are added.
    pub fn spawn(&mut self, guest: impl GuestThread<S> + 'static) -> ThreadId {
        self.spawn_boxed(Box::new(guest))
    }

    /// Adds an already-boxed guest thread.
    pub fn spawn_boxed(&mut self, guest: Box<dyn GuestThread<S>>) -> ThreadId {
        let name = guest.name();
        self.threads.push(Slot { guest, name });
        self.buffers.push(StoreBuffer::new());
        let g = self.threads.len() - 1;
        let owner = ThreadId::new(self.lanes.len());
        self.lanes.push(Lane::Guest(g));
        if self.memory.buffers() {
            let name = format!("{}:flush", self.threads[g].name);
            self.lanes.push(Lane::Flusher {
                guest: g,
                owner,
                name,
            });
        }
        owner
    }

    /// Creates a mutex.
    pub fn add_mutex(&mut self) -> MutexId {
        self.objects.add_mutex()
    }

    /// Creates a reader-writer lock.
    pub fn add_rwlock(&mut self) -> RwLockId {
        self.objects.add_rwlock()
    }

    /// Creates a counting semaphore with `permits` initial permits.
    pub fn add_semaphore(&mut self, permits: u32) -> SemaphoreId {
        self.objects.add_semaphore(permits)
    }

    /// Creates an auto-reset event (consumed by the first completed wait).
    pub fn add_auto_event(&mut self, initially_set: bool) -> EventId {
        self.objects.add_event(true, initially_set)
    }

    /// Creates a manual-reset event (stays set until explicitly reset).
    pub fn add_manual_event(&mut self, initially_set: bool) -> EventId {
        self.objects.add_event(false, initially_set)
    }

    /// Creates a condition variable.
    pub fn add_condvar(&mut self) -> CondvarId {
        self.objects.add_condvar()
    }

    /// Creates an atomic cell with an initial value.
    pub fn add_atomic(&mut self, value: u64) -> AtomicId {
        self.objects.add_atomic(value)
    }

    /// Creates an `parties`-party reusable barrier.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    pub fn add_barrier(&mut self, parties: u32) -> BarrierId {
        assert!(parties > 0, "a barrier needs at least one party");
        self.objects.add_barrier(parties)
    }

    /// Creates a bounded channel with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (rendezvous channels are not
    /// supported; use capacity 1 plus an event for a handshake).
    pub fn add_channel(&mut self, capacity: usize) -> ChannelId {
        assert!(capacity > 0, "channel capacity must be positive");
        self.objects.add_channel(capacity)
    }

    /// Number of schedulable lanes ever added (including finished ones).
    /// Under a buffering memory model this counts flusher lanes too: each
    /// guest contributes two ids.
    pub fn thread_count(&self) -> usize {
        self.lanes.len()
    }

    /// Iterates over all thread ids.
    pub fn thread_ids(&self) -> impl Iterator<Item = ThreadId> {
        (0..self.lanes.len()).map(ThreadId::new)
    }

    /// The display name of a thread (flusher lanes are named after their
    /// guest, e.g. `writer:flush`).
    pub fn thread_name(&self, t: ThreadId) -> &str {
        match &self.lanes[t.index()] {
            Lane::Guest(g) => &self.threads[*g].name,
            Lane::Flusher { name, .. } => name,
        }
    }

    /// Is thread `t` a store-buffer flusher lane?
    pub fn is_flush(&self, t: ThreadId) -> bool {
        matches!(self.lanes[t.index()], Lane::Flusher { .. })
    }

    /// The store buffer of the guest behind lane `t` (its own for a guest
    /// lane, the owner's for a flusher lane), or `None` under sequential
    /// consistency where no buffering happens.
    pub fn store_buffer(&self, t: ThreadId) -> Option<&StoreBuffer> {
        let (Lane::Guest(g) | Lane::Flusher { guest: g, .. }) = &self.lanes[t.index()];
        self.memory.buffers().then(|| &self.buffers[*g])
    }

    /// The guest slot index behind lane `t`.
    fn guest_of(&self, t: ThreadId) -> usize {
        let (Lane::Guest(g) | Lane::Flusher { guest: g, .. }) = &self.lanes[t.index()];
        *g
    }

    /// Shared state accessor (for assertions and result extraction).
    pub fn shared(&self) -> &S {
        &self.shared
    }

    /// Mutable shared state accessor, intended for test-harness setup
    /// before the search starts.
    pub fn shared_mut(&mut self) -> &mut S {
        &mut self.shared
    }

    /// The next operation thread `t` would perform (for traces). A
    /// flusher lane reports [`OpDesc::Flush`] while its guest's buffer is
    /// non-empty and [`OpDesc::Finished`] once drained, so termination
    /// requires every buffered store to reach memory.
    pub fn next_op(&self, t: ThreadId) -> OpDesc {
        match &self.lanes[t.index()] {
            Lane::Guest(g) => self.threads[*g].guest.next_op(&self.shared),
            Lane::Flusher { guest, owner, .. } => {
                if self.buffers[*guest].is_empty() {
                    OpDesc::Finished
                } else {
                    OpDesc::Flush(*owner)
                }
            }
        }
    }

    /// Has thread `t` finished?
    pub fn is_finished(&self, t: ThreadId) -> bool {
        matches!(self.next_op(t), OpDesc::Finished)
    }

    /// The paper's `enabled(t)` predicate: can `t` take a transition now?
    pub fn enabled(&self, t: ThreadId) -> bool {
        match self.next_op(t) {
            OpDesc::Finished => false,
            OpDesc::Join(u) => self.is_finished(u),
            // A flusher only reports Flush while its buffer is non-empty,
            // and draining one store is always possible.
            OpDesc::Flush(_) => true,
            // A fence waits for the issuing thread's buffer to drain
            // (no-op under SC, where nothing buffers).
            OpDesc::Fence => self.memory.is_sc() || self.buffers[self.guest_of(t)].is_empty(),
            // Read-modify-write ops act on memory directly and carry an
            // implicit fence (x86 LOCK semantics): they wait out the
            // issuing thread's own buffered stores.
            OpDesc::AtomicCas(..) | OpDesc::AtomicSwap(..) | OpDesc::AtomicAdd(..)
                if self.memory.buffers() =>
            {
                self.buffers[self.guest_of(t)].is_empty()
            }
            op => self.objects.satisfiable(t, &op),
        }
    }

    /// The set of enabled threads (the paper's `ES`).
    pub fn enabled_set(&self) -> TidSet {
        self.thread_ids().filter(|&t| self.enabled(t)).collect()
    }

    /// The paper's `yield(t)` predicate: is `t` enabled and would its next
    /// transition be a yield?
    pub fn is_yielding(&self, t: ThreadId) -> bool {
        self.enabled(t) && self.objects.is_yielding(&self.next_op(t))
    }

    /// The number of branches exploring thread `t` requires (1 except for
    /// [`OpDesc::Choose`], and PSO flushers with several distinct buffered
    /// locations, which may drain in any cross-location order).
    pub fn branching(&self, t: ThreadId) -> usize {
        match &self.lanes[t.index()] {
            Lane::Flusher { guest, .. } if self.memory == MemoryModel::Pso => {
                self.buffers[*guest].location_count().max(1)
            }
            _ => self.next_op(t).branching(),
        }
    }

    /// The dependence footprint of the transition thread `t` would take,
    /// queryable before stepping.
    ///
    /// Sync-object accesses come from the op itself
    /// ([`footprint_of_op`]); shared-state accesses come from the
    /// guest's [`GuestThread::shared_effects`] declaration (default: a
    /// conservative whole-state write, which keeps undeclared guests
    /// pairwise dependent).
    pub fn next_footprint(&self, t: ThreadId) -> Footprint {
        match &self.lanes[t.index()] {
            // A flush writes memory cells but never the shared guest
            // state (no `on_op` runs), so it provably commutes with
            // transitions that touch neither its locations nor its
            // buffer. Under TSO only the oldest store can drain, so only
            // its location is named; under PSO the choice picks any
            // distinct location, so all of them are. The `Buffer(owner)`
            // marker keeps a sleeping flush decision dependent with the
            // owner's later buffered stores, which can change the
            // flusher's choice set (see [`Kernel::branching`]).
            Lane::Flusher { guest, owner, .. } => {
                let mut fp = Footprint::local();
                match self.memory {
                    MemoryModel::Pso => {
                        for a in self.buffers[*guest].locations() {
                            fp.push(ObjectRef::Atomic(a), AccessKind::Flush);
                        }
                    }
                    _ => {
                        if let Some(a) = self.buffers[*guest].oldest_location() {
                            fp.push(ObjectRef::Atomic(a), AccessKind::Flush);
                        }
                    }
                }
                fp.push(ObjectRef::Buffer(*owner), AccessKind::Flush);
                fp
            }
            Lane::Guest(g) => {
                let op = self.threads[*g].guest.next_op(&self.shared);
                let mut fp = match op {
                    // A buffered store touches the cell (its flush will
                    // change it) but as a `Buffered` access, so traces
                    // distinguish `[buffer atomic0]` from `[write
                    // atomic0]`; the `Buffer(t)` marker makes it
                    // dependent with sleeping flush and fence decisions
                    // on this thread's buffer.
                    OpDesc::AtomicStore(a, _) if self.memory.buffers() => {
                        let mut fp = Footprint::local();
                        fp.push(ObjectRef::Atomic(a), AccessKind::Buffered);
                        fp.push(ObjectRef::Buffer(t), AccessKind::Buffered);
                        fp
                    }
                    OpDesc::Fence => {
                        let mut fp = Footprint::local();
                        fp.push(ObjectRef::Buffer(t), AccessKind::Fence);
                        fp
                    }
                    ref op => footprint_of_op(op),
                };
                // Finished threads never step: keep their footprint
                // empty rather than asking for effects they won't have.
                if !matches!(op, OpDesc::Finished) {
                    self.threads[*g].guest.shared_effects(&op).apply_to(&mut fp);
                }
                fp
            }
        }
    }

    /// Executes one transition of thread `t`.
    ///
    /// `choice` selects the branch for a [`OpDesc::Choose`] operation and
    /// is ignored otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not enabled or `choice` is out of range; both
    /// indicate a scheduler bug, not a guest bug.
    pub fn step(&mut self, t: ThreadId, choice: u32) -> StepInfo {
        assert!(
            self.enabled(t),
            "scheduler bug: stepped disabled thread {t}"
        );
        // Query the footprint before mutating anything so StepInfo agrees
        // with what `next_footprint` reported to the strategy.
        let footprint = self.next_footprint(t);
        let g = match &self.lanes[t.index()] {
            Lane::Guest(g) => *g,
            Lane::Flusher { guest, owner, .. } => {
                let (guest, owner) = (*guest, *owner);
                return self.flush_step(t, guest, owner, choice, footprint);
            }
        };
        let op = self.next_op(t);
        let (result, kind) = match op {
            OpDesc::Local | OpDesc::Join(_) => (OpResult::Unit, StepKind::Normal),
            // `enabled` guarantees the buffer already drained (or SC,
            // where there is nothing to drain): the fence itself is a
            // no-op transition.
            OpDesc::Fence => (OpResult::Unit, StepKind::Normal),
            // Under a buffering model a store goes to the issuing
            // thread's buffer, not memory; its flusher lane becomes
            // schedulable.
            OpDesc::AtomicStore(a, v) if self.memory.buffers() => {
                self.buffers[g].push(a, v);
                (OpResult::Unit, StepKind::Normal)
            }
            // A load forwards from the youngest buffered store to the
            // same location; only on a miss does it read memory.
            OpDesc::AtomicLoad(a) if self.memory.buffers() => match self.buffers[g].lookup(a) {
                Some(v) => (OpResult::Value(v), StepKind::Normal),
                None => self
                    .objects
                    .execute(t, &op)
                    .expect("atomic loads cannot fault"),
            },
            OpDesc::Choose(n) => {
                if n == 0 {
                    self.violation = Some(Violation {
                        thread: t,
                        message: "Choose(0) has no branches".to_string(),
                    });
                    // The violating transition still executed: count it,
                    // or kernel and search stats disagree by one.
                    self.stats.steps += 1;
                    return StepInfo {
                        footprint,
                        op,
                        kind: StepKind::Normal,
                        result: OpResult::Choice(0),
                    };
                }
                assert!(choice < n, "scheduler bug: choice {choice} out of {n}");
                (OpResult::Choice(choice), StepKind::Normal)
            }
            OpDesc::Finished => unreachable!("finished threads are never enabled"),
            ref obj_op => match self.objects.execute(t, obj_op) {
                Ok(r) => r,
                Err(v) => {
                    self.violation = Some(Violation {
                        thread: t,
                        message: v.0,
                    });
                    // The violating transition still executed: count it
                    // (and the sync op it attempted), or kernel and
                    // search stats disagree by one.
                    self.stats.steps += 1;
                    if op.is_sync_op() {
                        self.stats.sync_ops += 1;
                    }
                    return StepInfo {
                        footprint,
                        op,
                        kind: StepKind::Normal,
                        result: OpResult::Unit,
                    };
                }
            },
        };
        self.stats.steps += 1;
        if op.is_sync_op() {
            self.stats.sync_ops += 1;
        }
        if kind.is_yield() {
            self.stats.yields += 1;
        }
        let stride = if self.memory.buffers() { 2 } else { 1 };
        let mut fx = Effects::with_stride(self.lanes.len(), stride);
        {
            let slot = &mut self.threads[g];
            slot.guest.on_op(result, &mut self.shared, &mut fx);
        }
        for guest in fx.spawns {
            self.spawn_boxed(guest);
        }
        if let Some(message) = fx.violation {
            self.violation = Some(Violation { thread: t, message });
        }
        StepInfo {
            footprint,
            op,
            kind,
            result,
        }
    }

    /// Executes one flusher-lane transition: drains one buffered store of
    /// guest `g` to memory. No guest code runs (`on_op` is not called) —
    /// the flush is a pure memory-system step, which is why its footprint
    /// carries no shared-state write.
    fn flush_step(
        &mut self,
        t: ThreadId,
        g: usize,
        owner: ThreadId,
        choice: u32,
        footprint: Footprint,
    ) -> StepInfo {
        let (a, v) = match self.memory {
            MemoryModel::Pso => {
                let locs = self.buffers[g].locations();
                assert!(
                    (choice as usize) < locs.len(),
                    "scheduler bug: flush choice {choice} out of {}",
                    locs.len()
                );
                let a = locs[choice as usize];
                let v = self.buffers[g]
                    .pop_location(a)
                    .expect("chosen location has a buffered store");
                (a, v)
            }
            _ => self.buffers[g]
                .pop_oldest()
                .expect("flusher lanes are only enabled while the buffer is non-empty"),
        };
        let (result, kind) = self
            .objects
            .execute(t, &OpDesc::AtomicStore(a, v))
            .expect("atomic stores cannot fault");
        self.stats.steps += 1;
        self.stats.sync_ops += 1;
        StepInfo {
            footprint,
            op: OpDesc::Flush(owner),
            kind,
            result,
        }
    }

    /// Current execution status.
    pub fn status(&self) -> KernelStatus {
        if let Some(v) = &self.violation {
            return KernelStatus::Violation(v.clone());
        }
        let mut any_active = false;
        for t in self.thread_ids() {
            if !self.is_finished(t) {
                any_active = true;
                if self.enabled(t) {
                    return KernelStatus::Running;
                }
            }
        }
        if any_active {
            KernelStatus::Deadlock
        } else {
            KernelStatus::Terminated
        }
    }

    /// Injects a violation from outside a transition (used by external
    /// monitors checking whole-program invariants between transitions).
    pub fn report_violation(&mut self, thread: ThreadId, message: impl Into<String>) {
        if self.violation.is_none() {
            self.violation = Some(Violation {
                thread,
                message: message.into(),
            });
        }
    }

    /// Statistics of this execution so far.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Number of synchronization objects created.
    pub fn object_count(&self) -> usize {
        self.objects.count()
    }
}

impl<S: Capture> Kernel<S> {
    /// Captures the complete abstract state: shared state, every thread's
    /// local state plus its next operation, and all object states.
    ///
    /// Two kernels with equal captures are behaviorally equivalent (given
    /// faithful [`Capture`]/[`GuestThread::capture`] implementations), so
    /// the returned writer's bytes serve as an exact visited-set key.
    pub fn capture_state(&self) -> StateWriter {
        let mut w = StateWriter::new();
        self.shared.capture(&mut w);
        for slot in &self.threads {
            slot.guest.capture(&mut w);
            // The pending op disambiguates threads whose `capture` is
            // coarse; it is part of the control state.
            let op = slot.guest.next_op(&self.shared);
            w.write_str(&format!("{op:?}"));
        }
        self.objects.capture(&mut w);
        // Store-buffer contents are control state too (they decide what
        // loads forward and what flushes remain). Only non-empty buffers
        // are written, so a terminal state (all buffers drained) captures
        // to exactly the same bytes as the equivalent SC state — the
        // property the cross-model outcome-monotonicity oracle relies on.
        for (g, buf) in self.buffers.iter().enumerate() {
            if !buf.is_empty() {
                w.write_u32(g as u32 + 1);
                w.write_usize(buf.len());
                for (a, v) in buf.entries() {
                    w.write_u32(a.index() as u32);
                    w.write_u64(v);
                }
            }
        }
        w
    }

    /// 64-bit fingerprint of [`Kernel::capture_state`].
    pub fn fingerprint(&self) -> u64 {
        self.capture_state().fingerprint()
    }

    /// Captures the shared state alone (not threads or objects).
    fn capture_shared(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        self.shared.capture(&mut w);
        w.into_bytes()
    }

    /// Captures one named cell of the shared state.
    fn capture_cell(&self, name: &'static str, index: u32) -> Vec<u8> {
        let mut w = StateWriter::new();
        self.shared.capture_cell(name, index, &mut w);
        w.into_bytes()
    }

    /// Executes one transition like [`Kernel::step`], additionally
    /// checking the guest's [`GuestThread::shared_effects`] declaration
    /// against the mutation the step actually performed.
    ///
    /// The check diffs the per-cell captures ([`Capture::cells`] /
    /// [`Capture::capture_cell`]) and the whole shared-state capture
    /// around the step. A changed cell outside the declared write-set —
    /// or a changed whole-state capture with no named cell changed, i.e.
    /// a mutation of un-named residue — is reported as a violation.
    /// Steps declared [`SharedEffects::Whole`] and flusher-lane steps
    /// (which never run guest code) skip the diff.
    ///
    /// This is the validation mode behind the `TransitionSystem` impl
    /// when [`Kernel::set_validate_effects`] is armed; it checks the
    /// write half of the declaration contract mechanically (the read
    /// half is not observable from state diffs).
    pub fn step_validated(&mut self, t: ThreadId, choice: u32) -> StepInfo {
        let effects = match &self.lanes[t.index()] {
            // A flush never runs guest code: `on_op` is not called and
            // the shared state cannot change.
            Lane::Flusher { .. } => SharedEffects::Pure,
            Lane::Guest(g) => {
                let op = self.threads[*g].guest.next_op(&self.shared);
                self.threads[*g].guest.shared_effects(&op)
            }
        };
        if effects.is_whole() {
            // Nothing to check: the declaration permits any mutation.
            return self.step(t, choice);
        }
        let label = self.thread_name(t).to_string();
        let op = self.next_op(t);
        let cells = self.shared.cells();
        let before: Vec<Vec<u8>> = cells
            .iter()
            .map(|&(n, i)| self.capture_cell(n, i))
            .collect();
        let whole_before = self.capture_shared();
        let info = self.step(t, choice);
        let undeclared: Vec<String> = cells
            .iter()
            .enumerate()
            .filter(|&(idx, &(n, i))| {
                !effects.allows_write(n, i) && self.capture_cell(n, i) != before[idx]
            })
            .map(|(_, &(n, i))| ObjectRef::Cell(n, i).to_string())
            .collect();
        if !undeclared.is_empty() {
            self.report_violation(
                t,
                format!(
                    "undeclared shared-state write: '{label}' ({op:?}) declared {} but \
                     mutated [{}]",
                    effects.describe(),
                    undeclared.join(", ")
                ),
            );
        } else if self.capture_shared() != whole_before
            && cells
                .iter()
                .enumerate()
                .all(|(idx, &(n, i))| self.capture_cell(n, i) == before[idx])
        {
            self.report_violation(
                t,
                format!(
                    "undeclared shared-state write: '{label}' ({op:?}) declared {} but \
                     mutated shared state outside the named cells",
                    effects.describe()
                ),
            );
        }
        info
    }
}

impl<S: Clone> Clone for Kernel<S> {
    fn clone(&self) -> Self {
        Kernel {
            shared: self.shared.clone(),
            threads: self
                .threads
                .iter()
                .map(|s| Slot {
                    guest: s.guest.box_clone(),
                    name: s.name.clone(),
                })
                .collect(),
            lanes: self.lanes.clone(),
            memory: self.memory,
            buffers: self.buffers.clone(),
            objects: self.objects.clone(),
            violation: self.violation.clone(),
            stats: self.stats,
            validate_effects: self.validate_effects,
        }
    }
}

impl<S: fmt::Debug> fmt::Debug for Kernel<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kernel")
            .field("shared", &self.shared)
            .field("threads", &self.threads.len())
            .field("memory", &self.memory)
            .field("objects", &self.objects.count())
            .field("violation", &self.violation)
            .field("stats", &self.stats)
            .field("validate_effects", &self.validate_effects)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone)]
    struct Locker {
        pc: u8,
        m: MutexId,
    }

    impl GuestThread<u32> for Locker {
        fn next_op(&self, _: &u32) -> OpDesc {
            match self.pc {
                0 => OpDesc::Acquire(self.m),
                1 => OpDesc::Local,
                2 => OpDesc::Release(self.m),
                _ => OpDesc::Finished,
            }
        }
        fn on_op(&mut self, _: OpResult, shared: &mut u32, _: &mut Effects<u32>) {
            if self.pc == 1 {
                *shared += 1;
            }
            self.pc += 1;
        }
        fn name(&self) -> String {
            "locker".to_string()
        }
        fn box_clone(&self) -> Box<dyn GuestThread<u32>> {
            Box::new(self.clone())
        }
    }

    fn two_lockers() -> (Kernel<u32>, ThreadId, ThreadId) {
        let mut k = Kernel::new(0u32);
        let m = k.add_mutex();
        let a = k.spawn(Locker { pc: 0, m });
        let b = k.spawn(Locker { pc: 0, m });
        (k, a, b)
    }

    #[test]
    fn mutual_exclusion_disables_contender() {
        let (mut k, a, b) = two_lockers();
        assert!(k.enabled(a) && k.enabled(b));
        k.step(a, 0);
        assert!(k.enabled(a));
        assert!(!k.enabled(b), "b must be disabled while a holds the lock");
        k.step(a, 0);
        k.step(a, 0); // release
        assert!(k.enabled(b));
    }

    #[test]
    fn terminating_execution_counts_state() {
        let (mut k, a, b) = two_lockers();
        for t in [a, a, a, b, b, b] {
            k.step(t, 0);
        }
        assert_eq!(*k.shared(), 2);
        assert_eq!(k.status(), KernelStatus::Terminated);
        assert_eq!(k.stats().steps, 6);
        assert_eq!(k.stats().sync_ops, 4); // 2 acquires + 2 releases
    }

    #[test]
    fn deadlock_detected() {
        // Two threads each holding one lock and wanting the other.
        #[derive(Clone)]
        struct Deadlocker {
            pc: u8,
            first: MutexId,
            second: MutexId,
        }
        impl GuestThread<()> for Deadlocker {
            fn next_op(&self, _: &()) -> OpDesc {
                match self.pc {
                    0 => OpDesc::Acquire(self.first),
                    1 => OpDesc::Acquire(self.second),
                    _ => OpDesc::Finished,
                }
            }
            fn on_op(&mut self, _: OpResult, _: &mut (), _: &mut Effects<()>) {
                self.pc += 1;
            }
            fn box_clone(&self) -> Box<dyn GuestThread<()>> {
                Box::new(self.clone())
            }
        }
        let mut k = Kernel::new(());
        let m1 = k.add_mutex();
        let m2 = k.add_mutex();
        let a = k.spawn(Deadlocker {
            pc: 0,
            first: m1,
            second: m2,
        });
        let b = k.spawn(Deadlocker {
            pc: 0,
            first: m2,
            second: m1,
        });
        k.step(a, 0);
        k.step(b, 0);
        assert_eq!(k.status(), KernelStatus::Deadlock);
    }

    #[test]
    fn violation_from_guest_assertion() {
        #[derive(Clone)]
        struct Failer(bool);
        impl GuestThread<()> for Failer {
            fn next_op(&self, _: &()) -> OpDesc {
                if self.0 {
                    OpDesc::Finished
                } else {
                    OpDesc::Local
                }
            }
            fn on_op(&mut self, _: OpResult, _: &mut (), fx: &mut Effects<()>) {
                fx.fail("boom");
                self.0 = true;
            }
            fn box_clone(&self) -> Box<dyn GuestThread<()>> {
                Box::new(self.clone())
            }
        }
        let mut k = Kernel::new(());
        let t = k.spawn(Failer(false));
        k.step(t, 0);
        match k.status() {
            KernelStatus::Violation(v) => {
                assert_eq!(v.thread, t);
                assert_eq!(v.message, "boom");
            }
            s => panic!("expected violation, got {s:?}"),
        }
    }

    #[test]
    fn dynamic_spawn_and_join() {
        #[derive(Clone)]
        struct Child;
        impl GuestThread<u32> for Child {
            fn next_op(&self, shared: &u32) -> OpDesc {
                if *shared == 0 {
                    OpDesc::Local
                } else {
                    OpDesc::Finished
                }
            }
            fn on_op(&mut self, _: OpResult, shared: &mut u32, _: &mut Effects<u32>) {
                *shared = 1;
            }
            fn box_clone(&self) -> Box<dyn GuestThread<u32>> {
                Box::new(self.clone())
            }
        }
        #[derive(Clone)]
        struct Parent {
            pc: u8,
            child: Option<ThreadId>,
        }
        impl GuestThread<u32> for Parent {
            fn next_op(&self, _: &u32) -> OpDesc {
                match self.pc {
                    0 => OpDesc::Local,
                    1 => OpDesc::Join(self.child.unwrap()),
                    _ => OpDesc::Finished,
                }
            }
            fn on_op(&mut self, _: OpResult, _: &mut u32, fx: &mut Effects<u32>) {
                if self.pc == 0 {
                    self.child = Some(fx.spawn(Box::new(Child)));
                }
                self.pc += 1;
            }
            fn box_clone(&self) -> Box<dyn GuestThread<u32>> {
                Box::new(self.clone())
            }
        }
        let mut k = Kernel::new(0u32);
        let p = k.spawn(Parent { pc: 0, child: None });
        k.step(p, 0);
        assert_eq!(k.thread_count(), 2);
        let c = ThreadId::new(1);
        // Parent blocked on join until the child finishes.
        assert!(!k.enabled(p));
        assert!(k.enabled(c));
        k.step(c, 0);
        assert!(k.enabled(p));
        k.step(p, 0);
        assert_eq!(k.status(), KernelStatus::Terminated);
    }

    #[test]
    fn choose_branches() {
        #[derive(Clone)]
        struct Chooser {
            picked: Option<u32>,
        }
        impl GuestThread<()> for Chooser {
            fn next_op(&self, _: &()) -> OpDesc {
                if self.picked.is_none() {
                    OpDesc::Choose(3)
                } else {
                    OpDesc::Finished
                }
            }
            fn on_op(&mut self, r: OpResult, _: &mut (), _: &mut Effects<()>) {
                self.picked = Some(r.as_choice());
            }
            fn box_clone(&self) -> Box<dyn GuestThread<()>> {
                Box::new(self.clone())
            }
        }
        let mut k = Kernel::new(());
        let t = k.spawn(Chooser { picked: None });
        assert_eq!(k.branching(t), 3);
        k.step(t, 2);
        assert_eq!(k.status(), KernelStatus::Terminated);
    }

    #[test]
    fn clone_snapshots_full_state() {
        let (mut k, a, b) = two_lockers();
        k.step(a, 0);
        let snap = k.clone();
        k.step(a, 0);
        k.step(a, 0);
        k.step(b, 0);
        // The snapshot still has a holding the lock and b disabled.
        assert!(!snap.enabled(b));
        assert_eq!(*snap.shared(), 0);
        assert_eq!(*k.shared(), 1);
    }

    #[test]
    fn object_misuse_becomes_violation() {
        #[derive(Clone)]
        struct BadRelease(MutexId, bool);
        impl GuestThread<()> for BadRelease {
            fn next_op(&self, _: &()) -> OpDesc {
                if self.1 {
                    OpDesc::Finished
                } else {
                    OpDesc::Release(self.0)
                }
            }
            fn on_op(&mut self, _: OpResult, _: &mut (), _: &mut Effects<()>) {
                self.1 = true;
            }
            fn box_clone(&self) -> Box<dyn GuestThread<()>> {
                Box::new(self.clone())
            }
        }
        let mut k = Kernel::new(());
        let m = k.add_mutex();
        let t = k.spawn(BadRelease(m, false));
        k.step(t, 0);
        assert!(matches!(k.status(), KernelStatus::Violation(_)));
    }

    /// An object-misuse violation is still a transition that executed:
    /// `steps` (and `sync_ops` for a sync op) must count it, or the
    /// kernel's stats disagree with the search layer's by one.
    #[test]
    fn object_misuse_violation_counts_step_and_sync_op() {
        #[derive(Clone)]
        struct BadRelease(MutexId);
        impl GuestThread<()> for BadRelease {
            fn next_op(&self, _: &()) -> OpDesc {
                OpDesc::Release(self.0)
            }
            fn on_op(&mut self, _: OpResult, _: &mut (), _: &mut Effects<()>) {}
            fn box_clone(&self) -> Box<dyn GuestThread<()>> {
                Box::new(self.clone())
            }
        }
        let mut k = Kernel::new(());
        let m = k.add_mutex();
        let t = k.spawn(BadRelease(m));
        k.step(t, 0);
        assert!(matches!(k.status(), KernelStatus::Violation(_)));
        assert_eq!(k.stats().steps, 1);
        assert_eq!(k.stats().sync_ops, 1);
    }

    /// Same for the `Choose(0)` violation path.
    #[test]
    fn choose_zero_violation_counts_step() {
        #[derive(Clone)]
        struct NoBranches;
        impl GuestThread<()> for NoBranches {
            fn next_op(&self, _: &()) -> OpDesc {
                OpDesc::Choose(0)
            }
            fn on_op(&mut self, _: OpResult, _: &mut (), _: &mut Effects<()>) {}
            fn box_clone(&self) -> Box<dyn GuestThread<()>> {
                Box::new(self.clone())
            }
        }
        let mut k = Kernel::new(());
        let t = k.spawn(NoBranches);
        k.step(t, 0);
        assert!(matches!(k.status(), KernelStatus::Violation(_)));
        assert_eq!(k.stats().steps, 1);
        assert_eq!(k.stats().sync_ops, 0);
    }

    #[test]
    fn step_info_reports_op_and_result() {
        let (mut k, a, b) = two_lockers();
        let fp = k.next_footprint(a);
        let info = k.step(a, 0);
        assert!(matches!(info.op, OpDesc::Acquire(_)));
        assert_eq!(info.result, OpResult::Unit);
        assert!(!info.kind.is_yield());
        assert_eq!(
            info.footprint, fp,
            "pre-step query matches executed footprint"
        );
        assert!(
            info.footprint.describe().unwrap().contains("acquire mutex"),
            "footprint names the mutex"
        );
        let _ = b;
    }

    #[test]
    fn external_monitor_can_report_violations() {
        let (mut k, a, _b) = two_lockers();
        k.report_violation(a, "monitor saw an invariant break");
        match k.status() {
            KernelStatus::Violation(v) => {
                assert_eq!(v.thread, a);
                assert!(v.message.contains("invariant"));
            }
            s => panic!("expected violation, got {s:?}"),
        }
        // First violation wins.
        k.report_violation(a, "second");
        if let KernelStatus::Violation(v) = k.status() {
            assert!(v.message.contains("invariant"));
        }
    }

    #[test]
    fn yields_counted_in_stats() {
        #[derive(Clone)]
        struct Napper(u8);
        impl GuestThread<()> for Napper {
            fn next_op(&self, _: &()) -> OpDesc {
                match self.0 {
                    0 => OpDesc::Sleep,
                    1 => OpDesc::Yield,
                    2 => OpDesc::Local,
                    _ => OpDesc::Finished,
                }
            }
            fn on_op(&mut self, _: OpResult, _: &mut (), _: &mut Effects<()>) {
                self.0 += 1;
            }
            fn box_clone(&self) -> Box<dyn GuestThread<()>> {
                Box::new(self.clone())
            }
        }
        let mut k = Kernel::new(());
        let t = k.spawn(Napper(0));
        assert!(k.is_yielding(t));
        k.step(t, 0);
        k.step(t, 0);
        assert!(!k.is_yielding(t));
        k.step(t, 0);
        assert_eq!(k.stats().yields, 2);
        assert_eq!(k.stats().steps, 3);
    }

    #[test]
    fn names_and_object_counts() {
        let (k, a, _b) = two_lockers();
        assert_eq!(k.thread_name(a), "locker");
        assert_eq!(k.object_count(), 1);
    }

    #[test]
    #[should_panic(expected = "scheduler bug")]
    fn stepping_disabled_thread_panics() {
        let (mut k, a, b) = two_lockers();
        k.step(a, 0);
        k.step(b, 0); // b is disabled: scheduler bug
    }

    /// A store/load/fence straight-line guest over two atomic cells, for
    /// the memory-model tests below.
    #[derive(Clone)]
    struct Writer {
        pc: u8,
        ops: Vec<OpDesc>,
    }

    impl GuestThread<()> for Writer {
        fn next_op(&self, _: &()) -> OpDesc {
            self.ops
                .get(self.pc as usize)
                .copied()
                .unwrap_or(OpDesc::Finished)
        }
        fn on_op(&mut self, _: OpResult, _: &mut (), _: &mut Effects<()>) {
            self.pc += 1;
        }
        fn name(&self) -> String {
            "writer".to_string()
        }
        fn box_clone(&self) -> Box<dyn GuestThread<()>> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn sc_never_buffers() {
        let mut k = Kernel::with_memory((), crate::MemoryModel::Sc);
        let x = k.add_atomic(0);
        let t = k.spawn(Writer {
            pc: 0,
            ops: vec![OpDesc::AtomicStore(x, 7)],
        });
        assert_eq!(k.thread_count(), 1, "no flusher lane under SC");
        k.step(t, 0);
        assert!(k.store_buffer(t).is_none());
        assert_eq!(k.status(), KernelStatus::Terminated);
    }

    #[test]
    fn tso_buffers_store_until_flush() {
        let mut k = Kernel::with_memory((), crate::MemoryModel::Tso);
        let x = k.add_atomic(0);
        let t = k.spawn(Writer {
            pc: 0,
            ops: vec![OpDesc::AtomicStore(x, 7), OpDesc::AtomicLoad(x)],
        });
        let f = ThreadId::new(t.index() + 1);
        assert_eq!(k.thread_count(), 2);
        assert!(k.is_flush(f) && !k.is_flush(t));
        assert_eq!(k.thread_name(f), "writer:flush");
        // Before the store the flusher has nothing to do.
        assert!(!k.enabled(f));
        assert!(k.is_finished(f));
        k.step(t, 0); // store goes to the buffer
        assert_eq!(k.store_buffer(t).unwrap().len(), 1);
        assert!(k.enabled(f), "non-empty buffer enables the flusher");
        assert_eq!(k.next_op(f), OpDesc::Flush(t));
        // The issuing thread forwards from its own buffer.
        let info = k.step(t, 0);
        assert_eq!(info.result, OpResult::Value(7));
        // Termination requires the drain.
        assert_eq!(k.status(), KernelStatus::Running);
        let info = k.step(f, 0);
        assert_eq!(info.op, OpDesc::Flush(t));
        assert!(k.store_buffer(t).unwrap().is_empty());
        assert_eq!(k.status(), KernelStatus::Terminated);
    }

    #[test]
    fn load_reads_memory_on_buffer_miss() {
        let mut k = Kernel::with_memory((), crate::MemoryModel::Tso);
        let x = k.add_atomic(3);
        let y = k.add_atomic(0);
        let t = k.spawn(Writer {
            pc: 0,
            ops: vec![OpDesc::AtomicStore(y, 1), OpDesc::AtomicLoad(x)],
        });
        k.step(t, 0);
        let info = k.step(t, 0);
        assert_eq!(info.result, OpResult::Value(3), "x is not buffered");
    }

    #[test]
    fn fence_blocks_until_drained() {
        let mut k = Kernel::with_memory((), crate::MemoryModel::Tso);
        let x = k.add_atomic(0);
        let t = k.spawn(Writer {
            pc: 0,
            ops: vec![OpDesc::AtomicStore(x, 1), OpDesc::Fence],
        });
        let f = ThreadId::new(t.index() + 1);
        k.step(t, 0);
        assert!(!k.enabled(t), "fence waits for the buffer to drain");
        k.step(f, 0);
        assert!(k.enabled(t), "drained buffer unblocks the fence");
        k.step(t, 0);
        assert_eq!(k.status(), KernelStatus::Terminated);
    }

    #[test]
    fn rmw_waits_for_own_buffer() {
        let mut k = Kernel::with_memory((), crate::MemoryModel::Tso);
        let x = k.add_atomic(0);
        let t = k.spawn(Writer {
            pc: 0,
            ops: vec![OpDesc::AtomicStore(x, 1), OpDesc::AtomicAdd(x, 1)],
        });
        let f = ThreadId::new(t.index() + 1);
        k.step(t, 0);
        assert!(!k.enabled(t), "RMW carries an implicit fence");
        k.step(f, 0);
        let info = k.step(t, 0);
        assert_eq!(
            info.result,
            OpResult::Value(1),
            "add sees the flushed store"
        );
    }

    #[test]
    fn pso_flush_choices_cover_distinct_locations() {
        let mut k = Kernel::with_memory((), crate::MemoryModel::Pso);
        let x = k.add_atomic(0);
        let y = k.add_atomic(0);
        let t = k.spawn(Writer {
            pc: 0,
            ops: vec![
                OpDesc::AtomicStore(x, 1),
                OpDesc::AtomicStore(y, 2),
                OpDesc::AtomicStore(x, 3),
            ],
        });
        let f = ThreadId::new(t.index() + 1);
        k.step(t, 0);
        k.step(t, 0);
        k.step(t, 0);
        assert_eq!(k.branching(f), 2, "two distinct buffered locations");
        // Drain y (choice 1) before either store to x: cross-location
        // reorder that TSO forbids.
        k.step(f, 1);
        assert_eq!(k.branching(f), 1);
        // Per-location FIFO: x drains 1 then 3.
        k.step(f, 0);
        k.step(f, 0);
        assert_eq!(k.status(), KernelStatus::Terminated);
    }

    #[test]
    fn buffered_execution_reaches_same_terminal_capture_as_sc() {
        let run = |memory: crate::MemoryModel| {
            let mut k = Kernel::with_memory((), memory);
            let x = k.add_atomic(0);
            let t = k.spawn(Writer {
                pc: 0,
                ops: vec![OpDesc::AtomicStore(x, 5)],
            });
            k.step(t, 0);
            if memory.buffers() {
                k.step(ThreadId::new(t.index() + 1), 0);
            }
            assert_eq!(k.status(), KernelStatus::Terminated);
            k.capture_state().into_bytes()
        };
        let sc = run(crate::MemoryModel::Sc);
        assert_eq!(sc, run(crate::MemoryModel::Tso));
        assert_eq!(sc, run(crate::MemoryModel::Pso));
    }

    #[test]
    fn dynamic_spawn_predicts_ids_across_flusher_lanes() {
        #[derive(Clone)]
        struct Spawner {
            pc: u8,
            predicted: Option<ThreadId>,
        }
        impl GuestThread<()> for Spawner {
            fn next_op(&self, _: &()) -> OpDesc {
                match self.pc {
                    0 => OpDesc::Local,
                    1 => OpDesc::Join(self.predicted.unwrap()),
                    _ => OpDesc::Finished,
                }
            }
            fn on_op(&mut self, _: OpResult, _: &mut (), fx: &mut Effects<()>) {
                if self.pc == 0 {
                    self.predicted = Some(fx.spawn(Box::new(Writer { pc: 0, ops: vec![] })));
                }
                self.pc += 1;
            }
            fn box_clone(&self) -> Box<dyn GuestThread<()>> {
                Box::new(self.clone())
            }
        }
        let mut k = Kernel::with_memory((), crate::MemoryModel::Tso);
        let p = k.spawn(Spawner {
            pc: 0,
            predicted: None,
        });
        k.step(p, 0);
        // Parent (lane 0) + its flusher (1) + child (2) + child's flusher (3).
        assert_eq!(k.thread_count(), 4);
        let c = ThreadId::new(2);
        assert!(!k.is_flush(c) && k.is_flush(ThreadId::new(3)));
        // The join on the predicted id resolves: the child is finished.
        assert!(k.enabled(p));
        k.step(p, 0);
        assert_eq!(k.status(), KernelStatus::Terminated);
    }

    #[test]
    fn flush_and_fence_footprints_render() {
        let mut k = Kernel::with_memory((), crate::MemoryModel::Tso);
        let x = k.add_atomic(0);
        let t = k.spawn(Writer {
            pc: 0,
            ops: vec![OpDesc::AtomicStore(x, 1), OpDesc::Fence],
        });
        let f = ThreadId::new(t.index() + 1);
        assert_eq!(
            k.next_footprint(t).describe().as_deref(),
            Some("buffer atomic0")
        );
        k.step(t, 0);
        assert_eq!(
            k.next_footprint(f).describe().as_deref(),
            Some("flush atomic0")
        );
        assert_eq!(k.next_footprint(t).describe().as_deref(), Some("fence"));
        // The flush carries no shared-state write: it commutes with
        // guest-local transitions.
        assert!(k
            .next_footprint(f)
            .accesses()
            .iter()
            .all(|a| a.object != crate::ObjectRef::SharedState));
    }

    /// Shared state with two named cells for the effect-API tests.
    #[derive(Clone, Default)]
    struct Pair {
        x: u64,
        y: u64,
    }

    impl Capture for Pair {
        fn capture(&self, w: &mut StateWriter) {
            w.write_u64(self.x);
            w.write_u64(self.y);
        }
        fn cells(&self) -> Vec<(&'static str, u32)> {
            vec![("x", 0), ("y", 0)]
        }
        fn capture_cell(&self, name: &'static str, _index: u32, w: &mut StateWriter) {
            match name {
                "x" => w.write_u64(self.x),
                "y" => w.write_u64(self.y),
                _ => {}
            }
        }
    }

    /// Bumps one cell; declares either the truth or a lie.
    #[derive(Clone)]
    struct CellBumper {
        pc: u8,
        target: &'static str,
        honest: bool,
    }

    impl GuestThread<Pair> for CellBumper {
        fn next_op(&self, _: &Pair) -> OpDesc {
            if self.pc == 0 {
                OpDesc::Local
            } else {
                OpDesc::Finished
            }
        }
        fn on_op(&mut self, _: OpResult, sh: &mut Pair, _: &mut Effects<Pair>) {
            match self.target {
                "x" => sh.x += 1,
                _ => sh.y += 1,
            }
            self.pc += 1;
        }
        fn shared_effects(&self, _: &OpDesc) -> SharedEffects {
            if self.honest {
                SharedEffects::writes([(self.target, 0)])
            } else {
                SharedEffects::Pure
            }
        }
        fn box_clone(&self) -> Box<dyn GuestThread<Pair>> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn declared_effects_make_disjoint_cell_writers_independent() {
        let mut k = Kernel::new(Pair::default());
        let a = k.spawn(CellBumper {
            pc: 0,
            target: "x",
            honest: true,
        });
        let b = k.spawn(CellBumper {
            pc: 0,
            target: "y",
            honest: true,
        });
        let fa = k.next_footprint(a);
        let fb = k.next_footprint(b);
        assert_eq!(fa.describe().as_deref(), Some("write x"));
        assert!(!fa.dependent(&fb), "writes to distinct cells commute");
        assert!(fa.dependent(&fa.clone()), "same-cell writes conflict");
    }

    #[test]
    fn pure_yields_are_independent() {
        // Regression: pure scheduling ops used to stamp a whole-state
        // write, making two yielding threads' transitions dependent at
        // the kernel level.
        #[derive(Clone)]
        struct Yielder(u8);
        impl GuestThread<Pair> for Yielder {
            fn next_op(&self, _: &Pair) -> OpDesc {
                if self.0 == 0 {
                    OpDesc::Yield
                } else {
                    OpDesc::Finished
                }
            }
            fn on_op(&mut self, _: OpResult, _: &mut Pair, _: &mut Effects<Pair>) {
                self.0 += 1;
            }
            fn shared_effects(&self, _: &OpDesc) -> SharedEffects {
                SharedEffects::Pure
            }
            fn box_clone(&self) -> Box<dyn GuestThread<Pair>> {
                Box::new(self.clone())
            }
        }
        let mut k = Kernel::new(Pair::default());
        let a = k.spawn(Yielder(0));
        let b = k.spawn(Yielder(0));
        let (fa, fb) = (k.next_footprint(a), k.next_footprint(b));
        assert!(fa.accesses().is_empty(), "a pure yield has no accesses");
        assert!(!fa.dependent(&fb), "two pure yields are independent");
        // An undeclared guest's op stays conservatively dependent.
        let mut conservative = Kernel::new(0u32);
        let m = conservative.add_mutex();
        let c = conservative.spawn(Locker { pc: 0, m });
        let d = conservative.spawn(Locker { pc: 0, m });
        assert!(conservative
            .next_footprint(c)
            .dependent(&conservative.next_footprint(d)));
    }

    #[test]
    fn validation_accepts_honest_declarations() {
        let mut k = Kernel::new(Pair::default());
        let a = k.spawn(CellBumper {
            pc: 0,
            target: "x",
            honest: true,
        });
        k.step_validated(a, 0);
        assert_eq!(k.status(), KernelStatus::Terminated);
        assert_eq!(k.shared().x, 1);
    }

    #[test]
    fn validation_flags_undeclared_cell_write() {
        let mut k = Kernel::new(Pair::default());
        let a = k.spawn(CellBumper {
            pc: 0,
            target: "y",
            honest: false,
        });
        k.step_validated(a, 0);
        match k.status() {
            KernelStatus::Violation(v) => {
                assert!(
                    v.message.contains("undeclared shared-state write"),
                    "unexpected message: {}",
                    v.message
                );
                assert!(
                    v.message.contains("[y]"),
                    "must name the cell: {}",
                    v.message
                );
            }
            s => panic!("expected a violation, got {s:?}"),
        }
    }

    #[test]
    fn validation_flags_mutation_outside_named_cells() {
        // `z` is captured but not named as a cell: mutating it changes
        // the whole-state capture while every named cell stays equal.
        #[derive(Clone, Default)]
        struct WithResidue {
            x: u64,
            z: u64,
        }
        impl Capture for WithResidue {
            fn capture(&self, w: &mut StateWriter) {
                w.write_u64(self.x);
                w.write_u64(self.z);
            }
            fn cells(&self) -> Vec<(&'static str, u32)> {
                vec![("x", 0)]
            }
            fn capture_cell(&self, name: &'static str, _i: u32, w: &mut StateWriter) {
                if name == "x" {
                    w.write_u64(self.x);
                }
            }
        }
        #[derive(Clone)]
        struct ResidueWriter(u8);
        impl GuestThread<WithResidue> for ResidueWriter {
            fn next_op(&self, _: &WithResidue) -> OpDesc {
                if self.0 == 0 {
                    OpDesc::Local
                } else {
                    OpDesc::Finished
                }
            }
            fn on_op(&mut self, _: OpResult, sh: &mut WithResidue, _: &mut Effects<WithResidue>) {
                sh.z += 1;
                self.0 += 1;
            }
            fn shared_effects(&self, _: &OpDesc) -> SharedEffects {
                SharedEffects::writes([("x", 0)])
            }
            fn box_clone(&self) -> Box<dyn GuestThread<WithResidue>> {
                Box::new(self.clone())
            }
        }
        let mut k = Kernel::new(WithResidue::default());
        let a = k.spawn(ResidueWriter(0));
        k.step_validated(a, 0);
        match k.status() {
            KernelStatus::Violation(v) => assert!(
                v.message.contains("outside the named cells"),
                "unexpected message: {}",
                v.message
            ),
            s => panic!("expected a violation, got {s:?}"),
        }
    }
}
