//! Kernel synchronization objects and their exact enabledness semantics.
//!
//! Every object models the *demonic* semantics a model checker wants: when
//! an object becomes available (a mutex is released, an event is set, a
//! message arrives), all threads waiting for it become **enabled**, and
//! which of them actually completes its operation is a scheduling choice.
//! There are no hidden wait queues deciding winners behind the scheduler's
//! back.

use std::collections::VecDeque;

use crate::capture::StateWriter;
use crate::ids::{
    AtomicId, BarrierId, ChannelId, CondvarId, EventId, MutexId, RwLockId, SemaphoreId,
};
use crate::op::{OpDesc, OpResult, StepKind};
use crate::tid::{ThreadId, TidSet};

/// A mutual-exclusion lock. Non-reentrant: re-acquiring a held mutex is a
/// reported violation, as is releasing a mutex the thread does not hold.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MutexState {
    pub(crate) holder: Option<ThreadId>,
}

/// A reader-writer lock: any number of readers or one writer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RwLockState {
    pub(crate) writer: Option<ThreadId>,
    pub(crate) readers: TidSet,
}

/// A counting semaphore.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SemaphoreState {
    pub(crate) permits: u32,
}

/// A Win32-style event: manual-reset stays set until reset; auto-reset is
/// consumed by the first waiter that completes its wait.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventState {
    pub(crate) set: bool,
    pub(crate) auto_reset: bool,
}

/// A condition variable.
///
/// Waiting is split into two guest-visible transitions (see
/// [`OpDesc::CondEnroll`] and [`OpDesc::CondConsume`]); signals either mark
/// specific enrolled waiters (broadcast) or add an anonymous token that any
/// enrolled waiter may consume (signal). A signal with no enrolled waiters
/// is lost, matching real condition variables.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CondvarState {
    pub(crate) enrolled: TidSet,
    pub(crate) signaled: TidSet,
    pub(crate) tokens: u32,
}

/// A single `u64` cell accessed with atomic operations (the "volatile
/// word" of lock-free algorithms).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AtomicState {
    pub(crate) value: u64,
}

/// An n-party reusable barrier. Arrivals are counted per *generation*;
/// when the last party arrives, the generation advances and the waiters
/// of the previous generation become enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BarrierState {
    pub(crate) parties: u32,
    pub(crate) arrived: u32,
    pub(crate) generation: u64,
}

/// A bounded FIFO channel of `u64` messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelState {
    pub(crate) queue: VecDeque<u64>,
    pub(crate) capacity: usize,
    pub(crate) closed: bool,
}

/// A violation detected while executing an operation: the guest misused a
/// kernel object (double acquire, stray release, ...). These surface as
/// safety violations of the execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectViolation(pub String);

/// The table of all synchronization objects in a kernel instance.
#[derive(Debug, Default)]
pub struct Objects {
    pub(crate) mutexes: Vec<MutexState>,
    pub(crate) rwlocks: Vec<RwLockState>,
    pub(crate) semaphores: Vec<SemaphoreState>,
    pub(crate) atomics: Vec<AtomicState>,
    pub(crate) barriers: Vec<BarrierState>,
    pub(crate) events: Vec<EventState>,
    pub(crate) condvars: Vec<CondvarState>,
    pub(crate) channels: Vec<ChannelState>,
}

impl Clone for Objects {
    fn clone(&self) -> Self {
        Objects {
            mutexes: self.mutexes.clone(),
            rwlocks: self.rwlocks.clone(),
            semaphores: self.semaphores.clone(),
            atomics: self.atomics.clone(),
            barriers: self.barriers.clone(),
            events: self.events.clone(),
            condvars: self.condvars.clone(),
            channels: self.channels.clone(),
        }
    }

    // Field-wise `Vec::clone_from` reuses the per-table buffers when the
    // kernel pool resets a table from an execution template (the derived
    // impl would reallocate all eight on every execution).
    fn clone_from(&mut self, source: &Self) {
        self.mutexes.clone_from(&source.mutexes);
        self.rwlocks.clone_from(&source.rwlocks);
        self.semaphores.clone_from(&source.semaphores);
        self.atomics.clone_from(&source.atomics);
        self.barriers.clone_from(&source.barriers);
        self.events.clone_from(&source.events);
        self.condvars.clone_from(&source.condvars);
        self.channels.clone_from(&source.channels);
    }
}

impl Objects {
    pub(crate) fn add_mutex(&mut self) -> MutexId {
        self.mutexes.push(MutexState::default());
        MutexId::new(self.mutexes.len() - 1)
    }

    pub(crate) fn add_rwlock(&mut self) -> RwLockId {
        self.rwlocks.push(RwLockState::default());
        RwLockId::new(self.rwlocks.len() - 1)
    }

    pub(crate) fn add_semaphore(&mut self, permits: u32) -> SemaphoreId {
        self.semaphores.push(SemaphoreState { permits });
        SemaphoreId::new(self.semaphores.len() - 1)
    }

    pub(crate) fn add_atomic(&mut self, value: u64) -> AtomicId {
        self.atomics.push(AtomicState { value });
        AtomicId::new(self.atomics.len() - 1)
    }

    pub(crate) fn add_barrier(&mut self, parties: u32) -> BarrierId {
        self.barriers.push(BarrierState {
            parties,
            arrived: 0,
            generation: 0,
        });
        BarrierId::new(self.barriers.len() - 1)
    }

    pub(crate) fn add_event(&mut self, auto_reset: bool, initially_set: bool) -> EventId {
        self.events.push(EventState {
            set: initially_set,
            auto_reset,
        });
        EventId::new(self.events.len() - 1)
    }

    pub(crate) fn add_condvar(&mut self) -> CondvarId {
        self.condvars.push(CondvarState::default());
        CondvarId::new(self.condvars.len() - 1)
    }

    pub(crate) fn add_channel(&mut self, capacity: usize) -> ChannelId {
        self.channels.push(ChannelState {
            queue: VecDeque::new(),
            capacity,
            closed: false,
        });
        ChannelId::new(self.channels.len() - 1)
    }

    /// Is the object-touching operation `op`, issued by thread `t`,
    /// currently executable without blocking?
    ///
    /// Operations not handled by the object table (`Local`, `Yield`,
    /// `Join`, ...) are not passed here; see `Kernel::enabled`.
    pub(crate) fn satisfiable(&self, t: ThreadId, op: &OpDesc) -> bool {
        match *op {
            OpDesc::Acquire(m) => self.mutexes[m.index()].holder.is_none(),
            OpDesc::RwAcquireRead(l) => self.rwlocks[l.index()].writer.is_none(),
            OpDesc::RwAcquireWrite(l) => {
                let lk = &self.rwlocks[l.index()];
                lk.writer.is_none() && lk.readers.is_empty()
            }
            OpDesc::SemDown(s) => self.semaphores[s.index()].permits > 0,
            OpDesc::EventWait(e) => self.events[e.index()].set,
            OpDesc::CondConsume(cv) => {
                let c = &self.condvars[cv.index()];
                c.enrolled.contains(t) && (c.signaled.contains(t) || c.tokens > 0)
            }
            OpDesc::Send(ch, _) => {
                let c = &self.channels[ch.index()];
                c.closed || c.queue.len() < c.capacity
            }
            OpDesc::Recv(ch) => {
                let c = &self.channels[ch.index()];
                c.closed || !c.queue.is_empty()
            }
            OpDesc::BarrierAwait(b, gen) => self.barriers[b.index()].generation > gen,
            // Try-operations, timeouts, releases, sets, signals, atomics
            // and barrier arrivals never block.
            _ => true,
        }
    }

    /// Would executing `op` right now be a *yielding* transition?
    ///
    /// Explicit yields and sleeps always are; timeout-operations are
    /// yielding exactly when they would time out (CHESS's rule that every
    /// synchronization operation with a finite timeout is a yield).
    pub(crate) fn is_yielding(&self, op: &OpDesc) -> bool {
        match *op {
            OpDesc::Yield | OpDesc::Sleep => true,
            OpDesc::AcquireTimeout(m) => self.mutexes[m.index()].holder.is_some(),
            OpDesc::SemDownTimeout(s) => self.semaphores[s.index()].permits == 0,
            OpDesc::EventWaitTimeout(e) => !self.events[e.index()].set,
            _ => false,
        }
    }

    /// Executes an object-touching operation on behalf of thread `t`.
    ///
    /// The caller (the kernel) guarantees `satisfiable(t, op)` holds.
    ///
    /// # Errors
    ///
    /// Returns an [`ObjectViolation`] if the guest misused the object
    /// (releasing a mutex it does not hold, double-acquire, consuming a
    /// condition variable it is not enrolled on, ...).
    pub(crate) fn execute(
        &mut self,
        t: ThreadId,
        op: &OpDesc,
    ) -> Result<(OpResult, StepKind), ObjectViolation> {
        use OpDesc::*;
        let r = match *op {
            Acquire(m) => {
                let mx = &mut self.mutexes[m.index()];
                if mx.holder == Some(t) {
                    return Err(ObjectViolation(format!("{t} re-acquired held {m}")));
                }
                debug_assert!(mx.holder.is_none());
                mx.holder = Some(t);
                (OpResult::Unit, StepKind::Normal)
            }
            TryAcquire(m) => {
                let mx = &mut self.mutexes[m.index()];
                if mx.holder == Some(t) {
                    return Err(ObjectViolation(format!("{t} re-acquired held {m}")));
                }
                if mx.holder.is_none() {
                    mx.holder = Some(t);
                    (OpResult::Bool(true), StepKind::Normal)
                } else {
                    (OpResult::Bool(false), StepKind::Normal)
                }
            }
            AcquireTimeout(m) => {
                let mx = &mut self.mutexes[m.index()];
                if mx.holder == Some(t) {
                    return Err(ObjectViolation(format!("{t} re-acquired held {m}")));
                }
                if mx.holder.is_none() {
                    mx.holder = Some(t);
                    (OpResult::Bool(true), StepKind::Normal)
                } else {
                    (OpResult::Bool(false), StepKind::Yield)
                }
            }
            Release(m) => {
                let mx = &mut self.mutexes[m.index()];
                if mx.holder != Some(t) {
                    return Err(ObjectViolation(format!(
                        "{t} released {m} it does not hold"
                    )));
                }
                mx.holder = None;
                (OpResult::Unit, StepKind::Normal)
            }
            RwAcquireRead(l) => {
                let lk = &mut self.rwlocks[l.index()];
                if lk.readers.contains(t) {
                    return Err(ObjectViolation(format!("{t} re-acquired {l} for read")));
                }
                debug_assert!(lk.writer.is_none());
                lk.readers.insert(t);
                (OpResult::Unit, StepKind::Normal)
            }
            RwAcquireWrite(l) => {
                let lk = &mut self.rwlocks[l.index()];
                debug_assert!(lk.writer.is_none() && lk.readers.is_empty());
                lk.writer = Some(t);
                (OpResult::Unit, StepKind::Normal)
            }
            RwTryAcquireWrite(l) => {
                let lk = &mut self.rwlocks[l.index()];
                if lk.writer.is_none() && lk.readers.is_empty() {
                    lk.writer = Some(t);
                    (OpResult::Bool(true), StepKind::Normal)
                } else {
                    (OpResult::Bool(false), StepKind::Normal)
                }
            }
            RwRelease(l) => {
                let lk = &mut self.rwlocks[l.index()];
                if lk.writer == Some(t) {
                    lk.writer = None;
                } else if !lk.readers.remove(t) {
                    return Err(ObjectViolation(format!(
                        "{t} released {l} it does not hold"
                    )));
                }
                (OpResult::Unit, StepKind::Normal)
            }
            SemDown(s) => {
                let sem = &mut self.semaphores[s.index()];
                debug_assert!(sem.permits > 0);
                sem.permits -= 1;
                (OpResult::Unit, StepKind::Normal)
            }
            SemDownTimeout(s) => {
                let sem = &mut self.semaphores[s.index()];
                if sem.permits > 0 {
                    sem.permits -= 1;
                    (OpResult::Bool(true), StepKind::Normal)
                } else {
                    (OpResult::Bool(false), StepKind::Yield)
                }
            }
            SemUp(s) => {
                let sem = &mut self.semaphores[s.index()];
                sem.permits = sem.permits.checked_add(1).ok_or_else(|| {
                    ObjectViolation(format!("semaphore {s} permit count overflow"))
                })?;
                (OpResult::Unit, StepKind::Normal)
            }
            EventWait(e) => {
                let ev = &mut self.events[e.index()];
                debug_assert!(ev.set);
                if ev.auto_reset {
                    ev.set = false;
                }
                (OpResult::Unit, StepKind::Normal)
            }
            EventWaitTimeout(e) => {
                let ev = &mut self.events[e.index()];
                if ev.set {
                    if ev.auto_reset {
                        ev.set = false;
                    }
                    (OpResult::Bool(true), StepKind::Normal)
                } else {
                    (OpResult::Bool(false), StepKind::Yield)
                }
            }
            EventSet(e) => {
                self.events[e.index()].set = true;
                (OpResult::Unit, StepKind::Normal)
            }
            EventReset(e) => {
                self.events[e.index()].set = false;
                (OpResult::Unit, StepKind::Normal)
            }
            CondEnroll(cv, m) => {
                if self.mutexes[m.index()].holder != Some(t) {
                    return Err(ObjectViolation(format!(
                        "{t} waited on {cv} without holding {m}"
                    )));
                }
                self.mutexes[m.index()].holder = None;
                let c = &mut self.condvars[cv.index()];
                c.enrolled.insert(t);
                (OpResult::Unit, StepKind::Normal)
            }
            CondConsume(cv) => {
                let c = &mut self.condvars[cv.index()];
                if !c.enrolled.remove(t) {
                    return Err(ObjectViolation(format!("{t} consumed {cv} unenrolled")));
                }
                if !c.signaled.remove(t) {
                    debug_assert!(c.tokens > 0);
                    c.tokens -= 1;
                }
                (OpResult::Unit, StepKind::Normal)
            }
            CondSignal(cv) => {
                let c = &mut self.condvars[cv.index()];
                // A signal with no un-signaled enrolled waiter is lost.
                let unsignaled = c.enrolled.difference(&c.signaled).len() as u32;
                if c.tokens < unsignaled {
                    c.tokens += 1;
                }
                (OpResult::Unit, StepKind::Normal)
            }
            CondBroadcast(cv) => {
                let c = &mut self.condvars[cv.index()];
                let enrolled = c.enrolled.clone();
                c.signaled.union_with(&enrolled);
                c.tokens = 0;
                (OpResult::Unit, StepKind::Normal)
            }
            Send(ch, msg) => {
                let c = &mut self.channels[ch.index()];
                if c.closed {
                    (OpResult::Bool(false), StepKind::Normal)
                } else {
                    debug_assert!(c.queue.len() < c.capacity);
                    c.queue.push_back(msg);
                    (OpResult::Bool(true), StepKind::Normal)
                }
            }
            TrySend(ch, msg) => {
                let c = &mut self.channels[ch.index()];
                if !c.closed && c.queue.len() < c.capacity {
                    c.queue.push_back(msg);
                    (OpResult::Bool(true), StepKind::Normal)
                } else {
                    (OpResult::Bool(false), StepKind::Normal)
                }
            }
            Recv(ch) => {
                let c = &mut self.channels[ch.index()];
                match c.queue.pop_front() {
                    Some(m) => (OpResult::Message(Some(m)), StepKind::Normal),
                    None => {
                        debug_assert!(c.closed);
                        (OpResult::Message(None), StepKind::Normal)
                    }
                }
            }
            TryRecv(ch) => {
                let c = &mut self.channels[ch.index()];
                (OpResult::Message(c.queue.pop_front()), StepKind::Normal)
            }
            Close(ch) => {
                self.channels[ch.index()].closed = true;
                (OpResult::Unit, StepKind::Normal)
            }
            AtomicLoad(a) => (
                OpResult::Value(self.atomics[a.index()].value),
                StepKind::Normal,
            ),
            AtomicStore(a, v) => {
                self.atomics[a.index()].value = v;
                (OpResult::Unit, StepKind::Normal)
            }
            AtomicCas(a, expected, new) => {
                let cell = &mut self.atomics[a.index()];
                if cell.value == expected {
                    cell.value = new;
                    (OpResult::Bool(true), StepKind::Normal)
                } else {
                    (OpResult::Bool(false), StepKind::Normal)
                }
            }
            AtomicSwap(a, v) => {
                let cell = &mut self.atomics[a.index()];
                let old = cell.value;
                cell.value = v;
                (OpResult::Value(old), StepKind::Normal)
            }
            AtomicAdd(a, delta) => {
                let cell = &mut self.atomics[a.index()];
                let old = cell.value;
                cell.value = old.wrapping_add(delta);
                (OpResult::Value(old), StepKind::Normal)
            }
            BarrierArrive(b) => {
                let bar = &mut self.barriers[b.index()];
                bar.arrived += 1;
                let gen = bar.generation;
                if bar.arrived >= bar.parties {
                    bar.arrived = 0;
                    bar.generation += 1;
                }
                (OpResult::Value(gen), StepKind::Normal)
            }
            BarrierAwait(..) => (OpResult::Unit, StepKind::Normal),
            Yield => (OpResult::Unit, StepKind::Yield),
            Sleep => (OpResult::Unit, StepKind::Yield),
            Local | Finished | Choose(_) | Join(_) | Fence | Flush(_) => {
                unreachable!("operation {op:?} is handled by the kernel, not the object table")
            }
        };
        Ok(r)
    }

    /// Writes the full object-table state for fingerprinting.
    pub(crate) fn capture(&self, w: &mut StateWriter) {
        for m in &self.mutexes {
            match m.holder {
                Some(t) => w.write_u32(t.index() as u32 + 1),
                None => w.write_u32(0),
            }
        }
        for l in &self.rwlocks {
            match l.writer {
                Some(t) => w.write_u32(t.index() as u32 + 1),
                None => w.write_u32(0),
            }
            for r in l.readers.iter() {
                w.write_u32(r.index() as u32);
            }
            w.write_u32(u32::MAX);
        }
        for s in &self.semaphores {
            w.write_u32(s.permits);
        }
        for a in &self.atomics {
            w.write_u64(a.value);
        }
        for b in &self.barriers {
            w.write_u32(b.arrived);
            w.write_u64(b.generation);
        }
        for e in &self.events {
            w.write_bool(e.set);
        }
        for c in &self.condvars {
            w.write_u32(c.tokens);
            for t in c.enrolled.iter() {
                w.write_u32(t.index() as u32);
            }
            w.write_u32(u32::MAX);
            for t in c.signaled.iter() {
                w.write_u32(t.index() as u32);
            }
            w.write_u32(u32::MAX);
        }
        for ch in &self.channels {
            w.write_bool(ch.closed);
            w.write_u32(ch.queue.len() as u32);
            for &m in &ch.queue {
                w.write_u64(m);
            }
        }
    }

    /// Total number of objects, for diagnostics.
    pub(crate) fn count(&self) -> usize {
        self.mutexes.len()
            + self.rwlocks.len()
            + self.semaphores.len()
            + self.events.len()
            + self.condvars.len()
            + self.channels.len()
            + self.atomics.len()
            + self.barriers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: usize) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn mutex_lifecycle() {
        let mut o = Objects::default();
        let m = o.add_mutex();
        assert!(o.satisfiable(t(0), &OpDesc::Acquire(m)));
        o.execute(t(0), &OpDesc::Acquire(m)).unwrap();
        assert!(!o.satisfiable(t(1), &OpDesc::Acquire(m)));
        // try-acquire fails but does not block
        assert!(o.satisfiable(t(1), &OpDesc::TryAcquire(m)));
        let (r, _) = o.execute(t(1), &OpDesc::TryAcquire(m)).unwrap();
        assert_eq!(r, OpResult::Bool(false));
        o.execute(t(0), &OpDesc::Release(m)).unwrap();
        assert!(o.satisfiable(t(1), &OpDesc::Acquire(m)));
    }

    #[test]
    fn mutex_misuse_is_violation() {
        let mut o = Objects::default();
        let m = o.add_mutex();
        assert!(o.execute(t(0), &OpDesc::Release(m)).is_err());
        o.execute(t(0), &OpDesc::Acquire(m)).unwrap();
        assert!(o.execute(t(0), &OpDesc::TryAcquire(m)).is_err());
    }

    #[test]
    fn acquire_timeout_yields_when_held() {
        let mut o = Objects::default();
        let m = o.add_mutex();
        o.execute(t(0), &OpDesc::Acquire(m)).unwrap();
        assert!(o.is_yielding(&OpDesc::AcquireTimeout(m)));
        let (r, k) = o.execute(t(1), &OpDesc::AcquireTimeout(m)).unwrap();
        assert_eq!(r, OpResult::Bool(false));
        assert_eq!(k, StepKind::Yield);
        o.execute(t(0), &OpDesc::Release(m)).unwrap();
        assert!(!o.is_yielding(&OpDesc::AcquireTimeout(m)));
        let (r, k) = o.execute(t(1), &OpDesc::AcquireTimeout(m)).unwrap();
        assert_eq!(r, OpResult::Bool(true));
        assert_eq!(k, StepKind::Normal);
    }

    #[test]
    fn rwlock_readers_exclude_writer() {
        let mut o = Objects::default();
        let l = o.add_rwlock();
        o.execute(t(0), &OpDesc::RwAcquireRead(l)).unwrap();
        o.execute(t(1), &OpDesc::RwAcquireRead(l)).unwrap();
        assert!(!o.satisfiable(t(2), &OpDesc::RwAcquireWrite(l)));
        assert!(o.satisfiable(t(2), &OpDesc::RwAcquireRead(l)));
        o.execute(t(0), &OpDesc::RwRelease(l)).unwrap();
        o.execute(t(1), &OpDesc::RwRelease(l)).unwrap();
        assert!(o.satisfiable(t(2), &OpDesc::RwAcquireWrite(l)));
        o.execute(t(2), &OpDesc::RwAcquireWrite(l)).unwrap();
        assert!(!o.satisfiable(t(0), &OpDesc::RwAcquireRead(l)));
    }

    #[test]
    fn semaphore_counts_permits() {
        let mut o = Objects::default();
        let s = o.add_semaphore(2);
        o.execute(t(0), &OpDesc::SemDown(s)).unwrap();
        o.execute(t(1), &OpDesc::SemDown(s)).unwrap();
        assert!(!o.satisfiable(t(2), &OpDesc::SemDown(s)));
        o.execute(t(0), &OpDesc::SemUp(s)).unwrap();
        assert!(o.satisfiable(t(2), &OpDesc::SemDown(s)));
    }

    #[test]
    fn auto_reset_event_consumed_once() {
        let mut o = Objects::default();
        let e = o.add_event(true, false);
        assert!(!o.satisfiable(t(0), &OpDesc::EventWait(e)));
        o.execute(t(1), &OpDesc::EventSet(e)).unwrap();
        assert!(o.satisfiable(t(0), &OpDesc::EventWait(e)));
        o.execute(t(0), &OpDesc::EventWait(e)).unwrap();
        assert!(!o.satisfiable(t(2), &OpDesc::EventWait(e)));
    }

    #[test]
    fn manual_reset_event_stays_set() {
        let mut o = Objects::default();
        let e = o.add_event(false, false);
        o.execute(t(1), &OpDesc::EventSet(e)).unwrap();
        o.execute(t(0), &OpDesc::EventWait(e)).unwrap();
        assert!(o.satisfiable(t(2), &OpDesc::EventWait(e)));
        o.execute(t(1), &OpDesc::EventReset(e)).unwrap();
        assert!(!o.satisfiable(t(2), &OpDesc::EventWait(e)));
    }

    #[test]
    fn condvar_signal_wakes_one() {
        let mut o = Objects::default();
        let m = o.add_mutex();
        let cv = o.add_condvar();
        for i in 0..2 {
            o.execute(t(i), &OpDesc::Acquire(m)).unwrap();
            o.execute(t(i), &OpDesc::CondEnroll(cv, m)).unwrap();
        }
        assert!(!o.satisfiable(t(0), &OpDesc::CondConsume(cv)));
        o.execute(t(2), &OpDesc::CondSignal(cv)).unwrap();
        // Either waiter may take the signal: both are enabled.
        assert!(o.satisfiable(t(0), &OpDesc::CondConsume(cv)));
        assert!(o.satisfiable(t(1), &OpDesc::CondConsume(cv)));
        o.execute(t(1), &OpDesc::CondConsume(cv)).unwrap();
        assert!(!o.satisfiable(t(0), &OpDesc::CondConsume(cv)));
    }

    #[test]
    fn condvar_broadcast_wakes_all_lost_signal_dropped() {
        let mut o = Objects::default();
        let m = o.add_mutex();
        let cv = o.add_condvar();
        // Signal with no waiters is lost.
        o.execute(t(2), &OpDesc::CondSignal(cv)).unwrap();
        o.execute(t(0), &OpDesc::Acquire(m)).unwrap();
        o.execute(t(0), &OpDesc::CondEnroll(cv, m)).unwrap();
        assert!(!o.satisfiable(t(0), &OpDesc::CondConsume(cv)));
        o.execute(t(1), &OpDesc::Acquire(m)).unwrap();
        o.execute(t(1), &OpDesc::CondEnroll(cv, m)).unwrap();
        o.execute(t(2), &OpDesc::CondBroadcast(cv)).unwrap();
        assert!(o.satisfiable(t(0), &OpDesc::CondConsume(cv)));
        assert!(o.satisfiable(t(1), &OpDesc::CondConsume(cv)));
        o.execute(t(0), &OpDesc::CondConsume(cv)).unwrap();
        assert!(o.satisfiable(t(1), &OpDesc::CondConsume(cv)));
    }

    #[test]
    fn condvar_enroll_requires_mutex() {
        let mut o = Objects::default();
        let m = o.add_mutex();
        let cv = o.add_condvar();
        assert!(o.execute(t(0), &OpDesc::CondEnroll(cv, m)).is_err());
    }

    #[test]
    fn channel_bounded_send_recv() {
        let mut o = Objects::default();
        let ch = o.add_channel(1);
        assert!(!o.satisfiable(t(0), &OpDesc::Recv(ch)));
        o.execute(t(1), &OpDesc::Send(ch, 42)).unwrap();
        assert!(!o.satisfiable(t(1), &OpDesc::Send(ch, 43)));
        let (r, _) = o.execute(t(0), &OpDesc::Recv(ch)).unwrap();
        assert_eq!(r, OpResult::Message(Some(42)));
        assert!(o.satisfiable(t(1), &OpDesc::Send(ch, 43)));
    }

    #[test]
    fn closed_channel_drains_then_returns_none() {
        let mut o = Objects::default();
        let ch = o.add_channel(4);
        o.execute(t(1), &OpDesc::Send(ch, 1)).unwrap();
        o.execute(t(1), &OpDesc::Close(ch)).unwrap();
        let (r, _) = o.execute(t(1), &OpDesc::Send(ch, 2)).unwrap();
        assert_eq!(r, OpResult::Bool(false));
        let (r, _) = o.execute(t(0), &OpDesc::Recv(ch)).unwrap();
        assert_eq!(r, OpResult::Message(Some(1)));
        assert!(o.satisfiable(t(0), &OpDesc::Recv(ch)));
        let (r, _) = o.execute(t(0), &OpDesc::Recv(ch)).unwrap();
        assert_eq!(r, OpResult::Message(None));
    }

    #[test]
    fn try_send_try_recv_never_block() {
        let mut o = Objects::default();
        let ch = o.add_channel(1);
        let (r, _) = o.execute(t(0), &OpDesc::TryRecv(ch)).unwrap();
        assert_eq!(r, OpResult::Message(None));
        let (r, _) = o.execute(t(0), &OpDesc::TrySend(ch, 1)).unwrap();
        assert_eq!(r, OpResult::Bool(true));
        let (r, _) = o.execute(t(0), &OpDesc::TrySend(ch, 2)).unwrap();
        assert_eq!(r, OpResult::Bool(false));
    }

    #[test]
    fn atomic_cell_operations() {
        let mut o = Objects::default();
        let a = o.add_atomic(5);
        let (r, _) = o.execute(t(0), &OpDesc::AtomicLoad(a)).unwrap();
        assert_eq!(r, OpResult::Value(5));
        let (r, _) = o.execute(t(0), &OpDesc::AtomicCas(a, 5, 9)).unwrap();
        assert_eq!(r, OpResult::Bool(true));
        let (r, _) = o.execute(t(1), &OpDesc::AtomicCas(a, 5, 7)).unwrap();
        assert_eq!(r, OpResult::Bool(false));
        let (r, _) = o.execute(t(1), &OpDesc::AtomicSwap(a, 1)).unwrap();
        assert_eq!(r, OpResult::Value(9));
        let (r, _) = o.execute(t(0), &OpDesc::AtomicAdd(a, 3)).unwrap();
        assert_eq!(r, OpResult::Value(1));
        let (r, _) = o.execute(t(0), &OpDesc::AtomicLoad(a)).unwrap();
        assert_eq!(r, OpResult::Value(4));
        // Atomic ops never block.
        assert!(o.satisfiable(t(2), &OpDesc::AtomicStore(a, 0)));
    }

    #[test]
    fn barrier_generations() {
        let mut o = Objects::default();
        let b = o.add_barrier(2);
        let (g0, _) = o.execute(t(0), &OpDesc::BarrierArrive(b)).unwrap();
        assert_eq!(g0, OpResult::Value(0));
        // Awaiting generation 0's completion blocks until the second
        // party arrives.
        assert!(!o.satisfiable(t(0), &OpDesc::BarrierAwait(b, 0)));
        let (g1, _) = o.execute(t(1), &OpDesc::BarrierArrive(b)).unwrap();
        assert_eq!(g1, OpResult::Value(0));
        assert!(o.satisfiable(t(0), &OpDesc::BarrierAwait(b, 0)));
        assert!(o.satisfiable(t(1), &OpDesc::BarrierAwait(b, 0)));
        // The barrier is reusable: generation 1 is now gathering.
        o.execute(t(0), &OpDesc::BarrierArrive(b)).unwrap();
        assert!(!o.satisfiable(t(0), &OpDesc::BarrierAwait(b, 1)));
    }

    #[test]
    fn capture_distinguishes_states() {
        let mut o = Objects::default();
        let m = o.add_mutex();
        let mut w1 = StateWriter::new();
        o.capture(&mut w1);
        o.execute(t(0), &OpDesc::Acquire(m)).unwrap();
        let mut w2 = StateWriter::new();
        o.capture(&mut w2);
        assert_ne!(w1.into_bytes(), w2.into_bytes());
    }
}
