//! State capture primitives.
//!
//! A stateless model checker does not *store* states, but the paper's
//! coverage experiments (Table 2) require extracting a finite
//! representation of a program state on demand. [`StateWriter`] is the
//! sink guests write their abstracted state into; [`Capture`] is the trait
//! the shared state of a program implements. The companion `chess-state`
//! crate builds heap canonicalization and coverage tracking on top.

use std::fmt;

/// Trait for types that can write an abstraction of themselves into a
/// [`StateWriter`].
///
/// Implementations must be *canonical*: two behaviorally equivalent states
/// must produce identical byte sequences. For states that contain heap
/// object identities, use the canonicalizer from `chess-state` to
/// renumber them in first-visit order.
///
/// # Examples
///
/// ```
/// use chess_kernel::{Capture, StateWriter};
///
/// struct Counter { value: u64 }
///
/// impl Capture for Counter {
///     fn capture(&self, w: &mut StateWriter) {
///         w.write_u64(self.value);
///     }
/// }
/// ```
pub trait Capture {
    /// Writes the canonical state representation into `w`.
    fn capture(&self, w: &mut StateWriter);

    /// The named cells of this state, matching the `(name, index)` pairs
    /// guests use in their `shared_effects` declarations. The default —
    /// no cells — means the state is opaque to per-cell diffing, and
    /// effect validation falls back to whole-state comparison.
    fn cells(&self) -> Vec<(&'static str, u32)> {
        Vec::new()
    }

    /// Writes the canonical representation of one named cell into `w`.
    ///
    /// Called only for pairs returned by [`Capture::cells`]; the default
    /// writes nothing (every cell compares equal, disabling per-cell
    /// validation).
    fn capture_cell(&self, name: &'static str, index: u32, w: &mut StateWriter) {
        let _ = (name, index, w);
    }
}

impl Capture for () {
    fn capture(&self, _w: &mut StateWriter) {}
}

macro_rules! capture_scalar {
    ($($ty:ty),*) => {
        $(impl Capture for $ty {
            fn capture(&self, w: &mut StateWriter) {
                w.write_u64(*self as u64);
            }
        })*
    };
}

capture_scalar!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl<T: Capture> Capture for Vec<T> {
    fn capture(&self, w: &mut StateWriter) {
        w.write_usize(self.len());
        for item in self {
            item.capture(w);
        }
    }
}

impl<T: Capture> Capture for Option<T> {
    fn capture(&self, w: &mut StateWriter) {
        match self {
            None => w.write_u8(0),
            Some(v) => {
                w.write_u8(1);
                v.capture(w);
            }
        }
    }
}

impl<T: Capture> Capture for std::collections::VecDeque<T> {
    fn capture(&self, w: &mut StateWriter) {
        w.write_usize(self.len());
        for item in self {
            item.capture(w);
        }
    }
}

impl<A: Capture, B: Capture> Capture for (A, B) {
    fn capture(&self, w: &mut StateWriter) {
        self.0.capture(w);
        self.1.capture(w);
    }
}

impl<A: Capture, B: Capture, C: Capture> Capture for (A, B, C) {
    fn capture(&self, w: &mut StateWriter) {
        self.0.capture(w);
        self.1.capture(w);
        self.2.capture(w);
    }
}

/// An append-only byte sink for state capture, with a 64-bit FNV-1a
/// fingerprint computed incrementally.
///
/// The full byte vector is the exact state signature (used for visited
/// sets where collisions must not conflate states); the fingerprint is a
/// cheap 64-bit summary.
#[derive(Clone)]
pub struct StateWriter {
    bytes: Vec<u8>,
    hash: u64,
}

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
pub(crate) const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Continues an FNV-1a hash state through additional bytes, as if they
/// had been appended to the writer whose state is `h`. Lets the kernel's
/// fingerprint cache compose a segment hash from separately cached parts
/// without re-hashing the prefix.
pub(crate) fn fnv_continue(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

impl StateWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        StateWriter {
            bytes: Vec::new(),
            hash: FNV_OFFSET,
        }
    }

    /// Appends a single byte.
    pub fn write_u8(&mut self, v: u8) {
        self.bytes.push(v);
        self.hash = (self.hash ^ v as u64).wrapping_mul(FNV_PRIME);
    }

    /// Appends a `bool` as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(v as u8);
    }

    /// Appends a `u32` in little-endian order.
    pub fn write_u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    /// Appends a `u64` in little-endian order.
    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    /// Appends an `i64` in little-endian order.
    pub fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    /// Appends a `usize` as a `u64`.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Appends raw bytes (length-prefixed so adjacent fields cannot alias).
    pub fn write_bytes(&mut self, v: &[u8]) {
        self.write_usize(v.len());
        for &b in v {
            self.write_u8(b);
        }
    }

    /// Appends a string (length-prefixed UTF-8).
    pub fn write_str(&mut self, v: &str) {
        self.write_bytes(v.as_bytes());
    }

    /// Returns the number of bytes written so far.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Returns whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Returns the incremental 64-bit FNV-1a fingerprint of the bytes
    /// written so far.
    pub fn fingerprint(&self) -> u64 {
        self.hash
    }

    /// Resets the writer to the empty state, keeping the byte buffer's
    /// allocation for reuse across captures.
    pub fn clear(&mut self) {
        self.bytes.clear();
        self.hash = FNV_OFFSET;
    }

    /// Consumes the writer and returns the exact byte signature.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Borrows the exact byte signature.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

impl Default for StateWriter {
    fn default() -> Self {
        StateWriter::new()
    }
}

impl fmt::Debug for StateWriter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "StateWriter({} bytes, fp={:016x})",
            self.bytes.len(),
            self.hash
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_order_sensitive() {
        let mut a = StateWriter::new();
        a.write_u32(1);
        a.write_u32(2);
        let mut b = StateWriter::new();
        b.write_u32(2);
        b.write_u32(1);
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = StateWriter::new();
        c.write_u32(1);
        c.write_u32(2);
        assert_eq!(a.fingerprint(), c.fingerprint());
        assert_eq!(a.as_bytes(), c.as_bytes());
    }

    #[test]
    fn length_prefix_prevents_aliasing() {
        let mut a = StateWriter::new();
        a.write_bytes(b"ab");
        a.write_bytes(b"c");
        let mut b = StateWriter::new();
        b.write_bytes(b"a");
        b.write_bytes(b"bc");
        assert_ne!(a.into_bytes(), b.into_bytes());
    }

    #[test]
    fn empty_writer() {
        let w = StateWriter::new();
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
        assert_eq!(w.fingerprint(), FNV_OFFSET);
    }

    #[test]
    fn clear_resets_bytes_and_hash() {
        let mut w = StateWriter::new();
        w.write_u64(42);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.fingerprint(), FNV_OFFSET);
        w.write_u32(7);
        let mut fresh = StateWriter::new();
        fresh.write_u32(7);
        assert_eq!(w.as_bytes(), fresh.as_bytes());
        assert_eq!(w.fingerprint(), fresh.fingerprint());
    }

    #[test]
    fn scalar_round_trip() {
        let mut w = StateWriter::new();
        w.write_bool(true);
        w.write_u64(u64::MAX);
        w.write_i64(-1);
        w.write_str("hi");
        assert_eq!(w.len(), 1 + 8 + 8 + (8 + 2));
    }
}
