//! # chess-kernel — a deterministic virtual concurrency kernel
//!
//! This crate is the *substrate* for the fair stateless model checker in
//! the companion `chess-core` crate (a reproduction of **"Fair Stateless
//! Model Checking"**, Musuvathi & Qadeer, PLDI 2008). It plays the role
//! that the instrumented Win32/.NET synchronization layer plays for CHESS:
//! it provides multithreaded *guest programs* whose every transition is
//! deterministic and whose scheduling nondeterminism is fully externalized.
//!
//! The pieces:
//!
//! * [`Kernel`] — a world of guest threads, shared state, and
//!   synchronization objects, advanced one transition at a time by
//!   [`Kernel::step`]. It exposes exactly the predicates the paper's
//!   Algorithm 1 consumes: `enabled(t)` ([`Kernel::enabled`]) and
//!   `yield(t)` ([`Kernel::is_yielding`]).
//! * [`GuestThread`] — the trait guest threads implement: a pure
//!   *describe* half ([`GuestThread::next_op`]) and an *apply* half
//!   ([`GuestThread::on_op`]). The describe/apply split lets the kernel
//!   evaluate enabledness without speculative execution: a thread whose
//!   next operation would block is simply never scheduled, as in the
//!   paper's formal model.
//! * Synchronization objects with demonic semantics — mutexes (blocking,
//!   try, and timeout acquires), reader-writer locks, counting semaphores,
//!   auto/manual-reset events, condition variables, bounded channels,
//!   joins, plus data nondeterminism via [`OpDesc::Choose`]. When an
//!   object becomes available, *all* waiters become enabled and the
//!   scheduler picks the winner.
//! * Yield modeling — explicit yields, sleeps, and every timeout
//!   operation are *yielding transitions*, the signal the fair scheduler
//!   uses (the paper's good-samaritan property).
//! * Relaxed memory — an optional [`MemoryModel`] (TSO/PSO) routes atomic
//!   stores through per-thread store buffers whose flushes are ordinary
//!   schedulable pseudo-transitions ([`OpDesc::Flush`]), with
//!   [`OpDesc::Fence`] to drain them; see the [`memory`] module.
//! * [`Capture`]/[`StateWriter`] — on-demand state extraction for the
//!   coverage experiments (Table 2), used by the `chess-state` crate.
//!
//! # Quickstart
//!
//! ```
//! use chess_kernel::{Effects, GuestThread, Kernel, MutexId, OpDesc, OpResult};
//!
//! // A guest thread is an explicit state machine: describe the next
//! // operation, then apply the transition body when it executes.
//! #[derive(Clone)]
//! struct Increment {
//!     pc: u8,
//!     lock: MutexId,
//! }
//!
//! impl GuestThread<u64> for Increment {
//!     fn next_op(&self, _shared: &u64) -> OpDesc {
//!         match self.pc {
//!             0 => OpDesc::Acquire(self.lock),
//!             1 => OpDesc::Local,
//!             2 => OpDesc::Release(self.lock),
//!             _ => OpDesc::Finished,
//!         }
//!     }
//!     fn on_op(&mut self, _r: OpResult, shared: &mut u64, _fx: &mut Effects<u64>) {
//!         if self.pc == 1 {
//!             *shared += 1;
//!         }
//!         self.pc += 1;
//!     }
//!     fn box_clone(&self) -> Box<dyn GuestThread<u64>> {
//!         Box::new(self.clone())
//!     }
//! }
//!
//! let mut kernel = Kernel::new(0u64);
//! let lock = kernel.add_mutex();
//! let a = kernel.spawn(Increment { pc: 0, lock });
//! let b = kernel.spawn(Increment { pc: 0, lock });
//!
//! // A scheduler (normally chess-core) drives the kernel:
//! while kernel.status().is_running() {
//!     let t = kernel.thread_ids().find(|&t| kernel.enabled(t)).unwrap();
//!     kernel.step(t, 0);
//! }
//! assert_eq!(*kernel.shared(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capture;
pub mod effects;
pub mod footprint;
mod ids;
mod kernel;
pub mod memory;
mod objects;
mod op;
mod thread;
mod tid;

pub use capture::{Capture, StateWriter};
pub use effects::SharedEffects;
pub use footprint::{footprint_of_op, Access, AccessKind, Footprint, ObjectRef};
pub use ids::{AtomicId, BarrierId, ChannelId, CondvarId, EventId, MutexId, RwLockId, SemaphoreId};
pub use kernel::{ExecStats, Kernel, KernelStatus, StepInfo, Violation};
pub use memory::{MemoryModel, StoreBuffer};
pub use op::{OpDesc, OpResult, StepKind};
pub use thread::{Effects, GuestThread, ThreadStatus};
pub use tid::{Iter as TidSetIter, ThreadId, TidSet};
