//! Thread identifiers and dense thread-indexed sets.
//!
//! The fair scheduler of the companion `chess-core` crate manipulates sets
//! of threads heavily (the `P`, `E`, `D` and `S` structures of Algorithm 1
//! in the paper), so [`TidSet`] is a growable bitset over `u64` words with
//! cheap union/intersection/difference.

use std::fmt;

/// Identifier of a guest thread inside a [`crate::Kernel`].
///
/// Thread ids are dense: the `i`-th thread added to a kernel (either at
/// setup time or by a dynamic spawn) gets id `i`. This makes them usable
/// as indices into per-thread tables.
///
/// # Examples
///
/// ```
/// use chess_kernel::ThreadId;
/// let t = ThreadId::new(3);
/// assert_eq!(t.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(u32);

impl ThreadId {
    /// Creates a thread id from a dense index.
    pub const fn new(index: usize) -> Self {
        ThreadId(index as u32)
    }

    /// Returns the dense index of this thread id.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<ThreadId> for usize {
    fn from(t: ThreadId) -> usize {
        t.index()
    }
}

/// A growable set of [`ThreadId`]s backed by `u64` bitset words.
///
/// All binary operations treat missing high words as zero, so sets of
/// different capacities compose without reallocation surprises.
///
/// # Examples
///
/// ```
/// use chess_kernel::{ThreadId, TidSet};
/// let mut s = TidSet::new();
/// s.insert(ThreadId::new(1));
/// s.insert(ThreadId::new(70));
/// assert!(s.contains(ThreadId::new(70)));
/// assert_eq!(s.len(), 2);
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct TidSet {
    words: Vec<u64>,
}

impl TidSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        TidSet { words: Vec::new() }
    }

    /// Creates a set containing all thread ids `0..n`.
    pub fn full(n: usize) -> Self {
        let mut s = TidSet::new();
        for i in 0..n {
            s.insert(ThreadId::new(i));
        }
        s
    }

    fn ensure(&mut self, word: usize) {
        if self.words.len() <= word {
            self.words.resize(word + 1, 0);
        }
    }

    /// Inserts `t`; returns `true` if it was newly inserted.
    pub fn insert(&mut self, t: ThreadId) -> bool {
        let (w, b) = (t.index() / 64, t.index() % 64);
        self.ensure(w);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes `t`; returns `true` if it was present.
    pub fn remove(&mut self, t: ThreadId) -> bool {
        let (w, b) = (t.index() / 64, t.index() % 64);
        if w >= self.words.len() {
            return false;
        }
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Returns whether `t` is in the set.
    pub fn contains(&self, t: ThreadId) -> bool {
        let (w, b) = (t.index() / 64, t.index() % 64);
        w < self.words.len() && self.words[w] & (1 << b) != 0
    }

    /// Returns the number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.words.clear();
    }

    /// In-place union: `self ∪= other`.
    pub fn union_with(&mut self, other: &TidSet) {
        self.ensure(other.words.len().saturating_sub(1));
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection: `self ∩= other`.
    pub fn intersect_with(&mut self, other: &TidSet) {
        for (i, a) in self.words.iter_mut().enumerate() {
            *a &= other.words.get(i).copied().unwrap_or(0);
        }
    }

    /// In-place difference: `self \= other`.
    pub fn difference_with(&mut self, other: &TidSet) {
        for (i, a) in self.words.iter_mut().enumerate() {
            *a &= !other.words.get(i).copied().unwrap_or(0);
        }
    }

    /// Returns `self ∪ other` as a new set.
    pub fn union(&self, other: &TidSet) -> TidSet {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// Returns `self ∩ other` as a new set.
    pub fn intersection(&self, other: &TidSet) -> TidSet {
        let mut s = self.clone();
        s.intersect_with(other);
        s
    }

    /// Returns `self \ other` as a new set.
    pub fn difference(&self, other: &TidSet) -> TidSet {
        let mut s = self.clone();
        s.difference_with(other);
        s
    }

    /// Returns whether `self ∩ other` is nonempty.
    pub fn intersects(&self, other: &TidSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Returns whether every element of `self` is in `other`.
    pub fn is_subset(&self, other: &TidSet) -> bool {
        self.words
            .iter()
            .enumerate()
            .all(|(i, &w)| w & !other.words.get(i).copied().unwrap_or(0) == 0)
    }

    /// Iterates over the members in increasing id order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word: 0,
            bits: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The backing bit words with trailing zero words trimmed — a
    /// canonical form: equal sets return equal slices regardless of
    /// insertion/removal history. Lets fingerprinting consume a set one
    /// word at a time instead of one member at a time.
    pub fn canonical_words(&self) -> &[u64] {
        let end = self
            .words
            .iter()
            .rposition(|&w| w != 0)
            .map_or(0, |i| i + 1);
        &self.words[..end]
    }

    /// Returns the smallest member, if any.
    pub fn first(&self) -> Option<ThreadId> {
        self.iter().next()
    }
}

impl FromIterator<ThreadId> for TidSet {
    fn from_iter<I: IntoIterator<Item = ThreadId>>(iter: I) -> Self {
        let mut s = TidSet::new();
        for t in iter {
            s.insert(t);
        }
        s
    }
}

impl Extend<ThreadId> for TidSet {
    fn extend<I: IntoIterator<Item = ThreadId>>(&mut self, iter: I) {
        for t in iter {
            self.insert(t);
        }
    }
}

impl<'a> IntoIterator for &'a TidSet {
    type Item = ThreadId;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Iterator over the members of a [`TidSet`], in increasing id order.
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    set: &'a TidSet,
    word: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = ThreadId;

    fn next(&mut self) -> Option<ThreadId> {
        loop {
            if self.bits != 0 {
                let b = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(ThreadId::new(self.word * 64 + b));
            }
            self.word += 1;
            if self.word >= self.set.words.len() {
                return None;
            }
            self.bits = self.set.words[self.word];
        }
    }
}

impl fmt::Debug for TidSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: usize) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = TidSet::new();
        assert!(s.insert(t(5)));
        assert!(!s.insert(t(5)));
        assert!(s.contains(t(5)));
        assert!(!s.contains(t(6)));
        assert!(s.remove(t(5)));
        assert!(!s.remove(t(5)));
        assert!(s.is_empty());
    }

    #[test]
    fn grows_past_word_boundary() {
        let mut s = TidSet::new();
        s.insert(t(0));
        s.insert(t(63));
        s.insert(t(64));
        s.insert(t(200));
        assert_eq!(s.len(), 4);
        let v: Vec<_> = s.iter().map(|x| x.index()).collect();
        assert_eq!(v, vec![0, 63, 64, 200]);
    }

    #[test]
    fn full_contains_range() {
        let s = TidSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(t(0)));
        assert!(s.contains(t(69)));
        assert!(!s.contains(t(70)));
    }

    #[test]
    fn set_algebra() {
        let a: TidSet = [t(1), t(2), t(65)].into_iter().collect();
        let b: TidSet = [t(2), t(65), t(100)].into_iter().collect();
        assert_eq!(a.union(&b).len(), 4);
        assert_eq!(a.intersection(&b).len(), 2);
        let d = a.difference(&b);
        assert_eq!(d.len(), 1);
        assert!(d.contains(t(1)));
        assert!(a.intersects(&b));
        assert!(a.intersection(&b).is_subset(&a));
    }

    #[test]
    fn difference_with_shorter_other() {
        let mut a: TidSet = [t(1), t(100)].into_iter().collect();
        let b: TidSet = [t(1)].into_iter().collect();
        a.difference_with(&b);
        assert_eq!(a.len(), 1);
        assert!(a.contains(t(100)));
    }

    #[test]
    fn intersect_with_shorter_other_clears_high_words() {
        let mut a: TidSet = [t(1), t(100)].into_iter().collect();
        let b: TidSet = [t(1)].into_iter().collect();
        a.intersect_with(&b);
        assert_eq!(a.len(), 1);
        assert!(a.contains(t(1)));
    }

    #[test]
    fn first_and_empty_iter() {
        let s = TidSet::new();
        assert_eq!(s.first(), None);
        let s: TidSet = [t(9)].into_iter().collect();
        assert_eq!(s.first(), Some(t(9)));
    }

    #[test]
    fn debug_formats() {
        let s: TidSet = [t(1)].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{t1}");
        assert_eq!(format!("{}", t(3)), "t3");
    }
}
