//! Operation descriptors: the interface between guest threads and the kernel.
//!
//! A guest thread's transition relation is split in two pure halves (see
//! [`crate::GuestThread`]): [`OpDesc`] *describes* the next operation the
//! thread will perform, and the kernel *executes* it, handing the outcome
//! back as an [`OpResult`]. This split is what lets the kernel compute the
//! paper's `enabled(t)` and `yield(t)` predicates exactly, without
//! speculative execution or rollback: a thread whose next operation would
//! block is simply *not enabled* and is never scheduled, just as in the
//! formal model of Section 3.

use crate::capture::StateWriter;
use crate::ids::{
    AtomicId, BarrierId, ChannelId, CondvarId, EventId, MutexId, RwLockId, SemaphoreId,
};
use crate::tid::ThreadId;

/// Description of the next operation of a guest thread.
///
/// Returned by [`crate::GuestThread::next_op`]. Must be a pure function of
/// the thread's local state and the shared state: the kernel may call it
/// repeatedly (to evaluate `enabled`/`yield`) before actually executing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum OpDesc {
    /// A local computation step (possibly touching shared memory).
    ///
    /// Always enabled. Every transition is a scheduling point, so threads
    /// that want fine-grained interleaving of data accesses split them
    /// across several `Local` steps.
    Local,
    /// An explicit processor yield, e.g. `Thread.Yield()` / `sched_yield`.
    ///
    /// Always enabled; this is a *yielding* transition in the sense of the
    /// paper's good-samaritan property.
    Yield,
    /// A sleep with a finite timeout.
    ///
    /// Semantically identical to [`OpDesc::Yield`]: CHESS treats every
    /// operation with a finite timeout as a yield (Section 4).
    Sleep,
    /// Blocking acquire of a mutex. Enabled iff the mutex is free.
    Acquire(MutexId),
    /// Non-blocking acquire attempt. Always enabled; the result reports
    /// success as [`OpResult::Bool`].
    TryAcquire(MutexId),
    /// Acquire with a finite timeout. Always enabled: if the mutex is free
    /// the acquire succeeds (`Bool(true)`), otherwise the operation *times
    /// out* and counts as a yielding transition (`Bool(false)`).
    AcquireTimeout(MutexId),
    /// Release of a held mutex. Always enabled; releasing a mutex the
    /// thread does not hold is reported as a safety violation.
    Release(MutexId),
    /// Blocking shared (read) acquire of a reader-writer lock.
    RwAcquireRead(RwLockId),
    /// Blocking exclusive (write) acquire of a reader-writer lock.
    RwAcquireWrite(RwLockId),
    /// Non-blocking exclusive acquire attempt on a reader-writer lock.
    RwTryAcquireWrite(RwLockId),
    /// Release of a reader-writer lock (either mode).
    RwRelease(RwLockId),
    /// Semaphore down (P). Enabled iff at least one permit is available.
    SemDown(SemaphoreId),
    /// Semaphore down with a finite timeout: succeeds if a permit is
    /// available, otherwise times out as a yielding transition.
    SemDownTimeout(SemaphoreId),
    /// Semaphore up (V). Always enabled.
    SemUp(SemaphoreId),
    /// Wait until an event is set. Enabled iff the event is set; consuming
    /// an auto-reset event resets it.
    EventWait(EventId),
    /// Wait on an event with a finite timeout: if the event is set the wait
    /// succeeds (`Bool(true)`), otherwise it times out as a yielding
    /// transition (`Bool(false)`).
    EventWaitTimeout(EventId),
    /// Set an event, waking its waiters. Always enabled.
    EventSet(EventId),
    /// Reset a manual-reset event. Always enabled.
    EventReset(EventId),
    /// First half of a condition-variable wait: atomically release the
    /// mutex and enroll as a waiter. Always enabled; it is a safety
    /// violation if the thread does not hold the mutex.
    CondEnroll(CondvarId, MutexId),
    /// Second half of a condition-variable wait: consume a signal. Enabled
    /// iff a signal is available to this thread. After this the guest
    /// should re-acquire the mutex with [`OpDesc::Acquire`].
    CondConsume(CondvarId),
    /// Signal one waiter of a condition variable. Always enabled.
    CondSignal(CondvarId),
    /// Signal all current waiters of a condition variable. Always enabled.
    CondBroadcast(CondvarId),
    /// Send a message on a bounded channel. Enabled iff the channel has
    /// capacity or is closed (sending on a closed channel yields
    /// `Bool(false)` rather than blocking forever).
    Send(ChannelId, u64),
    /// Non-blocking send attempt: always enabled, `Bool` reports success.
    TrySend(ChannelId, u64),
    /// Receive from a bounded channel. Enabled iff a message is available
    /// or the channel is closed (yielding [`OpResult::Message`] `None`).
    Recv(ChannelId),
    /// Non-blocking receive attempt: always enabled; the result is
    /// [`OpResult::Message`] (`None` if no message was available).
    TryRecv(ChannelId),
    /// Close a channel. Always enabled; receivers of an empty closed
    /// channel observe `Message(None)`.
    Close(ChannelId),
    /// Wait for another thread to finish. Enabled iff the target finished.
    Join(ThreadId),
    /// Atomic load; the result is [`OpResult::Value`]. Always enabled.
    AtomicLoad(AtomicId),
    /// Atomic store. Always enabled.
    AtomicStore(AtomicId, u64),
    /// Atomic compare-and-swap `(cell, expected, new)`: stores `new` iff
    /// the cell holds `expected`; [`OpResult::Bool`] reports success.
    /// Always enabled (failure is a result, not blocking).
    AtomicCas(AtomicId, u64, u64),
    /// Atomic swap; the result is the previous value. Always enabled.
    AtomicSwap(AtomicId, u64),
    /// Atomic fetch-and-add (wrapping); the result is the previous
    /// value. Always enabled.
    AtomicAdd(AtomicId, u64),
    /// Arrive at a barrier: registers this thread's arrival and returns
    /// the current generation as [`OpResult::Value`]. Always enabled.
    /// Follow with [`OpDesc::BarrierAwait`] on the returned generation.
    BarrierArrive(BarrierId),
    /// Wait until the barrier's generation exceeds `gen` (i.e. all
    /// parties of that generation arrived). Enabled iff it has.
    BarrierAwait(BarrierId, u64),
    /// A full memory fence: blocks until the issuing thread's store
    /// buffer has drained. Enabled iff the buffer is empty (always enabled
    /// under sequential consistency, where it is a no-op).
    Fence,
    /// Drain one buffered store of the named guest thread to memory.
    ///
    /// Never returned by guests: this is the pseudo-operation of the
    /// *flusher* lane the kernel adds per guest thread under a buffering
    /// [`MemoryModel`](crate::MemoryModel). Offered exactly while the
    /// owner's buffer is non-empty; under PSO the scheduling `choice`
    /// selects which buffered location drains.
    Flush(ThreadId),
    /// A `k`-way nondeterministic data choice. Always enabled; the model
    /// checker enumerates all `k` branches and the chosen index arrives as
    /// [`OpResult::Choice`]. `Choose(0)` is a guest bug and is reported as
    /// a violation.
    Choose(u32),
    /// The thread has finished. A finished thread is never enabled; the
    /// execution terminates when every thread is finished.
    Finished,
}

impl OpDesc {
    /// Returns whether this operation is a *synchronization* operation for
    /// the purposes of statistics (Table 1 counts these).
    pub fn is_sync_op(&self) -> bool {
        !matches!(self, OpDesc::Local | OpDesc::Finished | OpDesc::Choose(_))
    }

    /// Returns the number of branches the model checker must explore for
    /// this operation (1 for everything except [`OpDesc::Choose`]).
    pub fn branching(&self) -> usize {
        match self {
            OpDesc::Choose(n) => (*n).max(1) as usize,
            _ => 1,
        }
    }

    /// Writes a compact binary encoding of the descriptor — a tag byte
    /// plus the payload fields — into a state capture.
    ///
    /// The encoding is injective (distinct descriptors produce distinct
    /// bytes), which is all state capture needs from it: the pending op is
    /// part of a thread's control state (see `Kernel::capture_state`), and
    /// two states must compare equal iff they are behaviorally equal. It
    /// replaces the former `format!("{op:?}")` rendering in the capture
    /// hot path, which allocated a `String` per thread per capture.
    pub fn capture(&self, w: &mut StateWriter) {
        match *self {
            OpDesc::Local => w.write_u8(0),
            OpDesc::Yield => w.write_u8(1),
            OpDesc::Sleep => w.write_u8(2),
            OpDesc::Acquire(m) => {
                w.write_u8(3);
                w.write_u32(m.index() as u32);
            }
            OpDesc::TryAcquire(m) => {
                w.write_u8(4);
                w.write_u32(m.index() as u32);
            }
            OpDesc::AcquireTimeout(m) => {
                w.write_u8(5);
                w.write_u32(m.index() as u32);
            }
            OpDesc::Release(m) => {
                w.write_u8(6);
                w.write_u32(m.index() as u32);
            }
            OpDesc::RwAcquireRead(l) => {
                w.write_u8(7);
                w.write_u32(l.index() as u32);
            }
            OpDesc::RwAcquireWrite(l) => {
                w.write_u8(8);
                w.write_u32(l.index() as u32);
            }
            OpDesc::RwTryAcquireWrite(l) => {
                w.write_u8(9);
                w.write_u32(l.index() as u32);
            }
            OpDesc::RwRelease(l) => {
                w.write_u8(10);
                w.write_u32(l.index() as u32);
            }
            OpDesc::SemDown(s) => {
                w.write_u8(11);
                w.write_u32(s.index() as u32);
            }
            OpDesc::SemDownTimeout(s) => {
                w.write_u8(12);
                w.write_u32(s.index() as u32);
            }
            OpDesc::SemUp(s) => {
                w.write_u8(13);
                w.write_u32(s.index() as u32);
            }
            OpDesc::EventWait(e) => {
                w.write_u8(14);
                w.write_u32(e.index() as u32);
            }
            OpDesc::EventWaitTimeout(e) => {
                w.write_u8(15);
                w.write_u32(e.index() as u32);
            }
            OpDesc::EventSet(e) => {
                w.write_u8(16);
                w.write_u32(e.index() as u32);
            }
            OpDesc::EventReset(e) => {
                w.write_u8(17);
                w.write_u32(e.index() as u32);
            }
            OpDesc::CondEnroll(c, m) => {
                w.write_u8(18);
                w.write_u32(c.index() as u32);
                w.write_u32(m.index() as u32);
            }
            OpDesc::CondConsume(c) => {
                w.write_u8(19);
                w.write_u32(c.index() as u32);
            }
            OpDesc::CondSignal(c) => {
                w.write_u8(20);
                w.write_u32(c.index() as u32);
            }
            OpDesc::CondBroadcast(c) => {
                w.write_u8(21);
                w.write_u32(c.index() as u32);
            }
            OpDesc::Send(ch, v) => {
                w.write_u8(22);
                w.write_u32(ch.index() as u32);
                w.write_u64(v);
            }
            OpDesc::TrySend(ch, v) => {
                w.write_u8(23);
                w.write_u32(ch.index() as u32);
                w.write_u64(v);
            }
            OpDesc::Recv(ch) => {
                w.write_u8(24);
                w.write_u32(ch.index() as u32);
            }
            OpDesc::TryRecv(ch) => {
                w.write_u8(25);
                w.write_u32(ch.index() as u32);
            }
            OpDesc::Close(ch) => {
                w.write_u8(26);
                w.write_u32(ch.index() as u32);
            }
            OpDesc::Join(t) => {
                w.write_u8(27);
                w.write_u32(t.index() as u32);
            }
            OpDesc::AtomicLoad(a) => {
                w.write_u8(28);
                w.write_u32(a.index() as u32);
            }
            OpDesc::AtomicStore(a, v) => {
                w.write_u8(29);
                w.write_u32(a.index() as u32);
                w.write_u64(v);
            }
            OpDesc::AtomicCas(a, expected, new) => {
                w.write_u8(30);
                w.write_u32(a.index() as u32);
                w.write_u64(expected);
                w.write_u64(new);
            }
            OpDesc::AtomicSwap(a, v) => {
                w.write_u8(31);
                w.write_u32(a.index() as u32);
                w.write_u64(v);
            }
            OpDesc::AtomicAdd(a, v) => {
                w.write_u8(32);
                w.write_u32(a.index() as u32);
                w.write_u64(v);
            }
            OpDesc::BarrierArrive(b) => {
                w.write_u8(33);
                w.write_u32(b.index() as u32);
            }
            OpDesc::BarrierAwait(b, generation) => {
                w.write_u8(34);
                w.write_u32(b.index() as u32);
                w.write_u64(generation);
            }
            OpDesc::Fence => w.write_u8(35),
            OpDesc::Flush(t) => {
                w.write_u8(36);
                w.write_u32(t.index() as u32);
            }
            OpDesc::Choose(n) => {
                w.write_u8(37);
                w.write_u32(n);
            }
            OpDesc::Finished => w.write_u8(38),
        }
    }
}

/// Outcome of an executed operation, passed to [`crate::GuestThread::on_op`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum OpResult {
    /// The operation completed and carries no value (acquire, release,
    /// set-event, send, yield, ...).
    Unit,
    /// Result of a try- or timeout-operation: `true` on success, `false`
    /// on failure/timeout.
    Bool(bool),
    /// Result of a receive: the message, or `None` if the channel is
    /// closed (blocking receive) or empty (try-receive).
    Message(Option<u64>),
    /// The branch selected for an [`OpDesc::Choose`].
    Choice(u32),
    /// A numeric result (atomic loads/swaps/adds, barrier generations).
    Value(u64),
}

impl OpResult {
    /// Extracts a boolean result.
    ///
    /// # Panics
    ///
    /// Panics if the result is not [`OpResult::Bool`]; that indicates a
    /// guest/kernel protocol mismatch, which is a bug in the guest.
    pub fn as_bool(self) -> bool {
        match self {
            OpResult::Bool(b) => b,
            other => panic!("expected Bool result, got {other:?}"),
        }
    }

    /// Extracts a message result.
    ///
    /// # Panics
    ///
    /// Panics if the result is not [`OpResult::Message`].
    pub fn as_message(self) -> Option<u64> {
        match self {
            OpResult::Message(m) => m,
            other => panic!("expected Message result, got {other:?}"),
        }
    }

    /// Extracts a choice result.
    ///
    /// # Panics
    ///
    /// Panics if the result is not [`OpResult::Choice`].
    pub fn as_choice(self) -> u32 {
        match self {
            OpResult::Choice(c) => c,
            other => panic!("expected Choice result, got {other:?}"),
        }
    }

    /// Extracts a numeric result.
    ///
    /// # Panics
    ///
    /// Panics if the result is not [`OpResult::Value`].
    pub fn as_value(self) -> u64 {
        match self {
            OpResult::Value(v) => v,
            other => panic!("expected Value result, got {other:?}"),
        }
    }
}

/// Classification of an executed transition, as needed by the fair
/// scheduler: was it a yielding transition or not?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepKind {
    /// An ordinary transition.
    Normal,
    /// A yielding transition: an explicit yield, a sleep, or a
    /// synchronization operation that timed out.
    Yield,
}

impl StepKind {
    /// Returns whether this was a yielding transition.
    pub fn is_yield(self) -> bool {
        matches!(self, StepKind::Yield)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::MutexId;

    #[test]
    fn sync_op_classification() {
        assert!(!OpDesc::Local.is_sync_op());
        assert!(!OpDesc::Finished.is_sync_op());
        assert!(!OpDesc::Choose(2).is_sync_op());
        assert!(OpDesc::Yield.is_sync_op());
        assert!(OpDesc::Acquire(MutexId::new(0)).is_sync_op());
        assert!(OpDesc::Fence.is_sync_op());
        assert!(OpDesc::Flush(crate::ThreadId::new(0)).is_sync_op());
    }

    #[test]
    fn branching_width() {
        assert_eq!(OpDesc::Local.branching(), 1);
        assert_eq!(OpDesc::Choose(4).branching(), 4);
        assert_eq!(OpDesc::Choose(0).branching(), 1);
    }

    #[test]
    fn result_extractors() {
        assert!(OpResult::Bool(true).as_bool());
        assert_eq!(OpResult::Message(Some(7)).as_message(), Some(7));
        assert_eq!(OpResult::Choice(3).as_choice(), 3);
    }

    #[test]
    #[should_panic(expected = "expected Bool")]
    fn result_extractor_mismatch_panics() {
        OpResult::Unit.as_bool();
    }

    #[test]
    fn step_kind() {
        assert!(StepKind::Yield.is_yield());
        assert!(!StepKind::Normal.is_yield());
    }

    #[test]
    fn binary_capture_is_injective_over_a_sample() {
        use crate::ids::{AtomicId, ChannelId};
        // Variants that share payload shapes must still capture to
        // distinct bytes (the tag byte separates them), and distinct
        // payloads of one variant must differ.
        let ops = [
            OpDesc::Local,
            OpDesc::Yield,
            OpDesc::Finished,
            OpDesc::Acquire(MutexId::new(0)),
            OpDesc::Acquire(MutexId::new(1)),
            OpDesc::Release(MutexId::new(0)),
            OpDesc::Send(ChannelId::new(0), 5),
            OpDesc::TrySend(ChannelId::new(0), 5),
            OpDesc::AtomicStore(AtomicId::new(0), 5),
            OpDesc::AtomicStore(AtomicId::new(0), 6),
            OpDesc::AtomicCas(AtomicId::new(0), 5, 6),
            OpDesc::Choose(2),
            OpDesc::Choose(3),
        ];
        let mut seen = std::collections::HashSet::new();
        for op in ops {
            let mut w = StateWriter::new();
            op.capture(&mut w);
            assert!(seen.insert(w.into_bytes()), "capture collision for {op:?}");
        }
    }
}
