//! Operation descriptors: the interface between guest threads and the kernel.
//!
//! A guest thread's transition relation is split in two pure halves (see
//! [`crate::GuestThread`]): [`OpDesc`] *describes* the next operation the
//! thread will perform, and the kernel *executes* it, handing the outcome
//! back as an [`OpResult`]. This split is what lets the kernel compute the
//! paper's `enabled(t)` and `yield(t)` predicates exactly, without
//! speculative execution or rollback: a thread whose next operation would
//! block is simply *not enabled* and is never scheduled, just as in the
//! formal model of Section 3.

use crate::ids::{
    AtomicId, BarrierId, ChannelId, CondvarId, EventId, MutexId, RwLockId, SemaphoreId,
};
use crate::tid::ThreadId;

/// Description of the next operation of a guest thread.
///
/// Returned by [`crate::GuestThread::next_op`]. Must be a pure function of
/// the thread's local state and the shared state: the kernel may call it
/// repeatedly (to evaluate `enabled`/`yield`) before actually executing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum OpDesc {
    /// A local computation step (possibly touching shared memory).
    ///
    /// Always enabled. Every transition is a scheduling point, so threads
    /// that want fine-grained interleaving of data accesses split them
    /// across several `Local` steps.
    Local,
    /// An explicit processor yield, e.g. `Thread.Yield()` / `sched_yield`.
    ///
    /// Always enabled; this is a *yielding* transition in the sense of the
    /// paper's good-samaritan property.
    Yield,
    /// A sleep with a finite timeout.
    ///
    /// Semantically identical to [`OpDesc::Yield`]: CHESS treats every
    /// operation with a finite timeout as a yield (Section 4).
    Sleep,
    /// Blocking acquire of a mutex. Enabled iff the mutex is free.
    Acquire(MutexId),
    /// Non-blocking acquire attempt. Always enabled; the result reports
    /// success as [`OpResult::Bool`].
    TryAcquire(MutexId),
    /// Acquire with a finite timeout. Always enabled: if the mutex is free
    /// the acquire succeeds (`Bool(true)`), otherwise the operation *times
    /// out* and counts as a yielding transition (`Bool(false)`).
    AcquireTimeout(MutexId),
    /// Release of a held mutex. Always enabled; releasing a mutex the
    /// thread does not hold is reported as a safety violation.
    Release(MutexId),
    /// Blocking shared (read) acquire of a reader-writer lock.
    RwAcquireRead(RwLockId),
    /// Blocking exclusive (write) acquire of a reader-writer lock.
    RwAcquireWrite(RwLockId),
    /// Non-blocking exclusive acquire attempt on a reader-writer lock.
    RwTryAcquireWrite(RwLockId),
    /// Release of a reader-writer lock (either mode).
    RwRelease(RwLockId),
    /// Semaphore down (P). Enabled iff at least one permit is available.
    SemDown(SemaphoreId),
    /// Semaphore down with a finite timeout: succeeds if a permit is
    /// available, otherwise times out as a yielding transition.
    SemDownTimeout(SemaphoreId),
    /// Semaphore up (V). Always enabled.
    SemUp(SemaphoreId),
    /// Wait until an event is set. Enabled iff the event is set; consuming
    /// an auto-reset event resets it.
    EventWait(EventId),
    /// Wait on an event with a finite timeout: if the event is set the wait
    /// succeeds (`Bool(true)`), otherwise it times out as a yielding
    /// transition (`Bool(false)`).
    EventWaitTimeout(EventId),
    /// Set an event, waking its waiters. Always enabled.
    EventSet(EventId),
    /// Reset a manual-reset event. Always enabled.
    EventReset(EventId),
    /// First half of a condition-variable wait: atomically release the
    /// mutex and enroll as a waiter. Always enabled; it is a safety
    /// violation if the thread does not hold the mutex.
    CondEnroll(CondvarId, MutexId),
    /// Second half of a condition-variable wait: consume a signal. Enabled
    /// iff a signal is available to this thread. After this the guest
    /// should re-acquire the mutex with [`OpDesc::Acquire`].
    CondConsume(CondvarId),
    /// Signal one waiter of a condition variable. Always enabled.
    CondSignal(CondvarId),
    /// Signal all current waiters of a condition variable. Always enabled.
    CondBroadcast(CondvarId),
    /// Send a message on a bounded channel. Enabled iff the channel has
    /// capacity or is closed (sending on a closed channel yields
    /// `Bool(false)` rather than blocking forever).
    Send(ChannelId, u64),
    /// Non-blocking send attempt: always enabled, `Bool` reports success.
    TrySend(ChannelId, u64),
    /// Receive from a bounded channel. Enabled iff a message is available
    /// or the channel is closed (yielding [`OpResult::Message`] `None`).
    Recv(ChannelId),
    /// Non-blocking receive attempt: always enabled; the result is
    /// [`OpResult::Message`] (`None` if no message was available).
    TryRecv(ChannelId),
    /// Close a channel. Always enabled; receivers of an empty closed
    /// channel observe `Message(None)`.
    Close(ChannelId),
    /// Wait for another thread to finish. Enabled iff the target finished.
    Join(ThreadId),
    /// Atomic load; the result is [`OpResult::Value`]. Always enabled.
    AtomicLoad(AtomicId),
    /// Atomic store. Always enabled.
    AtomicStore(AtomicId, u64),
    /// Atomic compare-and-swap `(cell, expected, new)`: stores `new` iff
    /// the cell holds `expected`; [`OpResult::Bool`] reports success.
    /// Always enabled (failure is a result, not blocking).
    AtomicCas(AtomicId, u64, u64),
    /// Atomic swap; the result is the previous value. Always enabled.
    AtomicSwap(AtomicId, u64),
    /// Atomic fetch-and-add (wrapping); the result is the previous
    /// value. Always enabled.
    AtomicAdd(AtomicId, u64),
    /// Arrive at a barrier: registers this thread's arrival and returns
    /// the current generation as [`OpResult::Value`]. Always enabled.
    /// Follow with [`OpDesc::BarrierAwait`] on the returned generation.
    BarrierArrive(BarrierId),
    /// Wait until the barrier's generation exceeds `gen` (i.e. all
    /// parties of that generation arrived). Enabled iff it has.
    BarrierAwait(BarrierId, u64),
    /// A full memory fence: blocks until the issuing thread's store
    /// buffer has drained. Enabled iff the buffer is empty (always enabled
    /// under sequential consistency, where it is a no-op).
    Fence,
    /// Drain one buffered store of the named guest thread to memory.
    ///
    /// Never returned by guests: this is the pseudo-operation of the
    /// *flusher* lane the kernel adds per guest thread under a buffering
    /// [`MemoryModel`](crate::MemoryModel). Offered exactly while the
    /// owner's buffer is non-empty; under PSO the scheduling `choice`
    /// selects which buffered location drains.
    Flush(ThreadId),
    /// A `k`-way nondeterministic data choice. Always enabled; the model
    /// checker enumerates all `k` branches and the chosen index arrives as
    /// [`OpResult::Choice`]. `Choose(0)` is a guest bug and is reported as
    /// a violation.
    Choose(u32),
    /// The thread has finished. A finished thread is never enabled; the
    /// execution terminates when every thread is finished.
    Finished,
}

impl OpDesc {
    /// Returns whether this operation is a *synchronization* operation for
    /// the purposes of statistics (Table 1 counts these).
    pub fn is_sync_op(&self) -> bool {
        !matches!(self, OpDesc::Local | OpDesc::Finished | OpDesc::Choose(_))
    }

    /// Returns the number of branches the model checker must explore for
    /// this operation (1 for everything except [`OpDesc::Choose`]).
    pub fn branching(&self) -> usize {
        match self {
            OpDesc::Choose(n) => (*n).max(1) as usize,
            _ => 1,
        }
    }
}

/// Outcome of an executed operation, passed to [`crate::GuestThread::on_op`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum OpResult {
    /// The operation completed and carries no value (acquire, release,
    /// set-event, send, yield, ...).
    Unit,
    /// Result of a try- or timeout-operation: `true` on success, `false`
    /// on failure/timeout.
    Bool(bool),
    /// Result of a receive: the message, or `None` if the channel is
    /// closed (blocking receive) or empty (try-receive).
    Message(Option<u64>),
    /// The branch selected for an [`OpDesc::Choose`].
    Choice(u32),
    /// A numeric result (atomic loads/swaps/adds, barrier generations).
    Value(u64),
}

impl OpResult {
    /// Extracts a boolean result.
    ///
    /// # Panics
    ///
    /// Panics if the result is not [`OpResult::Bool`]; that indicates a
    /// guest/kernel protocol mismatch, which is a bug in the guest.
    pub fn as_bool(self) -> bool {
        match self {
            OpResult::Bool(b) => b,
            other => panic!("expected Bool result, got {other:?}"),
        }
    }

    /// Extracts a message result.
    ///
    /// # Panics
    ///
    /// Panics if the result is not [`OpResult::Message`].
    pub fn as_message(self) -> Option<u64> {
        match self {
            OpResult::Message(m) => m,
            other => panic!("expected Message result, got {other:?}"),
        }
    }

    /// Extracts a choice result.
    ///
    /// # Panics
    ///
    /// Panics if the result is not [`OpResult::Choice`].
    pub fn as_choice(self) -> u32 {
        match self {
            OpResult::Choice(c) => c,
            other => panic!("expected Choice result, got {other:?}"),
        }
    }

    /// Extracts a numeric result.
    ///
    /// # Panics
    ///
    /// Panics if the result is not [`OpResult::Value`].
    pub fn as_value(self) -> u64 {
        match self {
            OpResult::Value(v) => v,
            other => panic!("expected Value result, got {other:?}"),
        }
    }
}

/// Classification of an executed transition, as needed by the fair
/// scheduler: was it a yielding transition or not?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepKind {
    /// An ordinary transition.
    Normal,
    /// A yielding transition: an explicit yield, a sleep, or a
    /// synchronization operation that timed out.
    Yield,
}

impl StepKind {
    /// Returns whether this was a yielding transition.
    pub fn is_yield(self) -> bool {
        matches!(self, StepKind::Yield)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::MutexId;

    #[test]
    fn sync_op_classification() {
        assert!(!OpDesc::Local.is_sync_op());
        assert!(!OpDesc::Finished.is_sync_op());
        assert!(!OpDesc::Choose(2).is_sync_op());
        assert!(OpDesc::Yield.is_sync_op());
        assert!(OpDesc::Acquire(MutexId::new(0)).is_sync_op());
        assert!(OpDesc::Fence.is_sync_op());
        assert!(OpDesc::Flush(crate::ThreadId::new(0)).is_sync_op());
    }

    #[test]
    fn branching_width() {
        assert_eq!(OpDesc::Local.branching(), 1);
        assert_eq!(OpDesc::Choose(4).branching(), 4);
        assert_eq!(OpDesc::Choose(0).branching(), 1);
    }

    #[test]
    fn result_extractors() {
        assert!(OpResult::Bool(true).as_bool());
        assert_eq!(OpResult::Message(Some(7)).as_message(), Some(7));
        assert_eq!(OpResult::Choice(3).as_choice(), 3);
    }

    #[test]
    #[should_panic(expected = "expected Bool")]
    fn result_extractor_mismatch_panics() {
        OpResult::Unit.as_bool();
    }

    #[test]
    fn step_kind() {
        assert!(StepKind::Yield.is_yield());
        assert!(!StepKind::Normal.is_yield());
    }
}
