//! Guest-declared shared-state effects.
//!
//! The kernel knows which *synchronization objects* an op touches (see
//! [`footprint_of_op`](crate::footprint_of_op)), but what the guest's
//! `on_op` does to the shared state `S` is opaque: it receives `&mut S`
//! on every step. [`SharedEffects`] is the guest's declaration of that
//! half — a read-set/write-set over named cells of `S` — returned by
//! [`GuestThread::shared_effects`](crate::GuestThread::shared_effects)
//! and merged into the transition's [`Footprint`] by
//! [`Kernel::next_footprint`](crate::Kernel::next_footprint).
//!
//! The default is [`SharedEffects::Whole`]: a conservative whole-state
//! write that conflicts with every other shared-state access, so guests
//! that declare nothing are never wrongly reduced. Guests that do
//! declare can be checked at runtime: with
//! [`Kernel::set_validate_effects`](crate::Kernel::set_validate_effects)
//! the kernel diffs the per-cell captures around every step and reports
//! any mutation outside the declared write-set as a violation.

use crate::footprint::{AccessKind, Footprint, ObjectRef};

/// A guest's declared effect on the shared state for one op.
///
/// Cells are identified as `(name, index)` pairs: a static cell name
/// plus an index for array-shaped cells (scalar cells use index 0). The
/// same pairs must be reported by
/// [`Capture::cells`](crate::Capture::cells) for validation mode to
/// check the declaration.
///
/// # Soundness contract
///
/// The declaration must cover *both* halves of the guest's step
/// protocol:
///
/// * the write set lists every cell `on_op` may mutate when this op
///   executes;
/// * the read set lists every cell whose value can influence the guest
///   — cells `on_op` reads, **and** cells `next_op` consults to choose
///   this op in the first place (a guest whose program counter logic
///   polls a shared flag reads that flag, even if `on_op` ignores it).
///
/// Validation mode checks the write direction mechanically; the read
/// direction is the guest author's obligation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum SharedEffects {
    /// Conservative default: the op may read and write the entire
    /// shared state. Merged as a write to
    /// [`ObjectRef::SharedState`], which overlaps every cell.
    #[default]
    Whole,
    /// The op does not touch the shared state at all (a pure
    /// scheduling or sync-object-only step).
    Pure,
    /// The op touches exactly the named cells.
    Cells {
        /// Cells the op (or the `next_op` choice leading to it) reads.
        reads: Vec<(&'static str, u32)>,
        /// Cells the op may mutate.
        writes: Vec<(&'static str, u32)>,
    },
}

impl SharedEffects {
    /// Declares an op that touches exactly the given cells.
    pub fn cells(
        reads: impl IntoIterator<Item = (&'static str, u32)>,
        writes: impl IntoIterator<Item = (&'static str, u32)>,
    ) -> Self {
        SharedEffects::Cells {
            reads: reads.into_iter().collect(),
            writes: writes.into_iter().collect(),
        }
    }

    /// Declares an op that only reads the given cells.
    pub fn reads(cells: impl IntoIterator<Item = (&'static str, u32)>) -> Self {
        SharedEffects::cells(cells, [])
    }

    /// Declares an op that only writes the given cells.
    pub fn writes(cells: impl IntoIterator<Item = (&'static str, u32)>) -> Self {
        SharedEffects::cells([], cells)
    }

    /// Returns true for the conservative whole-state declaration.
    pub fn is_whole(&self) -> bool {
        matches!(self, SharedEffects::Whole)
    }

    /// Returns true when the declaration permits mutating the cell.
    pub fn allows_write(&self, name: &str, index: u32) -> bool {
        match self {
            SharedEffects::Whole => true,
            SharedEffects::Pure => false,
            SharedEffects::Cells { writes, .. } => {
                writes.iter().any(|&(n, i)| n == name && i == index)
            }
        }
    }

    /// Returns true when the declaration permits mutating *some* cell.
    pub fn may_write(&self) -> bool {
        match self {
            SharedEffects::Whole => true,
            SharedEffects::Pure => false,
            SharedEffects::Cells { writes, .. } => !writes.is_empty(),
        }
    }

    /// Merges the declared accesses into a footprint.
    pub fn apply_to(&self, fp: &mut Footprint) {
        match self {
            SharedEffects::Whole => fp.push(ObjectRef::SharedState, AccessKind::Write),
            SharedEffects::Pure => {}
            SharedEffects::Cells { reads, writes } => {
                for &(name, index) in reads {
                    fp.push(ObjectRef::Cell(name, index), AccessKind::Read);
                }
                for &(name, index) in writes {
                    fp.push(ObjectRef::Cell(name, index), AccessKind::Write);
                }
            }
        }
    }

    /// Renders the declaration for violation messages.
    pub fn describe(&self) -> String {
        fn list(cells: &[(&'static str, u32)]) -> String {
            let parts: Vec<String> = cells
                .iter()
                .map(|&(n, i)| ObjectRef::Cell(n, i).to_string())
                .collect();
            parts.join(", ")
        }
        match self {
            SharedEffects::Whole => "whole-state write".to_string(),
            SharedEffects::Pure => "no shared-state access".to_string(),
            SharedEffects::Cells { reads, writes } => {
                format!("reads [{}], writes [{}]", list(reads), list(writes))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::footprint::Access;

    #[test]
    fn whole_merges_as_shared_write() {
        let mut fp = Footprint::local();
        SharedEffects::Whole.apply_to(&mut fp);
        assert_eq!(
            fp.accesses(),
            [Access::new(ObjectRef::SharedState, AccessKind::Write)]
        );
    }

    #[test]
    fn pure_merges_nothing() {
        let mut fp = Footprint::local();
        SharedEffects::Pure.apply_to(&mut fp);
        assert!(fp.accesses().is_empty());
        assert!(!SharedEffects::Pure.may_write());
    }

    #[test]
    fn cells_merge_reads_and_writes() {
        let mut fp = Footprint::local();
        let fx = SharedEffects::cells([("count", 0)], [("done", 2)]);
        fx.apply_to(&mut fp);
        assert_eq!(
            fp.accesses(),
            [
                Access::new(ObjectRef::Cell("count", 0), AccessKind::Read),
                Access::new(ObjectRef::Cell("done", 2), AccessKind::Write),
            ]
        );
        assert!(fx.allows_write("done", 2));
        assert!(!fx.allows_write("done", 0));
        assert!(!fx.allows_write("count", 0));
        assert!(SharedEffects::Whole.allows_write("anything", 7));
    }

    #[test]
    fn describe_names_cells() {
        let fx = SharedEffects::cells([("count", 0)], [("handled", 1)]);
        assert_eq!(fx.describe(), "reads [count], writes [handled[1]]");
    }
}
