//! Typed identifiers for kernel synchronization objects.
//!
//! Each object kind has its own id newtype so that guest code cannot, for
//! example, pass a semaphore where a mutex is expected (C-NEWTYPE). Ids are
//! dense per kind and assigned in creation order, which keeps executions
//! deterministic and replayable.

use std::fmt;

macro_rules! object_id {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Returns the dense index of this object id.
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            pub(crate) const fn new(index: usize) -> Self {
                Self(index as u32)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(self, f)
            }
        }
    };
}

object_id!(
    /// Identifier of a kernel mutex.
    MutexId,
    "mutex"
);
object_id!(
    /// Identifier of a kernel reader-writer lock.
    RwLockId,
    "rwlock"
);
object_id!(
    /// Identifier of a kernel counting semaphore.
    SemaphoreId,
    "sem"
);
object_id!(
    /// Identifier of a kernel event (auto- or manual-reset).
    EventId,
    "event"
);
object_id!(
    /// Identifier of a kernel condition variable.
    CondvarId,
    "condvar"
);
object_id!(
    /// Identifier of a kernel bounded channel.
    ChannelId,
    "chan"
);
object_id!(
    /// Identifier of a kernel atomic cell.
    AtomicId,
    "atomic"
);
object_id!(
    /// Identifier of a kernel barrier.
    BarrierId,
    "barrier"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_and_index() {
        let m = MutexId::new(2);
        assert_eq!(format!("{m:?}"), "mutex2");
        assert_eq!(format!("{m}"), "mutex2");
        assert_eq!(m.index(), 2);
        let c = ChannelId::new(0);
        assert_eq!(format!("{c}"), "chan0");
    }
}
