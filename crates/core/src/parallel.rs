//! Parallel search: `N` workers exploring disjoint shards of the
//! schedule space, with first-error-wins cancellation.
//!
//! Stateless model checking parallelizes along the *strategy* axis: the
//! program, kernel, and fair scheduler stay single-threaded per worker
//! (each worker builds fresh instances from the shared factory), and the
//! workers never exchange states — only a stop flag and, at join time,
//! their statistics. Three sharding schemes are provided, one per
//! sequential strategy family:
//!
//! * **Seed-sharded random walk** ([`ParallelExplorer::run_random`]):
//!   worker `i` runs [`RandomWalk`] with `seed + i`; an execution budget
//!   is split across workers so the total matches the sequential search.
//! * **Prefix-partitioned DFS** ([`ParallelExplorer::run_dfs`]): the
//!   root-level decision frontier is dealt round-robin to the workers and
//!   each enumerates its subtrees with the stock [`Dfs`] stack machine —
//!   together they visit exactly the executions sequential DFS visits,
//!   each exactly once.
//! * **Per-bound partitioning** ([`ParallelExplorer::run_iterative_cb`]):
//!   preemption bounds `0..=max` of iterative context bounding are dealt
//!   round-robin to the workers.
//!
//! Cancellation is cooperative: every worker's sequential [`Explorer`]
//! polls a shared [`AtomicBool`] between executions and every 4096
//! transitions within one. The first worker whose search returns an error
//! claims the win (an atomic compare-exchange makes the claim
//! unambiguous) and raises the flag; the rest drain with
//! [`BudgetKind::Cancelled`]. Before the winning error is reported it is
//! replayed through the *sequential* explorer with a [`FixedSchedule`] —
//! deterministic reproduction is part of the engine's contract, so a
//! replay mismatch panics rather than reporting an irreproducible bug.
//!
//! Workers are *supervised*: workload panics are already isolated inside
//! the sequential explorer (they surface as [`SearchOutcome::Panic`]),
//! but a panic that escapes the explorer itself — a buggy strategy or
//! factory unwinding between executions — would otherwise take down the
//! whole search at join time. Instead, each worker body runs under
//! [`crate::panics::catch_silent`] and is restarted from its shard's
//! initial strategy up to [`MAX_WORKER_RESTARTS`] times; restarts are
//! counted in [`SearchStats::worker_restarts`]. A worker that keeps
//! panicking is abandoned and surfaces as
//! [`BudgetKind::WorkerPanicked`] — an incomplete search, never a crash.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use crate::explore::{Config, Explorer, Progress};
use crate::report::{BudgetKind, SearchOutcome, SearchReport, SearchStats};
use crate::strategy::{
    ContextBounded, Dfs, FixedSchedule, RandomWalk, Reduction, SchedulePoint, Strategy,
};
use crate::system::TransitionSystem;
use crate::trace::Decision;

/// DFS over the subtrees rooted at an assigned share of the root-level
/// decision frontier: the current root decision is forced at depth 0 and
/// the stock [`Dfs`] stack machine (depth-shifted by one) enumerates
/// everything below it.
#[derive(Clone)]
struct PartitionedDfs {
    roots: Vec<Decision>,
    current: usize,
    inner: Dfs,
    reduction: Reduction,
}

impl PartitionedDfs {
    fn new(roots: Vec<Decision>, reduction: Reduction) -> Self {
        debug_assert!(!roots.is_empty());
        PartitionedDfs {
            roots,
            current: 0,
            inner: inner_dfs(reduction),
            reduction,
        }
    }
}

/// The per-subtree DFS of one shard. With sleep sets, each subtree starts
/// from an empty sleep set at its forced root — a sound superset of the
/// sequential reduced search (dropping sleep entries only explores more),
/// so per-shard reduction composes with root partitioning.
fn inner_dfs(reduction: Reduction) -> Dfs {
    match reduction {
        Reduction::None => Dfs::new(),
        Reduction::SleepSets => Dfs::with_sleep_sets(),
    }
}

impl Strategy for PartitionedDfs {
    fn pick(&mut self, point: &SchedulePoint<'_>) -> Option<Decision> {
        if point.depth == 0 {
            let root = self.roots[self.current];
            debug_assert!(
                point.options.contains(&root),
                "root frontier changed across executions"
            );
            Some(root)
        } else {
            let shifted = SchedulePoint {
                depth: point.depth - 1,
                ..*point
            };
            self.inner.pick(&shifted)
        }
    }

    fn on_execution_end(&mut self) -> bool {
        if self.inner.on_execution_end() {
            return true;
        }
        // Subtree exhausted: move to the next assigned root.
        self.inner = inner_dfs(self.reduction);
        self.current += 1;
        self.current < self.roots.len()
    }

    fn name(&self) -> String {
        format!("dfs-shard({} roots)", self.roots.len())
    }

    fn wants_footprints(&self) -> bool {
        self.inner.wants_footprints()
    }
}

/// A parallel stateless search: a shared program factory, a search
/// [`Config`], and a worker count.
///
/// Every worker owns a private sequential [`Explorer`] over fresh program
/// instances; the shards never overlap, so parallel DFS preserves the
/// sequential search's exactly-once coverage while random walk divides a
/// fixed execution budget. With `jobs = 1` each scheme degenerates to the
/// sequential search (same seed, same order, same statistics).
///
/// # Examples
///
/// ```
/// use chess_core::{Config, ParallelExplorer};
/// use chess_core::strategy::Dfs;
/// use chess_core::Explorer;
/// use chess_kernel::{Effects, GuestThread, Kernel, OpDesc, OpResult};
///
/// #[derive(Clone)]
/// struct Step(bool);
/// impl GuestThread<()> for Step {
///     fn next_op(&self, _: &()) -> OpDesc {
///         if self.0 { OpDesc::Finished } else { OpDesc::Local }
///     }
///     fn on_op(&mut self, _: OpResult, _: &mut (), _: &mut Effects<()>) {
///         self.0 = true;
///     }
///     fn box_clone(&self) -> Box<dyn GuestThread<()>> { Box::new(self.clone()) }
/// }
///
/// let factory = || {
///     let mut k = Kernel::new(());
///     k.spawn(Step(false));
///     k.spawn(Step(false));
///     k
/// };
/// let parallel = ParallelExplorer::new(factory, Config::fair(), 2).run_dfs();
/// let sequential = Explorer::new(factory, Dfs::new(), Config::fair()).run();
/// assert_eq!(parallel.outcome, sequential.outcome);
/// assert_eq!(parallel.stats.executions, sequential.stats.executions);
/// ```
pub struct ParallelExplorer<P, F> {
    factory: F,
    config: Config,
    jobs: usize,
    external_stop: Option<Arc<AtomicBool>>,
    progress: Option<Arc<Progress>>,
    _marker: std::marker::PhantomData<fn() -> P>,
}

impl<P, F> ParallelExplorer<P, F>
where
    P: TransitionSystem,
    F: Fn() -> P + Sync,
{
    /// Creates a parallel explorer with `jobs` workers (clamped to ≥ 1).
    pub fn new(factory: F, config: Config, jobs: usize) -> Self {
        ParallelExplorer {
            factory,
            config,
            jobs: jobs.max(1),
            external_stop: None,
            progress: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// The worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Attaches an externally-owned cancellation flag (e.g. raised by a
    /// SIGINT handler). It is shared with the internal first-error-wins
    /// flag, so raising it stops every worker at its next poll; the
    /// interrupted shards surface as [`BudgetKind::Cancelled`].
    pub fn with_stop_flag(mut self, stop: Arc<AtomicBool>) -> Self {
        self.external_stop = Some(stop);
        self
    }

    /// Attaches shared progress counters, published by the single-shard
    /// runners ([`ParallelExplorer::run_dfs_shard`],
    /// [`ParallelExplorer::run_random_shard`]) at every execution
    /// boundary — a process supervisor watches these as a liveness
    /// signal.
    pub fn with_progress(mut self, progress: Arc<Progress>) -> Self {
        self.progress = Some(progress);
        self
    }

    /// The cancellation flag shared by all workers of one run: the
    /// external flag when attached, otherwise a fresh private one.
    fn shared_stop(&self) -> Arc<AtomicBool> {
        self.external_stop
            .clone()
            .unwrap_or_else(|| Arc::new(AtomicBool::new(false)))
    }

    /// Wires the optional stop flag and progress counters into one
    /// sequential explorer.
    fn instrument<F2: FnMut() -> P, St: Strategy>(
        &self,
        explorer: Explorer<P, F2, St>,
    ) -> Explorer<P, F2, St> {
        let explorer = explorer.with_stop_flag(self.shared_stop());
        match &self.progress {
            Some(p) => explorer.with_progress(Arc::clone(p)),
            None => explorer,
        }
    }

    /// Runs one *shard* of the depth-first search sequentially: the
    /// contiguous slice `shard.range(n)` of the depth-0 decision
    /// frontier (`n` roots total), enumerated exhaustively in frontier
    /// order.
    ///
    /// This is the distributed-search counterpart of
    /// [`ParallelExplorer::run_dfs`]: instead of threads in one process
    /// dealing roots round-robin, independent *processes* each run one
    /// shard and a coordinator merges the reports with
    /// [`merge_contiguous_shards`]. Contiguity in frontier order is what
    /// makes the merge exact — sequential DFS explores the root subtrees
    /// left to right, so shard `i`'s executions are precisely a
    /// contiguous window of the sequential execution sequence, and a
    /// shard-local execution index rebases to the global one by adding
    /// the prior shards' totals.
    ///
    /// An empty slice (more shards than roots) returns a zero-stats
    /// [`SearchOutcome::Complete`] report. A world with an *empty*
    /// frontier (nothing schedulable at the root) is degenerate: shard 0
    /// runs the whole sequential search so the merged report still
    /// matches it, and every other shard is empty.
    pub fn run_dfs_shard(&self, shard: ShardSpec) -> SearchReport {
        let roots = self.root_frontier();
        if roots.is_empty() {
            if shard.index == 0 {
                return self
                    .instrument(Explorer::new(
                        &self.factory,
                        Dfs::new(),
                        self.config.clone(),
                    ))
                    .run();
            }
            return empty_shard_report();
        }
        let range = shard.range(roots.len());
        if range.is_empty() {
            return empty_shard_report();
        }
        let mine = roots[range].to_vec();
        self.instrument(Explorer::new(
            &self.factory,
            PartitionedDfs::new(mine, Reduction::None),
            self.config.clone(),
        ))
        .run()
    }

    /// Runs one *shard* of the seed-sharded random walk sequentially:
    /// shard `i` of `k` walks with `seed + i` and an even share of the
    /// total execution budget, exactly as worker `i` of
    /// [`ParallelExplorer::run_random`] with `k` jobs would. Merge the
    /// shard reports with [`merge_seed_shards`]; the merged totals match
    /// the in-process parallel walk, though — unlike DFS shards — random
    /// shards sample distinct schedule sequences, so the merge is
    /// deterministic rather than byte-identical to the *sequential*
    /// single-seed walk.
    pub fn run_random_shard(&self, seed: u64, shard: ShardSpec) -> SearchReport {
        let shares = split_budget(self.config.max_executions, shard.of);
        let mut config = self.config.clone();
        config.max_executions = shares[shard.index];
        self.instrument(Explorer::new(
            &self.factory,
            RandomWalk::new(seed.wrapping_add(shard.index as u64)),
            config,
        ))
        .run()
    }

    /// Seed-sharded random walk: worker `i` searches with
    /// `RandomWalk::new(seed + i)`. An execution budget in the config is
    /// the *total* across workers and is split as evenly as possible; the
    /// time budget (if any) applies to every worker alike.
    pub fn run_random(&self, seed: u64) -> SearchReport {
        let start = Instant::now();
        let shares = split_budget(self.config.max_executions, self.jobs);
        let workers: Vec<_> = shares
            .into_iter()
            .enumerate()
            .map(|(i, share)| {
                let mut config = self.config.clone();
                config.max_executions = share;
                (RandomWalk::new(seed.wrapping_add(i as u64)), config)
            })
            .collect();
        self.run_workers(start, workers)
    }

    /// Prefix-partitioned depth-first search: the depth-0 decision
    /// frontier is dealt round-robin to the workers, and each enumerates
    /// its subtrees exhaustively. The union of the shards is exactly the
    /// sequential [`Dfs`] search — same executions, visited once each.
    /// An execution budget is split across workers like
    /// [`ParallelExplorer::run_random`].
    pub fn run_dfs(&self) -> SearchReport {
        self.run_dfs_with(Reduction::None)
    }

    /// [`ParallelExplorer::run_dfs`] with a partial-order reduction
    /// applied inside every shard: each worker runs sleep-set DFS over
    /// its subtrees, starting from an empty sleep set at each forced
    /// root. The union of the shards is a superset of the sequential
    /// reduced search and a subset of the unreduced one, and preserves
    /// the same verdicts.
    pub fn run_dfs_with(&self, reduction: Reduction) -> SearchReport {
        let start = Instant::now();
        let roots = self.root_frontier();
        if self.jobs == 1 || roots.len() <= 1 {
            // Nothing to partition: identical to the sequential search.
            return Explorer::new(
                || (self.factory)(),
                inner_dfs(reduction),
                self.config.clone(),
            )
            .with_stop_flag(self.shared_stop())
            .run();
        }
        let jobs = self.jobs.min(roots.len());
        let shares = split_budget(self.config.max_executions, jobs);
        let workers: Vec<_> = (0..jobs)
            .map(|i| {
                let mine: Vec<Decision> = roots.iter().copied().skip(i).step_by(jobs).collect();
                let mut config = self.config.clone();
                config.max_executions = shares[i];
                (PartitionedDfs::new(mine, reduction), config)
            })
            .collect();
        self.run_workers(start, workers)
    }

    /// Per-bound-partitioned iterative context bounding: preemption
    /// bounds `0..=max_bound` are dealt round-robin to the workers, each
    /// running the full sequential search for its bounds in ascending
    /// order. Returns the per-bound reports, sorted by bound.
    ///
    /// With `stop_on_error` set, the first error raises the stop flag:
    /// workers abandon their remaining bounds, so — unlike the sequential
    /// [`crate::iterative_context_bounding`] — reports for a few bounds
    /// *above* the erroring one may appear (they ran concurrently), and
    /// in-flight searches surface as [`BudgetKind::Cancelled`].
    pub fn run_iterative_cb(&self, max_bound: u32) -> Vec<(u32, SearchReport)> {
        let stop = self.shared_stop();
        let jobs = self.jobs.min(max_bound as usize + 1);
        let mut reports: Vec<(u32, SearchReport)> = thread::scope(|s| {
            let handles: Vec<_> = (0..jobs)
                .map(|i| {
                    let stop = Arc::clone(&stop);
                    let factory = &self.factory;
                    let config = &self.config;
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        let mut bound = i as u32;
                        while bound <= max_bound && !stop.load(Ordering::Relaxed) {
                            // Supervise the per-bound search: an engine
                            // panic restarts the bound from scratch (the
                            // sequential search for one bound is
                            // self-contained), then gives up on the bound.
                            let mut restarts = 0u64;
                            let mut lost = 0u64;
                            let mut report = loop {
                                let stop = Arc::clone(&stop);
                                let config = config.clone();
                                let progress = Arc::new(Progress::default());
                                let shared = Arc::clone(&progress);
                                let attempt = crate::panics::catch_silent(move || {
                                    Explorer::new(factory, ContextBounded::new(bound), config)
                                        .with_stop_flag(stop)
                                        .with_progress(shared)
                                        .run()
                                });
                                match attempt {
                                    Ok(report) => break report,
                                    Err(_) => {
                                        // Harvest the dead attempt's
                                        // boundary totals before the
                                        // restart re-runs the bound.
                                        lost += progress.executions.load(Ordering::Relaxed);
                                        if restarts < MAX_WORKER_RESTARTS {
                                            restarts += 1;
                                        } else {
                                            break lost_worker_report();
                                        }
                                    }
                                }
                            };
                            report.stats.worker_restarts += restarts;
                            report.stats.lost_to_restart += lost;
                            let found = report.outcome.found_error();
                            mine.push((bound, report));
                            if found && config.stop_on_error {
                                stop.store(true, Ordering::Release);
                                break;
                            }
                            bound += jobs as u32;
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                // Worker bodies are supervised above; a join failure can
                // only mean a panic in the bookkeeping itself. Harvest
                // what the other workers produced instead of aborting.
                .flat_map(|h| h.join().unwrap_or_default())
                .collect()
        });
        reports.sort_by_key(|&(bound, _)| bound);
        for (_, report) in &reports {
            if report.outcome.found_error() {
                self.verify_replay(&report.outcome);
            }
        }
        reports
    }

    /// The depth-0 decision frontier, exactly as the sequential explorer
    /// computes it: a fresh fair scheduler has no priorities yet, so the
    /// schedulable set equals the enabled set.
    fn root_frontier(&self) -> Vec<Decision> {
        let sys = (self.factory)();
        if !sys.status().is_running() {
            return Vec::new();
        }
        let mut options = Vec::new();
        for t in sys.enabled_set().iter() {
            for c in 0..sys.branching(t) {
                options.push(Decision {
                    thread: t,
                    choice: c as u32,
                });
            }
        }
        options
    }

    /// Runs one sequential explorer per `(strategy, config)` pair on
    /// scoped threads, with first-error-wins cancellation and a
    /// supervisor per worker (see the module docs), and merges the
    /// per-worker reports.
    fn run_workers<St: Strategy + Clone + Send>(
        &self,
        start: Instant,
        workers: Vec<(St, Config)>,
    ) -> SearchReport {
        let stop = self.shared_stop();
        let winner = AtomicUsize::new(usize::MAX);
        let restarts = AtomicU64::new(0);
        let reports: Vec<SearchReport> = thread::scope(|s| {
            let handles: Vec<_> = workers
                .into_iter()
                .enumerate()
                .map(|(i, (strategy, config))| {
                    let stop = Arc::clone(&stop);
                    let factory = &self.factory;
                    let winner = &winner;
                    let restarts = &restarts;
                    s.spawn(move || {
                        let stop_on_error = config.stop_on_error;
                        // Supervisor loop: restart a panicked worker from
                        // its shard's initial strategy, give up after the
                        // restart cap. Restarting re-runs the shard, so a
                        // failed attempt's counters must not be merged
                        // into the live totals — instead its boundary
                        // progress is harvested into `lost_to_restart`,
                        // keeping the work it did visible in the report.
                        let mut attempts = 0u64;
                        let mut lost = 0u64;
                        let mut report = loop {
                            let strategy = strategy.clone();
                            let config = config.clone();
                            let stop = Arc::clone(&stop);
                            let progress = Arc::new(Progress::default());
                            let shared = Arc::clone(&progress);
                            let attempt = crate::panics::catch_silent(move || {
                                Explorer::new(factory, strategy, config)
                                    .with_stop_flag(stop)
                                    .with_progress(shared)
                                    .run()
                            });
                            match attempt {
                                Ok(report) => break report,
                                Err(_) => {
                                    lost += progress.executions.load(Ordering::Relaxed);
                                    if attempts < MAX_WORKER_RESTARTS {
                                        attempts += 1;
                                        restarts.fetch_add(1, Ordering::Relaxed);
                                    } else {
                                        break lost_worker_report();
                                    }
                                }
                            }
                        };
                        report.stats.lost_to_restart += lost;
                        if stop_on_error && report.outcome.found_error() {
                            // Claim the win before raising the flag so
                            // the winning worker is unambiguous.
                            let _ = winner.compare_exchange(
                                usize::MAX,
                                i,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            );
                            stop.store(true, Ordering::Release);
                        }
                        report
                    })
                })
                .collect();
            handles
                .into_iter()
                // Supervised above; harvest the survivors even if a
                // worker's bookkeeping somehow panicked.
                .map(|h| h.join().unwrap_or_else(|_| lost_worker_report()))
                .collect()
        });
        let winner = winner.load(Ordering::Acquire);
        let mut stats = SearchStats::default();
        for r in &reports {
            stats.merge(&r.stats);
        }
        stats.worker_restarts += restarts.load(Ordering::Relaxed);
        stats.wall = start.elapsed();
        let outcome = if winner != usize::MAX {
            let outcome = reports[winner].outcome.clone();
            self.verify_replay(&outcome);
            outcome
        } else {
            merge_outcomes(reports)
        };
        SearchReport { outcome, stats }
    }

    /// Replays an error's schedule through the sequential explorer with a
    /// [`FixedSchedule`] and asserts the identical error reproduces.
    ///
    /// # Panics
    ///
    /// Panics if the replay reaches a different outcome — that would mean
    /// the factory is nondeterministic (or the engine is broken), and a
    /// counterexample that cannot be reproduced must not be reported.
    fn verify_replay(&self, outcome: &SearchOutcome) {
        let schedule = match outcome {
            SearchOutcome::SafetyViolation(c)
            | SearchOutcome::Deadlock(c)
            | SearchOutcome::Panic(c) => &c.schedule,
            SearchOutcome::Divergence(d) => &d.schedule,
            _ => return,
        };
        let report = Explorer::new(
            || (self.factory)(),
            FixedSchedule::new(schedule.clone()),
            self.config.clone(),
        )
        .run();
        match (outcome, &report.outcome) {
            (SearchOutcome::SafetyViolation(a), SearchOutcome::SafetyViolation(b))
            | (SearchOutcome::Deadlock(a), SearchOutcome::Deadlock(b))
            | (SearchOutcome::Panic(a), SearchOutcome::Panic(b)) => {
                assert_eq!(
                    (&a.message, &a.schedule),
                    (&b.message, &b.schedule),
                    "parallel counterexample failed deterministic replay"
                );
            }
            (SearchOutcome::Divergence(a), SearchOutcome::Divergence(b)) => {
                assert_eq!(
                    (&a.kind, &a.schedule),
                    (&b.kind, &b.schedule),
                    "parallel divergence failed deterministic replay"
                );
            }
            (original, replayed) => panic!(
                "parallel error failed deterministic replay:\n  found:    \
                 {original:?}\n  replayed: {replayed:?}"
            ),
        }
    }
}

/// One shard of a distributed search: this process is shard `index` of
/// `of` total (indices `0..of`).
///
/// For DFS ([`ParallelExplorer::run_dfs_shard`]) the spec selects a
/// contiguous slice of the depth-0 decision frontier; for random walk
/// ([`ParallelExplorer::run_random_shard`]) it selects a seed offset and
/// a budget share.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// This shard's position, `0 <= index < of`.
    pub index: usize,
    /// Total number of shards (≥ 1).
    pub of: usize,
}

impl ShardSpec {
    /// Creates a shard spec, or an error message when the pair is not a
    /// valid position (`of == 0` or `index >= of`).
    pub fn new(index: usize, of: usize) -> Result<ShardSpec, String> {
        if of == 0 {
            return Err("shard count must be at least 1".to_string());
        }
        if index >= of {
            return Err(format!("shard index {index} out of range 0..{of}"));
        }
        Ok(ShardSpec { index, of })
    }

    /// The contiguous slice of `n` items this shard owns:
    /// `[index·n/of, (index+1)·n/of)`. Adjacent shards tile `0..n`
    /// without gaps or overlap, and every share differs in size by at
    /// most one.
    pub fn range(&self, n: usize) -> std::ops::Range<usize> {
        self.index * n / self.of..(self.index + 1) * n / self.of
    }
}

/// The report of a shard whose frontier slice is empty: zero work,
/// trivially complete.
fn empty_shard_report() -> SearchReport {
    SearchReport {
        outcome: SearchOutcome::Complete,
        stats: SearchStats::default(),
    }
}

/// Rebases a shard-local 1-based execution index in an error outcome to
/// the global sequence by adding the executions of all prior shards.
fn rebase_outcome(mut outcome: SearchOutcome, prior: u64) -> SearchOutcome {
    match &mut outcome {
        SearchOutcome::SafetyViolation(c)
        | SearchOutcome::Deadlock(c)
        | SearchOutcome::Panic(c) => c.execution += prior,
        SearchOutcome::Divergence(d) => d.execution += prior,
        _ => {}
    }
    outcome
}

/// Merges the reports of a contiguous DFS shard run
/// ([`ParallelExplorer::run_dfs_shard`]), in shard order, into the
/// report the *sequential* DFS over the same world produces.
///
/// The walk mirrors what sequential DFS with `stop_on_error` does:
/// prior shards' statistics accumulate until the first shard that found
/// an error; that shard's error wins with its execution index rebased
/// by the accumulated prior executions, and everything after it — work
/// the sequential search would never have reached — is dropped. With no
/// error the outcome is `Complete` only if every shard completed,
/// otherwise the most limiting budget across shards (the
/// [`BudgetKind`] ranking of the in-process parallel merge).
///
/// Equality with the sequential report is exact (wall clock aside)
/// whenever no shard hit a budget before the winning error — in
/// particular whenever the sequential search itself fits the budget.
pub fn merge_contiguous_shards(reports: &[SearchReport]) -> SearchReport {
    let mut stats = SearchStats::default();
    let mut merged = SearchOutcome::Complete;
    for r in reports {
        let prior = stats.executions;
        let mut s = r.stats.clone();
        if let Some(e) = s.first_error_execution {
            s.first_error_execution = Some(e + prior);
        }
        stats.merge(&s);
        if r.outcome.found_error() {
            return SearchReport {
                outcome: rebase_outcome(r.outcome.clone(), prior),
                stats,
            };
        }
        if outcome_rank(&r.outcome) > outcome_rank(&merged) {
            merged = r.outcome.clone();
        }
    }
    SearchReport {
        outcome: merged,
        stats,
    }
}

/// Merges the reports of a seed-sharded random walk
/// ([`ParallelExplorer::run_random_shard`]): all statistics accumulate
/// (every shard ran), and the outcome is the lowest-indexed shard's
/// error if any — a deterministic tie-break, where the in-process
/// [`ParallelExplorer::run_random`] races its workers for the win —
/// otherwise the most limiting budget.
pub fn merge_seed_shards(reports: &[SearchReport]) -> SearchReport {
    let mut stats = SearchStats::default();
    for r in reports {
        stats.merge(&r.stats);
    }
    let outcome = reports
        .iter()
        .find(|r| r.outcome.found_error())
        .map(|r| r.outcome.clone())
        .unwrap_or_else(|| {
            reports
                .iter()
                .map(|r| &r.outcome)
                .max_by_key(|o| outcome_rank(o))
                .cloned()
                .unwrap_or(SearchOutcome::Complete)
        });
    SearchReport { outcome, stats }
}

/// How many times a panicked worker is replaced before its shard is
/// abandoned as [`BudgetKind::WorkerPanicked`].
pub(crate) const MAX_WORKER_RESTARTS: u64 = 2;

/// The report standing in for a worker whose shard was abandoned after
/// exhausting its restarts: an incomplete search, not an error.
fn lost_worker_report() -> SearchReport {
    SearchReport {
        outcome: SearchOutcome::BudgetExhausted(BudgetKind::WorkerPanicked),
        stats: SearchStats::default(),
    }
}

/// Splits a total execution budget into per-worker shares summing to the
/// total (`None` stays unbounded for every worker).
fn split_budget(total: Option<u64>, jobs: usize) -> Vec<Option<u64>> {
    match total {
        None => vec![None; jobs],
        Some(n) => {
            let base = n / jobs as u64;
            let extra = (n % jobs as u64) as usize;
            (0..jobs)
                .map(|i| Some(base + u64::from(i < extra)))
                .collect()
        }
    }
}

/// Severity ranking of error-free outcomes: a merged search is
/// `Complete` only if every shard completed, otherwise it reports the
/// most limiting budget across shards.
fn outcome_rank(o: &SearchOutcome) -> u8 {
    match o {
        SearchOutcome::BudgetExhausted(BudgetKind::WorkerPanicked) => 4,
        SearchOutcome::BudgetExhausted(BudgetKind::Time) => 3,
        SearchOutcome::BudgetExhausted(BudgetKind::Executions) => 2,
        SearchOutcome::BudgetExhausted(BudgetKind::Cancelled) => 1,
        _ => 0,
    }
}

/// The overall outcome of an error-free parallel search: `Complete` only
/// if every shard completed; otherwise the most limiting budget.
fn merge_outcomes(reports: Vec<SearchReport>) -> SearchOutcome {
    let mut merged = SearchOutcome::Complete;
    for r in reports {
        if outcome_rank(&r.outcome) > outcome_rank(&merged) {
            merged = r.outcome;
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::testsys::{Act, Script};

    /// Three-step acyclic world: 3 interleavings, 9 transitions.
    fn two_step_scripts() -> Script {
        Script::new(vec![vec![Act::Step, Act::Step], vec![Act::Step]], 0)
    }

    /// A world where some interleavings deadlock: if thread 1 runs to
    /// completion first (its `Inc` consumed by its own `Dec`), thread 0
    /// blocks on `Dec` forever with nobody left to produce.
    fn sometimes_deadlocks() -> Script {
        Script::new(
            vec![
                vec![Act::Step, Act::Dec(0), Act::Inc(0)],
                vec![Act::Step, Act::Inc(0), Act::Dec(0)],
            ],
            1,
        )
    }

    fn zero_wall(mut r: SearchReport) -> SearchReport {
        r.stats.wall = std::time::Duration::ZERO;
        r
    }

    #[test]
    fn jobs_one_random_matches_sequential() {
        let config = Config::fair().with_max_executions(16);
        let sequential = Explorer::new(two_step_scripts, RandomWalk::new(7), config.clone()).run();
        let parallel = ParallelExplorer::new(two_step_scripts, config, 1).run_random(7);
        assert_eq!(zero_wall(parallel), zero_wall(sequential));
    }

    #[test]
    fn jobs_one_dfs_matches_sequential() {
        let config = Config::fair();
        let sequential = Explorer::new(two_step_scripts, Dfs::new(), config.clone()).run();
        let parallel = ParallelExplorer::new(two_step_scripts, config, 1).run_dfs();
        assert_eq!(zero_wall(parallel), zero_wall(sequential));
    }

    #[test]
    fn parallel_dfs_visits_exactly_the_sequential_executions() {
        let config = Config::fair();
        let sequential = Explorer::new(two_step_scripts, Dfs::new(), config.clone()).run();
        for jobs in [2, 3, 4, 7] {
            let parallel = ParallelExplorer::new(two_step_scripts, config.clone(), jobs).run_dfs();
            assert_eq!(parallel.outcome, SearchOutcome::Complete, "jobs={jobs}");
            assert_eq!(
                parallel.stats.executions, sequential.stats.executions,
                "jobs={jobs}: shards must partition the tree, not duplicate it"
            );
            assert_eq!(parallel.stats.transitions, sequential.stats.transitions);
            assert_eq!(parallel.stats.terminating, sequential.stats.terminating);
            assert_eq!(parallel.stats.max_depth, sequential.stats.max_depth);
        }
    }

    /// A world with an independent pair (distinct counters) where sleep
    /// sets have something to prune, plus a dependent pair they must keep.
    fn prunable_scripts() -> Script {
        Script::new(
            vec![
                vec![Act::Inc(0), Act::Inc(2)],
                vec![Act::Inc(1)],
                vec![Act::Inc(2)],
            ],
            3,
        )
    }

    #[test]
    fn reduced_parallel_dfs_agrees_and_explores_no_more() {
        let config = Config::fair();
        let plain = Explorer::new(prunable_scripts, Dfs::new(), config.clone()).run();
        assert_eq!(plain.outcome, SearchOutcome::Complete);
        for jobs in [1, 2, 3] {
            let reduced = ParallelExplorer::new(prunable_scripts, config.clone(), jobs)
                .run_dfs_with(Reduction::SleepSets);
            assert_eq!(reduced.outcome, SearchOutcome::Complete, "jobs={jobs}");
            assert!(
                reduced.stats.executions < plain.stats.executions,
                "jobs={jobs}: sleep sets pruned nothing ({} vs {})",
                reduced.stats.executions,
                plain.stats.executions,
            );
        }
        // With one worker the reduced parallel search IS the sequential
        // reduced search.
        let sequential =
            Explorer::new(prunable_scripts, Dfs::with_sleep_sets(), config.clone()).run();
        let one =
            ParallelExplorer::new(prunable_scripts, config, 1).run_dfs_with(Reduction::SleepSets);
        assert_eq!(zero_wall(one), zero_wall(sequential));
    }

    /// Per-shard sleep sets must not prune an error only some shards can
    /// see: the deadlocking world still deadlocks under reduction.
    #[test]
    fn reduced_parallel_dfs_still_finds_errors() {
        for jobs in [1, 2, 4] {
            let report = ParallelExplorer::new(sometimes_deadlocks, Config::fair(), jobs)
                .run_dfs_with(Reduction::SleepSets);
            assert!(
                matches!(report.outcome, SearchOutcome::Deadlock(_)),
                "jobs={jobs}: {:?}",
                report.outcome
            );
        }
    }

    #[test]
    fn first_error_wins_and_replays_sequentially() {
        for jobs in [1, 2, 4] {
            let report = ParallelExplorer::new(sometimes_deadlocks, Config::fair(), jobs).run_dfs();
            let SearchOutcome::Deadlock(cex) = &report.outcome else {
                panic!("jobs={jobs}: expected a deadlock, got {:?}", report.outcome);
            };
            // verify_replay already ran inside the engine; check again
            // from the outside that the schedule alone pins the bug.
            let replay = Explorer::new(
                sometimes_deadlocks,
                FixedSchedule::new(cex.schedule.clone()),
                Config::fair(),
            )
            .run();
            let SearchOutcome::Deadlock(replayed) = replay.outcome else {
                panic!("jobs={jobs}: schedule did not replay to the deadlock");
            };
            assert_eq!(replayed.schedule, cex.schedule);
        }
    }

    #[test]
    fn parallel_random_splits_the_execution_budget() {
        let config = Config::fair().with_max_executions(16);
        let report = ParallelExplorer::new(two_step_scripts, config, 4).run_random(3);
        assert_eq!(
            report.outcome,
            SearchOutcome::BudgetExhausted(BudgetKind::Executions)
        );
        assert_eq!(report.stats.executions, 16, "shares must sum to the total");
    }

    #[test]
    fn iterative_cb_jobs_one_matches_sequential() {
        let sequential =
            crate::explore::iterative_context_bounding(two_step_scripts, Config::fair(), 2);
        let parallel =
            ParallelExplorer::new(two_step_scripts, Config::fair(), 1).run_iterative_cb(2);
        assert_eq!(parallel.len(), sequential.len());
        for ((bs, rs), (bp, rp)) in sequential.iter().zip(&parallel) {
            assert_eq!(bs, bp);
            assert_eq!(zero_wall(rs.clone()), zero_wall(rp.clone()));
        }
    }

    #[test]
    fn iterative_cb_parallel_covers_every_bound() {
        let parallel =
            ParallelExplorer::new(two_step_scripts, Config::fair(), 3).run_iterative_cb(4);
        let bounds: Vec<u32> = parallel.iter().map(|&(b, _)| b).collect();
        assert_eq!(bounds, vec![0, 1, 2, 3, 4]);
        assert!(parallel.iter().all(|(_, r)| !r.outcome.found_error()));
    }

    /// A world where thread 0's second action panics: every interleaving
    /// eventually executes it, so the search must surface an isolated,
    /// replayable panic rather than crash.
    fn sometimes_panics() -> Script {
        Script::new(vec![vec![Act::Step, Act::Panic], vec![Act::Step]], 0)
    }

    #[test]
    fn parallel_workload_panic_is_isolated_and_replays() {
        for jobs in [1, 2, 4] {
            let report = ParallelExplorer::new(sometimes_panics, Config::fair(), jobs).run_dfs();
            let SearchOutcome::Panic(cex) = &report.outcome else {
                panic!(
                    "jobs={jobs}: expected a panic outcome, got {:?}",
                    report.outcome
                );
            };
            assert_eq!(cex.message, "scripted panic");
            assert!(report.stats.panics >= 1, "jobs={jobs}");
            // verify_replay already ran inside the engine; pin the bug
            // again from the outside with the schedule alone.
            let replay = Explorer::new(
                sometimes_panics,
                FixedSchedule::new(cex.schedule.clone()),
                Config::fair(),
            )
            .run();
            let SearchOutcome::Panic(replayed) = replay.outcome else {
                panic!("jobs={jobs}: schedule did not replay to the panic");
            };
            assert_eq!(replayed.schedule, cex.schedule);
            assert_eq!(replayed.message, cex.message);
        }
    }

    /// A strategy that panics in `on_execution_end` when `dies` is set —
    /// that hook runs *outside* the explorer's per-execution panic guard,
    /// so the panic escapes the sequential search and exercises the
    /// worker supervisor.
    #[derive(Clone)]
    struct MaybeDies {
        dies: bool,
        inner: Dfs,
    }

    impl Strategy for MaybeDies {
        fn pick(&mut self, point: &SchedulePoint<'_>) -> Option<Decision> {
            self.inner.pick(point)
        }

        fn on_execution_end(&mut self) -> bool {
            if self.dies {
                panic!("strategy bug between executions");
            }
            self.inner.on_execution_end()
        }

        fn name(&self) -> String {
            "maybe-dies".to_string()
        }
    }

    #[test]
    fn supervisor_restarts_then_abandons_a_panicking_worker() {
        let explorer = ParallelExplorer::new(two_step_scripts, Config::fair(), 2);
        let healthy = MaybeDies {
            dies: false,
            inner: Dfs::new(),
        };
        let dying = MaybeDies {
            dies: true,
            inner: Dfs::new(),
        };
        let report = explorer.run_workers(
            Instant::now(),
            vec![(healthy, Config::fair()), (dying, Config::fair())],
        );
        // The dying worker was restarted up to the cap, then abandoned;
        // the healthy worker's full result was still harvested.
        assert_eq!(
            report.outcome,
            SearchOutcome::BudgetExhausted(BudgetKind::WorkerPanicked)
        );
        assert_eq!(report.stats.worker_restarts, MAX_WORKER_RESTARTS);
        let sequential = Explorer::new(two_step_scripts, Dfs::new(), Config::fair()).run();
        assert_eq!(report.stats.executions, sequential.stats.executions);
        // Every failed attempt completed one execution before dying in
        // `on_execution_end`; the supervisor harvests those boundary
        // totals instead of dropping them (initial try + each restart,
        // plus the final abandoned attempt).
        assert_eq!(report.stats.lost_to_restart, MAX_WORKER_RESTARTS + 1);
    }

    #[test]
    fn supervisor_report_renders_as_incomplete() {
        let report = lost_worker_report();
        assert!(!report.outcome.found_error());
        assert!(!report.outcome.is_exhaustive_pass());
        assert!(report.to_string().contains("worker lost"));
    }

    #[test]
    fn shard_ranges_tile_without_gaps_or_overlap() {
        for n in 0..12usize {
            for of in 1..6usize {
                let mut covered = Vec::new();
                for index in 0..of {
                    let spec = ShardSpec::new(index, of).unwrap();
                    covered.extend(spec.range(n));
                }
                assert_eq!(covered, (0..n).collect::<Vec<_>>(), "n={n} of={of}");
            }
        }
        assert!(ShardSpec::new(0, 0).is_err());
        assert!(ShardSpec::new(3, 3).is_err());
    }

    /// The acceptance property of the daemon's sharded `check`: running
    /// every contiguous DFS shard independently and merging the reports
    /// reproduces the sequential report exactly (wall clock aside).
    #[test]
    fn merged_dfs_shards_equal_the_sequential_report() {
        let config = Config::fair();
        let sequential = Explorer::new(two_step_scripts, Dfs::new(), config.clone()).run();
        for of in [1, 2, 3, 4, 7] {
            let shards: Vec<SearchReport> = (0..of)
                .map(|index| {
                    ParallelExplorer::new(two_step_scripts, config.clone(), 1)
                        .run_dfs_shard(ShardSpec::new(index, of).unwrap())
                })
                .collect();
            let merged = merge_contiguous_shards(&shards);
            assert_eq!(zero_wall(merged), zero_wall(sequential.clone()), "of={of}");
        }
    }

    /// Error rebasing: the merged error must carry the *global*
    /// execution index, matching the sequential first-error run even
    /// when the error lives in a later shard.
    #[test]
    fn merged_dfs_shards_rebase_the_error_execution() {
        let config = Config::fair();
        let sequential = Explorer::new(sometimes_deadlocks, Dfs::new(), config.clone()).run();
        assert!(matches!(sequential.outcome, SearchOutcome::Deadlock(_)));
        for of in [1, 2, 3, 5] {
            let shards: Vec<SearchReport> = (0..of)
                .map(|index| {
                    ParallelExplorer::new(sometimes_deadlocks, config.clone(), 1)
                        .run_dfs_shard(ShardSpec::new(index, of).unwrap())
                })
                .collect();
            let merged = merge_contiguous_shards(&shards);
            assert_eq!(zero_wall(merged), zero_wall(sequential.clone()), "of={of}");
        }
    }

    /// Merged seed shards reproduce the in-process parallel random walk:
    /// same budget split, same seeds, same totals.
    #[test]
    fn merged_seed_shards_match_the_parallel_random_walk() {
        let config = Config::fair().with_max_executions(16);
        let of = 4;
        let parallel = ParallelExplorer::new(two_step_scripts, config.clone(), of).run_random(3);
        let shards: Vec<SearchReport> = (0..of)
            .map(|index| {
                ParallelExplorer::new(two_step_scripts, config.clone(), 1)
                    .run_random_shard(3, ShardSpec::new(index, of).unwrap())
            })
            .collect();
        let merged = merge_seed_shards(&shards);
        assert_eq!(zero_wall(merged), zero_wall(parallel));
    }

    #[test]
    fn empty_shard_slices_merge_away() {
        // 5 roots at most in this world; 9 shards leaves some empty.
        let config = Config::fair();
        let sequential = Explorer::new(two_step_scripts, Dfs::new(), config.clone()).run();
        let shards: Vec<SearchReport> = (0..9)
            .map(|index| {
                ParallelExplorer::new(two_step_scripts, config.clone(), 1)
                    .run_dfs_shard(ShardSpec::new(index, 9).unwrap())
            })
            .collect();
        assert!(shards
            .iter()
            .any(|r| r.stats.executions == 0 && r.outcome == SearchOutcome::Complete));
        let merged = merge_contiguous_shards(&shards);
        assert_eq!(zero_wall(merged), zero_wall(sequential));
    }

    #[test]
    fn shard_progress_is_published() {
        let progress = Arc::new(Progress::default());
        let report = ParallelExplorer::new(two_step_scripts, Config::fair(), 1)
            .with_progress(Arc::clone(&progress))
            .run_dfs_shard(ShardSpec::new(0, 2).unwrap());
        assert!(report.stats.executions > 0);
        assert_eq!(
            progress.executions.load(Ordering::Relaxed),
            report.stats.executions
        );
    }

    #[test]
    fn split_budget_shares_sum_to_total() {
        assert_eq!(split_budget(None, 3), vec![None, None, None]);
        let shares = split_budget(Some(10), 4);
        assert_eq!(shares, vec![Some(3), Some(3), Some(2), Some(2)]);
        assert_eq!(
            split_budget(Some(2), 4),
            vec![Some(1), Some(1), Some(0), Some(0)]
        );
    }
}
