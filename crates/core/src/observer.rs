//! Search observers: hooks for coverage measurement and statistics.
//!
//! The paper measures state coverage (Table 2) by manually extracting
//! states during the search; an [`Observer`] is the seam that code (in
//! `chess-state`) plugs into without the explorer knowing about visited
//! sets.

use crate::system::TransitionSystem;

/// Callbacks invoked by the explorer during a search.
///
/// `on_state` is called for the initial state of every execution and
/// after every transition — i.e. once per *visited state occurrence*.
pub trait Observer<P: TransitionSystem + ?Sized> {
    /// A state has been reached (`depth` transitions into the current
    /// execution; `depth == 0` is the initial state).
    fn on_state(&mut self, sys: &P, depth: usize) {
        let _ = (sys, depth);
    }

    /// The current execution ended after `depth` transitions.
    fn on_execution_end(&mut self, sys: &P, depth: usize) {
        let _ = (sys, depth);
    }
}

/// An observer that does nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl<P: TransitionSystem + ?Sized> Observer<P> for NullObserver {}

/// An observer that counts state occurrences (not distinct states; use
/// `chess-state`'s coverage tracker for that).
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingObserver {
    /// Number of `on_state` callbacks received.
    pub states_seen: u64,
    /// Number of executions observed.
    pub executions: u64,
}

impl<P: TransitionSystem + ?Sized> Observer<P> for CountingObserver {
    fn on_state(&mut self, _sys: &P, _depth: usize) {
        self.states_seen += 1;
    }

    fn on_execution_end(&mut self, _sys: &P, _depth: usize) {
        self.executions += 1;
    }
}
