//! Search outcomes and statistics: the four possible results of the
//! semi-algorithm (Section 2) plus budget exhaustion.

use std::fmt;
use std::time::Duration;

use chess_kernel::ThreadId;

use crate::trace::{Counterexample, Schedule};

/// How a divergence (a potentially-infinite execution) was detected and
/// classified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DivergenceKind {
    /// The execution revisited a (program state, scheduler state) pair
    /// along a **fair** cycle: a definite livelock (outcome 3 of the
    /// paper's semi-algorithm, made precise by per-execution cycle
    /// detection).
    FairCycle {
        /// Step index at which the repeated state was first seen.
        cycle_start: usize,
        /// Length of the cycle in transitions.
        cycle_len: usize,
    },
    /// The execution revisited a state along an **unfair** cycle that the
    /// scheduler would repeat forever: some enabled thread is starved and
    /// nobody ever yields toward it — a definite good-samaritan violation
    /// (outcome 2).
    UnfairCycle {
        /// Step index at which the repeated state was first seen.
        cycle_start: usize,
        /// Length of the cycle in transitions.
        cycle_len: usize,
        /// A thread enabled in the cycle but never scheduled in it.
        starved: ThreadId,
    },
    /// The depth bound was exceeded and some thread had taken at least
    /// the configured number of consecutive transitions without yielding:
    /// a good-samaritan violation suspect.
    GoodSamaritanSuspect {
        /// The offending thread.
        thread: ThreadId,
        /// Its transitions since its last yield.
        steps_without_yield: u64,
    },
    /// The depth bound was exceeded while every frequently-scheduled
    /// thread kept yielding: a livelock suspect (the paper's "warning to
    /// the user" — increase the bound or inspect the trace).
    LivelockSuspect,
}

impl fmt::Display for DivergenceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DivergenceKind::FairCycle {
                cycle_start,
                cycle_len,
            } => write!(
                f,
                "livelock: fair cycle of length {cycle_len} from step {cycle_start}"
            ),
            DivergenceKind::UnfairCycle {
                cycle_start,
                cycle_len,
                starved,
            } => write!(
                f,
                "good-samaritan violation: unfair cycle of length {cycle_len} from step \
                 {cycle_start} starving {starved}"
            ),
            DivergenceKind::GoodSamaritanSuspect {
                thread,
                steps_without_yield,
            } => write!(
                f,
                "good-samaritan violation suspect: {thread} took {steps_without_yield} \
                 transitions without yielding"
            ),
            DivergenceKind::LivelockSuspect => {
                write!(
                    f,
                    "livelock suspect: depth bound exceeded on a fair execution"
                )
            }
        }
    }
}

/// A detected divergence with its reproducing schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Classification of the divergence.
    pub kind: DivergenceKind,
    /// The schedule up to the point of detection.
    pub schedule: Schedule,
    /// The execution (1-based) in which the divergence was found.
    pub execution: u64,
}

/// Which budget stopped the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    /// The configured maximum number of executions was reached.
    Executions,
    /// The configured wall-clock budget was exhausted.
    Time,
    /// The search was cancelled through its stop flag — in a parallel
    /// search, another worker found an error first; in the CLI, the user
    /// pressed Ctrl-C.
    Cancelled,
    /// A parallel worker panicked inside the checker itself (not in the
    /// workload — workload panics are isolated as
    /// [`SearchOutcome::Panic`]) and ran out of restarts, so part of its
    /// shard is unexplored.
    WorkerPanicked,
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BudgetKind::Executions => "execution budget exhausted",
            BudgetKind::Time => "time budget exhausted",
            BudgetKind::Cancelled => "cancelled",
            BudgetKind::WorkerPanicked => "worker lost",
        })
    }
}

/// Final outcome of a search, mirroring the four outcomes of the paper's
/// semi-algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchOutcome {
    /// The strategy exhausted its search space without finding an error
    /// (outcome 4).
    Complete,
    /// A safety violation was found (outcome 1).
    SafetyViolation(Counterexample),
    /// A deadlock was found (a safety violation in the paper's setting).
    Deadlock(Counterexample),
    /// The program panicked during a transition. A panic is a safety
    /// violation with the panic message as evidence; the schedule replays
    /// it deterministically.
    Panic(Counterexample),
    /// A divergence was detected (outcomes 2 and 3).
    Divergence(Divergence),
    /// A budget ran out before the search completed.
    BudgetExhausted(BudgetKind),
}

impl SearchOutcome {
    /// Returns whether the search found any error.
    pub fn found_error(&self) -> bool {
        matches!(
            self,
            SearchOutcome::SafetyViolation(_)
                | SearchOutcome::Deadlock(_)
                | SearchOutcome::Panic(_)
                | SearchOutcome::Divergence(_)
        )
    }

    /// Returns the counterexample, if the outcome carries one.
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match self {
            SearchOutcome::SafetyViolation(c)
            | SearchOutcome::Deadlock(c)
            | SearchOutcome::Panic(c) => Some(c),
            _ => None,
        }
    }

    /// Returns whether the outcome certifies an exhaustive pass: the
    /// strategy ran out of schedules without finding an error. A search
    /// stopped by any budget (executions, time, cancellation, a lost
    /// worker) is **incomplete** and must never be read as a proof.
    pub fn is_exhaustive_pass(&self) -> bool {
        matches!(self, SearchOutcome::Complete)
    }

    /// The process exit code this outcome maps to under the contract of
    /// [`crate::exitcode`]. Interruption ([`crate::exitcode::INTERRUPTED`])
    /// is a property of the *process* (a signal arrived), not of the
    /// outcome, so it is never returned here.
    pub fn exit_code(&self) -> u8 {
        use crate::exitcode;
        match self {
            SearchOutcome::Complete => exitcode::CLEAN,
            SearchOutcome::SafetyViolation(_) | SearchOutcome::Panic(_) => {
                exitcode::SAFETY_VIOLATION
            }
            SearchOutcome::Deadlock(_) => exitcode::DEADLOCK,
            SearchOutcome::Divergence(_) => exitcode::LIVELOCK,
            SearchOutcome::BudgetExhausted(BudgetKind::WorkerPanicked) => exitcode::INTERNAL,
            SearchOutcome::BudgetExhausted(_) => exitcode::INCOMPLETE,
        }
    }
}

/// Statistics accumulated over a whole search.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Executions started.
    pub executions: u64,
    /// Total transitions across all executions.
    pub transitions: u64,
    /// Executions that reached a terminating state (or an error).
    pub terminating: u64,
    /// Executions cut off by the depth bound in the **unfair** baseline —
    /// the paper's wasteful "nonterminating executions" metric (Figure 2).
    /// Under fairness a bound hit is a divergence warning and is counted
    /// in [`SearchStats::divergences`] instead, never here.
    pub nonterminating: u64,
    /// Executions abandoned by the strategy before completion.
    pub abandoned: u64,
    /// Deadlocks observed (when deadlocks are not treated as violations).
    pub deadlocks: u64,
    /// Safety violations observed (when not stopping at the first).
    pub violations: u64,
    /// Divergences observed under fairness (when not stopping at the
    /// first): detected cycles plus fair depth-bound hits. Disjoint from
    /// [`SearchStats::nonterminating`], which only counts unfair cuts.
    pub divergences: u64,
    /// Divergences that were definite **fair** cycles — livelocks in the
    /// sense of Theorem 6. A subset of [`SearchStats::divergences`].
    pub fair_cycles: u64,
    /// Divergences that were definite **unfair** cycles — good-samaritan
    /// violations. A subset of [`SearchStats::divergences`].
    pub unfair_cycles: u64,
    /// Workload panics isolated by the explorer. Every panic is also
    /// counted in [`SearchStats::violations`]; this counter tells the two
    /// apart.
    pub panics: u64,
    /// Panicked parallel workers that the supervisor replaced. Nonzero
    /// only when the checker itself misbehaved; workload panics never
    /// cost a worker.
    pub worker_restarts: u64,
    /// Executions completed by attempts that later died and were
    /// restarted. Restarting re-runs the shard, so these executions are
    /// not in [`SearchStats::executions`] — this counter keeps the work a
    /// failed attempt did from disappearing from the report entirely.
    pub lost_to_restart: u64,
    /// Execution index of the first error found, if any.
    pub first_error_execution: Option<u64>,
    /// Deepest execution observed.
    pub max_depth: usize,
    /// Wall-clock duration of the search.
    pub wall: Duration,
}

impl SearchStats {
    /// Folds another search's counters into this one — used to aggregate
    /// per-worker statistics of a parallel search. Counters add up;
    /// `max_depth` and `wall` take the maximum (workers run
    /// concurrently, so wall-clock does not add). `first_error_execution`
    /// keeps the smallest per-worker index on record, which under
    /// parallelism is a worker-local position, not a global one.
    pub fn merge(&mut self, other: &SearchStats) {
        self.executions += other.executions;
        self.transitions += other.transitions;
        self.terminating += other.terminating;
        self.nonterminating += other.nonterminating;
        self.abandoned += other.abandoned;
        self.deadlocks += other.deadlocks;
        self.violations += other.violations;
        self.divergences += other.divergences;
        self.fair_cycles += other.fair_cycles;
        self.unfair_cycles += other.unfair_cycles;
        self.panics += other.panics;
        self.worker_restarts += other.worker_restarts;
        self.lost_to_restart += other.lost_to_restart;
        self.first_error_execution = match (self.first_error_execution, other.first_error_execution)
        {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max_depth = self.max_depth.max(other.max_depth);
        self.wall = self.wall.max(other.wall);
    }
}

/// The result of a search: outcome plus statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchReport {
    /// Why the search stopped.
    pub outcome: SearchOutcome,
    /// Counters describing the work performed.
    pub stats: SearchStats,
}

impl SearchReport {
    /// The display line minus the trailing wall-clock field — the one
    /// part that differs between two runs of the same search. This is
    /// the line the campaign machinery stores and compares: a resumed or
    /// re-merged campaign must reproduce it byte for byte.
    pub fn deterministic_line(&self) -> String {
        let shown = self.to_string();
        match shown.rsplit_once(',') {
            Some((head, _wall)) => head.to_string(),
            None => shown,
        }
    }
}

impl fmt::Display for SearchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.outcome {
            SearchOutcome::Complete => write!(f, "search complete")?,
            SearchOutcome::SafetyViolation(c) => write!(
                f,
                "safety violation: {} (execution {})",
                c.message, c.execution
            )?,
            SearchOutcome::Deadlock(c) => {
                write!(f, "deadlock: {} (execution {})", c.message, c.execution)?
            }
            SearchOutcome::Panic(c) => {
                write!(f, "panic: {} (execution {})", c.message, c.execution)?
            }
            SearchOutcome::Divergence(d) => write!(f, "{} (execution {})", d.kind, d.execution)?,
            SearchOutcome::BudgetExhausted(k) => write!(f, "search incomplete ({k})")?,
        }
        write!(
            f,
            " — {} executions, {} transitions, {} nonterminating, {:?}",
            self.stats.executions,
            self.stats.transitions,
            self.stats.nonterminating,
            self.stats.wall
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::CounterexampleKind;

    #[test]
    fn outcome_classification() {
        assert!(!SearchOutcome::Complete.found_error());
        assert!(!SearchOutcome::BudgetExhausted(BudgetKind::Time).found_error());
        let cex = Counterexample {
            kind: CounterexampleKind::Safety,
            message: "m".into(),
            schedule: vec![],
            execution: 1,
        };
        let o = SearchOutcome::SafetyViolation(cex.clone());
        assert!(o.found_error());
        assert_eq!(o.counterexample().unwrap().message, "m");
        let d = SearchOutcome::Divergence(Divergence {
            kind: DivergenceKind::LivelockSuspect,
            schedule: vec![],
            execution: 2,
        });
        assert!(d.found_error());
        assert!(d.counterexample().is_none());
    }

    #[test]
    fn divergence_kind_display() {
        let k = DivergenceKind::FairCycle {
            cycle_start: 3,
            cycle_len: 6,
        };
        assert!(k.to_string().contains("livelock"));
        let k = DivergenceKind::UnfairCycle {
            cycle_start: 0,
            cycle_len: 2,
            starved: ThreadId::new(1),
        };
        assert!(k.to_string().contains("starving t1"));
        let k = DivergenceKind::GoodSamaritanSuspect {
            thread: ThreadId::new(0),
            steps_without_yield: 99,
        };
        assert!(k.to_string().contains("99"));
    }

    #[test]
    fn panic_outcome_is_an_error_with_counterexample() {
        let cex = Counterexample {
            kind: CounterexampleKind::Panic,
            message: "boom".into(),
            schedule: vec![],
            execution: 3,
        };
        let o = SearchOutcome::Panic(cex);
        assert!(o.found_error());
        assert!(!o.is_exhaustive_pass());
        assert_eq!(o.counterexample().unwrap().message, "boom");
        let r = SearchReport {
            outcome: o,
            stats: SearchStats::default(),
        };
        assert!(r.to_string().contains("panic: boom"));
    }

    /// A budget-stopped search renders as incomplete and never claims an
    /// exhaustive pass, whatever the budget kind.
    #[test]
    fn budget_stopped_search_is_incomplete_not_a_pass() {
        for k in [
            BudgetKind::Executions,
            BudgetKind::Time,
            BudgetKind::Cancelled,
            BudgetKind::WorkerPanicked,
        ] {
            let o = SearchOutcome::BudgetExhausted(k);
            assert!(!o.is_exhaustive_pass(), "{k} must not be a pass");
            assert!(!o.found_error());
            let r = SearchReport {
                outcome: o,
                stats: SearchStats::default(),
            };
            let text = r.to_string();
            assert!(text.contains("search incomplete"), "{text}");
            assert!(!text.contains("search complete"), "{text}");
        }
        assert!(SearchOutcome::Complete.is_exhaustive_pass());
    }

    #[test]
    fn merge_adds_panics_and_restarts() {
        let mut a = SearchStats {
            panics: 1,
            worker_restarts: 2,
            ..Default::default()
        };
        let b = SearchStats {
            panics: 3,
            worker_restarts: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.panics, 4);
        assert_eq!(a.worker_restarts, 3);
    }

    #[test]
    fn exit_codes_follow_the_contract() {
        assert_eq!(SearchOutcome::Complete.exit_code(), crate::exitcode::CLEAN);
        let cex = Counterexample {
            kind: CounterexampleKind::Safety,
            message: "m".into(),
            schedule: vec![],
            execution: 1,
        };
        assert_eq!(
            SearchOutcome::SafetyViolation(cex.clone()).exit_code(),
            crate::exitcode::SAFETY_VIOLATION
        );
        assert_eq!(
            SearchOutcome::Panic(cex.clone()).exit_code(),
            crate::exitcode::SAFETY_VIOLATION
        );
        assert_eq!(
            SearchOutcome::Deadlock(cex).exit_code(),
            crate::exitcode::DEADLOCK
        );
        assert_eq!(
            SearchOutcome::BudgetExhausted(BudgetKind::Time).exit_code(),
            crate::exitcode::INCOMPLETE
        );
        assert_eq!(
            SearchOutcome::BudgetExhausted(BudgetKind::WorkerPanicked).exit_code(),
            crate::exitcode::INTERNAL
        );
    }

    #[test]
    fn deterministic_line_strips_only_the_wall_field() {
        let r = SearchReport {
            outcome: SearchOutcome::Complete,
            stats: SearchStats {
                executions: 7,
                transitions: 21,
                ..Default::default()
            },
        };
        assert_eq!(
            r.deterministic_line(),
            "search complete — 7 executions, 21 transitions, 0 nonterminating"
        );
    }

    #[test]
    fn report_display_mentions_stats() {
        let r = SearchReport {
            outcome: SearchOutcome::Complete,
            stats: SearchStats {
                executions: 7,
                ..Default::default()
            },
        };
        assert!(r.to_string().contains("7 executions"));
    }
}
