//! The checker's exit-code contract.
//!
//! Scripts, CI jobs, and the campaign daemon branch on these values, so
//! they are stable API: every distinct terminal condition of a search
//! gets a distinct code. The CLI documents them in its `EXIT CODES`
//! usage section and re-exports this module; the daemon stores them in
//! verdict records, which is why the contract lives here rather than in
//! the CLI crate. The mapping from a search outcome to its code is
//! [`crate::SearchOutcome::exit_code`].

/// Search complete (or all fuzz oracles agreed); no error found.
pub const CLEAN: u8 = 0;

/// A safety violation was found — an assertion failure or a workload
/// panic (panics are isolated by the runtime and reported as replayable
/// violations).
pub const SAFETY_VIOLATION: u8 = 1;

/// Usage or configuration error (bad flags, unknown workload, unreadable
/// journal, mismatched resume options).
pub const USAGE: u8 = 2;

/// Search incomplete: the execution or wall-clock budget ran out before
/// the state space was exhausted.
pub const INCOMPLETE: u8 = 3;

/// A deadlock was found.
pub const DEADLOCK: u8 = 4;

/// A livelock was found: fair nontermination / divergence.
pub const LIVELOCK: u8 = 5;

/// SIGINT/SIGTERM stopped the search at an execution boundary; the final
/// checkpoint (if `--checkpoint` was given) was flushed and the run is
/// resumable with `--resume`.
pub const INTERRUPTED: u8 = 6;

/// Internal error: a search worker was lost after repeated panics, so
/// part of the search space may be unexplored.
pub const INTERNAL: u8 = 7;
