//! Context-bounded (preemption-bounded) search [Musuvathi & Qadeer,
//! PLDI 2007], integrated with fairness per Section 4 of the paper: a
//! context switch forced by the fairness priority (the running thread is
//! enabled but not schedulable) does **not** count against the preemption
//! budget. Optionally applies sleep-set partial-order reduction on top of
//! the budget filter ([`ContextBounded::with_sleep_sets`], see
//! [`crate::strategy::sleep`]).

use chess_kernel::Footprint;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::strategy::dfs::validate_frames;
use crate::strategy::sleep::{set_footprint, Reduction, SleepFrame};
use crate::strategy::{FrameSnapshot, SchedulePoint, Strategy, StrategySnapshot};
use crate::trace::Decision;

#[derive(Debug, Clone, Default)]
struct Frame {
    options: Vec<Decision>,
    sleep: SleepFrame,
}

impl Frame {
    fn current(&self) -> Decision {
        self.options[self.sleep.live[self.sleep.cursor]]
    }
}

/// Reusable buffers for the budget filter, which runs at **every**
/// decision point (including replay of the committed prefix), so a
/// fresh allocation here is the strategy's hottest allocation site.
#[derive(Debug, Clone, Default)]
struct EligScratch {
    /// `(cost, index)` pairs surviving the budget filter, sort order.
    idx: Vec<(u32, usize)>,
    /// The eligible decisions, zero-cost first.
    decisions: Vec<Decision>,
    /// Footprints parallel to `decisions` (empty when the point carries
    /// none).
    footprints: Vec<Footprint>,
}

/// Systematic search over all schedules with at most `bound` preemptions.
///
/// Decisions that would exceed the remaining preemption budget are pruned;
/// at every point the zero-cost continuation (keep running the current
/// thread) is explored first. Like [`crate::strategy::Dfs`], an optional
/// horizon switches to random decisions beyond depth `db` — still
/// respecting the preemption budget — which is the paper's unfair
/// baseline configuration for Table 2.
#[derive(Debug, Clone)]
pub struct ContextBounded {
    bound: u32,
    budget: u32,
    stack: Vec<Frame>,
    horizon: Option<usize>,
    rng: SmallRng,
    charge_fairness_switches: bool,
    reduction: Reduction,
    /// Popped frames, recycled on push (see [`crate::strategy::Dfs`]).
    pool: Vec<Frame>,
    /// Buffers for the per-pick budget filter.
    scratch: EligScratch,
}

impl ContextBounded {
    /// Search with at most `bound` preemptions per execution.
    pub fn new(bound: u32) -> Self {
        ContextBounded {
            bound,
            budget: bound,
            stack: Vec::new(),
            horizon: None,
            rng: SmallRng::seed_from_u64(0x5EED),
            charge_fairness_switches: false,
            reduction: Reduction::None,
            pool: Vec::new(),
            scratch: EligScratch::default(),
        }
    }

    /// Context-bounded search with sleep-set partial-order reduction
    /// applied on top of the budget filter. Fairness-forced edges are
    /// exempt from pruning, exactly as they are exempt from the
    /// preemption accounting. A reduced search does not support
    /// checkpointing.
    pub fn with_sleep_sets(bound: u32) -> Self {
        ContextBounded {
            reduction: Reduction::SleepSets,
            ..ContextBounded::new(bound)
        }
    }

    /// Ablation: charge context switches forced by the fairness priority
    /// against the preemption budget, *violating* the paper's Section 4
    /// soundness rule. With the budget exhausted and the running thread
    /// demoted by fairness, no decision is affordable and the execution
    /// is abandoned — measurably losing termination and coverage. Exists
    /// to demonstrate why the exemption matters; never use it for real
    /// checking.
    pub fn charging_fairness_switches(mut self) -> Self {
        self.charge_fairness_switches = true;
        self
    }

    /// Backtrack only over the first `db` decisions; beyond that, pick
    /// randomly among the budget-eligible decisions.
    pub fn with_horizon(bound: u32, db: usize) -> Self {
        ContextBounded {
            horizon: Some(db),
            ..ContextBounded::new(bound)
        }
    }

    /// Overrides the seed of the random tail.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = SmallRng::seed_from_u64(seed);
        self
    }

    /// The preemption bound.
    pub fn bound(&self) -> u32 {
        self.bound
    }

    /// The active partial-order reduction.
    pub fn reduction(&self) -> Reduction {
        self.reduction
    }

    /// The preemption cost of a decision under this strategy's accounting.
    fn cost(&self, point: &SchedulePoint<'_>, d: Decision) -> u32 {
        if self.charge_fairness_switches {
            // Ablation accounting: any switch away from an enabled thread
            // costs, even when fairness forced it.
            match point.prev {
                Some(p) if d.thread != p && point.prev_enabled => 1,
                _ => 0,
            }
        } else {
            point.preemption_cost(d)
        }
    }

    /// Fills `scratch` with the budget-eligible decisions, zero-cost
    /// first, footprints permuted in lockstep (empty when the point
    /// carries none), reusing every buffer in place. The result may be
    /// empty only in the charging ablation.
    fn eligible_into(&self, point: &SchedulePoint<'_>, scratch: &mut EligScratch) {
        scratch.idx.clear();
        scratch.idx.extend(
            point
                .options
                .iter()
                .enumerate()
                .map(|(i, &d)| (self.cost(point, d), i))
                .filter(|&(c, _)| c <= self.budget),
        );
        scratch.idx.sort_by_key(|&(c, i)| {
            let d = point.options[i];
            (c, d.thread.index(), d.choice)
        });
        scratch.decisions.clear();
        scratch
            .decisions
            .extend(scratch.idx.iter().map(|&(_, i)| point.options[i]));
        let mut n = 0;
        if !point.footprints.is_empty() {
            for &(_, i) in &scratch.idx {
                set_footprint(&mut scratch.footprints, &mut n, &point.footprints[i]);
            }
        }
        scratch.footprints.truncate(n);
    }
}

impl Strategy for ContextBounded {
    fn pick(&mut self, point: &SchedulePoint<'_>) -> Option<Decision> {
        if point.depth == 0 {
            self.budget = self.bound;
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        self.eligible_into(point, &mut scratch);
        debug_assert!(
            !scratch.decisions.is_empty() || self.charge_fairness_switches,
            "a zero-cost decision always exists at {point:?}"
        );
        let selected = if scratch.decisions.is_empty() {
            // Only reachable in the charging ablation: the execution is
            // unaffordable and must be abandoned.
            None
        } else if self.horizon.is_some_and(|db| point.depth >= db) {
            Some(scratch.decisions[self.rng.gen_range(0..scratch.decisions.len())])
        } else if point.depth < self.stack.len() {
            let f = &self.stack[point.depth];
            debug_assert_eq!(
                f.options, scratch.decisions,
                "nondeterministic replay at depth {}",
                point.depth
            );
            Some(f.current())
        } else {
            debug_assert_eq!(point.depth, self.stack.len());
            // Recycle a popped frame and steal the scratch buffers
            // outright — the frame's previous buffers flow back into the
            // scratch for the next fill.
            let mut frame = self.pool.pop().unwrap_or_default();
            std::mem::swap(&mut frame.options, &mut scratch.decisions);
            std::mem::swap(&mut frame.sleep.footprints, &mut scratch.footprints);
            let alive = if self.reduction.is_on() {
                let parent = self.stack.last();
                frame.sleep.rederive(
                    &frame.options,
                    parent.map(|f| (&f.sleep, f.options.as_slice())),
                    point,
                )
            } else {
                frame.sleep.make_inert(frame.options.len());
                true
            };
            if alive {
                let first = frame.current();
                self.stack.push(frame);
                Some(first)
            } else {
                // Every affordable option is asleep — covered by an
                // equivalent reordering elsewhere. Abandon without
                // pushing a frame.
                self.pool.push(frame);
                None
            }
        };
        self.scratch = scratch;
        let selected = selected?;
        self.budget -= self.cost(point, selected);
        Some(selected)
    }

    fn on_execution_end(&mut self) -> bool {
        while let Some(last) = self.stack.last_mut() {
            last.sleep.cursor += 1;
            if last.sleep.cursor < last.sleep.live.len() {
                return true;
            }
            let frame = self.stack.pop().expect("last_mut saw a frame");
            self.pool.push(frame);
        }
        false
    }

    fn name(&self) -> String {
        let base = match self.reduction {
            Reduction::None => format!("cb={}", self.bound),
            Reduction::SleepSets => format!("cb={}+sleep", self.bound),
        };
        match self.horizon {
            Some(db) => format!("{base}(db={db})"),
            None => base,
        }
    }

    fn wants_footprints(&self) -> bool {
        self.reduction.is_on()
    }

    fn snapshot(&self) -> Option<StrategySnapshot> {
        if self.reduction.is_on() {
            return None;
        }
        Some(StrategySnapshot::Cb {
            bound: self.bound,
            budget: self.budget,
            stack: self
                .stack
                .iter()
                .map(|f| FrameSnapshot {
                    options: f.options.clone(),
                    index: f.sleep.live[f.sleep.cursor],
                })
                .collect(),
            horizon: self.horizon,
            rng: self.rng.state(),
            charge_fairness_switches: self.charge_fairness_switches,
        })
    }

    fn restore(&mut self, snapshot: &StrategySnapshot) -> Result<(), String> {
        if self.reduction.is_on() {
            return Err("a sleep-set reduced search cannot be resumed from a snapshot".to_string());
        }
        let StrategySnapshot::Cb {
            bound,
            budget,
            stack,
            horizon,
            rng,
            charge_fairness_switches,
        } = snapshot
        else {
            return Err(format!(
                "cannot restore a '{}' snapshot into a context-bounded strategy",
                snapshot.kind()
            ));
        };
        validate_frames(stack)?;
        self.bound = *bound;
        self.budget = *budget;
        self.stack = stack
            .iter()
            .map(|f| {
                let mut sleep = SleepFrame::inert(f.options.len());
                sleep.cursor = f.index;
                Frame {
                    options: f.options.clone(),
                    sleep,
                }
            })
            .collect();
        self.horizon = *horizon;
        self.rng = SmallRng::from_state(*rng);
        self.charge_fairness_switches = *charge_fairness_switches;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chess_kernel::{Access, AccessKind, ObjectRef, ThreadId};

    fn d(t: usize) -> Decision {
        Decision::run(ThreadId::new(t))
    }

    fn p<'a>(depth: usize, options: &'a [Decision]) -> SchedulePoint<'a> {
        SchedulePoint {
            depth,
            options,
            footprints: &[],
            prev: None,
            prev_enabled: false,
            prev_schedulable: false,
            fairness_filtered: false,
            flushes: &[],
        }
    }

    /// A fixed 2-thread straight-line world: both threads always enabled
    /// and schedulable, `steps` scheduling points per execution. Returns
    /// all explored schedules as thread-index sequences.
    fn enumerate(bound: u32, steps: usize) -> Vec<Vec<usize>> {
        let mut cb = ContextBounded::new(bound);
        let opts = [d(0), d(1)];
        let mut schedules = Vec::new();
        loop {
            let mut sched = Vec::new();
            let mut prev = None;
            for depth in 0..steps {
                let point = SchedulePoint {
                    depth,
                    options: &opts,
                    footprints: &[],
                    prev,
                    prev_enabled: prev.is_some(),
                    prev_schedulable: prev.is_some(),
                    fairness_filtered: false,
                    flushes: &[],
                };
                let pick = cb.pick(&point).unwrap();
                sched.push(pick.thread.index());
                prev = Some(pick.thread);
            }
            schedules.push(sched);
            if !cb.on_execution_end() {
                break;
            }
        }
        schedules
    }

    fn preemptions(s: &[usize]) -> usize {
        s.windows(2).filter(|w| w[0] != w[1]).count()
    }

    #[test]
    fn zero_bound_explores_nonpreemptive_schedules_only() {
        let schedules = enumerate(0, 3);
        for s in &schedules {
            assert_eq!(preemptions(s), 0, "schedule {s:?} has a preemption");
        }
        // Two first-decisions, then forced continuation.
        assert_eq!(schedules.len(), 2);
    }

    #[test]
    fn bound_one_allows_single_preemption() {
        let schedules = enumerate(1, 3);
        assert!(schedules.iter().all(|s| preemptions(s) <= 1));
        // All ≤1-preemption schedules of length 3 over 2 threads:
        // 2 starts × (no preemption + preemption after step 1 or 2) = 6.
        assert_eq!(schedules.len(), 6);
        assert!(schedules.contains(&vec![0, 0, 1]));
        assert!(schedules.contains(&vec![1, 0, 0]));
        assert!(!schedules.contains(&vec![0, 1, 0]));
    }

    #[test]
    fn larger_bound_supersets_smaller() {
        let s1: std::collections::HashSet<_> = enumerate(1, 4).into_iter().collect();
        let s2: std::collections::HashSet<_> = enumerate(2, 4).into_iter().collect();
        assert!(s1.is_subset(&s2));
        assert!(s2.len() > s1.len());
        assert!(s2.iter().all(|s| preemptions(s) <= 2));
    }

    #[test]
    fn fairness_forced_switches_are_free() {
        // prev enabled but NOT schedulable (fairness priority): the
        // switch costs nothing, so even with bound 0 both targets are
        // explorable.
        let mut cb = ContextBounded::new(0);
        let opts = [d(1), d(2)];
        let point = SchedulePoint {
            depth: 1,
            options: &opts,
            footprints: &[],
            prev: Some(ThreadId::new(0)),
            prev_enabled: true,
            prev_schedulable: false,
            fairness_filtered: true,
            flushes: &[],
        };
        // Reset budget by picking at depth 0 first.
        let opts0 = [d(0)];
        cb.pick(&p(0, &opts0)).unwrap();
        let mut scratch = EligScratch::default();
        cb.eligible_into(&point, &mut scratch);
        assert_eq!(scratch.decisions.len(), 2);
    }

    /// The charging ablation abandons when the only affordable move is
    /// blocked by fairness.
    #[test]
    fn charging_ablation_can_abandon() {
        let mut cb = ContextBounded::new(0).charging_fairness_switches();
        let opts0 = [d(0)];
        cb.pick(&p(0, &opts0)).unwrap();
        // prev (t0) is enabled but NOT schedulable (fairness demoted it);
        // switching to t1 would cost 1 > budget 0.
        let opts = [d(1)];
        let point = SchedulePoint {
            depth: 1,
            options: &opts,
            footprints: &[],
            prev: Some(ThreadId::new(0)),
            prev_enabled: true,
            prev_schedulable: false,
            fairness_filtered: true,
            flushes: &[],
        };
        assert_eq!(cb.pick(&point), None, "must abandon, not crash");
        // The paper's accounting keeps the same point affordable.
        let mut cb = ContextBounded::new(0);
        cb.pick(&p(0, &opts0)).unwrap();
        assert_eq!(cb.pick(&point), Some(d(1)));
    }

    #[test]
    fn name_includes_bound() {
        assert_eq!(ContextBounded::new(2).name(), "cb=2");
        assert_eq!(ContextBounded::with_horizon(2, 30).name(), "cb=2(db=30)");
        assert_eq!(ContextBounded::with_sleep_sets(2).name(), "cb=2+sleep");
    }

    fn wfp(c: u32) -> Footprint {
        Footprint::from_accesses([Access::new(ObjectRef::Custom("c", c), AccessKind::Write)])
    }

    /// With a generous bound, sleep sets prune the redundant order of an
    /// independent pair while both orders of a dependent pair survive.
    #[test]
    fn sleep_sets_prune_on_top_of_the_budget() {
        let run = |independent: bool| -> Vec<(usize, usize)> {
            let mut cb = ContextBounded::with_sleep_sets(4);
            let opts = [d(0), d(1)];
            let fps = if independent {
                [wfp(0), wfp(1)]
            } else {
                [wfp(7), wfp(7)]
            };
            let mut leaves = Vec::new();
            loop {
                let point0 = SchedulePoint {
                    depth: 0,
                    options: &opts,
                    footprints: &fps,
                    prev: None,
                    prev_enabled: false,
                    prev_schedulable: false,
                    fairness_filtered: false,
                    flushes: &[],
                };
                let Some(a) = cb.pick(&point0) else {
                    if !cb.on_execution_end() {
                        break;
                    }
                    continue;
                };
                let rest = [d(1 - a.thread.index())];
                let rest_fps = if independent {
                    [wfp(1 - a.thread.index() as u32)]
                } else {
                    [wfp(7)]
                };
                let point1 = SchedulePoint {
                    depth: 1,
                    options: &rest,
                    footprints: &rest_fps,
                    prev: Some(a.thread),
                    prev_enabled: false,
                    prev_schedulable: false,
                    fairness_filtered: false,
                    flushes: &[],
                };
                if let Some(b) = cb.pick(&point1) {
                    leaves.push((a.thread.index(), b.thread.index()));
                }
                if !cb.on_execution_end() {
                    break;
                }
            }
            leaves
        };
        assert_eq!(run(true), vec![(0, 1)], "independent pair: one order");
        assert_eq!(
            run(false),
            vec![(0, 1), (1, 0)],
            "dependent pair: both orders"
        );
    }
}
