//! Search strategies: implementations of the `Choose` on line 11 of
//! Algorithm 1, enumerated across executions.
//!
//! A strategy is driven by the explorer at every scheduling point with a
//! [`SchedulePoint`] describing the available (already fairness-filtered)
//! decisions, and once at the end of each execution to decide whether and
//! where to backtrack.

mod cb;
mod dfs;
mod random;
mod replay;
mod sleep;

pub use cb::ContextBounded;
pub use dfs::Dfs;
pub use random::RandomWalk;
pub use replay::FixedSchedule;
pub use sleep::Reduction;

use crate::trace::Schedule;

/// Converts the committed backtracking prefix of a snapshot into the
/// replay schedule it denotes — the decisions the next execution takes
/// through the already-explored part of the tree.
pub fn snapshot_prefix(stack: &[FrameSnapshot]) -> Schedule {
    stack.iter().map(|f| f.options[f.index]).collect()
}

use chess_kernel::{Footprint, ThreadId};

use crate::trace::Decision;

/// Everything a strategy may consult at one scheduling point.
#[derive(Debug, Clone, Copy)]
pub struct SchedulePoint<'a> {
    /// Index of this scheduling point within the current execution.
    pub depth: usize,
    /// Available decisions, in ascending `(thread, choice)` order. Never
    /// empty. When fairness is on, threads excluded by the priority
    /// relation are already filtered out.
    pub options: &'a [Decision],
    /// Dependence footprints parallel to `options`, for strategies that
    /// apply partial-order reduction. The explorer only computes them
    /// when the strategy asks ([`Strategy::wants_footprints`]); otherwise
    /// this is empty, which strategies must treat as "every option is
    /// universal" (no pruning). Yielding options are reported as
    /// [`Footprint::universal`] regardless of the system's footprint —
    /// yields mutate the fair scheduler's global priority state and must
    /// never be pruned. Every non-yield footprint additionally carries a
    /// write on its own thread's state, so decisions of one thread (e.g.
    /// the branches of a data choice) are pairwise dependent.
    pub footprints: &'a [Footprint],
    /// The previously scheduled thread, if any.
    pub prev: Option<ThreadId>,
    /// Whether the previous thread is enabled in the current state.
    pub prev_enabled: bool,
    /// Whether the previous thread appears among `options` (it may be
    /// enabled yet excluded by the fairness priority).
    pub prev_schedulable: bool,
    /// Whether the fairness priority relation excluded at least one
    /// enabled thread at this point. Sleep-set reduction neither prunes
    /// nor propagates across such points: a fairness-forced edge must
    /// stay explorable, mirroring the paper's rule that fairness-forced
    /// preemptions do not count against the context bound.
    pub fairness_filtered: bool,
    /// Flags parallel to `options`: is this option a store-buffer *flush*
    /// pseudo-transition ([`is_flush`](crate::TransitionSystem::is_flush))?
    /// Empty when no option is a
    /// flush (in particular for every SC system), which strategies must
    /// treat as all-`false`. Flush decisions are exempt from the
    /// preemption budget: draining a buffer is the memory system acting,
    /// not a preemption of program code (the relaxed-memory analog of §5's
    /// free fairness-forced switches).
    pub flushes: &'a [bool],
}

impl SchedulePoint<'_> {
    /// Is the decision at `options[i]` a store-buffer flush?
    pub fn is_flush_option(&self, d: Decision) -> bool {
        if self.flushes.is_empty() {
            return false;
        }
        self.options
            .iter()
            .position(|&o| o == d)
            .is_some_and(|i| self.flushes[i])
    }

    /// The *preemption cost* of a decision, following the paper's
    /// accounting (Section 4): switching away from an enabled,
    /// schedulable thread costs one preemption; switches forced by
    /// blocking **or by the fairness priority** are free, and so are
    /// store-buffer flush pseudo-transitions (the explorer likewise keeps
    /// `prev` pointing at the last *program* thread across flush steps,
    /// so a flush between two steps of one thread does not turn the
    /// continuation into a paid switch).
    pub fn preemption_cost(&self, d: Decision) -> u32 {
        if self.is_flush_option(d) {
            return 0;
        }
        match self.prev {
            Some(p) if d.thread != p && self.prev_enabled && self.prev_schedulable => 1,
            _ => 0,
        }
    }
}

/// One backtracking frame of a snapshotted systematic strategy: the
/// option set committed at some depth and the index currently being
/// explored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameSnapshot {
    /// The decisions available at this depth, in the strategy's order.
    pub options: Vec<Decision>,
    /// Index of the decision the current execution takes at this depth.
    pub index: usize,
}

/// A serializable capture of a strategy's complete search position.
///
/// Restoring a snapshot into a freshly built strategy of the same kind
/// resumes the enumeration exactly where the capture left off: the next
/// execution a restored [`Dfs`] runs is the very execution the original
/// would have run. Snapshots contain plain data only (frames, RNG words,
/// flags), so the journal layer can round-trip them through JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrategySnapshot {
    /// State of a [`Dfs`] search.
    Dfs {
        /// The backtracking stack.
        stack: Vec<FrameSnapshot>,
        /// Backtracking horizon, if the random-tail baseline is active.
        horizon: Option<usize>,
        /// xoshiro256++ words of the random-tail generator.
        rng: [u64; 4],
        /// Whether the continuation-first ordering is active.
        prefer_continuation: bool,
    },
    /// State of a [`ContextBounded`] search.
    Cb {
        /// The preemption bound.
        bound: u32,
        /// Remaining preemption budget of the in-flight execution.
        budget: u32,
        /// The backtracking stack.
        stack: Vec<FrameSnapshot>,
        /// Backtracking horizon, if the random-tail baseline is active.
        horizon: Option<usize>,
        /// xoshiro256++ words of the random-tail generator.
        rng: [u64; 4],
        /// Whether the fairness-charging ablation is active.
        charge_fairness_switches: bool,
    },
    /// State of a [`RandomWalk`] search.
    Random {
        /// The original seed (kept for reporting).
        seed: u64,
        /// xoshiro256++ words of the walk's generator.
        rng: [u64; 4],
    },
}

impl StrategySnapshot {
    /// A short name of the snapshotted strategy kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            StrategySnapshot::Dfs { .. } => "dfs",
            StrategySnapshot::Cb { .. } => "cb",
            StrategySnapshot::Random { .. } => "random",
        }
    }
}

/// A search strategy: picks decisions within an execution and enumerates
/// executions.
pub trait Strategy {
    /// Picks the decision to take at this scheduling point, or `None` to
    /// abandon the current execution (pruning).
    fn pick(&mut self, point: &SchedulePoint<'_>) -> Option<Decision>;

    /// Called when the current execution ends (termination, error, depth
    /// bound, or abandonment). Returns `true` if another execution should
    /// be explored.
    fn on_execution_end(&mut self) -> bool;

    /// A short human-readable name (used in experiment tables).
    fn name(&self) -> String;

    /// Whether the explorer should compute per-option footprints for this
    /// strategy's [`SchedulePoint`]s. The default is `false` so the
    /// common, unreduced search never pays for footprint extraction;
    /// strategies running sleep-set reduction return `true`.
    fn wants_footprints(&self) -> bool {
        false
    }

    /// Captures the strategy's search position for a checkpoint, or
    /// `None` when the strategy does not support checkpointing (the
    /// default).
    fn snapshot(&self) -> Option<StrategySnapshot> {
        None
    }

    /// Restores a position captured by [`Strategy::snapshot`] on a
    /// strategy of the same kind. Implementors must reject snapshots of
    /// a different kind; the default rejects everything.
    fn restore(&mut self, snapshot: &StrategySnapshot) -> Result<(), String> {
        Err(format!(
            "strategy '{}' does not support resuming from a '{}' snapshot",
            self.name(),
            snapshot.kind()
        ))
    }
}

impl Strategy for Box<dyn Strategy> {
    fn pick(&mut self, point: &SchedulePoint<'_>) -> Option<Decision> {
        (**self).pick(point)
    }

    fn on_execution_end(&mut self) -> bool {
        (**self).on_execution_end()
    }

    fn name(&self) -> String {
        (**self).name()
    }

    fn wants_footprints(&self) -> bool {
        (**self).wants_footprints()
    }

    fn snapshot(&self) -> Option<StrategySnapshot> {
        (**self).snapshot()
    }

    fn restore(&mut self, snapshot: &StrategySnapshot) -> Result<(), String> {
        (**self).restore(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(t: usize) -> Decision {
        Decision::run(ThreadId::new(t))
    }

    #[test]
    fn preemption_cost_accounting() {
        let options = [d(0), d(1)];
        // First point: every decision free.
        let p0 = SchedulePoint {
            depth: 0,
            options: &options,
            footprints: &[],
            prev: None,
            prev_enabled: false,
            prev_schedulable: false,
            fairness_filtered: false,
            flushes: &[],
        };
        assert_eq!(p0.preemption_cost(d(1)), 0);

        // Continuing the previous thread is free; switching costs 1.
        let p1 = SchedulePoint {
            depth: 1,
            options: &options,
            footprints: &[],
            prev: Some(ThreadId::new(0)),
            prev_enabled: true,
            prev_schedulable: true,
            fairness_filtered: false,
            flushes: &[],
        };
        assert_eq!(p1.preemption_cost(d(0)), 0);
        assert_eq!(p1.preemption_cost(d(1)), 1);

        // A flush pseudo-transition is free even where an ordinary switch
        // away from an enabled previous thread would cost 1.
        let p4 = SchedulePoint {
            flushes: &[false, true],
            ..p1
        };
        assert!(p4.is_flush_option(d(1)) && !p4.is_flush_option(d(0)));
        assert_eq!(p4.preemption_cost(d(1)), 0);
        assert_eq!(p4.preemption_cost(d(0)), 0);

        // Previous thread blocked: the switch is free.
        let p2 = SchedulePoint {
            prev_enabled: false,
            prev_schedulable: false,
            ..p1
        };
        assert_eq!(p2.preemption_cost(d(1)), 0);

        // Previous thread enabled but excluded by the fairness priority:
        // the switch is forced by fairness and must not be counted
        // (Section 4's soundness remark).
        let p3 = SchedulePoint {
            prev_enabled: true,
            prev_schedulable: false,
            ..p1
        };
        assert_eq!(p3.preemption_cost(d(1)), 0);
    }
}
