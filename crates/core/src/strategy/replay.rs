//! Replay of a fixed schedule — used to re-render counterexamples and to
//! pin down a single execution in tests.

use crate::strategy::{SchedulePoint, Strategy};
use crate::trace::{Decision, Schedule};

/// A strategy that replays a fixed schedule once.
///
/// If the schedule runs out (or names a decision that is not currently
/// available) the execution is abandoned; the search ends after this one
/// execution.
#[derive(Debug, Clone)]
pub struct FixedSchedule {
    schedule: Schedule,
}

impl FixedSchedule {
    /// Replays the given schedule.
    pub fn new(schedule: Schedule) -> Self {
        FixedSchedule { schedule }
    }
}

impl Strategy for FixedSchedule {
    fn pick(&mut self, point: &SchedulePoint<'_>) -> Option<Decision> {
        let d = *self.schedule.get(point.depth)?;
        if point.options.contains(&d) {
            Some(d)
        } else {
            None
        }
    }

    fn on_execution_end(&mut self) -> bool {
        false
    }

    fn name(&self) -> String {
        format!("replay({} steps)", self.schedule.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chess_kernel::ThreadId;

    #[test]
    fn replays_then_stops() {
        let sched = vec![Decision::run(ThreadId::new(1))];
        let mut s = FixedSchedule::new(sched);
        let opts = [
            Decision::run(ThreadId::new(0)),
            Decision::run(ThreadId::new(1)),
        ];
        let point = SchedulePoint {
            depth: 0,
            options: &opts,
            footprints: &[],
            prev: None,
            prev_enabled: false,
            prev_schedulable: false,
            fairness_filtered: false,
            flushes: &[],
        };
        assert_eq!(s.pick(&point).unwrap().thread, ThreadId::new(1));
        let point1 = SchedulePoint { depth: 1, ..point };
        assert_eq!(s.pick(&point1), None, "schedule exhausted");
        assert!(!s.on_execution_end());
    }

    #[test]
    fn unavailable_decision_abandons() {
        let sched = vec![Decision::run(ThreadId::new(5))];
        let mut s = FixedSchedule::new(sched);
        let opts = [Decision::run(ThreadId::new(0))];
        let point = SchedulePoint {
            depth: 0,
            options: &opts,
            footprints: &[],
            prev: None,
            prev_enabled: false,
            prev_schedulable: false,
            fairness_filtered: false,
            flushes: &[],
        };
        assert_eq!(s.pick(&point), None);
    }
}
