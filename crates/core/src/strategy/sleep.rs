//! Sleep-set partial-order reduction (Godefroid), shared by the
//! systematic strategies.
//!
//! Two transitions with [independent](chess_kernel::Footprint::dependent)
//! footprints commute: executing them in either order from the same state
//! reaches the same state. Plain DFS still explores both orders. Sleep
//! sets prune the redundant one: after a decision `d` has been fully
//! explored from a node, `d` is put *to sleep* for the node's remaining
//! branches, and stays asleep down a branch for as long as every decision
//! taken is independent of `d` — along such a branch, scheduling `d` now
//! would reach a state whose exploration is already covered by the
//! subtree where `d` was taken first. A sleeping decision is removed
//! (woken) the moment a dependent decision is taken, and an option that
//! is asleep at a node is not explored from it.
//!
//! # Fairness soundness
//!
//! The fair scheduler makes two amendments, mirroring the paper's rule
//! that fairness-forced preemptions do not count against the context
//! bound:
//!
//! * **Yielding transitions are never pruned and never sleep.** A yield
//!   mutates the scheduler's global priority state, so it commutes with
//!   nothing; the explorer marks yield options with
//!   [`chess_kernel::Footprint::universal`], which this module treats as
//!   dependent with everything.
//! * **No pruning on fairness-forced edges.** At a node where the
//!   priority relation filtered the enabled set
//!   ([`SchedulePoint::fairness_filtered`](crate::strategy::SchedulePoint)),
//!   every option is explored regardless of the sleep set, and nothing is
//!   propagated to the children: the "equivalent reordering elsewhere"
//!   argument assumes both orders are actually schedulable, which the
//!   priority relation may invalidate.
//!
//! Dropping entries from a sleep set is always sound — it only makes the
//! search explore more — so both amendments err on the side of exploring.

use chess_kernel::Footprint;

use crate::strategy::SchedulePoint;
use crate::trace::Decision;

/// Which partial-order reduction a systematic strategy applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Reduction {
    /// No reduction: explore every interleaving (the default).
    #[default]
    None,
    /// Sleep-set reduction: prune provably-equivalent reorderings.
    SleepSets,
}

impl Reduction {
    /// Returns true when a reduction is active.
    pub fn is_on(self) -> bool {
        self != Reduction::None
    }
}

/// One sleeping decision together with the footprint it had when it was
/// put to sleep.
///
/// The footprint is recorded because independence must be re-checked at
/// every node the entry survives to, and the entry's transition is
/// unchanged along such branches: every decision taken while it sleeps is
/// independent of it, so the owning thread's next transition — and hence
/// its footprint — cannot have changed.
pub(crate) type SleepEntry = (Decision, Footprint);

/// Writes `fp` into `dst[*n]`, reusing the slot's allocations when the
/// slot exists and pushing a clone otherwise, then bumps `*n`. The
/// caller truncates `dst` to `n` when the fill is complete.
pub(crate) fn set_footprint(dst: &mut Vec<Footprint>, n: &mut usize, fp: &Footprint) {
    match dst.get_mut(*n) {
        Some(slot) => slot.clone_from(fp),
        None => dst.push(fp.clone()),
    }
    *n += 1;
}

fn set_entry(dst: &mut Vec<SleepEntry>, n: &mut usize, d: Decision, fp: &Footprint) {
    match dst.get_mut(*n) {
        Some(slot) => {
            slot.0 = d;
            slot.1.clone_from(fp);
        }
        None => dst.push((d, fp.clone())),
    }
    *n += 1;
}

/// One backtracking frame's sleep-set state.
///
/// With reduction off this is inert: `live` is the identity permutation
/// over the frame's options and everything else is empty, so the frame
/// behaves exactly like the pre-reduction `(options, index)` pair.
#[derive(Debug, Clone, Default)]
pub(crate) struct SleepFrame {
    /// Footprints parallel to the frame's (ordered) options. Empty when
    /// the explorer did not supply footprints; every option is then
    /// treated as universal (no pruning).
    pub footprints: Vec<Footprint>,
    /// Decisions asleep on arrival at this node.
    pub sleep: Vec<SleepEntry>,
    /// Indices (into the frame's options) that are awake and will be
    /// explored, in exploration order.
    pub live: Vec<usize>,
    /// Position within `live` of the decision the current execution takes.
    pub cursor: usize,
    /// Whether the fairness priority filtered the enabled set at this
    /// node (disables pruning and propagation, see the module docs).
    pub fairness_filtered: bool,
}

impl SleepFrame {
    /// An inert frame over `n` options: identity `live`, no sleep state.
    pub fn inert(n: usize) -> Self {
        SleepFrame {
            live: (0..n).collect(),
            ..SleepFrame::default()
        }
    }

    /// Resets this frame to the inert state over `n` options: identity
    /// `live`, no sleep state. Reuses the frame's buffers — the pooled
    /// counterpart of [`SleepFrame::inert`].
    pub fn make_inert(&mut self, n: usize) {
        self.footprints.clear();
        self.sleep.clear();
        self.live.clear();
        self.live.extend(0..n);
        self.cursor = 0;
        self.fairness_filtered = false;
    }

    /// Builds the sleep state for a new frame whose ordered options and
    /// parallel footprints are given, inheriting from `parent` (the frame
    /// one level up, whose `cursor` names the edge just taken), under the
    /// node-local fairness exemption carried by `point`.
    ///
    /// Returns `None` when every option is asleep: the node is entirely
    /// pruned and the caller must abandon the execution without pushing a
    /// frame.
    ///
    /// The strategies drive [`SleepFrame::rederive`] on recycled frames
    /// directly; this allocating constructor is kept for the unit tests.
    #[cfg(test)]
    pub fn derive(
        options: &[Decision],
        footprints: Vec<Footprint>,
        parent: Option<&SleepFrame>,
        parent_options: Option<&[Decision]>,
        point: &SchedulePoint<'_>,
    ) -> Option<Self> {
        let mut frame = SleepFrame {
            footprints,
            ..SleepFrame::default()
        };
        let parent = match (parent, parent_options) {
            (Some(p), Some(po)) => Some((p, po)),
            _ => None,
        };
        frame.rederive(options, parent, point).then_some(frame)
    }

    /// [`SleepFrame::derive`] in place: re-initializes this (typically
    /// recycled) frame's sleep state, reusing its `sleep` and `live`
    /// buffers. The caller must have already filled `self.footprints`
    /// with the footprints parallel to `options` (or cleared it when the
    /// point carries none). Returns `false` when every option is asleep
    /// — the caller must abandon the execution without pushing the
    /// frame.
    pub fn rederive(
        &mut self,
        options: &[Decision],
        parent: Option<(&SleepFrame, &[Decision])>,
        point: &SchedulePoint<'_>,
    ) -> bool {
        self.cursor = 0;
        self.fairness_filtered = point.fairness_filtered;
        let mut n = 0;
        if let Some((p, po)) = parent {
            p.child_sleep_into(po, &mut self.sleep, &mut n);
        }
        self.sleep.truncate(n);
        // Staleness check: a sleeping entry's footprint was recorded when
        // it went to sleep, and pruning relies on it still describing the
        // decision's transition now. That holds because any step that
        // changes the transition must conflict with it and wake it first
        // — e.g. a buffered store changing which locations its owner's
        // flush can drain carries a `Buffer` marker access that conflicts
        // with the sleeping flush. Debug builds verify the recorded
        // footprint against the current one instead of trusting this.
        #[cfg(debug_assertions)]
        if !self.footprints.is_empty() {
            for (z, fp) in &self.sleep {
                if let Some(i) = options.iter().position(|o| o == z) {
                    debug_assert_eq!(
                        &self.footprints[i], fp,
                        "stale sleeping footprint for {z:?}: a step changed this \
                         decision's transition without waking it (every such step \
                         must conflict with the sleeping entry)"
                    );
                }
            }
        }
        self.live.clear();
        if point.fairness_filtered || self.sleep.is_empty() {
            self.live.extend(0..options.len());
        } else {
            self.live.extend(
                (0..options.len()).filter(|&i| !self.sleep.iter().any(|(z, _)| *z == options[i])),
            );
        }
        !self.live.is_empty()
    }

    /// The sleep set for the child reached by this frame's current edge,
    /// written into `out[..n]` (slots reused, caller truncates):
    /// surviving inherited entries plus already-explored independent
    /// siblings. Writes nothing when this node is fairness-exempt or
    /// footprints were not supplied.
    fn child_sleep_into(&self, options: &[Decision], out: &mut Vec<SleepEntry>, n: &mut usize) {
        if self.fairness_filtered || self.footprints.is_empty() {
            return;
        }
        let taken = self.live[self.cursor];
        let taken_fp = &self.footprints[taken];
        for (z, fp) in &self.sleep {
            if !fp.dependent(taken_fp) {
                set_entry(out, n, *z, fp);
            }
        }
        for &j in &self.live[..self.cursor] {
            if !self.footprints[j].dependent(taken_fp) {
                set_entry(out, n, options[j], &self.footprints[j]);
            }
        }
    }

    /// Allocating wrapper over [`SleepFrame::child_sleep_into`], kept for
    /// the unit tests' convenience.
    #[cfg(test)]
    fn child_sleep(&self, options: &[Decision]) -> Vec<SleepEntry> {
        let mut out = Vec::new();
        let mut n = 0;
        self.child_sleep_into(options, &mut out, &mut n);
        out.truncate(n);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chess_kernel::{Access, AccessKind, ObjectRef, ThreadId};

    fn d(t: usize) -> Decision {
        Decision::run(ThreadId::new(t))
    }

    fn wfp(c: u32) -> Footprint {
        Footprint::from_accesses([Access::new(ObjectRef::Custom("c", c), AccessKind::Write)])
    }

    fn point<'a>(options: &'a [Decision], footprints: &'a [Footprint]) -> SchedulePoint<'a> {
        SchedulePoint {
            depth: 0,
            options,
            footprints,
            prev: None,
            prev_enabled: false,
            prev_schedulable: false,
            fairness_filtered: false,
            flushes: &[],
        }
    }

    #[test]
    fn explored_independent_sibling_sleeps_in_later_branches() {
        // Node with two independent options; after exploring d(0), taking
        // d(1) puts d(0) to sleep in the child.
        let options = [d(0), d(1)];
        let fps = vec![wfp(0), wfp(1)];
        let mut parent =
            SleepFrame::derive(&options, fps, None, None, &point(&options, &[])).unwrap();
        assert_eq!(parent.live, vec![0, 1]);
        parent.cursor = 1; // exploring d(1); d(0) was explored first
        let child = parent.child_sleep(&options);
        assert_eq!(child.len(), 1);
        assert_eq!(child[0].0, d(0));
        // A grandchild whose options include the sleeping d(0) prunes it.
        let g = SleepFrame::derive(
            &options,
            vec![wfp(0), wfp(1)],
            Some(&parent),
            Some(&options),
            &point(&options, &[]),
        )
        .unwrap();
        assert_eq!(g.live, vec![1], "sleeping d(0) must not be explored");
    }

    #[test]
    fn dependent_sibling_does_not_sleep() {
        let options = [d(0), d(1)];
        let fps = vec![wfp(7), wfp(7)]; // same object: dependent
        let mut parent =
            SleepFrame::derive(&options, fps, None, None, &point(&options, &[])).unwrap();
        parent.cursor = 1;
        assert!(parent.child_sleep(&options).is_empty());
    }

    #[test]
    fn dependent_step_wakes_inherited_entry() {
        let options = [d(0), d(1)];
        let mut parent = SleepFrame::derive(
            &options,
            vec![wfp(0), wfp(1)],
            None,
            None,
            &point(&options, &[]),
        )
        .unwrap();
        parent.sleep = vec![(d(2), wfp(1))]; // asleep, footprint on c1
        parent.cursor = 1; // taking d(1), which writes c1: dependent
        let child = parent.child_sleep(&options);
        assert!(
            !child.iter().any(|(z, _)| *z == d(2)),
            "a dependent step must wake the sleeping entry: {child:?}"
        );
        // The explored independent sibling d(0) still enters the set.
        assert!(child.iter().any(|(z, _)| *z == d(0)), "{child:?}");
        parent.cursor = 0; // taking d(0) (writes c0): independent, survives
        let child = parent.child_sleep(&options);
        assert_eq!(child.len(), 1);
        assert_eq!(child[0].0, d(2));
    }

    #[test]
    fn fairness_filtered_node_neither_prunes_nor_propagates() {
        let options = [d(0), d(1)];
        let mut fair_point = point(&options, &[]);
        fair_point.fairness_filtered = true;
        let mut parent =
            SleepFrame::derive(&options, vec![wfp(0), wfp(1)], None, None, &fair_point).unwrap();
        parent.sleep = vec![(d(0), wfp(9))];
        // No pruning: d(0) stays live despite being asleep.
        assert_eq!(parent.live, vec![0, 1]);
        parent.cursor = 1;
        // No propagation either.
        assert!(parent.child_sleep(&options).is_empty());
    }

    #[test]
    fn fully_asleep_node_is_abandoned() {
        let options = [d(0)];
        let mut parent =
            SleepFrame::derive(&options, vec![wfp(0)], None, None, &point(&options, &[])).unwrap();
        parent.sleep = vec![(d(0), wfp(0))];
        // Re-derive a child whose only option is asleep.
        let mut upper = SleepFrame::derive(
            &[d(0), d(1)],
            vec![wfp(6), wfp(6)],
            None,
            None,
            &point(&[d(0), d(1)], &[]),
        )
        .unwrap();
        upper.cursor = 1;
        upper.sleep = vec![(d(0), wfp(0))];
        let child = SleepFrame::derive(
            &options,
            vec![wfp(0)],
            Some(&upper),
            Some(&[d(0), d(1)]),
            &point(&options, &[]),
        );
        // d(0) survives (independent of taken wfp(6)) and covers the only
        // option: the node is pruned entirely.
        assert!(child.is_none());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "stale sleeping footprint")]
    fn stale_sleeping_footprint_is_caught_in_debug_builds() {
        let options = [d(0), d(1)];
        let mut parent = SleepFrame::derive(
            &options,
            vec![wfp(0), wfp(1)],
            None,
            None,
            &point(&options, &[]),
        )
        .unwrap();
        // d(0) explored, now asleep with footprint wfp(0). The child
        // presents a *different* current footprint for the sleeping d(0):
        // some step changed its transition without waking it, which the
        // pruning argument forbids.
        parent.cursor = 1;
        SleepFrame::derive(
            &options,
            vec![wfp(9), wfp(1)],
            Some(&parent),
            Some(&options),
            &point(&options, &[]),
        );
    }

    #[test]
    fn universal_footprints_never_sleep() {
        let options = [d(0), d(1)];
        let mut parent = SleepFrame::derive(
            &options,
            vec![Footprint::universal(), wfp(1)],
            None,
            None,
            &point(&options, &[]),
        )
        .unwrap();
        parent.cursor = 1; // d(0) (universal, e.g. a yield) explored first
        assert!(
            parent.child_sleep(&options).is_empty(),
            "universal (yielding) decisions must never enter a sleep set"
        );
    }
}
