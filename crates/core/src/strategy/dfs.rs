//! Exhaustive depth-first enumeration of the decision tree, optionally
//! with a backtracking *horizon* and a random tail — the configuration
//! the paper uses for its "without fairness, depth bound db" baselines
//! (Table 2: systematic search up to `db`, then random search to the end
//! of the execution) — and optionally with sleep-set partial-order
//! reduction ([`Dfs::with_sleep_sets`], see [`crate::strategy::sleep`]).

use chess_kernel::Footprint;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::strategy::sleep::{Reduction, SleepFrame};
use crate::strategy::{FrameSnapshot, SchedulePoint, Strategy, StrategySnapshot};
use crate::trace::Decision;

#[derive(Debug, Clone, Default)]
struct Frame {
    options: Vec<Decision>,
    sleep: SleepFrame,
    /// Scratch for the exploration-order permutation, kept on the frame
    /// so recycled frames reuse its buffer.
    perm: Vec<usize>,
}

impl Frame {
    /// The decision the current execution takes at this frame.
    fn current(&self) -> Decision {
        self.options[self.sleep.live[self.sleep.cursor]]
    }
}

/// Checks that every frame's index points inside its option set, so a
/// corrupted journal cannot make a restored strategy panic mid-search.
pub(crate) fn validate_frames(stack: &[FrameSnapshot]) -> Result<(), String> {
    for (depth, f) in stack.iter().enumerate() {
        if f.index >= f.options.len() {
            return Err(format!(
                "snapshot frame at depth {depth} has index {} but only {} options",
                f.index,
                f.options.len()
            ));
        }
    }
    Ok(())
}

/// Depth-first search over scheduling decisions.
///
/// Without a horizon this systematically enumerates every schedule (up to
/// the explorer's depth bound). With [`Dfs::with_horizon`]`(db)` it only
/// backtracks over the first `db` decisions and completes each execution
/// with uniformly random decisions, exactly the paper's unfair baseline.
/// With [`Dfs::with_sleep_sets`] it additionally prunes
/// provably-equivalent reorderings of independent transitions (sleep-set
/// partial-order reduction keyed on dependence footprints).
#[derive(Debug, Clone)]
pub struct Dfs {
    stack: Vec<Frame>,
    horizon: Option<usize>,
    rng: SmallRng,
    exhausted: bool,
    prefer_continuation: bool,
    reduction: Reduction,
    /// Popped frames, recycled on push so the steady-state search makes
    /// no per-frame allocations (options, footprints, sleep entries and
    /// their access vectors are all reused in place).
    pool: Vec<Frame>,
}

impl Dfs {
    /// Full depth-first search (backtracks at every depth).
    pub fn new() -> Self {
        Dfs {
            stack: Vec::new(),
            horizon: None,
            rng: SmallRng::seed_from_u64(0x5EED),
            exhausted: false,
            prefer_continuation: false,
            reduction: Reduction::None,
            pool: Vec::new(),
        }
    }

    /// Depth-first search with sleep-set partial-order reduction: prunes
    /// branches that are provably-equivalent reorderings of independent
    /// transitions, leaving every verdict reachable while exploring fewer
    /// executions. Fairness-forced edges are exempt from pruning (see
    /// the `strategy::sleep` module).
    ///
    /// A reduced search does not support checkpointing:
    /// [`Strategy::snapshot`] returns `None`.
    pub fn with_sleep_sets() -> Self {
        Dfs {
            reduction: Reduction::SleepSets,
            ..Dfs::new()
        }
    }

    /// Explores the "continue the previously scheduled thread" decision
    /// first at every point. The search space is unchanged, but
    /// executions reach completion with fewer context switches early on,
    /// which spreads coverage faster on large spaces.
    pub fn prefer_continuation(mut self) -> Self {
        self.prefer_continuation = true;
        self
    }

    /// Depth-first search that backtracks only over the first `db`
    /// decisions; beyond the horizon, decisions are uniformly random
    /// (deterministically seeded).
    pub fn with_horizon(db: usize) -> Self {
        Dfs {
            horizon: Some(db),
            ..Dfs::new()
        }
    }

    /// Overrides the seed of the random tail.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = SmallRng::seed_from_u64(seed);
        self
    }

    /// The active partial-order reduction.
    pub fn reduction(&self) -> Reduction {
        self.reduction
    }

    /// The deterministic exploration ordering of a point's options, with
    /// footprints permuted in lockstep (footprints are empty when the
    /// point carries none). Used only by the replay determinism check;
    /// the hot path fills a recycled frame via [`ordered_into`].
    fn ordered(&self, point: &SchedulePoint<'_>) -> (Vec<Decision>, Vec<Footprint>) {
        let mut perm = Vec::new();
        let mut options = Vec::new();
        let mut footprints = Vec::new();
        ordered_into(
            point,
            self.prefer_continuation,
            &mut perm,
            &mut options,
            &mut footprints,
        );
        (options, footprints)
    }
}

/// Fills `options`/`footprints` with the deterministic exploration
/// ordering of a point's options, reusing the buffers (and each
/// footprint slot's allocations) in place. `footprints` ends up empty
/// when the point carries none.
fn ordered_into(
    point: &SchedulePoint<'_>,
    prefer_continuation: bool,
    perm: &mut Vec<usize>,
    options: &mut Vec<Decision>,
    footprints: &mut Vec<Footprint>,
) {
    perm.clear();
    perm.extend(0..point.options.len());
    if let Some(p) = point.prev {
        if prefer_continuation {
            perm.sort_by_key(|&i| {
                let d = point.options[i];
                (d.thread != p, d.thread.index(), d.choice)
            });
        }
    }
    options.clear();
    options.extend(perm.iter().map(|&i| point.options[i]));
    let mut n = 0;
    if !point.footprints.is_empty() {
        for &i in perm.iter() {
            crate::strategy::sleep::set_footprint(footprints, &mut n, &point.footprints[i]);
        }
    }
    footprints.truncate(n);
}

impl Default for Dfs {
    fn default() -> Self {
        Dfs::new()
    }
}

impl Strategy for Dfs {
    fn pick(&mut self, point: &SchedulePoint<'_>) -> Option<Decision> {
        debug_assert!(!point.options.is_empty());
        if let Some(db) = self.horizon {
            if point.depth >= db {
                let i = self.rng.gen_range(0..point.options.len());
                return Some(point.options[i]);
            }
        }
        if point.depth < self.stack.len() {
            // Replay of the committed prefix. Deterministic re-execution
            // must reproduce the very same option set.
            let f = &self.stack[point.depth];
            debug_assert_eq!(
                f.options,
                self.ordered(point).0,
                "nondeterministic replay at depth {}",
                point.depth
            );
            Some(f.current())
        } else {
            debug_assert_eq!(point.depth, self.stack.len());
            let mut frame = self.pool.pop().unwrap_or_default();
            ordered_into(
                point,
                self.prefer_continuation,
                &mut frame.perm,
                &mut frame.options,
                &mut frame.sleep.footprints,
            );
            let alive = if self.reduction.is_on() {
                let parent = self.stack.last();
                frame.sleep.rederive(
                    &frame.options,
                    parent.map(|f| (&f.sleep, f.options.as_slice())),
                    point,
                )
            } else {
                frame.sleep.make_inert(frame.options.len());
                true
            };
            if !alive {
                // Every option is asleep — the node is covered by an
                // equivalent reordering explored elsewhere. Abandon
                // without pushing a frame; on_execution_end backtracks
                // the parent.
                self.pool.push(frame);
                return None;
            }
            let first = frame.current();
            self.stack.push(frame);
            Some(first)
        }
    }

    fn on_execution_end(&mut self) -> bool {
        while let Some(last) = self.stack.last_mut() {
            last.sleep.cursor += 1;
            if last.sleep.cursor < last.sleep.live.len() {
                return true;
            }
            let frame = self.stack.pop().expect("last_mut saw a frame");
            self.pool.push(frame);
        }
        self.exhausted = true;
        false
    }

    fn name(&self) -> String {
        let base = match self.reduction {
            Reduction::None => "dfs".to_string(),
            Reduction::SleepSets => "dfs+sleep".to_string(),
        };
        match self.horizon {
            Some(db) => format!("{base}(db={db})"),
            None => base,
        }
    }

    fn wants_footprints(&self) -> bool {
        self.reduction.is_on()
    }

    fn snapshot(&self) -> Option<StrategySnapshot> {
        if self.reduction.is_on() {
            // Sleep state (footprints, live permutations) is not part of
            // the serialized snapshot schema; a reduced search is not
            // checkpointable.
            return None;
        }
        Some(StrategySnapshot::Dfs {
            stack: self
                .stack
                .iter()
                .map(|f| FrameSnapshot {
                    options: f.options.clone(),
                    index: f.sleep.live[f.sleep.cursor],
                })
                .collect(),
            horizon: self.horizon,
            rng: self.rng.state(),
            prefer_continuation: self.prefer_continuation,
        })
    }

    fn restore(&mut self, snapshot: &StrategySnapshot) -> Result<(), String> {
        if self.reduction.is_on() {
            return Err("a sleep-set reduced search cannot be resumed from a snapshot".to_string());
        }
        let StrategySnapshot::Dfs {
            stack,
            horizon,
            rng,
            prefer_continuation,
        } = snapshot
        else {
            return Err(format!(
                "cannot restore a '{}' snapshot into a dfs strategy",
                snapshot.kind()
            ));
        };
        validate_frames(stack)?;
        self.stack = stack
            .iter()
            .map(|f| {
                let mut sleep = SleepFrame::inert(f.options.len());
                sleep.cursor = f.index;
                Frame {
                    options: f.options.clone(),
                    sleep,
                    perm: Vec::new(),
                }
            })
            .collect();
        self.horizon = *horizon;
        self.rng = SmallRng::from_state(*rng);
        self.exhausted = false;
        self.prefer_continuation = *prefer_continuation;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chess_kernel::{Access, AccessKind, ObjectRef, ThreadId};

    fn d(t: usize) -> Decision {
        Decision::run(ThreadId::new(t))
    }

    fn point<'a>(depth: usize, options: &'a [Decision]) -> SchedulePoint<'a> {
        SchedulePoint {
            depth,
            options,
            footprints: &[],
            prev: None,
            prev_enabled: false,
            prev_schedulable: false,
            fairness_filtered: false,
            flushes: &[],
        }
    }

    /// Enumerate all leaves of a fixed 2x2 decision tree.
    #[test]
    fn enumerates_full_tree() {
        let mut dfs = Dfs::new();
        let opts = [d(0), d(1)];
        let mut leaves = Vec::new();
        loop {
            let a = dfs.pick(&point(0, &opts)).unwrap();
            let b = dfs.pick(&point(1, &opts)).unwrap();
            leaves.push((a.thread.index(), b.thread.index()));
            if !dfs.on_execution_end() {
                break;
            }
        }
        assert_eq!(leaves, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn variable_width_tree() {
        let mut dfs = Dfs::new();
        let wide = [d(0), d(1), d(2)];
        let narrow = [d(0)];
        let mut count = 0;
        loop {
            let a = dfs.pick(&point(0, &wide)).unwrap();
            // Depth-1 options depend on the first decision in real
            // programs; emulate with a narrow set on branch 1.
            if a.thread.index() == 1 {
                dfs.pick(&point(1, &narrow)).unwrap();
            } else {
                dfs.pick(&point(1, &wide)).unwrap();
            }
            count += 1;
            if !dfs.on_execution_end() {
                break;
            }
        }
        assert_eq!(count, 3 + 1 + 3);
    }

    #[test]
    fn horizon_randomizes_tail_without_backtracking() {
        let mut dfs = Dfs::with_horizon(1).with_seed(42);
        let opts = [d(0), d(1)];
        let mut first_decisions = Vec::new();
        loop {
            let a = dfs.pick(&point(0, &opts)).unwrap();
            // Beyond the horizon: random, not recorded.
            let _ = dfs.pick(&point(1, &opts)).unwrap();
            let _ = dfs.pick(&point(2, &opts)).unwrap();
            first_decisions.push(a.thread.index());
            if !dfs.on_execution_end() {
                break;
            }
        }
        // Only the depth-0 decision is enumerated: two executions.
        assert_eq!(first_decisions, vec![0, 1]);
    }

    #[test]
    fn exhausted_after_single_option_tree() {
        let mut dfs = Dfs::new();
        let only = [d(0)];
        dfs.pick(&point(0, &only)).unwrap();
        assert!(!dfs.on_execution_end());
    }

    #[test]
    fn prefer_continuation_reorders_but_keeps_the_tree() {
        // Same leaves, different order: the continuation branch first.
        let mut dfs = Dfs::new().prefer_continuation();
        let opts = [d(0), d(1)];
        let mut leaves = Vec::new();
        loop {
            let a = dfs.pick(&point(0, &opts)).unwrap();
            let p1 = SchedulePoint {
                depth: 1,
                options: &opts,
                footprints: &[],
                prev: Some(a.thread),
                prev_enabled: true,
                prev_schedulable: true,
                fairness_filtered: false,
                flushes: &[],
            };
            let b = dfs.pick(&p1).unwrap();
            leaves.push((a.thread.index(), b.thread.index()));
            if !dfs.on_execution_end() {
                break;
            }
        }
        leaves.sort();
        assert_eq!(leaves, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn name_reports_horizon() {
        assert_eq!(Dfs::new().name(), "dfs");
        assert_eq!(Dfs::with_horizon(20).name(), "dfs(db=20)");
        assert_eq!(Dfs::with_sleep_sets().name(), "dfs+sleep");
    }

    fn wfp(c: u32) -> Footprint {
        Footprint::from_accesses([Access::new(ObjectRef::Custom("c", c), AccessKind::Write)])
    }

    fn fpoint<'a>(
        depth: usize,
        options: &'a [Decision],
        footprints: &'a [Footprint],
    ) -> SchedulePoint<'a> {
        SchedulePoint {
            depth,
            options,
            footprints,
            prev: None,
            prev_enabled: false,
            prev_schedulable: false,
            fairness_filtered: false,
            flushes: &[],
        }
    }

    /// Two independent threads over a 2-step tree: unreduced DFS explores
    /// both orders, sleep-set DFS prunes the second (equivalent) one.
    #[test]
    fn sleep_sets_prune_commuting_interleavings() {
        let mut dfs = Dfs::with_sleep_sets();
        assert!(dfs.wants_footprints());
        let opts = [d(0), d(1)];
        let fps = [wfp(0), wfp(1)]; // distinct objects: independent
        let mut leaves = Vec::new();
        let mut abandoned = 0;
        loop {
            let Some(a) = dfs.pick(&fpoint(0, &opts, &fps)) else {
                abandoned += 1;
                if !dfs.on_execution_end() {
                    break;
                }
                continue;
            };
            // After the first step only the other thread remains.
            let rest = [d(1 - a.thread.index())];
            let rest_fps = [wfp(1 - a.thread.index() as u32)];
            match dfs.pick(&fpoint(1, &rest, &rest_fps)) {
                Some(b) => leaves.push((a.thread.index(), b.thread.index())),
                None => abandoned += 1,
            }
            if !dfs.on_execution_end() {
                break;
            }
        }
        // (0,1) explored; (1,0) is its equivalent reordering: pruned.
        assert_eq!(leaves, vec![(0, 1)]);
        assert_eq!(abandoned, 1, "the pruned branch abandons one execution");
    }

    /// Dependent transitions (same object) must still be explored in both
    /// orders.
    #[test]
    fn sleep_sets_keep_dependent_interleavings() {
        let mut dfs = Dfs::with_sleep_sets();
        let opts = [d(0), d(1)];
        let fps = [wfp(7), wfp(7)]; // same object: dependent
        let mut leaves = Vec::new();
        loop {
            let Some(a) = dfs.pick(&fpoint(0, &opts, &fps)) else {
                panic!("dependent branches must not be pruned");
            };
            let rest = [d(1 - a.thread.index())];
            let rest_fps = [wfp(7)];
            let b = dfs.pick(&fpoint(1, &rest, &rest_fps)).unwrap();
            leaves.push((a.thread.index(), b.thread.index()));
            if !dfs.on_execution_end() {
                break;
            }
        }
        assert_eq!(leaves, vec![(0, 1), (1, 0)]);
    }

    /// At a fairness-filtered point, pruning is disabled: both orders of
    /// an independent pair stay explorable.
    #[test]
    fn fairness_filtered_points_are_exempt_from_pruning() {
        let mut dfs = Dfs::with_sleep_sets();
        let opts = [d(0), d(1)];
        let fps = [wfp(0), wfp(1)];
        let mut fair0 = fpoint(0, &opts, &fps);
        fair0.fairness_filtered = true;
        let mut leaves = Vec::new();
        loop {
            let a = dfs.pick(&fair0).expect("no pruning at fairness points");
            let rest = [d(1 - a.thread.index())];
            let rest_fps = [wfp(1 - a.thread.index() as u32)];
            let b = dfs
                .pick(&fpoint(1, &rest, &rest_fps))
                .expect("children of fairness points inherit no sleep");
            leaves.push((a.thread.index(), b.thread.index()));
            if !dfs.on_execution_end() {
                break;
            }
        }
        assert_eq!(leaves, vec![(0, 1), (1, 0)]);
    }

    /// Without footprints supplied, a reduced DFS degenerates to the full
    /// enumeration (everything treated as universal).
    #[test]
    fn missing_footprints_disable_pruning() {
        let mut dfs = Dfs::with_sleep_sets();
        let opts = [d(0), d(1)];
        let mut count = 0;
        loop {
            dfs.pick(&point(0, &opts)).unwrap();
            dfs.pick(&point(1, &opts)).unwrap();
            count += 1;
            if !dfs.on_execution_end() {
                break;
            }
        }
        assert_eq!(count, 4);
    }

    #[test]
    fn reduced_search_is_not_checkpointable() {
        let mut dfs = Dfs::with_sleep_sets();
        assert!(dfs.snapshot().is_none());
        let plain = Dfs::new().snapshot().unwrap();
        assert!(dfs.restore(&plain).is_err());
    }
}
