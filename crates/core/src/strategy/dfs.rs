//! Exhaustive depth-first enumeration of the decision tree, optionally
//! with a backtracking *horizon* and a random tail — the configuration
//! the paper uses for its "without fairness, depth bound db" baselines
//! (Table 2: systematic search up to `db`, then random search to the end
//! of the execution).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::strategy::{FrameSnapshot, SchedulePoint, Strategy, StrategySnapshot};
use crate::trace::Decision;

#[derive(Debug, Clone)]
struct Frame {
    options: Vec<Decision>,
    index: usize,
}

/// Checks that every frame's index points inside its option set, so a
/// corrupted journal cannot make a restored strategy panic mid-search.
pub(crate) fn validate_frames(stack: &[FrameSnapshot]) -> Result<(), String> {
    for (depth, f) in stack.iter().enumerate() {
        if f.index >= f.options.len() {
            return Err(format!(
                "snapshot frame at depth {depth} has index {} but only {} options",
                f.index,
                f.options.len()
            ));
        }
    }
    Ok(())
}

/// Depth-first search over scheduling decisions.
///
/// Without a horizon this systematically enumerates every schedule (up to
/// the explorer's depth bound). With [`Dfs::with_horizon`]`(db)` it only
/// backtracks over the first `db` decisions and completes each execution
/// with uniformly random decisions, exactly the paper's unfair baseline.
#[derive(Debug, Clone)]
pub struct Dfs {
    stack: Vec<Frame>,
    horizon: Option<usize>,
    rng: SmallRng,
    exhausted: bool,
    prefer_continuation: bool,
}

impl Dfs {
    /// Full depth-first search (backtracks at every depth).
    pub fn new() -> Self {
        Dfs {
            stack: Vec::new(),
            horizon: None,
            rng: SmallRng::seed_from_u64(0x5EED),
            exhausted: false,
            prefer_continuation: false,
        }
    }

    /// Explores the "continue the previously scheduled thread" decision
    /// first at every point. The search space is unchanged, but
    /// executions reach completion with fewer context switches early on,
    /// which spreads coverage faster on large spaces.
    pub fn prefer_continuation(mut self) -> Self {
        self.prefer_continuation = true;
        self
    }

    /// Depth-first search that backtracks only over the first `db`
    /// decisions; beyond the horizon, decisions are uniformly random
    /// (deterministically seeded).
    pub fn with_horizon(db: usize) -> Self {
        Dfs {
            horizon: Some(db),
            ..Dfs::new()
        }
    }

    /// Overrides the seed of the random tail.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = SmallRng::seed_from_u64(seed);
        self
    }
}

impl Default for Dfs {
    fn default() -> Self {
        Dfs::new()
    }
}

impl Strategy for Dfs {
    fn pick(&mut self, point: &SchedulePoint<'_>) -> Option<Decision> {
        debug_assert!(!point.options.is_empty());
        if let Some(db) = self.horizon {
            if point.depth >= db {
                let i = self.rng.gen_range(0..point.options.len());
                return Some(point.options[i]);
            }
        }
        let ordered = |options: &[Decision]| -> Vec<Decision> {
            if !self.prefer_continuation {
                return options.to_vec();
            }
            let mut v: Vec<Decision> = options.to_vec();
            if let Some(p) = point.prev {
                v.sort_by_key(|d| (d.thread != p, d.thread.index(), d.choice));
            }
            v
        };
        if point.depth < self.stack.len() {
            // Replay of the committed prefix. Deterministic re-execution
            // must reproduce the very same option set.
            let f = &self.stack[point.depth];
            debug_assert_eq!(
                f.options,
                ordered(point.options),
                "nondeterministic replay at depth {}",
                point.depth
            );
            Some(f.options[f.index])
        } else {
            debug_assert_eq!(point.depth, self.stack.len());
            let options = ordered(point.options);
            let first = options[0];
            self.stack.push(Frame { options, index: 0 });
            Some(first)
        }
    }

    fn on_execution_end(&mut self) -> bool {
        while let Some(last) = self.stack.last_mut() {
            last.index += 1;
            if last.index < last.options.len() {
                return true;
            }
            self.stack.pop();
        }
        self.exhausted = true;
        false
    }

    fn name(&self) -> String {
        match self.horizon {
            Some(db) => format!("dfs(db={db})"),
            None => "dfs".to_string(),
        }
    }

    fn snapshot(&self) -> Option<StrategySnapshot> {
        Some(StrategySnapshot::Dfs {
            stack: self
                .stack
                .iter()
                .map(|f| FrameSnapshot {
                    options: f.options.clone(),
                    index: f.index,
                })
                .collect(),
            horizon: self.horizon,
            rng: self.rng.state(),
            prefer_continuation: self.prefer_continuation,
        })
    }

    fn restore(&mut self, snapshot: &StrategySnapshot) -> Result<(), String> {
        let StrategySnapshot::Dfs {
            stack,
            horizon,
            rng,
            prefer_continuation,
        } = snapshot
        else {
            return Err(format!(
                "cannot restore a '{}' snapshot into a dfs strategy",
                snapshot.kind()
            ));
        };
        validate_frames(stack)?;
        self.stack = stack
            .iter()
            .map(|f| Frame {
                options: f.options.clone(),
                index: f.index,
            })
            .collect();
        self.horizon = *horizon;
        self.rng = SmallRng::from_state(*rng);
        self.exhausted = false;
        self.prefer_continuation = *prefer_continuation;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chess_kernel::ThreadId;

    fn d(t: usize) -> Decision {
        Decision::run(ThreadId::new(t))
    }

    fn point<'a>(depth: usize, options: &'a [Decision]) -> SchedulePoint<'a> {
        SchedulePoint {
            depth,
            options,
            prev: None,
            prev_enabled: false,
            prev_schedulable: false,
        }
    }

    /// Enumerate all leaves of a fixed 2x2 decision tree.
    #[test]
    fn enumerates_full_tree() {
        let mut dfs = Dfs::new();
        let opts = [d(0), d(1)];
        let mut leaves = Vec::new();
        loop {
            let a = dfs.pick(&point(0, &opts)).unwrap();
            let b = dfs.pick(&point(1, &opts)).unwrap();
            leaves.push((a.thread.index(), b.thread.index()));
            if !dfs.on_execution_end() {
                break;
            }
        }
        assert_eq!(leaves, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn variable_width_tree() {
        let mut dfs = Dfs::new();
        let wide = [d(0), d(1), d(2)];
        let narrow = [d(0)];
        let mut count = 0;
        loop {
            let a = dfs.pick(&point(0, &wide)).unwrap();
            // Depth-1 options depend on the first decision in real
            // programs; emulate with a narrow set on branch 1.
            if a.thread.index() == 1 {
                dfs.pick(&point(1, &narrow)).unwrap();
            } else {
                dfs.pick(&point(1, &wide)).unwrap();
            }
            count += 1;
            if !dfs.on_execution_end() {
                break;
            }
        }
        assert_eq!(count, 3 + 1 + 3);
    }

    #[test]
    fn horizon_randomizes_tail_without_backtracking() {
        let mut dfs = Dfs::with_horizon(1).with_seed(42);
        let opts = [d(0), d(1)];
        let mut first_decisions = Vec::new();
        loop {
            let a = dfs.pick(&point(0, &opts)).unwrap();
            // Beyond the horizon: random, not recorded.
            let _ = dfs.pick(&point(1, &opts)).unwrap();
            let _ = dfs.pick(&point(2, &opts)).unwrap();
            first_decisions.push(a.thread.index());
            if !dfs.on_execution_end() {
                break;
            }
        }
        // Only the depth-0 decision is enumerated: two executions.
        assert_eq!(first_decisions, vec![0, 1]);
    }

    #[test]
    fn exhausted_after_single_option_tree() {
        let mut dfs = Dfs::new();
        let only = [d(0)];
        dfs.pick(&point(0, &only)).unwrap();
        assert!(!dfs.on_execution_end());
    }

    #[test]
    fn prefer_continuation_reorders_but_keeps_the_tree() {
        // Same leaves, different order: the continuation branch first.
        let mut dfs = Dfs::new().prefer_continuation();
        let opts = [d(0), d(1)];
        let mut leaves = Vec::new();
        loop {
            let a = dfs.pick(&point(0, &opts)).unwrap();
            let p1 = SchedulePoint {
                depth: 1,
                options: &opts,
                prev: Some(a.thread),
                prev_enabled: true,
                prev_schedulable: true,
            };
            let b = dfs.pick(&p1).unwrap();
            leaves.push((a.thread.index(), b.thread.index()));
            if !dfs.on_execution_end() {
                break;
            }
        }
        leaves.sort();
        assert_eq!(leaves, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn name_reports_horizon() {
        assert_eq!(Dfs::new().name(), "dfs");
        assert_eq!(Dfs::with_horizon(20).name(), "dfs(db=20)");
    }
}
