//! Pure random scheduling, the baseline `random search` of the paper's
//! evaluation [17] and a cheap way to smoke-test large programs.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::strategy::{SchedulePoint, Strategy, StrategySnapshot};
use crate::trace::Decision;

/// Uniformly random decisions; executions are enumerated until the
/// explorer's execution or time budget runs out.
#[derive(Debug, Clone)]
pub struct RandomWalk {
    rng: SmallRng,
    seed: u64,
}

impl RandomWalk {
    /// A random walk with the given seed (searches are reproducible).
    pub fn new(seed: u64) -> Self {
        RandomWalk {
            rng: SmallRng::seed_from_u64(seed),
            seed,
        }
    }
}

impl Strategy for RandomWalk {
    fn pick(&mut self, point: &SchedulePoint<'_>) -> Option<Decision> {
        debug_assert!(!point.options.is_empty());
        Some(point.options[self.rng.gen_range(0..point.options.len())])
    }

    fn on_execution_end(&mut self) -> bool {
        // The explorer's budgets (executions / time) terminate the search.
        true
    }

    fn name(&self) -> String {
        format!("random(seed={})", self.seed)
    }

    fn snapshot(&self) -> Option<StrategySnapshot> {
        Some(StrategySnapshot::Random {
            seed: self.seed,
            rng: self.rng.state(),
        })
    }

    fn restore(&mut self, snapshot: &StrategySnapshot) -> Result<(), String> {
        let StrategySnapshot::Random { seed, rng } = snapshot else {
            return Err(format!(
                "cannot restore a '{}' snapshot into a random walk",
                snapshot.kind()
            ));
        };
        self.seed = *seed;
        self.rng = SmallRng::from_state(*rng);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chess_kernel::ThreadId;

    #[test]
    fn picks_are_reproducible_per_seed() {
        let opts: Vec<Decision> = (0..4).map(|i| Decision::run(ThreadId::new(i))).collect();
        let point = SchedulePoint {
            depth: 0,
            options: &opts,
            footprints: &[],
            prev: None,
            prev_enabled: false,
            prev_schedulable: false,
            fairness_filtered: false,
            flushes: &[],
        };
        let picks = |seed| {
            let mut r = RandomWalk::new(seed);
            (0..16)
                .map(|_| r.pick(&point).unwrap().thread.index())
                .collect::<Vec<_>>()
        };
        assert_eq!(picks(7), picks(7));
        assert_ne!(picks(7), picks(8));
    }

    #[test]
    fn never_ends_on_its_own() {
        let mut r = RandomWalk::new(1);
        for _ in 0..8 {
            assert!(r.on_execution_end());
        }
    }
}
