//! ddmin-style schedule minimization.
//!
//! A counterexample schedule found by search — especially by a random
//! walk — usually contains many transitions irrelevant to the failure.
//! [`minimize_schedule`] shrinks it with delta debugging (Zeller &
//! Hildebrandt's ddmin): repeatedly remove chunks of decisions, keep a
//! candidate whenever replaying it through [`FixedSchedule`] still
//! reproduces the *same kind* of outcome, and halve the chunk size when
//! no removal helps. The result is 1-minimal — removing any single
//! decision changes or destroys the outcome — which also makes
//! minimization idempotent.
//!
//! Replay is conservative: `FixedSchedule` abandons an execution the
//! moment a recorded decision is unavailable (disabled, fairness-blocked
//! or out of branching range), so a candidate only counts as reproducing
//! when the truncated schedule genuinely drives the program back into
//! the same class of failure.

use crate::explore::Config;
use crate::report::{DivergenceKind, SearchOutcome};
use crate::strategy::FixedSchedule;
use crate::system::TransitionSystem;
use crate::trace::Schedule;
use crate::Explorer;

/// The kind-level classification of a search outcome, used as the
/// preservation predicate during minimization: a shrunk schedule must
/// reproduce the same kind, not the byte-identical outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeKind {
    /// A safety violation ([`SearchOutcome::SafetyViolation`]).
    Safety,
    /// A deadlock ([`SearchOutcome::Deadlock`]).
    Deadlock,
    /// A workload panic ([`SearchOutcome::Panic`]).
    Panic,
    /// A definite livelock ([`DivergenceKind::FairCycle`]).
    FairCycle,
    /// A definite good-samaritan violation ([`DivergenceKind::UnfairCycle`]).
    UnfairCycle,
    /// A good-samaritan suspect ([`DivergenceKind::GoodSamaritanSuspect`]).
    GoodSamaritanSuspect,
    /// A livelock suspect ([`DivergenceKind::LivelockSuspect`]).
    LivelockSuspect,
}

impl OutcomeKind {
    /// Classifies an outcome; `None` for non-error outcomes.
    pub fn of(outcome: &SearchOutcome) -> Option<OutcomeKind> {
        match outcome {
            SearchOutcome::SafetyViolation(_) => Some(OutcomeKind::Safety),
            SearchOutcome::Deadlock(_) => Some(OutcomeKind::Deadlock),
            SearchOutcome::Panic(_) => Some(OutcomeKind::Panic),
            SearchOutcome::Divergence(d) => Some(match d.kind {
                DivergenceKind::FairCycle { .. } => OutcomeKind::FairCycle,
                DivergenceKind::UnfairCycle { .. } => OutcomeKind::UnfairCycle,
                DivergenceKind::GoodSamaritanSuspect { .. } => OutcomeKind::GoodSamaritanSuspect,
                DivergenceKind::LivelockSuspect => OutcomeKind::LivelockSuspect,
            }),
            SearchOutcome::Complete | SearchOutcome::BudgetExhausted(_) => None,
        }
    }

    /// A stable, file-name-friendly identifier of the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            OutcomeKind::Safety => "safety",
            OutcomeKind::Deadlock => "deadlock",
            OutcomeKind::Panic => "panic",
            OutcomeKind::FairCycle => "fair-cycle",
            OutcomeKind::UnfairCycle => "unfair-cycle",
            OutcomeKind::GoodSamaritanSuspect => "gs-suspect",
            OutcomeKind::LivelockSuspect => "livelock-suspect",
        }
    }

    /// Parses the identifier produced by [`OutcomeKind::as_str`].
    pub fn parse(s: &str) -> Option<OutcomeKind> {
        Some(match s {
            "safety" => OutcomeKind::Safety,
            "deadlock" => OutcomeKind::Deadlock,
            "panic" => OutcomeKind::Panic,
            "fair-cycle" => OutcomeKind::FairCycle,
            "unfair-cycle" => OutcomeKind::UnfairCycle,
            "gs-suspect" => OutcomeKind::GoodSamaritanSuspect,
            "livelock-suspect" => OutcomeKind::LivelockSuspect,
            _ => return None,
        })
    }
}

/// Replays `schedule` through [`FixedSchedule`] under `config` and
/// returns whether the outcome has the given kind.
pub fn reproduces<P, F>(
    mut factory: F,
    config: &Config,
    schedule: &Schedule,
    kind: OutcomeKind,
) -> bool
where
    P: TransitionSystem,
    F: FnMut() -> P,
{
    let report = Explorer::new(
        &mut factory,
        FixedSchedule::new(schedule.clone()),
        config.clone(),
    )
    .run();
    OutcomeKind::of(&report.outcome) == Some(kind)
}

/// Shrinks `schedule` with ddmin while it keeps reproducing an outcome
/// of the given kind under `config`.
///
/// Returns the schedule unchanged if it does not reproduce the kind in
/// the first place (a caller bug, but a safe one). The result always
/// reproduces the kind and is 1-minimal: a second call returns it
/// unchanged.
pub fn minimize_schedule<P, F>(
    mut factory: F,
    config: &Config,
    schedule: &Schedule,
    kind: OutcomeKind,
) -> Schedule
where
    P: TransitionSystem,
    F: FnMut() -> P,
{
    let mut current = schedule.clone();
    if !reproduces(&mut factory, config, &current, kind) {
        return current;
    }
    let mut granularity = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(granularity);
        let mut reduced = false;
        let mut start = 0usize;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            if reproduces(&mut factory, config, &candidate, kind) {
                current = candidate;
                granularity = granularity.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if granularity >= current.len() {
                break;
            }
            granularity = (granularity * 2).min(current.len());
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::{generate_system, FuzzConfig};
    use crate::strategy::RandomWalk;
    use crate::Explorer;

    fn injected(kind: &str, seed: u64) -> FuzzConfig {
        FuzzConfig {
            inject_safety: kind == "safety",
            inject_deadlock: kind == "deadlock",
            inject_livelock: kind == "livelock",
            yield_percent: 100,
            ..FuzzConfig::default().with_seed(seed)
        }
    }

    /// Finds a (usually long) counterexample with a random walk and
    /// checks the minimizer's three contracts: same kind, idempotence,
    /// and a ≥2x shrink for the injected bug.
    #[test]
    fn minimizes_random_walk_safety_counterexample() {
        let cfg = injected("safety", 5);
        let factory = || generate_system(&cfg);
        let config = Config::fair();
        let mut walk_seed = 1;
        let (schedule, kind) = loop {
            let report = Explorer::new(factory, RandomWalk::new(walk_seed), config.clone()).run();
            if let SearchOutcome::SafetyViolation(c) = report.outcome {
                break (c.schedule, OutcomeKind::Safety);
            }
            walk_seed += 1;
            assert!(walk_seed < 50, "no violation found by random walks");
        };
        let min = minimize_schedule(factory, &config, &schedule, kind);
        assert!(reproduces(factory, &config, &min, kind));
        assert!(
            min.len() * 2 <= schedule.len(),
            "minimized {} of {} decisions",
            min.len(),
            schedule.len()
        );
        let again = minimize_schedule(factory, &config, &min, kind);
        assert_eq!(again, min, "minimization is idempotent");
    }

    #[test]
    fn preserves_deadlock_kind() {
        let cfg = injected("deadlock", 9);
        let factory = || generate_system(&cfg);
        let config = Config::fair();
        let report = Explorer::new(factory, crate::strategy::Dfs::new(), config.clone()).run();
        let SearchOutcome::Deadlock(c) = &report.outcome else {
            panic!("expected deadlock, got {:?}", report.outcome);
        };
        let min = minimize_schedule(factory, &config, &c.schedule, OutcomeKind::Deadlock);
        assert!(min.len() <= c.schedule.len());
        assert!(reproduces(factory, &config, &min, OutcomeKind::Deadlock));
    }

    #[test]
    fn non_reproducing_schedule_returned_unchanged() {
        let cfg = FuzzConfig::default().with_seed(2);
        let factory = || generate_system(&cfg);
        let config = Config::fair();
        let schedule = Vec::new();
        let out = minimize_schedule(factory, &config, &schedule, OutcomeKind::Safety);
        assert_eq!(out, schedule);
    }

    #[test]
    fn kind_strings_round_trip() {
        for k in [
            OutcomeKind::Safety,
            OutcomeKind::Deadlock,
            OutcomeKind::Panic,
            OutcomeKind::FairCycle,
            OutcomeKind::UnfairCycle,
            OutcomeKind::GoodSamaritanSuspect,
            OutcomeKind::LivelockSuspect,
        ] {
            assert_eq!(OutcomeKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(OutcomeKind::parse("nope"), None);
    }
}
