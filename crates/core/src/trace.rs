//! Schedules, decisions and counterexamples.
//!
//! A stateless model checker's only persistent artifact is the *schedule*:
//! the sequence of scheduling (and data) decisions that reproduces an
//! execution from the initial state. Counterexamples carry a schedule and
//! can be re-rendered into a human-readable trace by deterministic replay.

use std::fmt;

use chess_kernel::ThreadId;

use crate::system::{SystemStatus, TransitionSystem};

/// One scheduling decision: which thread to run, and which branch of its
/// (possible) data choice to take.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Decision {
    /// The scheduled thread.
    pub thread: ThreadId,
    /// The selected branch of a `Choose` transition (0 otherwise).
    pub choice: u32,
}

impl Decision {
    /// A decision with no data choice.
    pub fn run(thread: ThreadId) -> Self {
        Decision { thread, choice: 0 }
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.choice == 0 {
            write!(f, "{}", self.thread)
        } else {
            write!(f, "{}#{}", self.thread, self.choice)
        }
    }
}

/// A complete replayable schedule.
pub type Schedule = Vec<Decision>;

/// Why an execution was flagged as erroneous.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterexampleKind {
    /// A guest assertion failed or a kernel object was misused.
    Safety,
    /// No thread was enabled while some had not finished.
    Deadlock,
    /// The program panicked during a transition. Treated as a safety
    /// violation: the final decision of the schedule re-triggers the
    /// panic on replay.
    Panic,
}

/// A reproducible erroneous execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// The classification of the error.
    pub kind: CounterexampleKind,
    /// Human-readable description of the error.
    pub message: String,
    /// The schedule reproducing the error from the initial state.
    pub schedule: Schedule,
    /// The execution (1-based) in which the error was found.
    pub execution: u64,
}

impl Counterexample {
    /// Replays the counterexample on a fresh program instance and renders
    /// a step-by-step trace.
    ///
    /// The factory must produce the same program the search ran on;
    /// stateless model checking relies on deterministic re-execution.
    pub fn render<P, F>(&self, mut factory: F) -> String
    where
        P: TransitionSystem,
        F: FnMut() -> P,
    {
        let mut sys = factory();
        let mut out = String::new();
        out.push_str(&format!(
            "{} ({} steps): {}\n",
            match self.kind {
                CounterexampleKind::Safety => "safety violation",
                CounterexampleKind::Deadlock => "deadlock",
                CounterexampleKind::Panic => "panic",
            },
            self.schedule.len(),
            self.message
        ));
        for (i, d) in self.schedule.iter().enumerate() {
            let name = sys.thread_name(d.thread);
            let op = sys.describe_op(d.thread);
            let choice = if sys.branching(d.thread) > 1 {
                format!(" [branch {}]", d.choice)
            } else {
                String::new()
            };
            // Pre-step footprint: names the sync object the transition is
            // about to touch, so a reader can follow the dependence chain
            // that makes the interleaving matter.
            let touches = match sys.footprint(d.thread).describe() {
                Some(fp) => format!("  [{fp}]"),
                None => String::new(),
            };
            out.push_str(&format!("{i:5}  {name:<16} {op}{choice}{touches}\n"));
            if let Err(msg) = crate::panics::catch_silent(|| sys.step(d.thread, d.choice)) {
                out.push_str(&format!("  =>  panic in {name}: {msg}\n"));
                return out;
            }
        }
        match sys.status() {
            SystemStatus::Violation(t, msg) => {
                out.push_str(&format!("  =>  violation in {t}: {msg}\n"));
            }
            SystemStatus::Deadlock => out.push_str("  =>  deadlock\n"),
            s => out.push_str(&format!("  =>  {s:?}\n")),
        }
        out
    }
}

/// Replays a schedule on a system, stopping early if the program stops
/// running. Returns the final status.
///
/// This is the `NextState`-composition the paper relies on for
/// reproducing executions without storing states.
pub fn replay<P: TransitionSystem>(sys: &mut P, schedule: &[Decision]) -> SystemStatus {
    for d in schedule {
        if !sys.status().is_running() {
            break;
        }
        sys.step(d.thread, d.choice);
    }
    sys.status()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::testsys::{Act, Script};

    #[test]
    fn decision_display() {
        let d = Decision::run(ThreadId::new(2));
        assert_eq!(d.to_string(), "t2");
        let d = Decision {
            thread: ThreadId::new(1),
            choice: 3,
        };
        assert_eq!(d.to_string(), "t1#3");
    }

    #[test]
    fn replay_reaches_deadlock() {
        let mk = || Script::new(vec![vec![Act::Step, Act::Dec(0)]], 1);
        let mut sys = mk();
        let status = replay(&mut sys, &[Decision::run(ThreadId::new(0))]);
        assert_eq!(status, SystemStatus::Deadlock);
    }

    #[test]
    fn render_includes_ops_and_outcome() {
        let mk = || Script::new(vec![vec![Act::Step, Act::Dec(0)]], 1);
        let cex = Counterexample {
            kind: CounterexampleKind::Deadlock,
            message: "stuck".into(),
            schedule: vec![Decision::run(ThreadId::new(0))],
            execution: 1,
        };
        let rendered = cex.render(mk);
        assert!(rendered.contains("deadlock (1 steps): stuck"));
        assert!(rendered.contains("s0"));
        assert!(rendered.contains("=>  deadlock"));
    }

    #[test]
    fn render_annotates_the_touched_object() {
        let mk = || Script::new(vec![vec![Act::Step, Act::Inc(0), Act::WaitNonZero(1)]], 2);
        let cex = Counterexample {
            kind: CounterexampleKind::Deadlock,
            message: "stuck".into(),
            schedule: vec![
                Decision::run(ThreadId::new(0)),
                Decision::run(ThreadId::new(0)),
            ],
            execution: 1,
        };
        let rendered = cex.render(mk);
        let lines: Vec<&str> = rendered.lines().collect();
        // The local step carries no annotation; the counter write names
        // the touched cell.
        assert!(
            !lines[1].contains('['),
            "unexpected annotation: {}",
            lines[1]
        );
        assert!(
            lines[2].ends_with("[write counter0]"),
            "missing annotation: {}",
            lines[2]
        );
    }
}
