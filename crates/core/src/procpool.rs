//! Process-isolated campaign supervision: a work-stealing pool of worker
//! *processes* with watchdog timeouts, retry with exponential backoff,
//! and poison-job quarantine.
//!
//! [`ParallelExplorer`](crate::ParallelExplorer) isolates faults at the
//! *thread* boundary: a workload panic becomes a replayable outcome and a
//! checker panic costs one worker thread. That is not enough for a
//! checker meant to run unattended for days over real systems code — an
//! abort, an OOM kill, a stack overflow, or an infinite loop inside a
//! guest takes the whole process with it. This module moves the
//! isolation boundary to a **process**: the supervisor hands jobs to
//! worker processes over a line-delimited protocol and assumes every
//! worker can die, hang, or babble at any moment.
//!
//! The pieces:
//!
//! * [`Supervisor`] — owns a queue of opaque [`JobSpec`]s and a set of
//!   workers spawned through a [`WorkerFactory`]. Idle workers *steal*
//!   the next ready job (there is no static assignment); a worker that
//!   goes silent past the heartbeat deadline is killed and its job
//!   requeued; a failed job retries under exponential backoff with
//!   deterministic jitter; a job that keeps killing workers is
//!   **quarantined** after [`PoolConfig::max_attempts`] instead of
//!   looping forever.
//! * [`worker_main`] — the protocol loop a worker process runs: it
//!   executes the job handler on a thread, emits heartbeats only while
//!   the handler's [`Progress`] counters advance (so a hung guest stalls
//!   the heartbeat and trips the supervisor watchdog), and streams the
//!   result back.
//! * [`ProcessWorkerFactory`] — the real transport: spawns a command
//!   (typically the current executable with a hidden `worker`
//!   subcommand), a reader thread per child feeding a channel, SIGKILL
//!   via [`std::process::Child::kill`].
//!
//! The payloads are opaque single-line strings (newlines and
//! backslashes are escaped by the framing layer), so the pool carries
//! any job encoding a front end chooses; this crate never parses them.
//!
//! Degradation is graceful at every rung: a worker that cannot be
//! *spawned* does not fail the campaign — the supervisor keeps going
//! with fewer workers, and when no worker can be spawned at all it
//! returns the unfinished jobs to the caller ([`PoolReport::leftover`])
//! so the front end can fall back to in-process execution, mirroring the
//! journal writer's degrade-to-memory ladder.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::{rngs::SmallRng, Rng, SeedableRng};

use crate::explore::Progress;

/// One unit of campaign work: an identifier plus an opaque payload the
/// worker-side handler knows how to interpret.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Stable job identifier, unique within the campaign.
    pub id: String,
    /// Opaque payload handed verbatim to the worker's job handler.
    pub payload: String,
}

/// Why a job attempt failed, recorded for the final verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttemptFailure {
    /// The worker process exited (or closed its pipes) mid-job.
    WorkerDied,
    /// No protocol message within the heartbeat deadline; the worker was
    /// killed by the watchdog.
    WatchdogTimeout,
    /// The worker emitted a line the protocol cannot parse; it was
    /// killed, since its stream can no longer be trusted.
    ProtocolViolation(String),
    /// The worker reported a handler-level error for the job.
    HandlerError(String),
}

impl std::fmt::Display for AttemptFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttemptFailure::WorkerDied => write!(f, "worker died"),
            AttemptFailure::WatchdogTimeout => write!(f, "watchdog timeout"),
            AttemptFailure::ProtocolViolation(line) => {
                write!(f, "protocol violation: {line:?}")
            }
            AttemptFailure::HandlerError(msg) => write!(f, "handler error: {msg}"),
        }
    }
}

/// Terminal status of one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// The handler completed and returned this payload.
    Done {
        /// The handler's result payload, verbatim.
        payload: String,
    },
    /// The job failed [`PoolConfig::max_attempts`] times and was pulled
    /// from the queue so it cannot keep killing workers. The failure list
    /// is the evidence; the job itself remains replayable from its spec.
    Quarantined {
        /// Every attempt's failure, in order.
        failures: Vec<AttemptFailure>,
    },
}

/// The supervisor's verdict for one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobVerdict {
    /// The job's identifier.
    pub id: String,
    /// Attempts consumed (1 for a first-try success).
    pub attempts: u32,
    /// Terminal status.
    pub outcome: JobOutcome,
}

/// Tuning knobs for the supervisor.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker processes to keep alive while jobs remain.
    pub workers: usize,
    /// Watchdog deadline: a busy worker that sends no protocol message
    /// for this long is killed and its job requeued.
    pub heartbeat_timeout: Duration,
    /// Poison cap: a job whose attempt count reaches this is quarantined.
    pub max_attempts: u32,
    /// Base of the exponential retry backoff: attempt `n` waits
    /// `base * 2^(n-1)` plus jitter, capped at `backoff_cap`.
    pub backoff_base: Duration,
    /// Upper bound on the computed backoff (before jitter).
    pub backoff_cap: Duration,
    /// Seed for the deterministic backoff jitter (mixed with the job id,
    /// so retries of different jobs spread out but a rerun of the same
    /// campaign waits identically).
    pub jitter_seed: u64,
    /// Consecutive spawn failures tolerated before the supervisor stops
    /// trying to replace dead workers.
    pub spawn_failure_cap: u32,
    /// Supervisor loop poll interval.
    pub poll_interval: Duration,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: 2,
            heartbeat_timeout: Duration::from_secs(10),
            max_attempts: 3,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(5),
            jitter_seed: 0,
            spawn_failure_cap: 3,
            poll_interval: Duration::from_millis(5),
        }
    }
}

/// An event surfaced by a worker transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportEvent {
    /// One protocol line from the worker (without the trailing newline).
    Line(String),
    /// The worker's output stream closed: the process is gone.
    Eof,
}

/// One worker process (or an in-process fake, in tests) as the
/// supervisor sees it: a line sink, a non-blocking event source, and a
/// kill switch.
pub trait WorkerTransport: Send {
    /// Sends one protocol line to the worker. An error means the worker
    /// is effectively dead (e.g. its stdin pipe is closed).
    fn send_line(&mut self, line: &str) -> Result<(), String>;
    /// Drains one pending event, if any, without blocking.
    fn try_recv(&mut self) -> Option<TransportEvent>;
    /// Forcibly terminates the worker (SIGKILL for a real process).
    /// Idempotent.
    fn kill(&mut self);
}

/// Spawns workers for a [`Supervisor`].
pub trait WorkerFactory {
    /// Starts one worker, returning its transport. An `Err` is a spawn
    /// failure — the supervisor degrades rather than aborting.
    fn spawn_worker(&mut self) -> Result<Box<dyn WorkerTransport>, String>;
}

// ---------------------------------------------------------------------
// Protocol framing
// ---------------------------------------------------------------------
//
// Lines, space-separated head fields, and a single escaped tail payload:
//
//   supervisor -> worker:   job <id> <attempt> <payload>
//                           shutdown
//   worker -> supervisor:   ready
//                           heartbeat <id>
//                           result <id> <payload>
//                           error <id> <message>
//
// Payloads/messages are escaped (`\` -> `\\`, newline -> `\n`, CR ->
// `\r`) so arbitrary text travels as one line. Anything unparsable from
// a worker is a protocol violation: the stream can no longer be framed,
// so the worker is killed and the attempt counted as failed.

/// Escapes a payload so it survives line framing.
pub fn escape_line(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Reverses [`escape_line`]. Rejects dangling or unknown escapes.
pub fn unescape_line(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(c) => return Err(format!("bad escape '\\{c}'")),
            None => return Err("dangling backslash".to_string()),
        }
    }
    Ok(out)
}

/// A protocol message sent by a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerMsg {
    /// The worker is up and idle.
    Ready,
    /// The job is alive and making progress.
    Heartbeat {
        /// Job being worked on.
        id: String,
    },
    /// The job completed with this result payload.
    Result {
        /// Job that completed.
        id: String,
        /// Handler result, unescaped.
        payload: String,
    },
    /// The handler failed; the attempt counts as failed.
    Error {
        /// Job that failed.
        id: String,
        /// Handler error message, unescaped.
        message: String,
    },
}

impl WorkerMsg {
    /// Renders the message as one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            WorkerMsg::Ready => "ready".to_string(),
            WorkerMsg::Heartbeat { id } => format!("heartbeat {}", escape_line(id)),
            WorkerMsg::Result { id, payload } => {
                format!("result {} {}", escape_line(id), escape_line(payload))
            }
            WorkerMsg::Error { id, message } => {
                format!("error {} {}", escape_line(id), escape_line(message))
            }
        }
    }

    /// Parses one protocol line from a worker.
    pub fn parse(line: &str) -> Result<WorkerMsg, String> {
        let (head, rest) = match line.split_once(' ') {
            Some((h, r)) => (h, r),
            None => (line, ""),
        };
        match head {
            "ready" => Ok(WorkerMsg::Ready),
            "heartbeat" => Ok(WorkerMsg::Heartbeat {
                id: unescape_line(rest)?,
            }),
            "result" | "error" => {
                let (id, tail) = rest
                    .split_once(' ')
                    .ok_or_else(|| format!("{head}: missing payload"))?;
                let id = unescape_line(id)?;
                let tail = unescape_line(tail)?;
                Ok(if head == "result" {
                    WorkerMsg::Result { id, payload: tail }
                } else {
                    WorkerMsg::Error { id, message: tail }
                })
            }
            other => Err(format!("unknown message '{other}'")),
        }
    }
}

/// A protocol message sent by the supervisor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SupervisorMsg {
    /// Run this job.
    Job {
        /// Job identifier.
        id: String,
        /// 1-based attempt number (chaos injection keys on it).
        attempt: u32,
        /// Opaque job payload, unescaped.
        payload: String,
    },
    /// Exit cleanly.
    Shutdown,
}

impl SupervisorMsg {
    /// Renders the message as one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            SupervisorMsg::Job {
                id,
                attempt,
                payload,
            } => format!("job {} {attempt} {}", escape_line(id), escape_line(payload)),
            SupervisorMsg::Shutdown => "shutdown".to_string(),
        }
    }

    /// Parses one protocol line from the supervisor.
    pub fn parse(line: &str) -> Result<SupervisorMsg, String> {
        if line == "shutdown" {
            return Ok(SupervisorMsg::Shutdown);
        }
        let Some(rest) = line.strip_prefix("job ") else {
            return Err(format!("unknown message {line:?}"));
        };
        let mut parts = rest.splitn(3, ' ');
        let id = parts.next().ok_or("job: missing id")?;
        let attempt = parts
            .next()
            .ok_or("job: missing attempt")?
            .parse::<u32>()
            .map_err(|e| format!("job: bad attempt: {e}"))?;
        let payload = parts.next().ok_or("job: missing payload")?;
        Ok(SupervisorMsg::Job {
            id: unescape_line(id)?,
            attempt,
            payload: unescape_line(payload)?,
        })
    }
}

// ---------------------------------------------------------------------
// The real transport: one child process + a reader thread
// ---------------------------------------------------------------------

/// A spawned worker process. Lines are read by a detached thread feeding
/// a channel, so the supervisor never blocks on a silent child; `kill`
/// is SIGKILL, which is exactly the discipline the watchdog wants —
/// a hung worker gets no chance to ignore a polite signal.
pub struct ProcessWorker {
    child: std::process::Child,
    stdin: Option<std::process::ChildStdin>,
    events: Receiver<TransportEvent>,
    eof_seen: bool,
}

impl ProcessWorker {
    /// Spawns `program args...` with piped stdin/stdout (stderr passes
    /// through to the supervisor's, so worker diagnostics stay visible).
    pub fn spawn(program: &std::path::Path, args: &[String]) -> Result<ProcessWorker, String> {
        use std::io::BufRead;
        let mut child = std::process::Command::new(program)
            .args(args)
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .spawn()
            .map_err(|e| format!("spawn {}: {e}", program.display()))?;
        let stdin = child.stdin.take();
        let stdout = child.stdout.take().ok_or("spawn: no stdout pipe")?;
        let (tx, rx): (Sender<TransportEvent>, Receiver<TransportEvent>) =
            std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let reader = std::io::BufReader::new(stdout);
            for line in reader.lines() {
                match line {
                    Ok(line) => {
                        if tx.send(TransportEvent::Line(line)).is_err() {
                            return; // supervisor dropped the worker
                        }
                    }
                    Err(_) => break,
                }
            }
            let _ = tx.send(TransportEvent::Eof);
        });
        Ok(ProcessWorker {
            child,
            stdin,
            events: rx,
            eof_seen: false,
        })
    }
}

impl WorkerTransport for ProcessWorker {
    fn send_line(&mut self, line: &str) -> Result<(), String> {
        use std::io::Write;
        let stdin = self.stdin.as_mut().ok_or("worker stdin closed")?;
        writeln!(stdin, "{line}")
            .and_then(|_| stdin.flush())
            .map_err(|e| format!("worker stdin: {e}"))
    }

    fn try_recv(&mut self) -> Option<TransportEvent> {
        if self.eof_seen {
            return None;
        }
        match self.events.try_recv() {
            Ok(ev) => {
                if ev == TransportEvent::Eof {
                    self.eof_seen = true;
                }
                Some(ev)
            }
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => {
                self.eof_seen = true;
                Some(TransportEvent::Eof)
            }
        }
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ProcessWorker {
    fn drop(&mut self) {
        // Never leak a worker process past the supervisor's lifetime.
        self.kill();
    }
}

/// Spawns copies of one command as workers — normally the current
/// executable with a hidden `worker` subcommand.
pub struct ProcessWorkerFactory {
    program: std::path::PathBuf,
    args: Vec<String>,
}

impl ProcessWorkerFactory {
    /// A factory spawning `program args...` per worker.
    pub fn new(program: std::path::PathBuf, args: Vec<String>) -> Self {
        ProcessWorkerFactory { program, args }
    }
}

impl WorkerFactory for ProcessWorkerFactory {
    fn spawn_worker(&mut self) -> Result<Box<dyn WorkerTransport>, String> {
        Ok(Box::new(ProcessWorker::spawn(&self.program, &self.args)?))
    }
}

// ---------------------------------------------------------------------
// The supervisor
// ---------------------------------------------------------------------

/// A job waiting in the queue.
struct PendingJob {
    spec: JobSpec,
    /// 1-based number the *next* attempt will carry.
    next_attempt: u32,
    failures: Vec<AttemptFailure>,
    /// Earliest instant the next attempt may start (backoff).
    not_before: Instant,
}

/// What one worker slot is doing.
enum SlotState {
    /// Spawned, awaiting `ready` (counts against the watchdog too).
    Starting,
    /// Waiting for a job.
    Idle,
    /// Running `job` (index into `Supervisor::pending` is not stable, so
    /// the spec travels with the slot).
    Busy { job: PendingJob },
}

struct Slot {
    transport: Box<dyn WorkerTransport>,
    state: SlotState,
    /// Last protocol message (or spawn) instant, for the watchdog.
    last_seen: Instant,
}

/// Counters describing a finished campaign run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs that completed with a result.
    pub done: u64,
    /// Jobs quarantined after the poison cap.
    pub quarantined: u64,
    /// Failed attempts across all jobs (retries + quarantine evidence).
    pub failed_attempts: u64,
    /// Workers killed by the watchdog.
    pub watchdog_kills: u64,
    /// Workers that died (or babbled) mid-job.
    pub workers_lost: u64,
    /// Worker processes spawned over the campaign.
    pub workers_spawned: u64,
    /// Worker spawn attempts that failed.
    pub spawn_failures: u64,
}

/// The result of [`Supervisor::run`].
#[derive(Debug)]
pub struct PoolReport {
    /// Verdicts for every job that reached a terminal state, in
    /// completion order.
    pub verdicts: Vec<JobVerdict>,
    /// Jobs the pool could not run: nonempty only when every worker died
    /// and none could be respawned (degradation — the caller should run
    /// these in-process), or when the run was stopped early.
    pub leftover: Vec<JobSpec>,
    /// Human-readable degradation warnings.
    pub warnings: Vec<String>,
    /// Campaign counters.
    pub stats: PoolStats,
    /// True when the run ended because the stop flag was raised.
    pub stopped: bool,
}

/// Multi-process work-stealing job supervisor. See the module docs for
/// the policy; see [`worker_main`] for the worker side.
pub struct Supervisor<F: WorkerFactory> {
    factory: F,
    config: PoolConfig,
    stop: Option<Arc<AtomicBool>>,
}

impl<F: WorkerFactory> Supervisor<F> {
    /// Creates a supervisor over `factory` with the given policy.
    pub fn new(factory: F, config: PoolConfig) -> Self {
        Supervisor {
            factory,
            config,
            stop: None,
        }
    }

    /// Attaches a cooperative stop flag (e.g. a SIGINT handler's). When
    /// it reads `true` the supervisor kills its workers and returns with
    /// the unfinished jobs in [`PoolReport::leftover`].
    pub fn with_stop_flag(mut self, stop: Arc<AtomicBool>) -> Self {
        self.stop = Some(stop);
        self
    }

    /// Deterministic backoff before attempt `next_attempt` of `job_id`:
    /// `base * 2^(n-1)` capped, plus up to 25% jitter drawn from a
    /// generator seeded by (jitter_seed, job id, attempt) — no wall
    /// clock, so a resumed campaign waits exactly like the original.
    fn backoff(&self, job_id: &str, next_attempt: u32) -> Duration {
        let base = self.config.backoff_base.as_millis() as u64;
        let exp = next_attempt.saturating_sub(2).min(16);
        let raw = base.saturating_mul(1u64 << exp);
        let capped = raw.min(self.config.backoff_cap.as_millis() as u64);
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.config.jitter_seed;
        for b in job_id.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= next_attempt as u64;
        let jitter = if capped == 0 {
            0
        } else {
            SmallRng::seed_from_u64(h).gen_range(0..capped / 4 + 1)
        };
        Duration::from_millis(capped + jitter)
    }

    /// Runs `jobs` to completion (or stop-flag interruption), invoking
    /// `on_verdict` as each job reaches a terminal state — the front end
    /// journals verdicts there, which is what makes a supervisor SIGKILL
    /// resumable.
    pub fn run(
        &mut self,
        jobs: Vec<JobSpec>,
        mut on_verdict: impl FnMut(&JobVerdict),
    ) -> PoolReport {
        let now = Instant::now();
        let mut pending: VecDeque<PendingJob> = jobs
            .into_iter()
            .map(|spec| PendingJob {
                spec,
                next_attempt: 1,
                failures: Vec::new(),
                not_before: now,
            })
            .collect();
        let mut report = PoolReport {
            verdicts: Vec::new(),
            leftover: Vec::new(),
            warnings: Vec::new(),
            stats: PoolStats::default(),
            stopped: false,
        };
        let mut slots: Vec<Slot> = Vec::new();
        let mut spawn_failures_in_a_row = 0u32;
        let mut spawning_abandoned = false;

        loop {
            if self
                .stop
                .as_ref()
                .is_some_and(|s| s.load(Ordering::Relaxed))
            {
                report.stopped = true;
                break;
            }
            let in_flight = slots
                .iter()
                .filter(|s| matches!(s.state, SlotState::Busy { .. }))
                .count();
            if pending.is_empty() && in_flight == 0 {
                break;
            }

            // Keep the pool populated while there is work to hand out.
            let wanted = self
                .config
                .workers
                .min(pending.len() + in_flight)
                .max(in_flight);
            while slots.len() < wanted && !spawning_abandoned {
                match self.factory.spawn_worker() {
                    Ok(transport) => {
                        report.stats.workers_spawned += 1;
                        spawn_failures_in_a_row = 0;
                        slots.push(Slot {
                            transport,
                            state: SlotState::Starting,
                            last_seen: Instant::now(),
                        });
                    }
                    Err(e) => {
                        report.stats.spawn_failures += 1;
                        spawn_failures_in_a_row += 1;
                        if spawn_failures_in_a_row >= self.config.spawn_failure_cap {
                            spawning_abandoned = true;
                            report.warnings.push(format!(
                                "worker spawning abandoned after {spawn_failures_in_a_row} \
                                 consecutive failures (last: {e})"
                            ));
                        }
                    }
                }
            }
            // Total degradation: nothing alive and nothing spawnable.
            if slots.is_empty() && spawning_abandoned {
                break;
            }

            // Drain events, dispatch, and watchdog each slot.
            let mut i = 0;
            while i < slots.len() {
                let now = Instant::now();
                let mut remove = false;
                loop {
                    let slot = &mut slots[i];
                    let Some(event) = slot.transport.try_recv() else {
                        break;
                    };
                    slot.last_seen = now;
                    match event {
                        TransportEvent::Eof => {
                            self.fail_slot(
                                &mut slots[i],
                                AttemptFailure::WorkerDied,
                                &mut pending,
                                &mut report,
                                &mut on_verdict,
                            );
                            report.stats.workers_lost += 1;
                            remove = true;
                            break;
                        }
                        TransportEvent::Line(line) => match WorkerMsg::parse(&line) {
                            Ok(msg) => {
                                if !self.handle_msg(
                                    &mut slots[i],
                                    msg,
                                    &mut pending,
                                    &mut report,
                                    &mut on_verdict,
                                ) {
                                    remove = true;
                                    break;
                                }
                            }
                            Err(_) => {
                                // Garbage on the wire: the stream cannot
                                // be re-synchronized, so the worker dies.
                                let mut shown = line;
                                shown.truncate(80);
                                self.fail_slot(
                                    &mut slots[i],
                                    AttemptFailure::ProtocolViolation(shown),
                                    &mut pending,
                                    &mut report,
                                    &mut on_verdict,
                                );
                                slots[i].transport.kill();
                                report.stats.workers_lost += 1;
                                remove = true;
                                break;
                            }
                        },
                    }
                }
                if !remove {
                    let slot = &mut slots[i];
                    let silent_for = now.saturating_duration_since(slot.last_seen);
                    let busy = matches!(slot.state, SlotState::Busy { .. } | SlotState::Starting);
                    if busy && silent_for > self.config.heartbeat_timeout {
                        self.fail_slot(
                            &mut slots[i],
                            AttemptFailure::WatchdogTimeout,
                            &mut pending,
                            &mut report,
                            &mut on_verdict,
                        );
                        slots[i].transport.kill();
                        report.stats.watchdog_kills += 1;
                        remove = true;
                    }
                }
                if remove {
                    slots.remove(i);
                } else {
                    i += 1;
                }
            }

            // Work stealing: every idle worker takes the next ready job.
            let now = Instant::now();
            for slot in slots.iter_mut() {
                if !matches!(slot.state, SlotState::Idle) {
                    continue;
                }
                let Some(pos) = pending.iter().position(|j| j.not_before <= now) else {
                    break;
                };
                let job = pending.remove(pos).expect("position just found");
                let msg = SupervisorMsg::Job {
                    id: job.spec.id.clone(),
                    attempt: job.next_attempt,
                    payload: job.spec.payload.clone(),
                };
                match slot.transport.send_line(&msg.to_line()) {
                    Ok(()) => {
                        slot.state = SlotState::Busy { job };
                        slot.last_seen = now;
                    }
                    Err(_) => {
                        // Dead on dispatch; the Eof will surface on the
                        // next drain and remove the slot.
                        pending.push_front(job);
                        break;
                    }
                }
            }

            std::thread::sleep(self.config.poll_interval);
        }

        // Wind down: ask nicely first, then make sure.
        for slot in slots.iter_mut() {
            let _ = slot.transport.send_line(&SupervisorMsg::Shutdown.to_line());
            slot.transport.kill();
            // Reclaim any job still assigned at stop time.
            if let SlotState::Busy { job } = std::mem::replace(&mut slot.state, SlotState::Idle) {
                pending.push_front(job);
            }
        }
        report.leftover = pending.into_iter().map(|j| j.spec).collect();
        if !report.leftover.is_empty() && !report.stopped {
            report.warnings.push(format!(
                "{} job(s) left unrun: no worker process available",
                report.leftover.len()
            ));
        }
        report
    }

    /// Reacts to one parsed worker message. Returns `false` when the
    /// slot must be removed (protocol state violation).
    fn handle_msg(
        &self,
        slot: &mut Slot,
        msg: WorkerMsg,
        pending: &mut VecDeque<PendingJob>,
        report: &mut PoolReport,
        on_verdict: &mut impl FnMut(&JobVerdict),
    ) -> bool {
        match msg {
            WorkerMsg::Ready => {
                if matches!(slot.state, SlotState::Starting) {
                    slot.state = SlotState::Idle;
                    true
                } else {
                    // `ready` mid-job means the worker lost its state
                    // (e.g. it re-executed); treat as a died worker.
                    self.fail_slot(
                        slot,
                        AttemptFailure::WorkerDied,
                        pending,
                        report,
                        on_verdict,
                    );
                    slot.transport.kill();
                    report.stats.workers_lost += 1;
                    false
                }
            }
            WorkerMsg::Heartbeat { id } => {
                // Heartbeats already refreshed `last_seen`; just sanity-
                // check the id. A heartbeat for a job this slot does not
                // own is protocol confusion.
                let ok = matches!(&slot.state, SlotState::Busy { job } if job.spec.id == id);
                if !ok {
                    self.fail_slot(
                        slot,
                        AttemptFailure::ProtocolViolation(format!("stray heartbeat for {id}")),
                        pending,
                        report,
                        on_verdict,
                    );
                    slot.transport.kill();
                    report.stats.workers_lost += 1;
                }
                ok
            }
            WorkerMsg::Result { id, payload } => {
                let owned = matches!(&slot.state, SlotState::Busy { job } if job.spec.id == id);
                if !owned {
                    self.fail_slot(
                        slot,
                        AttemptFailure::ProtocolViolation(format!("stray result for {id}")),
                        pending,
                        report,
                        on_verdict,
                    );
                    slot.transport.kill();
                    report.stats.workers_lost += 1;
                    return false;
                }
                let SlotState::Busy { job } = std::mem::replace(&mut slot.state, SlotState::Idle)
                else {
                    unreachable!("ownership checked above");
                };
                let verdict = JobVerdict {
                    id: job.spec.id,
                    attempts: job.next_attempt,
                    outcome: JobOutcome::Done { payload },
                };
                report.stats.done += 1;
                on_verdict(&verdict);
                report.verdicts.push(verdict);
                true
            }
            WorkerMsg::Error { id, message } => {
                let owned = matches!(&slot.state, SlotState::Busy { job } if job.spec.id == id);
                if !owned {
                    self.fail_slot(
                        slot,
                        AttemptFailure::ProtocolViolation(format!("stray error for {id}")),
                        pending,
                        report,
                        on_verdict,
                    );
                    slot.transport.kill();
                    report.stats.workers_lost += 1;
                    return false;
                }
                // A handler error fails the attempt but the worker
                // itself is healthy; it stays in the pool.
                self.fail_slot(
                    slot,
                    AttemptFailure::HandlerError(message),
                    pending,
                    report,
                    on_verdict,
                );
                true
            }
        }
    }

    /// Marks the slot's in-flight attempt (if any) failed: requeues the
    /// job under backoff, or quarantines it at the poison cap. Leaves
    /// the slot `Idle`; the caller decides whether the worker survives.
    fn fail_slot(
        &self,
        slot: &mut Slot,
        failure: AttemptFailure,
        pending: &mut VecDeque<PendingJob>,
        report: &mut PoolReport,
        on_verdict: &mut impl FnMut(&JobVerdict),
    ) {
        let state = std::mem::replace(&mut slot.state, SlotState::Idle);
        let SlotState::Busy { mut job } = state else {
            return;
        };
        report.stats.failed_attempts += 1;
        job.failures.push(failure);
        if job.next_attempt >= self.config.max_attempts {
            let verdict = JobVerdict {
                id: job.spec.id,
                attempts: job.next_attempt,
                outcome: JobOutcome::Quarantined {
                    failures: job.failures,
                },
            };
            report.stats.quarantined += 1;
            on_verdict(&verdict);
            report.verdicts.push(verdict);
        } else {
            job.next_attempt += 1;
            job.not_before = Instant::now() + self.backoff(&job.spec.id, job.next_attempt);
            pending.push_back(job);
        }
    }
}

// ---------------------------------------------------------------------
// The worker side
// ---------------------------------------------------------------------

/// How a [`worker_main`] handler reports its work: bump the counters as
/// the job advances; the protocol loop translates advancement into
/// heartbeats. A handler that stops bumping (a hung guest) stops the
/// heartbeats and gets the worker killed by the supervisor's watchdog —
/// which is the intended failure mode.
pub type JobProgress = Progress;

/// Runs the worker side of the protocol over `input`/`output`: waits
/// for `job` lines, runs `handler` on a thread, emits `heartbeat` lines
/// every `heartbeat_interval` **only while the handler's progress
/// counters advance**, then `result` (or `error`). Returns when the
/// supervisor sends `shutdown` or the input closes.
///
/// `handler(id, attempt, payload, progress)` returns the result payload
/// or an error message. A handler panic is caught and reported as an
/// `error` line; the worker survives for the next job.
pub fn worker_main<R, W, H>(input: R, mut output: W, heartbeat_interval: Duration, handler: H)
where
    R: std::io::BufRead,
    W: std::io::Write,
    H: Fn(&str, u32, &str, &Arc<Progress>) -> Result<String, String> + Send + Sync + 'static,
{
    let handler = Arc::new(handler);
    let mut emit = |msg: WorkerMsg| {
        // An output error means the supervisor is gone; exiting the loop
        // (via the closed-input path) is the only sensible response, but
        // from inside the emit helper just drop the line.
        let _ = writeln!(output, "{}", msg.to_line());
        let _ = output.flush();
    };
    emit(WorkerMsg::Ready);
    for line in input.lines() {
        let Ok(line) = line else {
            break;
        };
        let msg = match SupervisorMsg::parse(&line) {
            Ok(msg) => msg,
            Err(_) => continue, // tolerate garbage from the supervisor
        };
        let (id, attempt, payload) = match msg {
            SupervisorMsg::Shutdown => break,
            SupervisorMsg::Job {
                id,
                attempt,
                payload,
            } => (id, attempt, payload),
        };
        let progress = Arc::new(Progress::default());
        let (tx, rx) = std::sync::mpsc::channel::<Result<String, String>>();
        {
            let handler = Arc::clone(&handler);
            let progress = Arc::clone(&progress);
            let id = id.clone();
            std::thread::spawn(move || {
                let outcome =
                    crate::panics::catch_silent(|| handler(&id, attempt, &payload, &progress))
                        .unwrap_or_else(|panic| Err(format!("handler panicked: {panic}")));
                let _ = tx.send(outcome);
            });
        }
        emit(WorkerMsg::Heartbeat { id: id.clone() });
        let mut last_tick = progress.tick();
        loop {
            match rx.recv_timeout(heartbeat_interval) {
                Ok(Ok(payload)) => {
                    emit(WorkerMsg::Result {
                        id: id.clone(),
                        payload,
                    });
                    break;
                }
                Ok(Err(message)) => {
                    emit(WorkerMsg::Error {
                        id: id.clone(),
                        message,
                    });
                    break;
                }
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                    let tick = progress.tick();
                    if tick != last_tick {
                        last_tick = tick;
                        emit(WorkerMsg::Heartbeat { id: id.clone() });
                    }
                    // No progress: stay silent and let the supervisor's
                    // watchdog decide whether we are hung.
                }
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                    emit(WorkerMsg::Error {
                        id: id.clone(),
                        message: "job thread vanished".to_string(),
                    });
                    break;
                }
            }
        }
        // NOTE: if the handler hung, its thread is still running here.
        // The worker reports nothing more for that job; the supervisor
        // will have killed the process anyway. Accepting the next job in
        // that state is fine for a process meant to be disposable.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // -- framing ------------------------------------------------------

    #[test]
    fn escape_round_trips_awkward_payloads() {
        for s in ["", "plain", "a\nb", "tr\\ail\\\\", "\r\n", "sp ace"] {
            assert_eq!(unescape_line(&escape_line(s)).unwrap(), s);
        }
        assert!(unescape_line("dangling\\").is_err());
        assert!(unescape_line("\\q").is_err());
    }

    #[test]
    fn worker_messages_round_trip() {
        let msgs = [
            WorkerMsg::Ready,
            WorkerMsg::Heartbeat { id: "j 1".into() },
            WorkerMsg::Result {
                id: "j1".into(),
                payload: "{\"a\":\n1}".into(),
            },
            WorkerMsg::Error {
                id: "j2".into(),
                message: "boom\nline2".into(),
            },
        ];
        for msg in msgs {
            let line = msg.to_line();
            assert!(!line.contains('\n'), "{line:?}");
            assert_eq!(WorkerMsg::parse(&line).unwrap(), msg);
        }
        assert!(WorkerMsg::parse("garbage !!").is_err());
        assert!(WorkerMsg::parse("result missing-payload").is_err());
    }

    #[test]
    fn supervisor_messages_round_trip() {
        let msgs = [
            SupervisorMsg::Job {
                id: "check-1".into(),
                attempt: 3,
                payload: "{\"k\": 2}\n".into(),
            },
            SupervisorMsg::Shutdown,
        ];
        for msg in msgs {
            let line = msg.to_line();
            assert!(!line.contains('\n'), "{line:?}");
            assert_eq!(SupervisorMsg::parse(&line).unwrap(), msg);
        }
        assert!(SupervisorMsg::parse("job only-id").is_err());
        assert!(SupervisorMsg::parse("nonsense").is_err());
    }

    // -- fake transports ----------------------------------------------

    /// Scripted fake worker: a behavior enum drives what happens when a
    /// job arrives.
    #[derive(Clone)]
    enum FakeBehavior {
        /// Answer every job with `result <id> done:<attempt>`.
        Obedient,
        /// Die (Eof) on receiving the first job.
        DiesOnJob,
        /// Emit an unparsable line on the first job, then obey.
        GarbageOnce,
        /// Accept the job and go silent forever (hang).
        Hangs,
        /// Report a handler error for every job.
        AlwaysErrors,
    }

    struct FakeWorker {
        behavior: FakeBehavior,
        queue: VecDeque<TransportEvent>,
        dead: bool,
        jobs_seen: Arc<Mutex<Vec<(String, u32)>>>,
        garbage_emitted: bool,
    }

    impl FakeWorker {
        fn new(behavior: FakeBehavior, jobs_seen: Arc<Mutex<Vec<(String, u32)>>>) -> Self {
            let mut queue = VecDeque::new();
            queue.push_back(TransportEvent::Line("ready".to_string()));
            FakeWorker {
                behavior,
                queue,
                dead: false,
                jobs_seen,
                garbage_emitted: false,
            }
        }
    }

    impl WorkerTransport for FakeWorker {
        fn send_line(&mut self, line: &str) -> Result<(), String> {
            if self.dead {
                return Err("dead".to_string());
            }
            let Ok(SupervisorMsg::Job { id, attempt, .. }) = SupervisorMsg::parse(line) else {
                return Ok(()); // shutdown
            };
            self.jobs_seen.lock().unwrap().push((id.clone(), attempt));
            match self.behavior {
                FakeBehavior::Obedient => {
                    self.queue.push_back(TransportEvent::Line(
                        WorkerMsg::Result {
                            id,
                            payload: format!("done:{attempt}"),
                        }
                        .to_line(),
                    ));
                }
                FakeBehavior::DiesOnJob => {
                    self.dead = true;
                    self.queue.push_back(TransportEvent::Eof);
                }
                FakeBehavior::GarbageOnce => {
                    if self.garbage_emitted {
                        self.queue.push_back(TransportEvent::Line(
                            WorkerMsg::Result {
                                id,
                                payload: format!("done:{attempt}"),
                            }
                            .to_line(),
                        ));
                    } else {
                        self.garbage_emitted = true;
                        self.queue
                            .push_back(TransportEvent::Line("!!corrupt frame!!".to_string()));
                    }
                }
                FakeBehavior::Hangs => {}
                FakeBehavior::AlwaysErrors => {
                    self.queue.push_back(TransportEvent::Line(
                        WorkerMsg::Error {
                            id,
                            message: "no such workload".to_string(),
                        }
                        .to_line(),
                    ));
                }
            }
            Ok(())
        }

        fn try_recv(&mut self) -> Option<TransportEvent> {
            self.queue.pop_front()
        }

        fn kill(&mut self) {
            self.dead = true;
        }
    }

    struct FakeFactory {
        behaviors: Vec<FakeBehavior>,
        spawned: usize,
        jobs_seen: Arc<Mutex<Vec<(String, u32)>>>,
        fail_spawns: bool,
    }

    impl FakeFactory {
        /// Workers are handed behaviors in order; past the end, Obedient.
        fn new(behaviors: Vec<FakeBehavior>) -> Self {
            FakeFactory {
                behaviors,
                spawned: 0,
                jobs_seen: Arc::new(Mutex::new(Vec::new())),
                fail_spawns: false,
            }
        }
    }

    impl WorkerFactory for FakeFactory {
        fn spawn_worker(&mut self) -> Result<Box<dyn WorkerTransport>, String> {
            if self.fail_spawns {
                return Err("spawn disabled".to_string());
            }
            let behavior = self
                .behaviors
                .get(self.spawned)
                .cloned()
                .unwrap_or(FakeBehavior::Obedient);
            self.spawned += 1;
            Ok(Box::new(FakeWorker::new(behavior, self.jobs_seen.clone())))
        }
    }

    fn jobs(n: usize) -> Vec<JobSpec> {
        (0..n)
            .map(|i| JobSpec {
                id: format!("job-{i}"),
                payload: format!("payload-{i}"),
            })
            .collect()
    }

    fn fast_config(workers: usize) -> PoolConfig {
        PoolConfig {
            workers,
            heartbeat_timeout: Duration::from_millis(80),
            max_attempts: 3,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
            jitter_seed: 7,
            spawn_failure_cap: 2,
            poll_interval: Duration::from_millis(1),
        }
    }

    // -- supervisor policy --------------------------------------------

    #[test]
    fn obedient_workers_complete_every_job_once() {
        let factory = FakeFactory::new(vec![]);
        let seen = factory.jobs_seen.clone();
        let mut verdicts_cb = Vec::new();
        let report = Supervisor::new(factory, fast_config(3)).run(jobs(7), |v| {
            verdicts_cb.push(v.id.clone());
        });
        assert_eq!(report.stats.done, 7);
        assert_eq!(report.stats.quarantined, 0);
        assert!(report.leftover.is_empty());
        assert_eq!(report.verdicts.len(), 7);
        assert_eq!(verdicts_cb.len(), 7, "callback fired per verdict");
        // Work stealing, not static assignment: every job ran exactly
        // once across the pool.
        let mut ids: Vec<String> = seen
            .lock()
            .unwrap()
            .iter()
            .map(|(id, _)| id.clone())
            .collect();
        ids.sort();
        assert_eq!(ids, (0..7).map(|i| format!("job-{i}")).collect::<Vec<_>>());
        for v in &report.verdicts {
            assert!(matches!(&v.outcome, JobOutcome::Done { payload } if payload == "done:1"));
        }
    }

    #[test]
    fn dead_worker_requeues_job_and_respawn_completes_it() {
        // Worker 1 dies on its first job; the respawned worker (and the
        // healthy one) finish everything. The killed job's retry carries
        // attempt 2.
        let factory = FakeFactory::new(vec![FakeBehavior::DiesOnJob, FakeBehavior::Obedient]);
        let mut report = Supervisor::new(factory, fast_config(2)).run(jobs(4), |_| {});
        assert_eq!(report.stats.done, 4);
        assert_eq!(report.stats.workers_lost, 1);
        assert_eq!(report.stats.failed_attempts, 1);
        report.verdicts.sort_by(|a, b| a.id.cmp(&b.id));
        let retried: Vec<_> = report.verdicts.iter().filter(|v| v.attempts == 2).collect();
        assert_eq!(retried.len(), 1, "exactly one job needed a retry");
        assert!(matches!(
            &retried[0].outcome,
            JobOutcome::Done { payload } if payload == "done:2"
        ));
    }

    #[test]
    fn garbage_line_is_a_protocol_violation_and_the_job_retries() {
        let factory = FakeFactory::new(vec![FakeBehavior::GarbageOnce]);
        let report = Supervisor::new(factory, fast_config(1)).run(jobs(1), |_| {});
        assert_eq!(report.stats.done, 1);
        assert_eq!(report.stats.workers_lost, 1);
        let v = &report.verdicts[0];
        assert_eq!(v.attempts, 2);
    }

    #[test]
    fn hung_worker_is_killed_by_the_watchdog() {
        let factory = FakeFactory::new(vec![FakeBehavior::Hangs, FakeBehavior::Obedient]);
        let report = Supervisor::new(factory, fast_config(1)).run(jobs(1), |_| {});
        assert_eq!(report.stats.done, 1);
        assert!(report.stats.watchdog_kills >= 1, "{:?}", report.stats);
        assert_eq!(report.verdicts[0].attempts, 2);
        assert!(matches!(
            &report.verdicts[0].outcome,
            JobOutcome::Done { .. }
        ));
    }

    #[test]
    fn poison_job_is_quarantined_after_the_attempt_cap() {
        // Every worker dies on every job: the single job burns
        // max_attempts workers, then is quarantined with the evidence.
        let factory = FakeFactory::new(vec![
            FakeBehavior::DiesOnJob,
            FakeBehavior::DiesOnJob,
            FakeBehavior::DiesOnJob,
            FakeBehavior::DiesOnJob,
        ]);
        let report = Supervisor::new(factory, fast_config(1)).run(jobs(1), |_| {});
        assert_eq!(report.stats.done, 0);
        assert_eq!(report.stats.quarantined, 1);
        let v = &report.verdicts[0];
        assert_eq!(v.attempts, 3);
        let JobOutcome::Quarantined { failures } = &v.outcome else {
            panic!("expected quarantine, got {:?}", v.outcome);
        };
        assert_eq!(failures.len(), 3);
        assert!(failures
            .iter()
            .all(|f| matches!(f, AttemptFailure::WorkerDied)));
    }

    #[test]
    fn handler_errors_retry_on_a_healthy_worker_then_quarantine() {
        let factory = FakeFactory::new(vec![FakeBehavior::AlwaysErrors]);
        let report = Supervisor::new(factory, fast_config(1)).run(jobs(1), |_| {});
        assert_eq!(report.stats.quarantined, 1);
        // The worker never died — all three attempts ran on one worker.
        assert_eq!(report.stats.workers_spawned, 1);
        let JobOutcome::Quarantined { failures } = &report.verdicts[0].outcome else {
            panic!("expected quarantine");
        };
        assert!(failures
            .iter()
            .all(|f| matches!(f, AttemptFailure::HandlerError(m) if m == "no such workload")));
    }

    #[test]
    fn spawn_failure_degrades_to_leftover_jobs() {
        let mut factory = FakeFactory::new(vec![]);
        factory.fail_spawns = true;
        let report = Supervisor::new(factory, fast_config(2)).run(jobs(3), |_| {});
        assert_eq!(report.stats.done, 0);
        assert_eq!(report.leftover.len(), 3, "all jobs returned to caller");
        assert!(!report.warnings.is_empty());
        assert!(report.warnings[0].contains("spawning abandoned"));
        assert!(!report.stopped);
    }

    #[test]
    fn stop_flag_interrupts_and_returns_unfinished_jobs() {
        let factory = FakeFactory::new(vec![]);
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let mut fired = 0;
        let report = Supervisor::new(factory, fast_config(1))
            .with_stop_flag(stop)
            .run(jobs(64), move |_| {
                fired += 1;
                if fired >= 3 {
                    stop2.store(true, Ordering::Relaxed);
                }
            });
        assert!(report.stopped);
        assert!(report.stats.done >= 3);
        assert!(
            report.stats.done as usize + report.leftover.len() == 64,
            "every job is either finished or returned: {} + {}",
            report.stats.done,
            report.leftover.len()
        );
    }

    #[test]
    fn backoff_grows_exponentially_and_is_deterministic() {
        let sup = Supervisor::new(FakeFactory::new(vec![]), fast_config(1));
        let b2 = sup.backoff("job-x", 2);
        let b3 = sup.backoff("job-x", 3);
        let b4 = sup.backoff("job-x", 4);
        assert!(b2 <= b3 && b3 <= b4, "{b2:?} {b3:?} {b4:?}");
        // Deterministic: same (seed, job, attempt) → same wait.
        assert_eq!(b3, sup.backoff("job-x", 3));
        // Capped: far-future attempts never exceed cap + 25% jitter.
        let cap = fast_config(1).backoff_cap;
        assert!(sup.backoff("job-x", 30) <= cap + cap / 4 + Duration::from_millis(1));
    }

    // -- worker_main over in-memory pipes -----------------------------

    /// Drives worker_main with scripted supervisor input; returns the
    /// worker's output lines.
    fn drive_worker(input: &str, handler_sleep: Option<Duration>) -> Vec<String> {
        let mut out: Vec<u8> = Vec::new();
        let sleep = handler_sleep;
        worker_main(
            std::io::Cursor::new(input.to_string()),
            &mut out,
            Duration::from_millis(5),
            move |id, attempt, payload, progress| {
                if payload == "fail" {
                    return Err(format!("cannot run {id}"));
                }
                if payload == "panic" {
                    panic!("handler exploded");
                }
                if let Some(d) = sleep {
                    // Simulate slow-but-alive work: tick while sleeping.
                    for _ in 0..4 {
                        std::thread::sleep(d / 4);
                        progress.executions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Ok(format!("ok:{id}:{attempt}:{payload}"))
            },
        );
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }

    #[test]
    fn worker_main_runs_jobs_and_reports_results() {
        let lines = drive_worker("job a 1 p1\njob b 2 p2\nshutdown\n", None);
        assert_eq!(lines[0], "ready");
        assert!(
            lines.contains(&"result a ok:a:1:p1".to_string()),
            "{lines:?}"
        );
        assert!(
            lines.contains(&"result b ok:b:2:p2".to_string()),
            "{lines:?}"
        );
    }

    #[test]
    fn worker_main_reports_handler_errors_and_survives() {
        let lines = drive_worker("job a 1 fail\njob b 1 p\nshutdown\n", None);
        assert!(lines.iter().any(|l| l.starts_with("error a ")), "{lines:?}");
        assert!(
            lines.contains(&"result b ok:b:1:p".to_string()),
            "{lines:?}"
        );
    }

    #[test]
    fn worker_main_catches_handler_panics() {
        let lines = drive_worker("job a 1 panic\nshutdown\n", None);
        let err = lines
            .iter()
            .find(|l| l.starts_with("error a "))
            .expect("panic surfaces as error");
        assert!(err.contains("handler panicked"), "{err}");
    }

    #[test]
    fn worker_main_heartbeats_while_progress_advances() {
        let lines = drive_worker("job slow 1 p\nshutdown\n", Some(Duration::from_millis(60)));
        let beats = lines.iter().filter(|l| l.starts_with("heartbeat")).count();
        assert!(beats >= 2, "expected ticking heartbeats, got {lines:?}");
        assert!(lines.iter().any(|l| l.starts_with("result slow ")));
    }

    // -- end-to-end over real processes -------------------------------

    /// A real process pool using `sh` as the worker: proves the spawn /
    /// pipe / reader-thread / SIGKILL plumbing against genuine child
    /// processes without needing the CLI binary.
    #[test]
    fn process_transport_round_trips_against_a_shell_worker() {
        // A minimal protocol implementation in shell: ready, then echo a
        // result for every job line.
        let script = r#"
echo ready
while IFS= read -r line; do
  case "$line" in
    job\ *) set -- $line; echo "result $2 shell-did-$4" ;;
    shutdown) exit 0 ;;
  esac
done
"#;
        let factory = ProcessWorkerFactory::new(
            std::path::PathBuf::from("/bin/sh"),
            vec!["-c".to_string(), script.to_string()],
        );
        let mut config = fast_config(2);
        config.heartbeat_timeout = Duration::from_secs(5);
        let report = Supervisor::new(factory, config).run(jobs(5), |_| {});
        assert_eq!(report.stats.done, 5, "{:?}", report.warnings);
        for v in &report.verdicts {
            let JobOutcome::Done { payload } = &v.outcome else {
                panic!("expected done: {v:?}");
            };
            assert!(payload.starts_with("shell-did-payload-"), "{payload}");
        }
    }

    /// SIGKILL discipline: a worker that hangs after `ready` is killed
    /// by the watchdog and the campaign still completes via respawns.
    #[test]
    fn hung_process_worker_is_killed_and_replaced() {
        // First job hangs the shell (sleep); subsequent respawned
        // workers complete normally because the hang is keyed to the
        // attempt number baked into the job line.
        let script = r#"
echo ready
while IFS= read -r line; do
  case "$line" in
    job\ *) set -- $line
      if [ "$3" = "1" ]; then sleep 600; else echo "result $2 recovered"; fi ;;
    shutdown) exit 0 ;;
  esac
done
"#;
        let factory = ProcessWorkerFactory::new(
            std::path::PathBuf::from("/bin/sh"),
            vec!["-c".to_string(), script.to_string()],
        );
        let mut config = fast_config(1);
        config.heartbeat_timeout = Duration::from_millis(150);
        let start = Instant::now();
        let report = Supervisor::new(factory, config).run(jobs(1), |_| {});
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "watchdog must not wait for the sleep"
        );
        assert_eq!(report.stats.done, 1);
        assert!(report.stats.watchdog_kills >= 1);
        assert_eq!(report.verdicts[0].attempts, 2);
        assert!(matches!(
            &report.verdicts[0].outcome,
            JobOutcome::Done { payload } if payload == "recovered"
        ));
    }

    #[test]
    fn nonexistent_worker_binary_degrades_not_panics() {
        let factory = ProcessWorkerFactory::new(
            std::path::PathBuf::from("/nonexistent/worker/binary"),
            vec![],
        );
        let report = Supervisor::new(factory, fast_config(2)).run(jobs(2), |_| {});
        assert_eq!(report.leftover.len(), 2);
        assert!(!report.warnings.is_empty());
    }
}
