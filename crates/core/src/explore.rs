//! The stateless explorer: repeatedly executes the program under the
//! control of a strategy (and optionally the fair scheduler), re-creating
//! the program from a factory for every execution — no program state is
//! ever stored across executions.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use chess_kernel::TidSet;

use crate::fair::{FairScheduler, PenaltyScope};
use crate::observer::{NullObserver, Observer};
use crate::report::{
    BudgetKind, Divergence, DivergenceKind, SearchOutcome, SearchReport, SearchStats,
};
use crate::strategy::{SchedulePoint, Strategy, StrategySnapshot};
use crate::system::{SystemStatus, TransitionSystem};
use crate::trace::{Counterexample, CounterexampleKind, Decision};

/// A crash-safe capture of an in-flight search: the strategy's position
/// together with the cumulative statistics at an execution boundary.
///
/// Restoring the snapshot into a fresh strategy (see
/// [`Strategy::restore`]) and seeding a new explorer with the stats (see
/// [`Explorer::with_initial_stats`]) resumes the search exactly where
/// the checkpoint was taken: for the deterministic strategies (DFS,
/// context-bounded) the resumed run visits the very executions the
/// uninterrupted run would have visited, and the final report converges
/// to the same outcome and counters (wall-clock time excepted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchCheckpoint {
    /// The strategy's search position.
    pub strategy: StrategySnapshot,
    /// Cumulative statistics at the checkpointed boundary.
    pub stats: SearchStats,
}

/// Live progress counters shared with a supervisor (see
/// [`Explorer::with_progress`]). The explorer publishes its cumulative
/// execution/transition totals here at every execution boundary, so a
/// supervisor can harvest how much work an attempt did even when the
/// attempt itself dies before returning a report — and a process-level
/// watchdog can distinguish a hung worker from a slow one.
#[derive(Debug, Default)]
pub struct Progress {
    /// Executions completed so far (published at execution boundaries).
    pub executions: AtomicU64,
    /// Transitions executed so far (published at execution boundaries).
    pub transitions: AtomicU64,
}

impl Progress {
    /// A monotone tick combining both counters; a watchdog that only
    /// cares about "did anything advance" can poll this single value.
    pub fn tick(&self) -> u64 {
        self.executions
            .load(Ordering::Relaxed)
            .wrapping_add(self.transitions.load(Ordering::Relaxed))
    }
}

/// The periodic-checkpoint sink attached to an [`Explorer`].
struct CheckpointSink {
    /// Emit after every `every`-th completed execution (plus once at
    /// every resumable stop).
    every: u64,
    emit: Box<dyn FnMut(&SearchCheckpoint)>,
}

/// Configuration of the fair scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FairnessConfig {
    /// Process only every `k`-th yield of each thread (Section 3 end).
    /// `1` (the default) processes every yield.
    pub k: u64,
    /// Penalty-edge scope (ablation; default is the paper's rule).
    pub scope: PenaltyScope,
}

impl Default for FairnessConfig {
    fn default() -> Self {
        FairnessConfig {
            k: 1,
            scope: PenaltyScope::default(),
        }
    }
}

/// Explorer configuration.
///
/// Use [`Config::fair`] or [`Config::unfair`] for the two canonical
/// setups of the paper and adjust with the `with_*` methods.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Fair scheduling (Algorithm 1), or `None` for the unfair baseline.
    pub fairness: Option<FairnessConfig>,
    /// Maximum transitions per execution. With fairness this is the
    /// paper's "large bound, orders of magnitude above the expected
    /// execution length"; without fairness it caps the random tail.
    pub depth_bound: usize,
    /// Stop after this many executions.
    pub max_executions: Option<u64>,
    /// Stop after this much wall-clock time.
    pub time_budget: Option<Duration>,
    /// Return at the first error (violation/deadlock/divergence). When
    /// `false`, errors are counted and the search continues.
    pub stop_on_error: bool,
    /// Treat deadlocks as errors (the usual setting).
    pub deadlock_is_error: bool,
    /// Detect state revisits within an execution to report livelocks
    /// (fair cycles) precisely. Requires meaningful fingerprints.
    pub detect_cycles: bool,
    /// Consecutive non-yielding transitions of one thread after which a
    /// depth-bound hit is classified as a good-samaritan suspect.
    pub gs_threshold: u64,
    /// Reuse the previous execution's system allocations when building
    /// the next one (see [`TransitionSystem::reset_from`]). On by
    /// default; disable to force the from-scratch reference path the
    /// equivalence tests compare against.
    pub pooling: bool,
}

impl Config {
    /// The paper's fair configuration: Algorithm 1 with `k = 1`, cycle
    /// detection on, a generous depth bound, errors stop the search.
    pub fn fair() -> Self {
        Config {
            fairness: Some(FairnessConfig::default()),
            depth_bound: 100_000,
            max_executions: None,
            time_budget: None,
            stop_on_error: true,
            deadlock_is_error: true,
            detect_cycles: true,
            gs_threshold: 100,
            pooling: true,
        }
    }

    /// The unfair baseline: no fairness, no cycle detection; executions
    /// that hit the depth bound are counted as *nonterminating* and the
    /// search moves on (Figure 2's metric).
    pub fn unfair() -> Self {
        Config {
            fairness: None,
            detect_cycles: false,
            ..Config::fair()
        }
    }

    /// Sets the per-execution depth bound.
    pub fn with_depth_bound(mut self, bound: usize) -> Self {
        self.depth_bound = bound;
        self
    }

    /// Sets the execution budget.
    pub fn with_max_executions(mut self, n: u64) -> Self {
        self.max_executions = Some(n);
        self
    }

    /// Sets the wall-clock budget.
    pub fn with_time_budget(mut self, d: Duration) -> Self {
        self.time_budget = Some(d);
        self
    }

    /// Sets whether the search stops at the first error.
    pub fn with_stop_on_error(mut self, stop: bool) -> Self {
        self.stop_on_error = stop;
        self
    }

    /// Sets whether deadlocks are errors.
    pub fn with_deadlock_is_error(mut self, err: bool) -> Self {
        self.deadlock_is_error = err;
        self
    }

    /// Enables or disables per-execution cycle detection.
    pub fn with_detect_cycles(mut self, on: bool) -> Self {
        self.detect_cycles = on;
        self
    }

    /// Sets the fairness `k` parameter (processing every `k`-th yield).
    pub fn with_fairness_k(mut self, k: u64) -> Self {
        let scope = self.fairness.map(|f| f.scope).unwrap_or_default();
        self.fairness = Some(FairnessConfig { k, scope });
        self
    }

    /// Sets the fairness penalty scope (ablation; see [`PenaltyScope`]).
    pub fn with_penalty_scope(mut self, scope: PenaltyScope) -> Self {
        let k = self.fairness.map(|f| f.k).unwrap_or(1);
        self.fairness = Some(FairnessConfig { k, scope });
        self
    }

    /// Enables or disables cross-execution allocation pooling.
    pub fn with_pooling(mut self, on: bool) -> Self {
        self.pooling = on;
        self
    }
}

/// Result of one execution, internal to the explorer.
enum ExecEnd {
    /// Execution finished without error (terminated, cut at the depth
    /// bound without fairness, abandoned, or non-error deadlock).
    Done,
    /// An error outcome to report.
    Error(SearchOutcome),
    /// The search was interrupted mid-execution: the wall-clock budget
    /// expired or the stop flag was raised.
    Interrupted(BudgetKind),
}

/// The stateless model checker: a factory producing fresh program
/// instances, a strategy, and a configuration.
///
/// # Examples
///
/// ```
/// use chess_core::{Config, Explorer};
/// use chess_core::strategy::Dfs;
/// use chess_kernel::{Effects, GuestThread, Kernel, OpDesc, OpResult};
///
/// #[derive(Clone)]
/// struct Step(bool);
/// impl GuestThread<()> for Step {
///     fn next_op(&self, _: &()) -> OpDesc {
///         if self.0 { OpDesc::Finished } else { OpDesc::Local }
///     }
///     fn on_op(&mut self, _: OpResult, _: &mut (), _: &mut Effects<()>) {
///         self.0 = true;
///     }
///     fn box_clone(&self) -> Box<dyn GuestThread<()>> { Box::new(self.clone()) }
/// }
///
/// let factory = || {
///     let mut k = Kernel::new(());
///     k.spawn(Step(false));
///     k.spawn(Step(false));
///     k
/// };
/// let report = Explorer::new(factory, Dfs::new(), Config::fair()).run();
/// assert!(!report.outcome.found_error());
/// assert_eq!(report.stats.executions, 2); // two interleavings
/// ```
pub struct Explorer<P, F, St> {
    factory: F,
    strategy: St,
    config: Config,
    stop: Option<Arc<AtomicBool>>,
    checkpoint: Option<CheckpointSink>,
    progress: Option<Arc<Progress>>,
    initial_stats: SearchStats,
    _marker: std::marker::PhantomData<fn() -> P>,
}

/// The execution-instance pool behind [`Config::pooling`]: a pristine
/// `template` built once from the factory, plus the previous execution's
/// instance (`spare`) awaiting a [`TransitionSystem::reset_from`].
///
/// Whether the system supports pooling is learned on the first reset
/// attempt; systems that return `false` permanently fall back to the
/// factory. An instance the workload panicked out of is never released
/// back into the pool — the unwind drops it, and the next execution
/// starts from the factory again.
struct SysPool<P> {
    enabled: bool,
    template: Option<P>,
    spare: Option<P>,
}

impl<P: TransitionSystem> SysPool<P> {
    fn new(enabled: bool) -> Self {
        SysPool {
            enabled,
            template: None,
            spare: None,
        }
    }

    /// A fresh-for-this-execution system: the reset spare when pooling is
    /// live, a factory product otherwise.
    fn acquire(&mut self, factory: &mut impl FnMut() -> P) -> P {
        if !self.enabled {
            return factory();
        }
        if self.template.is_none() {
            self.template = Some(factory());
        }
        let template = self.template.as_ref().expect("template just installed");
        match self.spare.take() {
            Some(mut sys) => {
                if sys.reset_from(template) {
                    sys
                } else {
                    self.enabled = false;
                    self.template = None;
                    factory()
                }
            }
            None => factory(),
        }
    }

    /// Returns a completed execution's instance to the pool.
    fn release(&mut self, sys: P) {
        if self.enabled {
            self.spare = Some(sys);
        }
    }
}

/// Pass-through hasher for the cycle-detection map: its keys are 64-bit
/// state fingerprints, already FNV-mixed, so piping them through the
/// default SipHash buys no distribution at a measurable per-step cost.
#[derive(Default)]
struct FpHasher(u64);

impl std::hash::Hasher for FpHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        // Unused for u64 keys; an FNV fold keeps the hasher total.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

type FpBuildHasher = std::hash::BuildHasherDefault<FpHasher>;

/// Per-execution and per-step scratch buffers, hoisted out of the
/// execution loop so one search reuses their allocations across every
/// execution instead of re-allocating per schedule point.
#[derive(Default)]
struct ExecScratch {
    steps_since_yield: Vec<u64>,
    seen: HashMap<u64, usize, FpBuildHasher>,
    /// Pooled per-step enabled sets for cycle classification; only the
    /// first `hist_len` entries (managed by `one_execution`) are live.
    es_history: Vec<TidSet>,
    es: TidSet,
    es_after: TidSet,
    schedulable: TidSet,
    options: Vec<Decision>,
    /// Pooled per-option footprints; only the first `n_fps` entries built
    /// this step are live.
    footprints: Vec<chess_kernel::Footprint>,
    flushes: Vec<bool>,
    fp: chess_kernel::Footprint,
}

impl<P, F, St> Explorer<P, F, St>
where
    P: TransitionSystem,
    F: FnMut() -> P,
    St: Strategy,
{
    /// Creates an explorer.
    pub fn new(factory: F, strategy: St, config: Config) -> Self {
        Explorer {
            factory,
            strategy,
            config,
            stop: None,
            checkpoint: None,
            progress: None,
            initial_stats: SearchStats::default(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Attaches a shared cancellation flag. The explorer polls it between
    /// executions and every 4096 transitions within one (alongside the
    /// deadline poll); once it reads `true` the search stops with
    /// [`BudgetKind::Cancelled`]. A parallel search uses this for
    /// first-error-wins cancellation across workers.
    pub fn with_stop_flag(mut self, stop: Arc<AtomicBool>) -> Self {
        self.stop = Some(stop);
        self
    }

    /// Attaches a checkpoint sink: `emit` receives a [`SearchCheckpoint`]
    /// after every `every`-th completed execution and once more at every
    /// resumable stop (budget exhaustion, cancellation, interruption).
    ///
    /// An interruption that lands mid-execution checkpoints the
    /// statistics of the **last completed execution boundary** while the
    /// strategy snapshot still carries the in-flight replay prefix:
    /// resume re-runs the interrupted execution from the top, so no
    /// transition is counted twice and the resumed totals converge to
    /// the uninterrupted run's.
    ///
    /// Checkpoints are skipped silently when the strategy does not
    /// support snapshots (e.g. [`crate::strategy::FixedSchedule`]).
    pub fn with_checkpointing(
        mut self,
        every: u64,
        emit: impl FnMut(&SearchCheckpoint) + 'static,
    ) -> Self {
        self.checkpoint = Some(CheckpointSink {
            every,
            emit: Box::new(emit),
        });
        self
    }

    /// Attaches shared progress counters. The explorer publishes its
    /// cumulative execution/transition totals into them at every
    /// execution boundary. A supervisor reads them to harvest the work of
    /// an attempt that dies mid-search (the counters survive the panic;
    /// see `SearchStats::lost_to_restart`) and a process watchdog reads
    /// them as a liveness signal.
    pub fn with_progress(mut self, progress: Arc<Progress>) -> Self {
        self.progress = Some(progress);
        self
    }

    /// Publishes the boundary totals of `stats` into the shared progress
    /// counters, if any.
    fn publish_progress(&self, stats: &SearchStats) {
        if let Some(p) = &self.progress {
            p.executions.store(stats.executions, Ordering::Relaxed);
            p.transitions.store(stats.transitions, Ordering::Relaxed);
        }
    }

    /// Seeds the search with statistics from a previous (checkpointed)
    /// run. Budgets expressed in executions count the combined total, and
    /// the final report's counters continue from these values; `wall`
    /// accumulates across runs.
    pub fn with_initial_stats(mut self, stats: SearchStats) -> Self {
        self.initial_stats = stats;
        self
    }

    fn stop_requested(&self) -> bool {
        self.stop
            .as_ref()
            .is_some_and(|s| s.load(Ordering::Relaxed))
    }

    fn checkpoint_due(&self, executions: u64) -> bool {
        self.checkpoint
            .as_ref()
            .is_some_and(|s| s.every > 0 && executions.is_multiple_of(s.every))
    }

    /// Emits a checkpoint carrying `stats` (with up-to-date cumulative
    /// wall time) and the strategy's current position. A no-op without a
    /// sink or for non-snapshottable strategies.
    fn emit_checkpoint(&mut self, stats: &SearchStats, base_wall: Duration, start: Instant) {
        let Some(sink) = self.checkpoint.as_mut() else {
            return;
        };
        let Some(snapshot) = self.strategy.snapshot() else {
            return;
        };
        let mut stats = stats.clone();
        stats.wall = base_wall + start.elapsed();
        (sink.emit)(&SearchCheckpoint {
            strategy: snapshot,
            stats,
        });
    }

    /// Runs the search with no observer.
    pub fn run(&mut self) -> SearchReport {
        self.run_observed(&mut NullObserver)
    }

    /// Runs the search, reporting every visited state to `obs`.
    pub fn run_observed(&mut self, obs: &mut dyn Observer<P>) -> SearchReport {
        let start = Instant::now();
        let deadline = self.config.time_budget.map(|d| start + d);
        let base_wall = self.initial_stats.wall;
        let mut stats = self.initial_stats.clone();
        self.publish_progress(&stats);
        // The schedule of the in-flight execution lives outside
        // `one_execution` so that it survives a workload panic: the
        // decisions pushed before the panicking step become the
        // counterexample's replay schedule.
        let mut schedule_buf: Vec<Decision> = Vec::new();
        let mut pool = SysPool::new(self.config.pooling);
        let mut scratch = ExecScratch::default();
        let outcome = loop {
            if let Some(max) = self.config.max_executions {
                if stats.executions >= max {
                    self.emit_checkpoint(&stats, base_wall, start);
                    break SearchOutcome::BudgetExhausted(BudgetKind::Executions);
                }
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                self.emit_checkpoint(&stats, base_wall, start);
                break SearchOutcome::BudgetExhausted(BudgetKind::Time);
            }
            if self.stop_requested() {
                self.emit_checkpoint(&stats, base_wall, start);
                break SearchOutcome::BudgetExhausted(BudgetKind::Cancelled);
            }
            // The last execution boundary: an interruption landing inside
            // the next execution checkpoints these stats, rolling the
            // partial execution back so resume re-runs it whole.
            let boundary = stats.clone();
            stats.executions += 1;
            schedule_buf.clear();
            let caught = crate::panics::catch_silent(|| {
                self.one_execution(
                    obs,
                    &mut stats,
                    deadline,
                    &mut schedule_buf,
                    &mut pool,
                    &mut scratch,
                )
            });
            let end = match caught {
                Ok(end) => end,
                Err(message) => {
                    // The workload panicked mid-transition. The schedule
                    // buffer already holds the panicking decision, so the
                    // counterexample replays deterministically. A panic is
                    // a safety violation with extra classification.
                    stats.violations += 1;
                    stats.panics += 1;
                    stats.max_depth = stats.max_depth.max(schedule_buf.len());
                    ExecEnd::Error(SearchOutcome::Panic(Counterexample {
                        kind: CounterexampleKind::Panic,
                        message,
                        schedule: std::mem::take(&mut schedule_buf),
                        execution: stats.executions,
                    }))
                }
            };
            // Publish before the strategy callbacks below run: if one of
            // them panics and kills the attempt, the supervisor can still
            // harvest everything up to and including this execution.
            self.publish_progress(&stats);
            match end {
                ExecEnd::Error(outcome) => {
                    if stats.first_error_execution.is_none() {
                        stats.first_error_execution = Some(stats.executions);
                    }
                    if self.config.stop_on_error {
                        break outcome;
                    }
                    if !self.strategy.on_execution_end() {
                        break SearchOutcome::Complete;
                    }
                }
                ExecEnd::Done => {
                    if !self.strategy.on_execution_end() {
                        break SearchOutcome::Complete;
                    }
                }
                ExecEnd::Interrupted(kind) => {
                    self.emit_checkpoint(&boundary, base_wall, start);
                    break SearchOutcome::BudgetExhausted(kind);
                }
            }
            if self.checkpoint_due(stats.executions) {
                self.emit_checkpoint(&stats, base_wall, start);
            }
        };
        stats.wall = base_wall + start.elapsed();
        SearchReport { outcome, stats }
    }

    fn one_execution(
        &mut self,
        obs: &mut dyn Observer<P>,
        stats: &mut SearchStats,
        deadline: Option<Instant>,
        schedule: &mut Vec<Decision>,
        pool: &mut SysPool<P>,
        scratch: &mut ExecScratch,
    ) -> ExecEnd {
        let execution = stats.executions;
        let mut sys = pool.acquire(&mut self.factory);
        let mut fair = self
            .config
            .fairness
            .map(|fc| FairScheduler::with_k(sys.thread_count(), fc.k).with_scope(fc.scope));
        // Steps each thread has taken since its last yield, for the
        // good-samaritan heuristic.
        scratch.steps_since_yield.clear();
        scratch.steps_since_yield.resize(sys.thread_count(), 0);
        // Cycle detection: (program ⊕ scheduler) fingerprint → step index,
        // plus per-state enabled sets to classify detected cycles.
        scratch.seen.clear();
        let mut hist_len = 0usize;
        let mut prev: Option<chess_kernel::ThreadId> = None;
        let mut depth = 0usize;
        let mut have_es = false;

        obs.on_state(&sys, 0);
        if self.config.detect_cycles {
            scratch
                .seen
                .insert(self.combined_fingerprint(&sys, fair.as_ref()), 0);
        }

        let end = loop {
            match sys.status() {
                SystemStatus::Running => {}
                SystemStatus::Terminated => {
                    stats.terminating += 1;
                    break ExecEnd::Done;
                }
                SystemStatus::Deadlock => {
                    stats.deadlocks += 1;
                    if self.config.deadlock_is_error {
                        let blocked: Vec<String> = (0..sys.thread_count())
                            .map(chess_kernel::ThreadId::new)
                            .filter(|&t| !sys.enabled(t))
                            .map(|t| sys.thread_name(t))
                            .collect();
                        break ExecEnd::Error(SearchOutcome::Deadlock(Counterexample {
                            kind: CounterexampleKind::Deadlock,
                            message: format!("no thread enabled; blocked: {blocked:?}"),
                            schedule: std::mem::take(schedule),
                            execution,
                        }));
                    }
                    stats.terminating += 1;
                    break ExecEnd::Done;
                }
                SystemStatus::Violation(t, message) => {
                    stats.violations += 1;
                    break ExecEnd::Error(SearchOutcome::SafetyViolation(Counterexample {
                        kind: CounterexampleKind::Safety,
                        message: format!("{}: {message}", sys.thread_name(t)),
                        schedule: std::mem::take(schedule),
                        execution,
                    }));
                }
            }

            if depth >= self.config.depth_bound {
                if self.config.fairness.is_some() {
                    // Under fairness, a bound hit is a divergence warning:
                    // classify it heuristically (Section 2's outcomes 2/3).
                    // It counts toward `divergences`, not `nonterminating`
                    // — that counter is the unfair baseline's wasted-cut
                    // metric (Figure 2), and counting the same hit in both
                    // would double-book one event.
                    let kind = scratch
                        .steps_since_yield
                        .iter()
                        .enumerate()
                        .filter(|&(_, &s)| s >= self.config.gs_threshold)
                        .max_by_key(|&(_, &s)| s)
                        .map(|(i, &s)| DivergenceKind::GoodSamaritanSuspect {
                            thread: chess_kernel::ThreadId::new(i),
                            steps_without_yield: s,
                        })
                        .unwrap_or(DivergenceKind::LivelockSuspect);
                    stats.divergences += 1;
                    break ExecEnd::Error(SearchOutcome::Divergence(Divergence {
                        kind,
                        schedule: std::mem::take(schedule),
                        execution,
                    }));
                }
                stats.nonterminating += 1;
                break ExecEnd::Done;
            }

            if depth % 4096 == 4095 {
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    break ExecEnd::Interrupted(BudgetKind::Time);
                }
                if self.stop_requested() {
                    break ExecEnd::Interrupted(BudgetKind::Cancelled);
                }
            }

            // The post-step enabled set of the previous iteration IS this
            // iteration's pre-step set — nothing steps in between.
            if have_es {
                std::mem::swap(&mut scratch.es, &mut scratch.es_after);
            } else {
                sys.enabled_set_into(&mut scratch.es);
            }
            let es = &scratch.es;
            let schedulable: &TidSet = match &fair {
                Some(f) => {
                    f.schedulable_into(es, &mut scratch.schedulable);
                    &scratch.schedulable
                }
                None => es,
            };
            debug_assert_eq!(
                schedulable.is_empty(),
                es.is_empty(),
                "Theorem 3: T empty iff ES empty"
            );
            scratch.options.clear();
            // Per-option footprints, computed only for strategies that
            // apply partial-order reduction. Yielding options are forced
            // universal: a yield mutates the fair scheduler's priority
            // state, so it commutes with nothing and must never sleep.
            // The footprint buffers persist across steps; only the first
            // `n_fps` are live this step.
            let want_fps = self.strategy.wants_footprints();
            let mut n_fps = 0usize;
            // Flush flags parallel to `options`, materialized only when a
            // flusher lane is actually schedulable (never under SC): the
            // strategies treat an empty slice as all-false.
            scratch.flushes.clear();
            let mut any_flush = false;
            for t in schedulable.iter() {
                if want_fps {
                    if sys.is_yielding(t) {
                        scratch.fp.make_universal();
                    } else {
                        // Every transition writes its own thread's state
                        // (pc, locals), so decisions of one thread are
                        // pairwise dependent — without this, the two
                        // branches of a data choice would look independent
                        // and sleep sets would prune one of them.
                        sys.footprint_into(t, &mut scratch.fp);
                        scratch.fp.push(
                            chess_kernel::ObjectRef::Thread(t),
                            chess_kernel::AccessKind::Write,
                        );
                    }
                }
                let is_flush = sys.is_flush(t);
                any_flush |= is_flush;
                for c in 0..sys.branching(t) {
                    scratch.options.push(Decision {
                        thread: t,
                        choice: c as u32,
                    });
                    scratch.flushes.push(is_flush);
                    if want_fps {
                        if let Some(slot) = scratch.footprints.get_mut(n_fps) {
                            slot.clone_from(&scratch.fp);
                        } else {
                            scratch.footprints.push(scratch.fp.clone());
                        }
                        n_fps += 1;
                    }
                }
            }
            if !any_flush {
                scratch.flushes.clear();
            }
            let point = SchedulePoint {
                depth,
                options: &scratch.options,
                footprints: &scratch.footprints[..n_fps],
                prev,
                prev_enabled: prev.is_some_and(|p| es.contains(p)),
                prev_schedulable: prev.is_some_and(|p| schedulable.contains(p)),
                fairness_filtered: schedulable.len() != es.len(),
                flushes: &scratch.flushes,
            };
            let Some(d) = self.strategy.pick(&point) else {
                stats.abandoned += 1;
                break ExecEnd::Done;
            };
            debug_assert!(
                scratch.options.contains(&d),
                "strategy picked unavailable {d:?}"
            );

            // Commit the decision to the schedule *before* stepping: if
            // the workload panics inside `step`, the caller reports the
            // panic with the triggering decision already on record, so
            // replaying the schedule re-triggers it deterministically.
            schedule.push(d);
            let kind = sys.step(d.thread, d.choice);
            sys.enabled_set_into(&mut scratch.es_after);
            have_es = true;
            if let Some(f) = fair.as_mut() {
                f.grow(sys.thread_count());
                f.on_scheduled(d.thread, &scratch.es, &scratch.es_after, kind.is_yield());
            }
            scratch.steps_since_yield.resize(sys.thread_count(), 0);
            if kind.is_yield() {
                scratch.steps_since_yield[d.thread.index()] = 0;
            } else {
                scratch.steps_since_yield[d.thread.index()] += 1;
            }
            stats.transitions += 1;
            depth += 1;
            // Flush steps are transparent to continuation tracking: `prev`
            // keeps pointing at the last *program* thread, so a buffer
            // drain between two steps of one thread does not make the
            // continuation look like a paid preemption under CB.
            if !sys.is_flush(d.thread) {
                prev = Some(d.thread);
            }
            obs.on_state(&sys, depth);

            if self.config.detect_cycles && sys.status().is_running() {
                // Only running states can extend a cycle. A violating
                // transition may leave the captured state unchanged (the
                // violation aborts the step before the guest observes it),
                // and treating that repeat as a cycle would misreport the
                // safety violation as a divergence.
                if let Some(slot) = scratch.es_history.get_mut(hist_len) {
                    slot.clear();
                    slot.union_with(&scratch.es);
                } else {
                    scratch.es_history.push(scratch.es.clone());
                }
                hist_len += 1;
                let fp = self.combined_fingerprint(&sys, fair.as_ref());
                if let Some(&start_idx) = scratch.seen.get(&fp) {
                    // Transitions start_idx..depth form a repeatable cycle.
                    stats.divergences += 1;
                    let cycle_len = depth - start_idx;
                    let scheduled: TidSet = schedule[start_idx..depth]
                        .iter()
                        .map(|d| d.thread)
                        .collect();
                    let mut enabled_in_cycle = TidSet::new();
                    for e in &scratch.es_history[start_idx..depth] {
                        enabled_in_cycle.union_with(e);
                    }
                    let starved = enabled_in_cycle.difference(&scheduled).first();
                    let kind = match starved {
                        None => {
                            stats.fair_cycles += 1;
                            DivergenceKind::FairCycle {
                                cycle_start: start_idx,
                                cycle_len,
                            }
                        }
                        Some(starved) => {
                            stats.unfair_cycles += 1;
                            DivergenceKind::UnfairCycle {
                                cycle_start: start_idx,
                                cycle_len,
                                starved,
                            }
                        }
                    };
                    break ExecEnd::Error(SearchOutcome::Divergence(Divergence {
                        kind,
                        schedule: std::mem::take(schedule),
                        execution,
                    }));
                }
                scratch.seen.insert(fp, depth);
            }
        };
        stats.max_depth = stats.max_depth.max(depth);
        obs.on_execution_end(&sys, depth);
        pool.release(sys);
        end
    }

    fn combined_fingerprint(&self, sys: &P, fair: Option<&FairScheduler>) -> u64 {
        let prog = sys.fingerprint();
        match fair {
            Some(f) => prog ^ f.state_fingerprint().rotate_left(1),
            None => prog,
        }
    }
}

/// Iterative context bounding (Section 4): runs searches with preemption
/// bounds `0..=max_bound` in order, stopping early at the first error.
/// Returns the report for each bound that ran.
pub fn iterative_context_bounding<P, F>(
    factory: F,
    config: Config,
    max_bound: u32,
) -> Vec<(u32, SearchReport)>
where
    P: TransitionSystem,
    F: FnMut() -> P,
{
    iterative_context_bounding_resumable(factory, config, max_bound, 0, |_, _| {})
}

/// [`iterative_context_bounding`] with crash-safe progress: the sweep
/// starts at `start_bound` (0 for a fresh run, `b + 1` to resume after a
/// journal recorded bound `b` as finished) and `on_bound_complete` fires
/// after each bound's search returns — the hook where a caller persists
/// bound-level progress. Running the remaining bounds of an interrupted
/// sweep produces exactly the reports the uninterrupted sweep would have
/// produced for those bounds.
pub fn iterative_context_bounding_resumable<P, F>(
    mut factory: F,
    config: Config,
    max_bound: u32,
    start_bound: u32,
    mut on_bound_complete: impl FnMut(u32, &SearchReport),
) -> Vec<(u32, SearchReport)>
where
    P: TransitionSystem,
    F: FnMut() -> P,
{
    let mut reports = Vec::new();
    for bound in start_bound..=max_bound {
        let strategy = crate::strategy::ContextBounded::new(bound);
        let report = Explorer::new(&mut factory, strategy, config.clone()).run();
        let stop = report.outcome.found_error();
        on_bound_complete(bound, &report);
        reports.push((bound, report));
        if stop {
            break;
        }
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{Dfs, RandomWalk};
    use crate::system::testsys::{Act, Script};

    /// Figure 3's program: t sets x, u spins (check; yield) until x != 0.
    /// Modeled as: u loops on WaitNonZero? No — the spin must be
    /// nonblocking. We emulate with an unbounded yield loop cut by the
    /// wait: u alternates Step/Yield while counter 0 is zero... The
    /// Script type has no loops, so for explorer tests we use the kernel
    /// workloads in integration tests and keep Script tests acyclic.
    fn two_step_scripts() -> Script {
        Script::new(vec![vec![Act::Step, Act::Step], vec![Act::Step]], 0)
    }

    #[test]
    fn dfs_counts_all_interleavings() {
        let mut ex = Explorer::new(two_step_scripts, Dfs::new(), Config::fair());
        let report = ex.run();
        assert_eq!(report.outcome, SearchOutcome::Complete);
        // Interleavings of aab with one b: positions for b = 3.
        assert_eq!(report.stats.executions, 3);
        assert_eq!(report.stats.terminating, 3);
        assert_eq!(report.stats.transitions, 9);
        assert_eq!(report.stats.max_depth, 3);
    }

    #[test]
    fn deadlock_reported_with_schedule() {
        let factory = || Script::new(vec![vec![Act::Step, Act::Dec(0)]], 1);
        let mut ex = Explorer::new(factory, Dfs::new(), Config::fair());
        let report = ex.run();
        match report.outcome {
            SearchOutcome::Deadlock(cex) => {
                assert_eq!(cex.schedule.len(), 1);
                assert_eq!(cex.execution, 1);
            }
            o => panic!("expected deadlock, got {o:?}"),
        }
    }

    #[test]
    fn deadlock_tolerated_when_configured() {
        let factory = || Script::new(vec![vec![Act::Step, Act::Dec(0)]], 1);
        let config = Config::fair().with_deadlock_is_error(false);
        let mut ex = Explorer::new(factory, Dfs::new(), config);
        let report = ex.run();
        assert_eq!(report.outcome, SearchOutcome::Complete);
        assert_eq!(report.stats.deadlocks, 1);
    }

    #[test]
    fn execution_budget_respected() {
        let factory = two_step_scripts;
        let config = Config::fair().with_max_executions(2);
        let mut ex = Explorer::new(factory, Dfs::new(), config);
        let report = ex.run();
        assert_eq!(
            report.outcome,
            SearchOutcome::BudgetExhausted(BudgetKind::Executions)
        );
        assert_eq!(report.stats.executions, 2);
    }

    #[test]
    fn random_walk_terminates_via_budget() {
        let config = Config::fair().with_max_executions(16);
        let mut ex = Explorer::new(two_step_scripts, RandomWalk::new(3), config);
        let report = ex.run();
        assert_eq!(report.stats.executions, 16);
    }

    #[test]
    fn observer_sees_every_state_occurrence() {
        let mut obs = crate::observer::CountingObserver::default();
        let mut ex = Explorer::new(two_step_scripts, Dfs::new(), Config::fair());
        let report = ex.run_observed(&mut obs);
        // Each execution reports initial + 3 = 4 occurrences.
        assert_eq!(obs.states_seen, 4 * report.stats.executions);
        assert_eq!(obs.executions, report.stats.executions);
    }

    /// A depth-bound hit is booked once: as a `divergences` warning under
    /// fairness, never also as an unfair-baseline `nonterminating` cut.
    #[test]
    fn fair_bound_hit_is_divergence_not_nonterminating() {
        let config = Config::fair().with_depth_bound(2).with_stop_on_error(false);
        let mut ex = Explorer::new(two_step_scripts, Dfs::new(), config);
        let report = ex.run();
        assert!(report.stats.divergences > 0, "{:?}", report.stats);
        assert_eq!(report.stats.nonterminating, 0);
        assert_eq!(
            report.stats.divergences, report.stats.executions,
            "every execution of the 3-step script hits the bound at depth 2"
        );
    }

    /// The same bound hit without fairness is a counted cut, not an error.
    #[test]
    fn unfair_bound_hit_is_nonterminating_not_divergence() {
        let config = Config::unfair().with_depth_bound(2);
        let mut ex = Explorer::new(two_step_scripts, Dfs::new(), config);
        let report = ex.run();
        assert_eq!(report.stats.divergences, 0);
        assert_eq!(report.stats.nonterminating, report.stats.executions);
    }

    #[test]
    fn iterative_cb_runs_increasing_bounds() {
        let reports = iterative_context_bounding(two_step_scripts, Config::fair(), 2);
        assert_eq!(reports.len(), 3);
        assert!(reports.iter().all(|(_, r)| !r.outcome.found_error()));
        // Larger bounds explore at least as many executions.
        assert!(reports[0].1.stats.executions <= reports[2].1.stats.executions);
    }

    /// Resuming an iterative-CB sweep at a recorded bound yields exactly
    /// the reports the uninterrupted sweep produced for those bounds.
    #[test]
    fn iterative_cb_resumes_at_recorded_bound() {
        let zero_wall = |mut r: SearchReport| {
            r.stats.wall = Duration::ZERO;
            r
        };
        let full = iterative_context_bounding(two_step_scripts, Config::fair(), 2);
        let mut completed = Vec::new();
        iterative_context_bounding_resumable(two_step_scripts, Config::fair(), 2, 0, |b, _| {
            completed.push(b)
        });
        assert_eq!(completed, vec![0, 1, 2]);
        // Simulate a crash after bound 0 finished: resume at bound 1.
        let resumed =
            iterative_context_bounding_resumable(two_step_scripts, Config::fair(), 2, 1, |_, _| {});
        assert_eq!(resumed.len(), 2);
        for ((b_full, r_full), (b_res, r_res)) in full[1..].iter().zip(&resumed) {
            assert_eq!(b_full, b_res);
            assert_eq!(zero_wall(r_full.clone()), zero_wall(r_res.clone()));
        }
    }

    /// A panicking workload becomes a replayable `Outcome::Panic`, never
    /// an aborted search.
    #[test]
    fn workload_panic_is_isolated_and_replayable() {
        let factory = || Script::new(vec![vec![Act::Step, Act::Step], vec![Act::Panic]], 0);
        let mut ex = Explorer::new(factory, Dfs::new(), Config::fair());
        let report = ex.run();
        let SearchOutcome::Panic(cex) = &report.outcome else {
            panic!("expected panic outcome, got {:?}", report.outcome);
        };
        assert_eq!(cex.kind, CounterexampleKind::Panic);
        assert_eq!(cex.message, "scripted panic");
        assert_eq!(report.stats.panics, 1);
        assert_eq!(report.stats.violations, 1);
        assert_eq!(
            report.stats.first_error_execution,
            Some(cex.execution),
            "panic must be booked like any other error"
        );
        // The panicking decision is on the schedule: replay re-triggers it.
        assert!(!cex.schedule.is_empty());
        assert!(crate::minimize::reproduces(
            factory,
            &Config::fair(),
            &cex.schedule,
            crate::minimize::OutcomeKind::Panic,
        ));
    }

    /// With `stop_on_error` off, every panicking schedule is counted and
    /// the enumeration still completes.
    #[test]
    fn panics_counted_without_stopping() {
        let factory = || Script::new(vec![vec![Act::Step], vec![Act::Panic]], 0);
        let config = Config::fair().with_stop_on_error(false);
        let mut ex = Explorer::new(factory, Dfs::new(), config);
        let report = ex.run();
        assert_eq!(report.outcome, SearchOutcome::Complete);
        assert_eq!(report.stats.executions, 2);
        assert_eq!(report.stats.panics, 2, "{:?}", report.stats);
    }

    /// Render of a panic counterexample must not re-abort: the replayed
    /// panic is caught and printed.
    #[test]
    fn panic_counterexample_renders() {
        let factory = || Script::new(vec![vec![Act::Panic]], 0);
        let report = Explorer::new(factory, Dfs::new(), Config::fair()).run();
        let SearchOutcome::Panic(cex) = report.outcome else {
            panic!("expected panic");
        };
        let rendered = cex.render(factory);
        assert!(
            rendered.contains("panic (1 steps): scripted panic"),
            "{rendered}"
        );
        assert!(
            rendered.contains("=>  panic in s0: scripted panic"),
            "{rendered}"
        );
    }

    /// A search stopped by the wall-clock budget reports incomplete —
    /// never an exhaustive pass.
    #[test]
    fn time_budget_expiry_is_reported_incomplete() {
        let config = Config::fair().with_time_budget(Duration::ZERO);
        let mut ex = Explorer::new(two_step_scripts, Dfs::new(), config);
        let report = ex.run();
        assert_eq!(
            report.outcome,
            SearchOutcome::BudgetExhausted(BudgetKind::Time)
        );
        assert!(!report.outcome.is_exhaustive_pass());
        let text = report.to_string();
        assert!(
            text.contains("search incomplete (time budget exhausted)"),
            "{text}"
        );
        assert!(!text.contains("search complete"), "{text}");
    }

    /// Checkpoint cadence: `every = 2` over a 3-execution space emits
    /// exactly one periodic checkpoint (no final one — the search
    /// completed, so there is nothing to resume).
    #[test]
    fn periodic_checkpoints_fire_on_cadence() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let seen: Rc<RefCell<Vec<SearchCheckpoint>>> = Rc::default();
        let sink = Rc::clone(&seen);
        let mut ex = Explorer::new(two_step_scripts, Dfs::new(), Config::fair())
            .with_checkpointing(2, move |c| sink.borrow_mut().push(c.clone()));
        let report = ex.run();
        assert_eq!(report.outcome, SearchOutcome::Complete);
        let seen = seen.borrow();
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].stats.executions, 2);
        assert!(matches!(
            seen[0].strategy,
            crate::strategy::StrategySnapshot::Dfs { .. }
        ));
    }

    /// Kill-at-boundary convergence: stop after one execution, emit the
    /// final checkpoint, resume into a fresh explorer — the final report
    /// matches the uninterrupted run exactly (wall time zeroed).
    #[test]
    fn boundary_checkpoint_resume_converges() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let zero_wall = |mut r: SearchReport| {
            r.stats.wall = Duration::ZERO;
            r
        };
        let full = Explorer::new(two_step_scripts, Dfs::new(), Config::fair()).run();

        let seen: Rc<RefCell<Vec<SearchCheckpoint>>> = Rc::default();
        let sink = Rc::clone(&seen);
        let interrupted = Explorer::new(
            two_step_scripts,
            Dfs::new(),
            Config::fair().with_max_executions(1),
        )
        .with_checkpointing(0, move |c| sink.borrow_mut().push(c.clone()))
        .run();
        assert_eq!(
            interrupted.outcome,
            SearchOutcome::BudgetExhausted(BudgetKind::Executions)
        );
        let ckpt = seen.borrow().last().cloned().expect("final checkpoint");
        assert_eq!(ckpt.stats.executions, 1);

        let mut strategy = Dfs::new();
        strategy.restore(&ckpt.strategy).unwrap();
        let resumed = Explorer::new(two_step_scripts, strategy, Config::fair())
            .with_initial_stats(ckpt.stats)
            .run();
        assert_eq!(zero_wall(resumed), zero_wall(full));
    }

    /// Mid-execution interruption rolls the partial execution back to the
    /// last boundary; resume re-runs it whole and converges.
    #[test]
    fn mid_execution_interrupt_resume_converges() {
        use std::cell::RefCell;
        use std::rc::Rc;

        /// Observer that raises the stop flag once the execution passes
        /// the given depth, forcing the explorer's in-execution poll (at
        /// depth 4095) to interrupt mid-execution.
        struct StopAtDepth {
            stop: Arc<AtomicBool>,
            depth: usize,
        }
        impl Observer<Script> for StopAtDepth {
            fn on_state(&mut self, _: &Script, depth: usize) {
                if depth >= self.depth {
                    self.stop.store(true, Ordering::Relaxed);
                }
            }
            fn on_execution_end(&mut self, _: &Script, _: usize) {}
        }

        let deep = || Script::new(vec![vec![Act::Step; 5000]], 0);
        let zero_wall = |mut r: SearchReport| {
            r.stats.wall = Duration::ZERO;
            r
        };
        let full = Explorer::new(deep, Dfs::new(), Config::fair()).run();
        assert_eq!(full.outcome, SearchOutcome::Complete);
        assert_eq!(full.stats.transitions, 5000);

        let stop = Arc::new(AtomicBool::new(false));
        let seen: Rc<RefCell<Vec<SearchCheckpoint>>> = Rc::default();
        let sink = Rc::clone(&seen);
        let mut obs = StopAtDepth {
            stop: Arc::clone(&stop),
            depth: 100,
        };
        let interrupted = Explorer::new(deep, Dfs::new(), Config::fair())
            .with_stop_flag(stop)
            .with_checkpointing(0, move |c| sink.borrow_mut().push(c.clone()))
            .run_observed(&mut obs);
        assert_eq!(
            interrupted.outcome,
            SearchOutcome::BudgetExhausted(BudgetKind::Cancelled)
        );
        // Interrupted at depth 4095 of execution 1: the checkpoint rolled
        // back to the boundary (zero completed executions), while the
        // snapshot keeps the in-flight prefix for replay.
        let ckpt = seen.borrow().last().cloned().expect("final checkpoint");
        assert_eq!(ckpt.stats.executions, 0);
        assert_eq!(ckpt.stats.transitions, 0);

        let mut strategy = Dfs::new();
        strategy.restore(&ckpt.strategy).unwrap();
        let resumed = Explorer::new(deep, strategy, Config::fair())
            .with_initial_stats(ckpt.stats)
            .run();
        assert_eq!(zero_wall(resumed), zero_wall(full));
    }
}
