//! The transition-system interface the explorer drives.
//!
//! The paper's Algorithm 1 is phrased over an abstract program `Q` with a
//! `NextState` function and `enabled(t)` / `yield(t)` predicates.
//! [`TransitionSystem`] is that interface; `chess-kernel`'s `Kernel`
//! implements it, and tests implement it directly for small hand-built
//! state spaces.

use chess_kernel::{Capture, Footprint, Kernel, KernelStatus, StepKind, ThreadId, TidSet};

/// Status of a program under exploration, mirroring
/// [`chess_kernel::KernelStatus`] at the abstract level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SystemStatus {
    /// At least one thread is enabled.
    Running,
    /// All threads finished: a terminating execution.
    Terminated,
    /// No thread enabled, some unfinished.
    Deadlock,
    /// A safety violation with a message, attributed to a thread.
    Violation(ThreadId, String),
}

impl SystemStatus {
    /// Returns whether more transitions can be taken.
    pub fn is_running(&self) -> bool {
        matches!(self, SystemStatus::Running)
    }
}

/// An explorable multithreaded program: the paper's `Q`.
///
/// All methods except [`TransitionSystem::step`] must be pure observations;
/// `step` must be deterministic given `(t, choice)`. Stateless exploration
/// re-creates instances via a factory closure and replays schedules, so
/// two instances produced by the same factory must behave identically.
pub trait TransitionSystem {
    /// Number of threads created so far (finished threads included).
    fn thread_count(&self) -> usize;

    /// The paper's `enabled(t)`.
    fn enabled(&self, t: ThreadId) -> bool;

    /// The set of enabled threads (the paper's `ES`).
    ///
    /// # Override contract
    ///
    /// The default collects `enabled(t)` over every thread id. An
    /// implementation may override this with a faster equivalent (the
    /// kernel does, walking its thread table once), but the override
    /// **must** return exactly the set the default would: the explorer,
    /// the fair scheduler, and the parallel root partitioner all assume
    /// `enabled_set() == {t | enabled(t)}` at every state. The
    /// `enabled_set_default_agrees_with_*` property tests in this module
    /// pin this agreement on fuzzed systems and on the kernel.
    fn enabled_set(&self) -> TidSet {
        (0..self.thread_count())
            .map(ThreadId::new)
            .filter(|&t| self.enabled(t))
            .collect()
    }

    /// [`TransitionSystem::enabled_set`] written into a caller-provided
    /// set — the allocation-free form the explorer's per-step loop uses.
    /// Overrides must produce exactly what `enabled_set` returns.
    fn enabled_set_into(&self, out: &mut TidSet) {
        *out = self.enabled_set();
    }

    /// Rebuilds `self` into a fresh copy of `template`, reusing existing
    /// allocations, and returns `true` — or returns `false` to signal
    /// pooling is unsupported (the default), making the explorer fall
    /// back to its factory. A `true` implementation must be behaviorally
    /// indistinguishable from replacing `self` with a clone of
    /// `template`: same traces, same captures, same stats.
    fn reset_from(&mut self, template: &Self) -> bool
    where
        Self: Sized,
    {
        let _ = template;
        false
    }

    /// The paper's `yield(t)`: `t` is enabled and its next transition is a
    /// yield.
    fn is_yielding(&self, t: ThreadId) -> bool;

    /// Number of data-nondeterminism branches for thread `t`'s next
    /// transition (1 unless the transition is a `Choose`).
    fn branching(&self, t: ThreadId) -> usize;

    /// Executes one transition of `t` with data choice `choice`, returning
    /// whether it was a yielding transition.
    fn step(&mut self, t: ThreadId, choice: u32) -> StepKind;

    /// The dependence footprint of `t`'s next transition: which objects it
    /// touches and how (see [`chess_kernel::Footprint`]).
    ///
    /// The default is [`Footprint::universal`] — dependent with every
    /// other transition — which is always sound and makes partial-order
    /// reduction a no-op. Systems whose accesses are statically known
    /// (the fuzz generator's, the test scripts) override this with
    /// precise footprints so sleep-set reduction can prune equivalent
    /// interleavings. An override must be a pure observation and must
    /// describe a superset of the objects the next `step(t, _)` actually
    /// touches; under-reporting makes reduction unsound.
    fn footprint(&self, t: ThreadId) -> Footprint {
        let _ = t;
        Footprint::universal()
    }

    /// [`TransitionSystem::footprint`] written into a caller-provided
    /// footprint — the allocation-free form for the explorer's per-option
    /// loop. Overrides must produce exactly what `footprint` returns.
    fn footprint_into(&self, t: ThreadId, fp: &mut Footprint) {
        *fp = self.footprint(t);
    }

    /// The derived commutativity relation: may the next transitions of
    /// `a` and `b` fail to commute?
    ///
    /// Two transitions are dependent when their [footprints](Self::footprint)
    /// conflict; independent transitions reach the same state in either
    /// order, which is what sleep-set pruning exploits. A thread is always
    /// dependent with itself: every transition writes its own thread's
    /// state (program counter, locals) even when its object footprint is
    /// empty.
    fn dependent(&self, a: ThreadId, b: ThreadId) -> bool {
        a == b || self.footprint(a).dependent(&self.footprint(b))
    }

    /// Is thread `t` a store-buffer *flusher* pseudo-thread (a relaxed
    /// memory-system transition rather than program code)?
    ///
    /// Flush steps are exempt from the context-bounding preemption budget
    /// (mirroring §5's treatment of fairness-forced switches): a buffer
    /// drain is not a preemption the program must be robust to counting.
    /// The default — no flushers — is correct for every system without a
    /// relaxed-memory mode.
    fn is_flush(&self, t: ThreadId) -> bool {
        let _ = t;
        false
    }

    /// Current status.
    fn status(&self) -> SystemStatus;

    /// 64-bit fingerprint of the current abstract state (used by cycle
    /// detection and coverage).
    fn fingerprint(&self) -> u64;

    /// Exact byte signature of the current abstract state (used as the
    /// collision-free visited-set key).
    fn state_bytes(&self) -> Vec<u8>;

    /// [`TransitionSystem::state_bytes`] written into a caller-provided
    /// buffer (cleared first) — the allocation-free form for coverage
    /// tracking. Overrides must produce exactly what `state_bytes`
    /// returns.
    fn state_bytes_into(&self, out: &mut Vec<u8>) {
        out.clear();
        out.extend_from_slice(&self.state_bytes());
    }

    /// Human-readable description of `t`'s pending operation, for traces.
    fn describe_op(&self, t: ThreadId) -> String;

    /// Display name of thread `t`.
    fn thread_name(&self, t: ThreadId) -> String;
}

impl<S: Capture + Clone> TransitionSystem for Kernel<S> {
    fn thread_count(&self) -> usize {
        Kernel::thread_count(self)
    }

    fn enabled(&self, t: ThreadId) -> bool {
        Kernel::enabled(self, t)
    }

    fn enabled_set(&self) -> TidSet {
        Kernel::enabled_set(self)
    }

    fn enabled_set_into(&self, out: &mut TidSet) {
        Kernel::enabled_set_into(self, out)
    }

    fn reset_from(&mut self, template: &Self) -> bool {
        Kernel::reset_from(self, template);
        true
    }

    fn is_yielding(&self, t: ThreadId) -> bool {
        Kernel::is_yielding(self, t)
    }

    fn branching(&self, t: ThreadId) -> usize {
        Kernel::branching(self, t)
    }

    fn step(&mut self, t: ThreadId, choice: u32) -> StepKind {
        if self.validate_effects() {
            Kernel::step_validated(self, t, choice).kind
        } else {
            // Only the step kind is observed here: skip the footprint
            // query the full `Kernel::step` performs for its `StepInfo`.
            Kernel::step_fast(self, t, choice).kind
        }
    }

    fn footprint(&self, t: ThreadId) -> Footprint {
        // Sync-object accesses merged with the guest's declared
        // shared-state effects. Guests that declare nothing default to a
        // whole-state write (sound: their transitions never commute);
        // guests that declare per-cell read/write sets get real pruning.
        Kernel::next_footprint(self, t)
    }

    fn footprint_into(&self, t: ThreadId, fp: &mut Footprint) {
        Kernel::next_footprint_into(self, t, fp)
    }

    fn is_flush(&self, t: ThreadId) -> bool {
        Kernel::is_flush(self, t)
    }

    fn status(&self) -> SystemStatus {
        match Kernel::status(self) {
            KernelStatus::Running => SystemStatus::Running,
            KernelStatus::Terminated => SystemStatus::Terminated,
            KernelStatus::Deadlock => SystemStatus::Deadlock,
            KernelStatus::Violation(v) => SystemStatus::Violation(v.thread, v.message),
        }
    }

    fn fingerprint(&self) -> u64 {
        Kernel::fingerprint(self)
    }

    fn state_bytes(&self) -> Vec<u8> {
        self.capture_state().into_bytes()
    }

    fn state_bytes_into(&self, out: &mut Vec<u8>) {
        Kernel::state_bytes_into(self, out)
    }

    fn describe_op(&self, t: ThreadId) -> String {
        format!("{:?}", self.next_op(t))
    }

    fn thread_name(&self, t: ThreadId) -> String {
        Kernel::thread_name(self, t).to_string()
    }
}

#[cfg(test)]
pub(crate) mod testsys {
    //! A tiny hand-built transition system for unit-testing the scheduler
    //! and strategies without the kernel: each thread is a fixed script of
    //! (yield?, enabled-condition) steps over a vector clock state.

    use super::*;

    /// One scripted action of a test thread.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Act {
        /// Ordinary step.
        Step,
        /// Yielding step.
        Yield,
        /// Step enabled only when the given counter slot is nonzero.
        WaitNonZero(usize),
        /// Step that increments the given counter slot.
        Inc(usize),
        /// Step that decrements the given counter slot (enabled iff > 0).
        Dec(usize),
        /// Step that panics when executed — models a workload bug that
        /// unwinds out of the program under test.
        Panic,
    }

    /// Scripted multithreaded test program.
    #[derive(Debug, Clone)]
    pub struct Script {
        pub threads: Vec<Vec<Act>>,
        pub pcs: Vec<usize>,
        pub counters: Vec<u64>,
    }

    impl Script {
        pub fn new(threads: Vec<Vec<Act>>, counters: usize) -> Self {
            let pcs = vec![0; threads.len()];
            Script {
                threads,
                pcs,
                counters: vec![0; counters],
            }
        }

        fn current(&self, t: ThreadId) -> Option<Act> {
            self.threads[t.index()].get(self.pcs[t.index()]).copied()
        }
    }

    impl TransitionSystem for Script {
        fn thread_count(&self) -> usize {
            self.threads.len()
        }

        fn enabled(&self, t: ThreadId) -> bool {
            match self.current(t) {
                None => false,
                Some(Act::WaitNonZero(c)) | Some(Act::Dec(c)) => self.counters[c] > 0,
                Some(_) => true,
            }
        }

        fn is_yielding(&self, t: ThreadId) -> bool {
            self.enabled(t) && self.current(t) == Some(Act::Yield)
        }

        fn branching(&self, _t: ThreadId) -> usize {
            1
        }

        fn footprint(&self, t: ThreadId) -> Footprint {
            use chess_kernel::{AccessKind, ObjectRef};
            match self.current(t) {
                None | Some(Act::Step) | Some(Act::Yield) | Some(Act::Panic) => Footprint::local(),
                Some(Act::WaitNonZero(c)) => Footprint::from_accesses([chess_kernel::Access::new(
                    ObjectRef::Custom("counter", c as u32),
                    AccessKind::Read,
                )]),
                Some(Act::Inc(c)) | Some(Act::Dec(c)) => {
                    Footprint::from_accesses([chess_kernel::Access::new(
                        ObjectRef::Custom("counter", c as u32),
                        AccessKind::Write,
                    )])
                }
            }
        }

        fn step(&mut self, t: ThreadId, _choice: u32) -> StepKind {
            let act = self.current(t).expect("stepping finished thread");
            match act {
                Act::Inc(c) => self.counters[c] += 1,
                Act::Dec(c) => self.counters[c] -= 1,
                Act::Panic => panic!("scripted panic"),
                _ => {}
            }
            self.pcs[t.index()] += 1;
            if act == Act::Yield {
                StepKind::Yield
            } else {
                StepKind::Normal
            }
        }

        fn status(&self) -> SystemStatus {
            let ids = (0..self.thread_count()).map(ThreadId::new);
            let mut active = false;
            for t in ids {
                if self.current(t).is_some() {
                    active = true;
                    if self.enabled(t) {
                        return SystemStatus::Running;
                    }
                }
            }
            if active {
                SystemStatus::Deadlock
            } else {
                SystemStatus::Terminated
            }
        }

        fn fingerprint(&self) -> u64 {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for &pc in &self.pcs {
                h = (h ^ pc as u64).wrapping_mul(0x100_0000_01b3);
            }
            for &c in &self.counters {
                h = (h ^ c).wrapping_mul(0x100_0000_01b3);
            }
            h
        }

        fn state_bytes(&self) -> Vec<u8> {
            let mut v = Vec::new();
            for &pc in &self.pcs {
                v.extend_from_slice(&(pc as u64).to_le_bytes());
            }
            for &c in &self.counters {
                v.extend_from_slice(&c.to_le_bytes());
            }
            v
        }

        fn describe_op(&self, t: ThreadId) -> String {
            format!("{:?}", self.current(t))
        }

        fn thread_name(&self, t: ThreadId) -> String {
            format!("s{}", t.index())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testsys::{Act, Script};
    use super::*;

    #[test]
    fn script_runs_to_termination() {
        let mut s = Script::new(vec![vec![Act::Inc(0)], vec![Act::WaitNonZero(0)]], 1);
        let t0 = ThreadId::new(0);
        let t1 = ThreadId::new(1);
        assert!(s.enabled(t0));
        assert!(!s.enabled(t1));
        s.step(t0, 0);
        assert!(s.enabled(t1));
        s.step(t1, 0);
        assert_eq!(s.status(), SystemStatus::Terminated);
    }

    #[test]
    fn script_deadlock() {
        let mut s = Script::new(vec![vec![Act::Dec(0)]], 1);
        assert_eq!(s.status(), SystemStatus::Deadlock);
        s.counters[0] = 1;
        assert_eq!(s.status(), SystemStatus::Running);
    }

    #[test]
    fn kernel_implements_transition_system() {
        let k: Kernel<()> = Kernel::new(());
        assert_eq!(TransitionSystem::thread_count(&k), 0);
        assert_eq!(TransitionSystem::status(&k), SystemStatus::Terminated);
    }

    /// Recomputes what the trait's default `enabled_set` body returns,
    /// regardless of any override the concrete type installs.
    fn default_enabled_set<S: TransitionSystem>(sys: &S) -> TidSet {
        (0..sys.thread_count())
            .map(ThreadId::new)
            .filter(|&t| sys.enabled(t))
            .collect()
    }

    /// A tiny deterministic LCG so the walks below need no RNG machinery.
    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    #[test]
    fn enabled_set_default_agrees_with_kernel_override() {
        use chess_kernel::{Effects, GuestThread, MutexId, OpDesc, OpResult};

        // Two lock-steppers plus a blocked third thread: exercises states
        // where enabledness differs across threads.
        #[derive(Clone)]
        struct Locker {
            pc: u8,
            m: MutexId,
        }
        impl GuestThread<u32> for Locker {
            fn next_op(&self, _: &u32) -> OpDesc {
                match self.pc {
                    0 => OpDesc::Acquire(self.m),
                    1 => OpDesc::Local,
                    2 => OpDesc::Release(self.m),
                    _ => OpDesc::Finished,
                }
            }
            fn on_op(&mut self, _: OpResult, shared: &mut u32, _: &mut Effects<u32>) {
                if self.pc == 1 {
                    *shared += 1;
                }
                self.pc += 1;
            }
            fn box_clone(&self) -> Box<dyn GuestThread<u32>> {
                Box::new(self.clone())
            }
        }

        let mut rng = 0x5EEDu64;
        for _ in 0..50 {
            let mut k = Kernel::new(0u32);
            let m = k.add_mutex();
            for _ in 0..3 {
                k.spawn(Locker { pc: 0, m });
            }
            loop {
                let over = TransitionSystem::enabled_set(&k);
                assert_eq!(
                    over,
                    default_enabled_set(&k),
                    "kernel enabled_set override must match the trait default"
                );
                let options: Vec<ThreadId> = over.iter().collect();
                if options.is_empty() {
                    break;
                }
                let t = options[lcg(&mut rng) as usize % options.len()];
                TransitionSystem::step(&mut k, t, 0);
            }
        }
    }

    #[test]
    fn enabled_set_default_agrees_on_fuzzed_systems() {
        use crate::fuzz::{derive_seed, generate_system, FuzzConfig};

        for index in 0..40 {
            let seed = derive_seed(0xE5E7, index);
            let mut sys = generate_system(&FuzzConfig::default().with_seed(seed));
            let mut rng = seed | 1;
            for _ in 0..200 {
                let es = sys.enabled_set();
                assert_eq!(
                    es,
                    default_enabled_set(&sys),
                    "fuzzed system enabled_set disagrees with the default (seed {seed})"
                );
                let options: Vec<ThreadId> = es.iter().collect();
                if options.is_empty() {
                    break;
                }
                let t = options[lcg(&mut rng) as usize % options.len()];
                let choice = lcg(&mut rng) as u32 % sys.branching(t).max(1) as u32;
                sys.step(t, choice);
            }
        }
    }

    #[test]
    fn script_footprints_key_on_counters() {
        let s = Script::new(
            vec![
                vec![Act::Inc(0)],
                vec![Act::Dec(1)],
                vec![Act::WaitNonZero(0)],
            ],
            2,
        );
        let t0 = ThreadId::new(0);
        let t1 = ThreadId::new(1);
        let t2 = ThreadId::new(2);
        // Writes to distinct counters commute; read/write on the same
        // counter conflicts.
        assert!(!s.dependent(t0, t1));
        assert!(s.dependent(t0, t2));
        assert!(s.dependent(t0, t0));
        assert!(!s.dependent(t1, t2));
    }

    #[test]
    fn fingerprint_tracks_state_bytes() {
        let mut s = Script::new(vec![vec![Act::Step, Act::Step]], 0);
        let f0 = s.fingerprint();
        let b0 = s.state_bytes();
        s.step(ThreadId::new(0), 0);
        assert_ne!(f0, s.fingerprint());
        assert_ne!(b0, s.state_bytes());
    }
}
