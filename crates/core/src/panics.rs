//! Panic capture for untrusted workloads.
//!
//! A stateless checker drives *real* program code, and real code panics.
//! [`catch_silent`] runs a closure under [`std::panic::catch_unwind`]
//! and, on unwind, returns the panic payload as a string instead of
//! aborting the search. While a capture is in flight the default panic
//! hook is suppressed for the capturing thread, so a panicking workload
//! does not spray backtraces over the report; panics raised outside a
//! capture (checker bugs) still reach the normal hook.

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

thread_local! {
    /// Nesting depth of in-flight [`catch_silent`] calls on this thread.
    static CAPTURE_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Installs (once, process-wide) a panic hook that stays silent while the
/// current thread is inside [`catch_silent`] and delegates to the
/// previously installed hook otherwise.
fn install_quiet_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let capturing = CAPTURE_DEPTH.with(|d| d.get() > 0);
            if !capturing {
                previous(info);
            }
        }));
    });
}

/// Renders a panic payload (the `Box<dyn Any>` from `catch_unwind`) into
/// the message the counterexample will carry.
fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Runs `f`, converting a panic into `Err(message)`.
///
/// The closure is wrapped in [`AssertUnwindSafe`]: callers treat any
/// state reachable by `f` as poisoned on `Err` (the explorer discards
/// the program instance and reports the panic as a counterexample, so
/// broken invariants cannot leak into later executions).
pub fn catch_silent<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    install_quiet_hook();
    CAPTURE_DEPTH.with(|d| d.set(d.get() + 1));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    CAPTURE_DEPTH.with(|d| d.set(d.get() - 1));
    result.map_err(payload_message)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ok_passes_through() {
        assert_eq!(catch_silent(|| 41 + 1), Ok(42));
    }

    #[test]
    fn str_payload_captured() {
        let r = catch_silent(|| -> u32 { panic!("boom") });
        assert_eq!(r, Err("boom".to_string()));
    }

    #[test]
    fn formatted_payload_captured() {
        let x = 7;
        let r = catch_silent(|| -> u32 { panic!("bad value {x}") });
        assert_eq!(r, Err("bad value 7".to_string()));
    }

    #[test]
    fn nested_captures_unwind_innermost_first() {
        let r = catch_silent(|| {
            let inner = catch_silent(|| -> u32 { panic!("inner") });
            assert_eq!(inner, Err("inner".to_string()));
            panic!("outer")
        });
        assert_eq!(r, Err("outer".to_string()));
    }

    #[test]
    fn depth_restored_after_capture() {
        let _ = catch_silent(|| panic!("x"));
        CAPTURE_DEPTH.with(|d| assert_eq!(d.get(), 0));
    }
}
