//! Algorithm 1: the fair demonic scheduler.
//!
//! This module is a line-by-line implementation of Algorithm 1 from the
//! paper. The scheduler maintains, per state, a priority relation
//! `P ⊆ Tid × Tid` and three per-thread *window* sets:
//!
//! * `S(t)` — threads scheduled since the last yield by `t`,
//! * `E(t)` — threads continuously enabled since the last yield by `t`,
//! * `D(t)` — threads disabled by a transition of `t` since its last yield.
//!
//! An edge `(t, u) ∈ P` means `t` may be scheduled only in states where
//! `u` is disabled. Edges are added **only** when `t` yields (line 25),
//! and only toward threads `u` that were starved during `t`'s window —
//! `H = (E(t) ∪ D(t)) \ S(t)` (line 24) — so in the absence of yields the
//! scheduler is fully nondeterministic (Theorem 5), and any infinite
//! execution it generates satisfies `GS ⇒ SF` (Theorem 1).
//!
//! The paper's initialization trick is preserved: `E(u) = ∅`,
//! `D(u) = S(u) = Tid`, so each thread's first yield adds no edges and its
//! first real window begins only after that yield. Dynamically spawned
//! threads receive the same treatment (and are inserted into every
//! existing thread's `S` so an in-progress window cannot blame a thread
//! that did not exist when the window opened).

use chess_kernel::{ThreadId, TidSet};

/// Which threads a yielding thread is penalized against — an ablation
/// knob for the design choice at the heart of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PenaltyScope {
    /// The paper's line 24: `H = (E(t) ∪ D(t)) \ S(t)` — only threads the
    /// yielder actually starved in its window. Keeps the scheduler
    /// demonic enough for full coverage (Theorem 5).
    #[default]
    WindowSets,
    /// Naive over-penalization: on every yield of `t`, add an edge toward
    /// *every other currently enabled thread*. Still fair and still
    /// acyclic (the in-edge removal of line 13 precedes the edge
    /// insertion), but it forces a round-robin-like discipline after
    /// yields and measurably loses state coverage — the ablation that
    /// shows why the window sets matter.
    AllEnabled,
}

/// The fair demonic scheduler of Algorithm 1.
///
/// Drive it with two calls per scheduling point:
///
/// 1. [`FairScheduler::schedulable`] computes the set `T` of line 7 from
///    the enabled set `ES`.
/// 2. After executing the chosen thread's transition,
///    [`FairScheduler::on_scheduled`] performs the bookkeeping of lines
///    12–29.
///
/// # Examples
///
/// ```
/// use chess_core::FairScheduler;
/// use chess_kernel::{ThreadId, TidSet};
///
/// let mut fair = FairScheduler::new(2);
/// let es = TidSet::full(2);
/// // No yields yet: the scheduler is fully nondeterministic.
/// assert_eq!(fair.schedulable(&es).len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct FairScheduler {
    /// `p[t]` is the successor set `{u | (t, u) ∈ P}`.
    p: Vec<TidSet>,
    e: Vec<TidSet>,
    d: Vec<TidSet>,
    s: Vec<TidSet>,
    /// Per-thread yield counter for the `k`-yield parameterization.
    yield_counts: Vec<u64>,
    /// Process only every `k`-th yield of each thread (Section 3 end).
    k: u64,
    /// Penalty-edge scope (ablation; default is the paper's rule).
    scope: PenaltyScope,
}

impl FairScheduler {
    /// Creates a scheduler for a program that starts with `n` threads,
    /// processing every yield (`k = 1`).
    pub fn new(n: usize) -> Self {
        Self::with_k(n, 1)
    }

    /// Creates a scheduler that processes only every `k`-th yield of a
    /// thread, the parameterization the paper suggests for programs whose
    /// states are only reachable through yielding executions.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn with_k(n: usize, k: u64) -> Self {
        assert!(k > 0, "k must be positive");
        let mut fair = FairScheduler {
            p: Vec::new(),
            e: Vec::new(),
            d: Vec::new(),
            s: Vec::new(),
            yield_counts: Vec::new(),
            k,
            scope: PenaltyScope::default(),
        };
        for _ in 0..n {
            fair.push_thread(n);
        }
        fair
    }

    /// Sets the penalty-edge scope (ablation; see [`PenaltyScope`]).
    pub fn with_scope(mut self, scope: PenaltyScope) -> Self {
        self.scope = scope;
        self
    }

    /// Initialization per lines 1–4: empty `P` and `E`, full `D` and `S`
    /// (over the current universe), so the first yield of the thread adds
    /// no edges and its first real window begins after that yield.
    fn push_thread(&mut self, universe: usize) {
        self.p.push(TidSet::new());
        self.e.push(TidSet::new());
        self.d.push(TidSet::full(universe));
        self.s.push(TidSet::full(universe));
        self.yield_counts.push(0);
    }

    /// Number of threads known to the scheduler.
    pub fn thread_count(&self) -> usize {
        self.p.len()
    }

    /// Registers dynamically spawned threads, growing the universe to
    /// `new_count` threads.
    pub fn grow(&mut self, new_count: usize) {
        while self.p.len() < new_count {
            let v = ThreadId::new(self.p.len());
            // A window already in progress cannot have starved a thread
            // that did not exist when it opened: pretend v was scheduled.
            // Only S(u) is touched — membership there already excludes v
            // from H = (E ∪ D) \ S, and D(u) must keep its meaning of
            // "threads disabled by u's transitions" so that behaviorally
            // identical scheduler states keep identical fingerprints
            // (the cycle detector compares `state_fingerprint()`s).
            for u in 0..self.p.len() {
                self.s[u].insert(v);
            }
            self.push_thread(self.p.len() + 1);
        }
    }

    /// Line 7: `T := ES \ pre(P, ES)` — the subset of enabled threads the
    /// priority relation allows to be scheduled.
    ///
    /// Theorem 3 guarantees `T` is empty iff `ES` is empty (the priority
    /// relation never manufactures a deadlock); this is upheld because `P`
    /// stays acyclic.
    pub fn schedulable(&self, es: &TidSet) -> TidSet {
        let mut out = TidSet::new();
        self.schedulable_into(es, &mut out);
        out
    }

    /// [`FairScheduler::schedulable`] written into a caller-provided set,
    /// clearing it first — the allocation-free form for the explorer's
    /// per-step loop.
    pub fn schedulable_into(&self, es: &TidSet, out: &mut TidSet) {
        out.clear();
        for t in es.iter() {
            if !self.p[t.index()].intersects(es) {
                out.insert(t);
            }
        }
    }

    /// Lines 12–29: bookkeeping after thread `t` executed one transition.
    ///
    /// * `es_before` — the enabled set of the state `t` was scheduled in
    ///   (the paper's `curr.ES`);
    /// * `es_after` — the enabled set of the resulting state (`next.ES`);
    /// * `yielded` — the paper's `curr.yield(t)`: whether the executed
    ///   transition was a yield.
    pub fn on_scheduled(
        &mut self,
        t: ThreadId,
        es_before: &TidSet,
        es_after: &TidSet,
        yielded: bool,
    ) {
        let n = self.p.len();
        debug_assert!(t.index() < n, "unknown thread {t}; call grow() first");

        // Line 13: remove all edges with sink t, lowering t's relative
        // priority.
        for u in 0..n {
            self.p[u].remove(t);
        }

        // Lines 14–22: update the window sets of every thread.
        for u in 0..n {
            self.e[u].intersect_with(es_after);
            self.s[u].insert(t);
        }
        // Line 17: D(t) accumulates the threads disabled by t's transition.
        let disabled_now = es_before.difference(es_after);
        self.d[t.index()].union_with(&disabled_now);

        // Lines 23–29: on a (processed) yield of t, penalize t against the
        // threads it starved during its window, then open a new window.
        if yielded {
            self.yield_counts[t.index()] += 1;
            if !self.yield_counts[t.index()].is_multiple_of(self.k) {
                return;
            }
            let ti = t.index();
            let mut h = match self.scope {
                // Line 24: H := (E(t) ∪ D(t)) \ S(t).
                PenaltyScope::WindowSets => {
                    let mut h = self.e[ti].union(&self.d[ti]);
                    h.difference_with(&self.s[ti]);
                    h
                }
                // Ablation: penalize against every other enabled thread.
                PenaltyScope::AllEnabled => es_after.clone(),
            };
            h.remove(t);
            // Line 25: P := P ∪ ({t} × H).
            self.p[ti].union_with(&h);
            // Lines 26–28: reset the window.
            self.e[ti] = es_after.clone();
            self.d[ti] = TidSet::new();
            self.s[ti] = TidSet::new();
            debug_assert!(
                !self.p[ti].contains(t),
                "t ∈ S(t) must have prevented a self-edge"
            );
            debug_assert!(self.is_acyclic(), "P must stay acyclic (Theorem 3)");
        }
    }

    /// The current priority relation as successor sets: `(t, u) ∈ P` iff
    /// `priority_edges()[t].contains(u)`.
    pub fn priority_edges(&self) -> &[TidSet] {
        &self.p
    }

    /// The window set `E(t)` (continuously enabled since `t`'s last yield).
    pub fn window_enabled(&self, t: ThreadId) -> &TidSet {
        &self.e[t.index()]
    }

    /// The window set `D(t)` (disabled by `t` since its last yield).
    pub fn window_disabled(&self, t: ThreadId) -> &TidSet {
        &self.d[t.index()]
    }

    /// The window set `S(t)` (scheduled since `t`'s last yield).
    pub fn window_scheduled(&self, t: ThreadId) -> &TidSet {
        &self.s[t.index()]
    }

    /// Total processed yields of thread `t`.
    pub fn yield_count(&self, t: ThreadId) -> u64 {
        self.yield_counts[t.index()]
    }

    /// A 64-bit fingerprint of the scheduler state (`P`, `E`, `D`, `S`
    /// and the yield phase modulo `k`).
    ///
    /// Combined with the program-state fingerprint this identifies
    /// genuinely repeatable configurations: if the pair repeats along an
    /// execution, the scheduler can reproduce the cycle forever, which is
    /// how the explorer detects livelocks precisely.
    pub fn state_fingerprint(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |v: u64| {
            h = (h ^ v).wrapping_mul(PRIME);
        };
        for group in [&self.p, &self.e, &self.d, &self.s] {
            for set in group.iter() {
                // Length-prefixed canonical words: one mix per 64
                // threads instead of one per member, same collision
                // behavior (equal sets always hash alike).
                let words = set.canonical_words();
                mix(words.len() as u64);
                for &w in words {
                    mix(w);
                }
            }
            mix(u64::MAX);
        }
        // With the default k = 1 every yield phase is identically zero:
        // skip the per-thread division, the priciest op in this fold.
        if self.k > 1 {
            for &c in &self.yield_counts {
                mix(c % self.k);
            }
        }
        h
    }

    /// Checks that the priority relation is acyclic — the loop invariant
    /// of Theorem 3. Exposed for tests and debug assertions.
    pub fn is_acyclic(&self) -> bool {
        // Kahn-style: repeatedly remove nodes with no in-edges.
        let n = self.p.len();
        let mut indeg = vec![0usize; n];
        for succ in &self.p {
            for u in succ.iter() {
                if u.index() < n {
                    indeg[u.index()] += 1;
                }
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        while let Some(i) = queue.pop() {
            seen += 1;
            for u in self.p[i].iter() {
                if u.index() < n {
                    indeg[u.index()] -= 1;
                    if indeg[u.index()] == 0 {
                        queue.push(u.index());
                    }
                }
            }
        }
        seen == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: usize) -> ThreadId {
        ThreadId::new(i)
    }

    fn set(ids: &[usize]) -> TidSet {
        ids.iter().map(|&i| t(i)).collect()
    }

    #[test]
    fn no_yields_means_full_nondeterminism() {
        let mut fair = FairScheduler::new(3);
        let es = set(&[0, 1, 2]);
        for _ in 0..10 {
            assert_eq!(fair.schedulable(&es), es);
            fair.on_scheduled(t(1), &es, &es, false);
        }
    }

    #[test]
    fn first_yield_adds_no_edges() {
        let mut fair = FairScheduler::new(2);
        let es = set(&[0, 1]);
        fair.on_scheduled(t(1), &es, &es, true);
        assert!(fair.priority_edges()[1].is_empty());
        assert_eq!(fair.schedulable(&es), es);
    }

    /// The Figure 4 emulation: thread u (=1) spins through a yield loop
    /// while t (=0) stays enabled. After u's *second* yield, the edge
    /// (u, t) appears and only t is schedulable.
    #[test]
    fn figure4_emulation() {
        let mut fair = FairScheduler::new(2);
        let es = set(&[0, 1]);
        let (th_t, th_u) = (t(0), t(1));

        // u: while (x != 1)  — state (a,c) -> (a,d)
        fair.on_scheduled(th_u, &es, &es, false);
        // u: yield()         — state (a,d) -> (a,c); first yield: no edges
        fair.on_scheduled(th_u, &es, &es, true);
        assert!(fair.priority_edges()[1].is_empty());
        assert_eq!(*fair.window_scheduled(th_u), TidSet::new());
        assert_eq!(*fair.window_disabled(th_u), TidSet::new());
        assert_eq!(*fair.window_enabled(th_u), es);

        // u: while (x != 1)  — S(u) = {u}
        fair.on_scheduled(th_u, &es, &es, false);
        assert_eq!(*fair.window_scheduled(th_u), set(&[1]));

        // u: yield()         — H = (E ∪ D) \ S = {t}; edge (u, t) added.
        fair.on_scheduled(th_u, &es, &es, true);
        assert!(fair.priority_edges()[1].contains(th_t));
        // Now the scheduler is forced to run t.
        assert_eq!(fair.schedulable(&es), set(&[0]));
    }

    #[test]
    fn edge_removed_when_sink_scheduled() {
        let mut fair = FairScheduler::new(2);
        let es = set(&[0, 1]);
        // Build the (u=1, t=0) edge as in figure4_emulation.
        fair.on_scheduled(t(1), &es, &es, true);
        fair.on_scheduled(t(1), &es, &es, false);
        fair.on_scheduled(t(1), &es, &es, true);
        assert!(fair.priority_edges()[1].contains(t(0)));
        // Scheduling t removes the incoming edge (line 13).
        fair.on_scheduled(t(0), &es, &es, false);
        assert!(fair.priority_edges()[1].is_empty());
        assert_eq!(fair.schedulable(&es), es);
    }

    #[test]
    fn edge_only_blocks_while_sink_enabled() {
        let mut fair = FairScheduler::new(2);
        let es = set(&[0, 1]);
        fair.on_scheduled(t(1), &es, &es, true);
        fair.on_scheduled(t(1), &es, &es, false);
        fair.on_scheduled(t(1), &es, &es, true);
        // u has lower priority than t; but if t is disabled, u may run.
        let only_u = set(&[1]);
        assert_eq!(fair.schedulable(&only_u), only_u);
        assert_eq!(fair.schedulable(&es), set(&[0]));
    }

    #[test]
    fn disabled_threads_counted_in_d() {
        let mut fair = FairScheduler::new(3);
        // Open windows for thread 0 with a first yield.
        let es_all = set(&[0, 1, 2]);
        fair.on_scheduled(t(0), &es_all, &es_all, true);
        // Thread 0's transition disables thread 2 (e.g. takes a lock 2
        // wanted).
        let es_after = set(&[0, 1]);
        fair.on_scheduled(t(0), &es_all, &es_after, false);
        assert!(fair.window_disabled(t(0)).contains(t(2)));
        // At 0's next yield, H contains 2 (disabled, never scheduled) and
        // 1 (continuously enabled, never scheduled).
        fair.on_scheduled(t(0), &es_after, &es_after, true);
        assert!(fair.priority_edges()[0].contains(t(2)));
        assert!(fair.priority_edges()[0].contains(t(1)));
        // 2 is disabled, so the (0,2) edge does not block 0; but 1 is
        // enabled, so the (0,1) edge does.
        assert_eq!(fair.schedulable(&es_after), set(&[1]));
    }

    #[test]
    fn scheduled_threads_not_penalized() {
        let mut fair = FairScheduler::new(2);
        let es = set(&[0, 1]);
        fair.on_scheduled(t(1), &es, &es, true); // open window
        fair.on_scheduled(t(0), &es, &es, false); // t runs in u's window
        fair.on_scheduled(t(1), &es, &es, false);
        fair.on_scheduled(t(1), &es, &es, true);
        // t(0) ∈ S(u): no edge.
        assert!(fair.priority_edges()[1].is_empty());
    }

    #[test]
    fn k_parameterization_processes_every_kth_yield() {
        let mut fair = FairScheduler::with_k(2, 2);
        let es = set(&[0, 1]);
        // With k=2, yields 2 and 4 are processed. Yield 2 is effectively
        // the "first processed yield" — it still adds edges only if the
        // window saw starvation, and the window here started with the
        // initial full S, so no edges yet.
        fair.on_scheduled(t(1), &es, &es, true); // yield 1: skipped
        fair.on_scheduled(t(1), &es, &es, true); // yield 2: processed, opens window
        assert!(fair.priority_edges()[1].is_empty());
        fair.on_scheduled(t(1), &es, &es, true); // yield 3: skipped
        assert!(fair.priority_edges()[1].is_empty());
        fair.on_scheduled(t(1), &es, &es, true); // yield 4: processed → edge
        assert!(fair.priority_edges()[1].contains(t(0)));
    }

    #[test]
    fn spawned_thread_not_blamed_mid_window() {
        let mut fair = FairScheduler::new(1);
        let es1 = set(&[0]);
        fair.on_scheduled(t(0), &es1, &es1, true); // open 0's window
                                                   // Thread 1 spawns mid-window and is immediately enabled.
        fair.grow(2);
        let es2 = set(&[0, 1]);
        fair.on_scheduled(t(0), &es2, &es2, false);
        fair.on_scheduled(t(0), &es2, &es2, true);
        // 1 was inserted into S(0) at spawn, so no edge (0,1) — and
        // E(0) never contained it.
        assert!(fair.priority_edges()[0].is_empty());
        // But in the *new* window (E(0) = es2 ∋ 1), starving 1 is blamed.
        fair.on_scheduled(t(0), &es2, &es2, false);
        fair.on_scheduled(t(0), &es2, &es2, true);
        assert!(fair.priority_edges()[0].contains(t(1)));
    }

    #[test]
    fn acyclicity_invariant_under_adversarial_driving() {
        // Drive the scheduler with pseudo-random enabled sets and yields
        // and check P stays acyclic and schedulable() is nonempty whenever
        // ES is (Theorem 3).
        let n = 5;
        let mut fair = FairScheduler::new(n);
        let mut rng: u64 = 0x9E3779B97F4A7C15;
        let mut next = || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut es: TidSet = TidSet::full(n);
        for _ in 0..2000 {
            let tset = fair.schedulable(&es);
            assert!(
                es.is_empty() == tset.is_empty(),
                "Theorem 3 violated: es={es:?} T={tset:?} P={:?}",
                fair.priority_edges()
            );
            if tset.is_empty() {
                es = TidSet::full(n);
                continue;
            }
            let options: Vec<_> = tset.iter().collect();
            let pick = options[(next() % options.len() as u64) as usize];
            let mut es_after = TidSet::new();
            for i in 0..n {
                if next() % 4 != 0 {
                    es_after.insert(t(i));
                }
            }
            // The scheduled thread stays "in the system": keep it enabled
            // half of the time.
            if next() % 2 == 0 {
                es_after.insert(pick);
            }
            let yielded = next() % 3 == 0;
            fair.on_scheduled(pick, &es, &es_after, yielded);
            assert!(fair.is_acyclic());
            es = es_after;
        }
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let _ = FairScheduler::with_k(1, 0);
    }

    /// `grow()` must not touch `D(u)` — only `S(u)` shields the spawned
    /// thread from blame. The spawn itself is not a transition of `u`, so
    /// it cannot have disabled anything.
    #[test]
    fn grow_leaves_window_disabled_untouched() {
        let mut fair = FairScheduler::new(2);
        let es = set(&[0, 1]);
        fair.on_scheduled(t(0), &es, &es, true); // open 0's window: D(0) = ∅
        assert!(fair.window_disabled(t(0)).is_empty());
        fair.grow(3);
        assert!(
            fair.window_disabled(t(0)).is_empty(),
            "grow() polluted D(0): {:?}",
            fair.window_disabled(t(0))
        );
        assert!(fair.window_scheduled(t(0)).contains(t(2)));
    }

    /// Regression for the `grow()` D-pollution bug: a scheduler that
    /// grew mid-window must fingerprint identically to one that never
    /// grew but is in the behaviorally identical `(P, E, D, S)` state.
    ///
    /// Construction: in `a`, thread 1 exists from the start but is
    /// disabled during 0's yield (so `E(0) = {0}`), then runs one step
    /// (so `1 ∈ S(0)`). In `b`, thread 1 is spawned mid-window, which
    /// inserts it into `S(0)` — the same shield. Every window set is
    /// then equal, so the fingerprints must match; with the old
    /// `d[u].insert(v)` they differed (`D(0) = {1}` in `b` only), which
    /// made the explorer's cycle detector miss repeats.
    #[test]
    fn grow_mid_window_matches_never_grown_fingerprint() {
        // a: both threads exist from the start; 1 disabled at 0's yield.
        let mut a = FairScheduler::new(2);
        let es0 = set(&[0]);
        let es01 = set(&[0, 1]);
        a.on_scheduled(t(0), &es0, &es0, true); // open window: E(0) = {0}
        a.on_scheduled(t(0), &es0, &es01, false); // 0's step enables 1
        a.on_scheduled(t(1), &es01, &es01, false); // 1 runs: 1 ∈ S(u) ∀u

        // b: thread 1 spawns mid-window instead of running.
        let mut b = FairScheduler::new(1);
        b.on_scheduled(t(0), &es0, &es0, true); // open window: E(0) = {0}
        b.on_scheduled(t(0), &es0, &es0, false); // 0 steps: 0 ∈ S(0)
        b.grow(2); // spawn: 1 ∈ S(0), D(0) untouched

        assert_eq!(a.window_enabled(t(0)), b.window_enabled(t(0)));
        assert_eq!(a.window_disabled(t(0)), b.window_disabled(t(0)));
        assert_eq!(a.window_scheduled(t(0)), b.window_scheduled(t(0)));
        assert_eq!(
            a.state_fingerprint(),
            b.state_fingerprint(),
            "behaviorally identical scheduler states must hash identically"
        );
    }
}
