//! `chess-fuzz`: a seeded generator of small random transition systems.
//!
//! The generator produces [`FuzzSystem`]s — straight-line scripts of
//! counter, lock, flag, yield and data-choice operations — whose state
//! spaces are small enough to enumerate exhaustively with the stateful
//! reference in `chess-state`, yet varied enough to exercise every corner
//! of the fair scheduler: yields at controllable density, lock-protected
//! critical sections, polite and impolite spin loops, and nondeterministic
//! data choices.
//!
//! Base systems are deadlock- and livelock-free **by construction**:
//!
//! * every `Dec` is matched at generation time to a distinct `Inc` token
//!   produced either by a lower-numbered thread or earlier in the same
//!   script, and only *clean* tokens — `Inc`s that precede every `Dec` of
//!   their producing thread — are eligible, so no counter wait can be
//!   starved by a stolen unit;
//! * locks are well nested within one thread and critical sections
//!   contain no blocking or spinning operations, so a lock holder is
//!   always enabled;
//! * every spin loop waits on a flag with a *clean* setter (a `SetFlag`
//!   preceding every `Dec` and spin of a lower-numbered thread), so on
//!   any fair cycle the setter must eventually run and break the spin.
//!
//! On top of a clean base, four knobs inject one bug each, using fresh
//! resources so the injection cannot interfere with the base threads:
//!
//! * [`FuzzConfig::inject_safety`] — a racy counter plus an `AssertZero`
//!   that fails on one interleaving;
//! * [`FuzzConfig::inject_deadlock`] — two threads acquiring two fresh
//!   locks in opposite orders;
//! * [`FuzzConfig::inject_livelock`] — a polite spin on a flag nobody
//!   ever sets: a definite fair cycle (Theorem 6's livelock);
//! * [`FuzzConfig::inject_panic`] — a racy counter plus a
//!   `PanicIfNonZero` that *unwinds out of the workload* on one
//!   interleaving, exercising the explorer's panic isolation end to end.

use std::fmt::Write as _;
use std::sync::Arc;

use chess_kernel::{
    Access, AccessKind, AtomicId, Capture, Effects, Footprint, GuestThread, Kernel, MemoryModel,
    ObjectRef, OpDesc, OpResult, StateWriter, StepKind, ThreadId,
};

use crate::system::{SystemStatus, TransitionSystem};

/// Knobs of the random transition-system generator.
///
/// All fields are plain data so a configuration can round-trip through a
/// corpus file and regenerate the identical system.
///
/// When any injection knob is set the base is capped at 2 threads of at
/// most 2 operations each: injections add whole threads, and the
/// differential oracles need the combined state space to stay small
/// enough for the exhaustive stateful reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzConfig {
    /// Seed of the generator's deterministic PRNG.
    pub seed: u64,
    /// Maximum number of base threads (at least 2; injections add more).
    pub max_threads: usize,
    /// Maximum script length per base thread, in operation slots.
    pub max_ops: usize,
    /// Number of shared counters available to base threads.
    pub counters: usize,
    /// Number of locks available to base threads.
    pub locks: usize,
    /// Number of flags available to base threads.
    pub flags: usize,
    /// Yield density in percent: probability of a slot becoming a
    /// `Yield`, and of a spin loop being polite (yielding while it
    /// spins). `100` makes every spin polite.
    pub yield_percent: u32,
    /// Injects a racy-counter safety violation (fresh counter).
    pub inject_safety: bool,
    /// Injects an opposite-order lock-acquisition deadlock (fresh locks).
    pub inject_deadlock: bool,
    /// Injects a polite spin on a never-set flag: a definite livelock.
    pub inject_livelock: bool,
    /// Injects a racy counter plus a panic that fires on one
    /// interleaving (fresh counter): a workload crash, not a violation
    /// the system reports itself.
    pub inject_panic: bool,
    /// Memory model the relaxed-memory differential passes instantiate
    /// atomic programs under (see [`generate_atomic_program`]). `Sc`
    /// disables those passes; the base [`FuzzSystem`] generator is
    /// unaffected either way.
    pub memory: MemoryModel,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0,
            max_threads: 3,
            max_ops: 4,
            counters: 2,
            locks: 2,
            flags: 2,
            yield_percent: 60,
            inject_safety: false,
            inject_deadlock: false,
            inject_livelock: false,
            inject_panic: false,
            memory: MemoryModel::Sc,
        }
    }
}

impl FuzzConfig {
    /// Returns the configuration with a different seed — used to derive
    /// per-system configurations from one base configuration.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Derives the seed of the `index`-th system of a fuzzing run from the
/// run's base seed (a SplitMix64 step, so neighbouring indices produce
/// unrelated streams).
pub fn derive_seed(base: u64, index: u64) -> u64 {
    SplitMix64::new(base.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))).next()
}

/// One operation of a generated script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuzzOp {
    /// A local step: no shared effect.
    Step,
    /// A good-samaritan yield: no shared effect, `StepKind::Yield`.
    Yield,
    /// Increments a shared counter.
    Inc(usize),
    /// Decrements a shared counter; enabled only while it is nonzero.
    Dec(usize),
    /// Acquires a lock; enabled only while it is free.
    Lock(usize),
    /// Releases a lock held by this thread.
    Unlock(usize),
    /// Sets a shared flag.
    SetFlag(usize),
    /// Spins (a self-loop that stays at this op) while the flag is unset;
    /// falls through once it is set. A polite spin yields on every
    /// spinning iteration, an impolite one does not — the latter is a
    /// deliberate good-samaritan violation.
    SpinWhileZero {
        /// The flag being awaited.
        flag: usize,
        /// Whether spinning iterations are yields.
        polite: bool,
    },
    /// A nondeterministic data choice of the given width; the chosen
    /// value is recorded in the thread's local state.
    Choose {
        /// Number of alternatives (the scheduler enumerates them all).
        width: u32,
    },
    /// Fails (a safety violation) if the counter is nonzero.
    AssertZero(usize),
    /// Panics — unwinds out of the workload — if the counter is nonzero.
    /// Unlike [`FuzzOp::AssertZero`] the system never gets to report a
    /// violation itself; the explorer's panic isolation must catch the
    /// unwind and turn it into a replayable counterexample.
    PanicIfNonZero(usize),
}

impl FuzzOp {
    fn describe(&self) -> String {
        match *self {
            FuzzOp::Step => "step".into(),
            FuzzOp::Yield => "yield".into(),
            FuzzOp::Inc(c) => format!("inc(c{c})"),
            FuzzOp::Dec(c) => format!("dec(c{c})"),
            FuzzOp::Lock(m) => format!("lock(m{m})"),
            FuzzOp::Unlock(m) => format!("unlock(m{m})"),
            FuzzOp::SetFlag(f) => format!("set(f{f})"),
            FuzzOp::SpinWhileZero { flag, polite } => {
                format!("spin(f{flag}{})", if polite { ", polite" } else { "" })
            }
            FuzzOp::Choose { width } => format!("choose({width})"),
            FuzzOp::AssertZero(c) => format!("assert(c{c} == 0)"),
            FuzzOp::PanicIfNonZero(c) => format!("panic_if(c{c} != 0)"),
        }
    }
}

/// A generated transition system: per-thread scripts over shared
/// counters, locks and flags.
///
/// The scripts are immutable and shared (`Arc`), so cloning a system —
/// which both the stateful reference and the stateless explorer's
/// factory do heavily — copies only the mutable state vectors.
#[derive(Debug, Clone)]
pub struct FuzzSystem {
    scripts: Arc<Vec<Vec<FuzzOp>>>,
    pcs: Vec<u32>,
    counters: Vec<u64>,
    /// `0` = free, `t + 1` = held by thread `t`.
    locks: Vec<u32>,
    flags: Vec<bool>,
    /// Last data choice per thread (`u32::MAX` = none yet).
    choices: Vec<u32>,
    violation: Option<(ThreadId, String)>,
}

impl FuzzSystem {
    /// Builds a system from explicit scripts — used by tests and by the
    /// injection machinery; fuzzing goes through [`generate_system`].
    pub fn from_scripts(
        scripts: Vec<Vec<FuzzOp>>,
        counters: usize,
        locks: usize,
        flags: usize,
    ) -> Self {
        let n = scripts.len();
        FuzzSystem {
            scripts: Arc::new(scripts),
            pcs: vec![0; n],
            counters: vec![0; counters],
            locks: vec![0; locks],
            flags: vec![false; flags],
            choices: vec![u32::MAX; n],
            violation: None,
        }
    }

    /// The scripts this system executes, one per thread.
    pub fn scripts(&self) -> &[Vec<FuzzOp>] {
        &self.scripts
    }

    fn current_op(&self, t: ThreadId) -> Option<FuzzOp> {
        self.scripts[t.index()]
            .get(self.pcs[t.index()] as usize)
            .copied()
    }

    fn finished(&self, t: ThreadId) -> bool {
        self.pcs[t.index()] as usize >= self.scripts[t.index()].len()
    }
}

impl TransitionSystem for FuzzSystem {
    fn thread_count(&self) -> usize {
        self.scripts.len()
    }

    fn enabled(&self, t: ThreadId) -> bool {
        match self.current_op(t) {
            None => false,
            Some(FuzzOp::Dec(c)) => self.counters[c] > 0,
            Some(FuzzOp::Lock(m)) => self.locks[m] == 0,
            Some(_) => true,
        }
    }

    fn is_yielding(&self, t: ThreadId) -> bool {
        match self.current_op(t) {
            Some(FuzzOp::Yield) => true,
            Some(FuzzOp::SpinWhileZero { flag, polite }) => polite && !self.flags[flag],
            _ => false,
        }
    }

    fn branching(&self, t: ThreadId) -> usize {
        match self.current_op(t) {
            Some(FuzzOp::Choose { width }) => width as usize,
            _ => 1,
        }
    }

    fn footprint(&self, t: ThreadId) -> Footprint {
        // Precise per-object footprints: every shared cell a step reads or
        // writes — including the cells its *enabledness* depends on (a
        // `Dec` or `Lock` blocks on the very cell it writes, so the write
        // access already covers the enabledness read). These drive the
        // measurable sleep-set reduction on the fuzz corpus.
        let access = |o, k| Footprint::from_accesses([Access::new(o, k)]);
        let counter = |c: usize| ObjectRef::Custom("counter", c as u32);
        let lock = |m: usize| ObjectRef::Custom("lock", m as u32);
        let flag = |f: usize| ObjectRef::Custom("flag", f as u32);
        match self.current_op(t) {
            None | Some(FuzzOp::Step) | Some(FuzzOp::Yield) | Some(FuzzOp::Choose { .. }) => {
                Footprint::local()
            }
            Some(FuzzOp::Inc(c)) | Some(FuzzOp::Dec(c)) => access(counter(c), AccessKind::Write),
            Some(FuzzOp::AssertZero(c)) | Some(FuzzOp::PanicIfNonZero(c)) => {
                access(counter(c), AccessKind::Read)
            }
            Some(FuzzOp::Lock(m)) => access(lock(m), AccessKind::Acquire),
            Some(FuzzOp::Unlock(m)) => access(lock(m), AccessKind::Release),
            Some(FuzzOp::SetFlag(f)) => access(flag(f), AccessKind::Write),
            Some(FuzzOp::SpinWhileZero { flag: f, .. }) => access(flag(f), AccessKind::Read),
        }
    }

    fn step(&mut self, t: ThreadId, choice: u32) -> StepKind {
        let op = self.current_op(t).expect("step on a finished fuzz thread");
        let i = t.index();
        match op {
            FuzzOp::Step => {
                self.pcs[i] += 1;
                StepKind::Normal
            }
            FuzzOp::Yield => {
                self.pcs[i] += 1;
                StepKind::Yield
            }
            FuzzOp::Inc(c) => {
                self.counters[c] += 1;
                self.pcs[i] += 1;
                StepKind::Normal
            }
            FuzzOp::Dec(c) => {
                debug_assert!(self.counters[c] > 0, "dec on zero counter");
                self.counters[c] -= 1;
                self.pcs[i] += 1;
                StepKind::Normal
            }
            FuzzOp::Lock(m) => {
                debug_assert_eq!(self.locks[m], 0, "lock acquired while held");
                self.locks[m] = i as u32 + 1;
                self.pcs[i] += 1;
                StepKind::Normal
            }
            FuzzOp::Unlock(m) => {
                debug_assert_eq!(self.locks[m], i as u32 + 1, "unlock by non-holder");
                self.locks[m] = 0;
                self.pcs[i] += 1;
                StepKind::Normal
            }
            FuzzOp::SetFlag(f) => {
                self.flags[f] = true;
                self.pcs[i] += 1;
                StepKind::Normal
            }
            FuzzOp::SpinWhileZero { flag, polite } => {
                if self.flags[flag] {
                    self.pcs[i] += 1;
                    StepKind::Normal
                } else if polite {
                    StepKind::Yield
                } else {
                    StepKind::Normal
                }
            }
            FuzzOp::Choose { width } => {
                debug_assert!(choice < width, "choice out of range");
                self.choices[i] = choice;
                self.pcs[i] += 1;
                StepKind::Normal
            }
            FuzzOp::AssertZero(c) => {
                if self.counters[c] != 0 {
                    self.violation = Some((
                        t,
                        format!("assert failed: c{c} = {} != 0", self.counters[c]),
                    ));
                } else {
                    self.pcs[i] += 1;
                }
                StepKind::Normal
            }
            FuzzOp::PanicIfNonZero(c) => {
                if self.counters[c] != 0 {
                    panic!("injected panic: c{c} = {} != 0", self.counters[c]);
                }
                self.pcs[i] += 1;
                StepKind::Normal
            }
        }
    }

    fn status(&self) -> SystemStatus {
        if let Some((t, msg)) = &self.violation {
            return SystemStatus::Violation(*t, msg.clone());
        }
        let mut any_unfinished = false;
        for i in 0..self.thread_count() {
            let t = ThreadId::new(i);
            if !self.finished(t) {
                any_unfinished = true;
                if self.enabled(t) {
                    return SystemStatus::Running;
                }
            }
        }
        if any_unfinished {
            SystemStatus::Deadlock
        } else {
            SystemStatus::Terminated
        }
    }

    fn fingerprint(&self) -> u64 {
        // FNV-1a over the canonical state bytes.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.state_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    fn state_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            4 * self.pcs.len() + 8 * self.counters.len() + self.locks.len() + self.flags.len() + 8,
        );
        for &pc in &self.pcs {
            out.extend_from_slice(&pc.to_le_bytes());
        }
        for &c in &self.counters {
            out.extend_from_slice(&c.to_le_bytes());
        }
        for &l in &self.locks {
            out.extend_from_slice(&l.to_le_bytes());
        }
        for &f in &self.flags {
            out.push(u8::from(f));
        }
        for &ch in &self.choices {
            out.extend_from_slice(&ch.to_le_bytes());
        }
        out.push(match &self.violation {
            None => 0,
            Some((t, _)) => t.index() as u8 + 1,
        });
        out
    }

    fn describe_op(&self, t: ThreadId) -> String {
        match self.current_op(t) {
            Some(op) => op.describe(),
            None => "finished".into(),
        }
    }

    fn thread_name(&self, t: ThreadId) -> String {
        format!("f{}", t.index())
    }
}

/// Renders the scripts of a system as a compact multi-line listing —
/// used when reporting a discrepancy so the offending system can be read
/// without regenerating it.
pub fn render_scripts(sys: &FuzzSystem) -> String {
    let mut out = String::new();
    for (i, script) in sys.scripts().iter().enumerate() {
        let _ = write!(out, "f{i}:");
        for op in script {
            let _ = write!(out, " {}", op.describe());
        }
        out.push('\n');
    }
    out
}

/// The SplitMix64 PRNG: tiny, seedable, and with no global state, so
/// generation is a pure function of [`FuzzConfig`].
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn chance(&mut self, percent: u32) -> bool {
        self.below(100) < u64::from(percent)
    }

    fn pick<T: Copy>(&mut self, xs: &[T]) -> T {
        xs[self.below(xs.len() as u64) as usize]
    }
}

/// Generates the system described by `config`.
///
/// Generation is deterministic: the same configuration always yields the
/// same system, which is what makes corpus files replayable.
pub fn generate_system(config: &FuzzConfig) -> FuzzSystem {
    let mut rng = SplitMix64::new(config.seed);
    let injecting = config.inject_safety
        || config.inject_deadlock
        || config.inject_livelock
        || config.inject_panic;
    // Injections add whole threads; cap the base so the exhaustive
    // stateful reference stays tractable on injected systems.
    let (cap_threads, cap_ops) = if injecting {
        (2, config.max_ops.min(2))
    } else {
        (config.max_threads, config.max_ops)
    };
    let max_threads = cap_threads.max(2);
    let threads = 2 + rng.below(max_threads as u64 - 1) as usize;
    let n_counters = config.counters.max(1);
    let n_locks = config.locks.max(1);
    let n_flags = config.flags.max(1);

    let mut scripts: Vec<Vec<FuzzOp>> = Vec::with_capacity(threads + 2);
    // Unconsumed clean Inc tokens: counters incremented before any Dec of
    // their producing thread, usable by that thread later in its script
    // and by all higher-numbered threads.
    let mut tokens: Vec<usize> = Vec::new();
    // Flags with a clean setter in a lower-numbered thread.
    let mut ready_flags: Vec<usize> = Vec::new();

    for _ in 0..threads {
        let slots = 1 + rng.below(cap_ops.max(1) as u64) as usize;
        let mut script: Vec<FuzzOp> = Vec::with_capacity(slots + 2);
        // Tokens stay clean while the thread has not emitted a Dec; flag
        // setters stay clean while it has emitted neither a Dec nor a spin.
        let mut has_dec = false;
        let mut has_dec_or_spin = false;
        let mut has_choose = false;
        // Flags this thread sets cleanly, published to later threads only.
        let mut my_clean_flags: Vec<usize> = Vec::new();

        while script.len() < slots {
            if rng.chance(config.yield_percent / 3) {
                script.push(FuzzOp::Yield);
                continue;
            }
            match rng.below(7) {
                0 => script.push(FuzzOp::Step),
                1 => {
                    let c = rng.below(n_counters as u64) as usize;
                    script.push(FuzzOp::Inc(c));
                    if !has_dec {
                        tokens.push(c);
                    }
                }
                2 => {
                    // Dec a matched clean token, or fall back to a step.
                    if tokens.is_empty() {
                        script.push(FuzzOp::Step);
                    } else {
                        let k = rng.below(tokens.len() as u64) as usize;
                        let c = tokens.swap_remove(k);
                        script.push(FuzzOp::Dec(c));
                        has_dec = true;
                        has_dec_or_spin = true;
                    }
                }
                3 => {
                    // A critical section: lock, a few nonblocking ops,
                    // unlock. Never nested, never blocking inside.
                    let m = rng.below(n_locks as u64) as usize;
                    script.push(FuzzOp::Lock(m));
                    for _ in 0..rng.below(3) {
                        if rng.chance(config.yield_percent / 3) {
                            script.push(FuzzOp::Yield);
                        } else if rng.chance(50) {
                            script.push(FuzzOp::Step);
                        } else {
                            let c = rng.below(n_counters as u64) as usize;
                            script.push(FuzzOp::Inc(c));
                            if !has_dec {
                                tokens.push(c);
                            }
                        }
                    }
                    script.push(FuzzOp::Unlock(m));
                }
                4 => {
                    let f = rng.below(n_flags as u64) as usize;
                    script.push(FuzzOp::SetFlag(f));
                    if !has_dec_or_spin {
                        my_clean_flags.push(f);
                    }
                }
                5 => {
                    // Spin on a flag guaranteed to be set by an earlier
                    // thread, or fall back to a yield.
                    if ready_flags.is_empty() {
                        script.push(FuzzOp::Yield);
                    } else {
                        let flag = rng.pick(&ready_flags);
                        let polite = rng.chance(config.yield_percent);
                        script.push(FuzzOp::SpinWhileZero { flag, polite });
                        has_dec_or_spin = true;
                    }
                }
                _ => {
                    // One data choice per thread keeps the interleaving
                    // count exhaustively explorable.
                    if has_choose {
                        script.push(FuzzOp::Step);
                    } else {
                        script.push(FuzzOp::Choose { width: 2 });
                        has_choose = true;
                    }
                }
            }
        }
        ready_flags.extend(my_clean_flags);
        scripts.push(script);
    }

    let mut counters = n_counters;
    let mut locks = n_locks;
    let mut flags = n_flags;

    if config.inject_safety {
        // A racy counter: the assert fails iff it runs between the inc
        // and the dec of the other thread.
        let c = counters;
        counters += 1;
        scripts.push(vec![FuzzOp::Inc(c), FuzzOp::Step, FuzzOp::Dec(c)]);
        scripts.push(vec![FuzzOp::Step, FuzzOp::AssertZero(c)]);
    }
    if config.inject_deadlock {
        // Opposite-order acquisition of two fresh locks.
        let (ma, mb) = (locks, locks + 1);
        locks += 2;
        scripts.push(vec![
            FuzzOp::Lock(ma),
            FuzzOp::Lock(mb),
            FuzzOp::Unlock(mb),
            FuzzOp::Unlock(ma),
        ]);
        scripts.push(vec![
            FuzzOp::Lock(mb),
            FuzzOp::Lock(ma),
            FuzzOp::Unlock(ma),
            FuzzOp::Unlock(mb),
        ]);
    }
    if config.inject_panic {
        // A racy counter like the safety injection, but the observer
        // panics instead of flagging a violation: the crash only happens
        // if the check runs between the inc and the dec.
        let c = counters;
        counters += 1;
        scripts.push(vec![FuzzOp::Inc(c), FuzzOp::Step, FuzzOp::Dec(c)]);
        scripts.push(vec![FuzzOp::Step, FuzzOp::PanicIfNonZero(c)]);
    }
    if config.inject_livelock {
        // A polite spin on a flag nobody sets: once every other thread
        // has finished, the spinner alone forms a fair cycle.
        let f = flags;
        flags += 1;
        scripts.push(vec![
            FuzzOp::Step,
            FuzzOp::SpinWhileZero {
                flag: f,
                polite: true,
            },
        ]);
    }

    FuzzSystem::from_scripts(scripts, counters, locks, flags)
}

// ---------------------------------------------------------------------------
// Relaxed-memory fuzzing: atomic programs executed through the kernel
// ---------------------------------------------------------------------------

/// One operation of a generated atomic program.
///
/// Atomic programs are straight-line and blocking-free by construction
/// (RMWs and fences only wait on the thread's *own* store buffer, which a
/// flusher lane can always drain), so every interleaving terminates and
/// none reports a violation — what varies across memory models is the set
/// of *observations* the loads make.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicFuzzOp {
    /// A local step with no shared effect.
    Local,
    /// Stores `value` to `location` — buffered under TSO/PSO.
    Store {
        /// Index of the atomic cell written.
        location: usize,
        /// The value written (unique per program, so forwarding and
        /// reordering are observable).
        value: u64,
    },
    /// Loads `location`, forwarding from the issuing thread's store
    /// buffer when it holds the location; the observed value is appended
    /// to the thread's log.
    Load {
        /// Index of the atomic cell read.
        location: usize,
    },
    /// Atomic fetch-add: an RMW, which under a buffering model waits for
    /// the issuing thread's buffer to drain first (x86 `LOCK` semantics).
    Add {
        /// Index of the atomic cell updated.
        location: usize,
        /// The addend.
        delta: u64,
    },
    /// A full fence: blocks until the issuing thread's buffer is empty.
    Fence,
}

impl AtomicFuzzOp {
    fn describe(&self) -> String {
        match *self {
            AtomicFuzzOp::Local => "local".into(),
            AtomicFuzzOp::Store { location, value } => format!("store(x{location}, {value})"),
            AtomicFuzzOp::Load { location } => format!("load(x{location})"),
            AtomicFuzzOp::Add { location, delta } => format!("add(x{location}, {delta})"),
            AtomicFuzzOp::Fence => "fence".into(),
        }
    }
}

/// Shared state of an instantiated atomic program: every value each guest
/// loaded, in program order.
///
/// The logs are part of the captured state, so two executions that
/// observe different values are distinct terminal outcomes even when they
/// leave memory identical — the store-buffering litmus shape, where the
/// interesting relaxed behaviour lives entirely in what the loads saw.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AtomicObservations {
    logs: Vec<Vec<u64>>,
}

impl AtomicObservations {
    /// The values guest `g` loaded, in program order.
    pub fn log(&self, g: usize) -> &[u64] {
        &self.logs[g]
    }
}

impl Capture for AtomicObservations {
    fn capture(&self, w: &mut StateWriter) {
        w.write_usize(self.logs.len());
        for log in &self.logs {
            w.write_usize(log.len());
            for &v in log {
                w.write_u64(v);
            }
        }
    }
}

/// A kernel guest driving one script of an [`AtomicProgram`].
#[derive(Clone)]
struct AtomicScriptThread {
    ops: Arc<Vec<AtomicFuzzOp>>,
    cells: Arc<Vec<AtomicId>>,
    pc: usize,
    me: usize,
}

impl GuestThread<AtomicObservations> for AtomicScriptThread {
    fn next_op(&self, _shared: &AtomicObservations) -> OpDesc {
        match self.ops.get(self.pc) {
            None => OpDesc::Finished,
            Some(AtomicFuzzOp::Local) => OpDesc::Local,
            Some(&AtomicFuzzOp::Store { location, value }) => {
                OpDesc::AtomicStore(self.cells[location], value)
            }
            Some(&AtomicFuzzOp::Load { location }) => OpDesc::AtomicLoad(self.cells[location]),
            Some(&AtomicFuzzOp::Add { location, delta }) => {
                OpDesc::AtomicAdd(self.cells[location], delta)
            }
            Some(AtomicFuzzOp::Fence) => OpDesc::Fence,
        }
    }

    fn on_op(
        &mut self,
        result: OpResult,
        shared: &mut AtomicObservations,
        _fx: &mut Effects<AtomicObservations>,
    ) {
        if let (Some(AtomicFuzzOp::Load { .. }), OpResult::Value(v)) =
            (self.ops.get(self.pc), result)
        {
            shared.logs[self.me].push(v);
        }
        self.pc += 1;
    }

    fn name(&self) -> String {
        format!("a{}", self.me)
    }

    fn capture(&self, w: &mut StateWriter) {
        w.write_usize(self.pc);
    }

    fn box_clone(&self) -> Box<dyn GuestThread<AtomicObservations>> {
        Box::new(self.clone())
    }
}

/// A generated atomic program: per-thread scripts of store/load/RMW/fence
/// operations over a small set of atomic cells, instantiable as a
/// [`Kernel`] under any [`MemoryModel`].
///
/// The same program instantiated under SC, TSO and PSO is the raw
/// material of the memory-model monotonicity oracle: the sets of
/// reachable terminal outcomes must satisfy SC ⊆ TSO ⊆ PSO.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomicProgram {
    scripts: Vec<Vec<AtomicFuzzOp>>,
    locations: usize,
}

impl AtomicProgram {
    /// Builds a program from explicit scripts over `locations` atomic
    /// cells (all initially zero) — used by tests; fuzzing goes through
    /// [`generate_atomic_program`].
    pub fn from_scripts(scripts: Vec<Vec<AtomicFuzzOp>>, locations: usize) -> Self {
        AtomicProgram { scripts, locations }
    }

    /// The per-thread scripts.
    pub fn scripts(&self) -> &[Vec<AtomicFuzzOp>] {
        &self.scripts
    }

    /// Number of atomic cells the program uses.
    pub fn locations(&self) -> usize {
        self.locations
    }

    /// Instantiates the program as a fresh kernel under `memory`.
    pub fn instantiate(&self, memory: MemoryModel) -> Kernel<AtomicObservations> {
        let shared = AtomicObservations {
            logs: vec![Vec::new(); self.scripts.len()],
        };
        let mut k = Kernel::with_memory(shared, memory);
        let cells: Arc<Vec<AtomicId>> =
            Arc::new((0..self.locations).map(|_| k.add_atomic(0)).collect());
        for (me, script) in self.scripts.iter().enumerate() {
            k.spawn(AtomicScriptThread {
                ops: Arc::new(script.clone()),
                cells: Arc::clone(&cells),
                pc: 0,
                me,
            });
        }
        k
    }
}

/// Renders the scripts of an atomic program, for discrepancy reports.
pub fn render_atomic_scripts(prog: &AtomicProgram) -> String {
    let mut out = String::new();
    for (i, script) in prog.scripts().iter().enumerate() {
        let _ = write!(out, "a{i}:");
        for op in script {
            let _ = write!(out, " {}", op.describe());
        }
        out.push('\n');
    }
    out
}

/// Generates the atomic program described by `config` (deterministic in
/// `config.seed`; `max_threads` and `max_ops` bound its shape).
///
/// Stores carry globally unique values so every load observation
/// identifies exactly which store (or initial zero) it read — the
/// terminal observation logs then separate executions that differ only in
/// forwarding or flush order.
pub fn generate_atomic_program(config: &FuzzConfig) -> AtomicProgram {
    let mut rng = SplitMix64::new(config.seed);
    let max_threads = config.max_threads.max(2);
    let threads = 2 + rng.below(max_threads as u64 - 1) as usize;
    // Few cells keep same-location races frequent; more than 3 and the
    // programs stop exhibiting interesting forwarding.
    let locations = config.counters.clamp(1, 3);
    let mut next_value = 0u64;
    let mut scripts = Vec::with_capacity(threads);
    for _ in 0..threads {
        let slots = 1 + rng.below(config.max_ops.max(1) as u64) as usize;
        let mut script = Vec::with_capacity(slots);
        for _ in 0..slots {
            let location = rng.below(locations as u64) as usize;
            script.push(match rng.below(10) {
                0..=3 => {
                    next_value += 1;
                    AtomicFuzzOp::Store {
                        location,
                        value: next_value,
                    }
                }
                4..=7 => AtomicFuzzOp::Load { location },
                8 => AtomicFuzzOp::Add { location, delta: 1 },
                _ => {
                    if rng.chance(50) {
                        AtomicFuzzOp::Fence
                    } else {
                        AtomicFuzzOp::Local
                    }
                }
            });
        }
        scripts.push(script);
    }
    AtomicProgram { scripts, locations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Config;
    use crate::strategy::Dfs;
    use crate::Explorer;

    #[test]
    fn generation_is_deterministic() {
        let cfg = FuzzConfig::default().with_seed(7);
        let a = generate_system(&cfg);
        let b = generate_system(&cfg);
        assert_eq!(a.scripts(), b.scripts());
        assert_eq!(a.state_bytes(), b.state_bytes());
    }

    #[test]
    fn derived_seeds_differ() {
        assert_ne!(derive_seed(1, 0), derive_seed(1, 1));
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }

    #[test]
    fn base_systems_complete_without_errors() {
        for i in 0..30 {
            let cfg = FuzzConfig::default().with_seed(derive_seed(42, i));
            let report = Explorer::new(
                || generate_system(&cfg),
                Dfs::new(),
                Config::fair().with_max_executions(200_000),
            )
            .run();
            assert!(
                matches!(
                    report.outcome,
                    crate::SearchOutcome::Complete
                        | crate::SearchOutcome::Divergence(crate::Divergence {
                            kind: crate::DivergenceKind::UnfairCycle { .. },
                            ..
                        })
                ),
                "seed {i}: {:?}\n{}",
                report.outcome,
                render_scripts(&generate_system(&cfg)),
            );
        }
    }

    #[test]
    fn injected_safety_bug_is_found() {
        let cfg = FuzzConfig {
            inject_safety: true,
            yield_percent: 100,
            ..FuzzConfig::default().with_seed(3)
        };
        let report = Explorer::new(|| generate_system(&cfg), Dfs::new(), Config::fair()).run();
        assert!(
            matches!(report.outcome, crate::SearchOutcome::SafetyViolation(_)),
            "{:?}",
            report.outcome
        );
    }

    #[test]
    fn injected_deadlock_is_found() {
        let cfg = FuzzConfig {
            inject_deadlock: true,
            yield_percent: 100,
            ..FuzzConfig::default().with_seed(3)
        };
        let report = Explorer::new(|| generate_system(&cfg), Dfs::new(), Config::fair()).run();
        assert!(
            matches!(report.outcome, crate::SearchOutcome::Deadlock(_)),
            "{:?}",
            report.outcome
        );
    }

    #[test]
    fn injected_livelock_is_found_as_fair_cycle() {
        let cfg = FuzzConfig {
            inject_livelock: true,
            yield_percent: 100,
            ..FuzzConfig::default().with_seed(3)
        };
        let report = Explorer::new(
            || generate_system(&cfg),
            Dfs::new(),
            Config::fair()
                .with_stop_on_error(false)
                .with_max_executions(200_000),
        )
        .run();
        assert!(report.stats.fair_cycles > 0, "{:?}", report.stats);
    }

    #[test]
    fn injected_panic_is_isolated_and_minimizable() {
        let cfg = FuzzConfig {
            inject_panic: true,
            yield_percent: 100,
            ..FuzzConfig::default().with_seed(3)
        };
        let report = Explorer::new(|| generate_system(&cfg), Dfs::new(), Config::fair()).run();
        let crate::SearchOutcome::Panic(cex) = &report.outcome else {
            panic!("expected an isolated panic, got {:?}", report.outcome);
        };
        assert!(cex.message.starts_with("injected panic"), "{}", cex.message);
        // The schedule alone pins the crash, and ddmin keeps it pinned.
        let kind = crate::OutcomeKind::of(&report.outcome).unwrap();
        let minimized = crate::minimize_schedule(
            || generate_system(&cfg),
            &Config::fair(),
            &cex.schedule,
            kind,
        );
        assert!(minimized.len() <= cex.schedule.len());
        assert!(crate::reproduces(
            || generate_system(&cfg),
            &Config::fair(),
            &minimized,
            kind
        ));
    }

    #[test]
    fn footprints_key_on_the_touched_cell() {
        let sys = FuzzSystem::from_scripts(
            vec![
                vec![FuzzOp::Inc(0)],
                vec![FuzzOp::Inc(1)],
                vec![FuzzOp::AssertZero(0)],
                vec![FuzzOp::Lock(0)],
            ],
            2,
            1,
            1,
        );
        let t = ThreadId::new;
        assert!(!sys.dependent(t(0), t(1)), "distinct counters commute");
        assert!(sys.dependent(t(0), t(2)), "write vs assert on c0 conflict");
        assert!(!sys.dependent(t(1), t(2)), "c1 write vs c0 read commute");
        assert!(!sys.dependent(t(0), t(3)), "counter vs lock commute");
        assert!(sys.dependent(t(2), t(2)), "a thread depends on itself");
    }

    /// Sleep-set DFS must complete with the same (error-free) verdict as
    /// plain DFS on clean fuzzed systems while exploring no more — and in
    /// aggregate strictly fewer — executions.
    #[test]
    fn sleep_sets_agree_with_plain_dfs_on_fuzzed_systems() {
        let mut plain_total = 0u64;
        let mut reduced_total = 0u64;
        for i in 0..25 {
            let cfg = FuzzConfig::default().with_seed(derive_seed(0x51EE, i));
            let config = Config::fair().with_max_executions(200_000);
            let plain = Explorer::new(|| generate_system(&cfg), Dfs::new(), config.clone()).run();
            let reduced = Explorer::new(
                || generate_system(&cfg),
                Dfs::with_sleep_sets(),
                config.clone(),
            )
            .run();
            assert_eq!(
                plain.outcome.found_error(),
                reduced.outcome.found_error(),
                "seed {i}: verdicts diverge\n{}",
                render_scripts(&generate_system(&cfg)),
            );
            assert!(
                reduced.stats.executions <= plain.stats.executions,
                "seed {i}: reduction explored more ({} > {})",
                reduced.stats.executions,
                plain.stats.executions,
            );
            plain_total += plain.stats.executions;
            reduced_total += reduced.stats.executions;
        }
        assert!(
            reduced_total < plain_total,
            "sleep sets pruned nothing across the corpus ({reduced_total} vs {plain_total})"
        );
    }

    /// Collects the terminal state bytes of every fully terminated
    /// execution — the outcome sets the monotonicity oracle compares.
    struct Terminals(std::collections::BTreeSet<Vec<u8>>);

    impl<P: TransitionSystem + ?Sized> crate::Observer<P> for Terminals {
        fn on_execution_end(&mut self, sys: &P, _depth: usize) {
            if matches!(sys.status(), SystemStatus::Terminated) {
                self.0.insert(sys.state_bytes());
            }
        }
    }

    fn terminal_outcomes(
        prog: &AtomicProgram,
        memory: MemoryModel,
    ) -> std::collections::BTreeSet<Vec<u8>> {
        let mut obs = Terminals(Default::default());
        let report = Explorer::new(
            || prog.instantiate(memory),
            Dfs::new(),
            Config::fair().with_max_executions(500_000),
        )
        .run_observed(&mut obs);
        assert!(
            matches!(report.outcome, crate::SearchOutcome::Complete),
            "{memory}: {:?}\n{}",
            report.outcome,
            render_atomic_scripts(prog),
        );
        obs.0
    }

    #[test]
    fn atomic_generation_is_deterministic() {
        let cfg = FuzzConfig::default().with_seed(9);
        assert_eq!(generate_atomic_program(&cfg), generate_atomic_program(&cfg));
        assert_ne!(
            generate_atomic_program(&cfg),
            generate_atomic_program(&FuzzConfig::default().with_seed(10))
        );
    }

    #[test]
    fn atomic_programs_terminate_cleanly_under_every_model() {
        for i in 0..6 {
            let cfg = FuzzConfig::default().with_seed(derive_seed(0xA70, i));
            let prog = generate_atomic_program(&cfg);
            for memory in MemoryModel::ALL {
                terminal_outcomes(&prog, memory);
            }
        }
    }

    /// The store-buffering shape: under TSO both threads can load the
    /// initial zero (their own store still buffered), an outcome SC
    /// forbids — and every SC outcome stays reachable under TSO.
    #[test]
    fn buffering_strictly_widens_store_buffering_outcomes() {
        let sb = AtomicProgram::from_scripts(
            vec![
                vec![
                    AtomicFuzzOp::Store {
                        location: 0,
                        value: 1,
                    },
                    AtomicFuzzOp::Load { location: 1 },
                ],
                vec![
                    AtomicFuzzOp::Store {
                        location: 1,
                        value: 2,
                    },
                    AtomicFuzzOp::Load { location: 0 },
                ],
            ],
            2,
        );
        let sc = terminal_outcomes(&sb, MemoryModel::Sc);
        let tso = terminal_outcomes(&sb, MemoryModel::Tso);
        assert!(sc.is_subset(&tso), "an SC outcome vanished under TSO");
        assert!(tso.len() > sc.len(), "TSO added no outcome on SB");
    }

    #[test]
    fn atomic_scripts_render() {
        let prog = AtomicProgram::from_scripts(
            vec![vec![
                AtomicFuzzOp::Store {
                    location: 0,
                    value: 7,
                },
                AtomicFuzzOp::Fence,
                AtomicFuzzOp::Load { location: 1 },
            ]],
            2,
        );
        assert_eq!(
            render_atomic_scripts(&prog),
            "a0: store(x0, 7) fence load(x1)\n"
        );
    }

    #[test]
    fn enabled_set_matches_enabled() {
        let cfg = FuzzConfig::default().with_seed(11);
        let sys = generate_system(&cfg);
        let es = sys.enabled_set();
        for i in 0..sys.thread_count() {
            let t = ThreadId::new(i);
            assert_eq!(es.contains(t), sys.enabled(t));
        }
    }
}
