//! # chess-core — fair stateless model checking
//!
//! A from-scratch Rust reproduction of **"Fair Stateless Model Checking"**
//! (Madanlal Musuvathi and Shaz Qadeer, PLDI 2008): a stateless model
//! checker in the style of CHESS whose scheduler is simultaneously
//!
//! * **fair** — every infinite execution it generates satisfies
//!   `GS ⇒ SF`: if every thread that is scheduled infinitely often yields
//!   infinitely often (the *good-samaritan* property), then every thread
//!   enabled infinitely often is scheduled infinitely often (strong
//!   fairness), and
//! * **demonic** — in the absence of yields it is fully nondeterministic,
//!   so safety coverage is not sacrificed (every state reachable by a
//!   yield-free execution is visited; Theorem 5).
//!
//! This lets a stateless checker handle *nonterminating* programs: unfair
//! cycles (spin loops waiting for another thread) are pruned after at most
//! two unrollings (Theorem 4), while genuinely fair nontermination —
//! livelock — surfaces as a divergence and is reported as a bug.
//!
//! ## Pieces
//!
//! * [`FairScheduler`] — Algorithm 1: the priority relation `P` and the
//!   per-thread window sets `E`, `D`, `S`.
//! * [`TransitionSystem`] — the abstract program interface (`enabled(t)`,
//!   `yield(t)`, `NextState`); implemented by `chess_kernel::Kernel`.
//! * [`strategy`] — the `Choose` implementations: exhaustive [`strategy::Dfs`],
//!   preemption-bounded [`strategy::ContextBounded`] (fairness-forced
//!   preemptions are free), [`strategy::RandomWalk`], and
//!   [`strategy::FixedSchedule`] replay. DFS and CB support the paper's
//!   unfair baseline: backtrack up to a horizon `db`, then complete each
//!   execution randomly.
//! * [`Explorer`] — the stateless driver: factory + strategy + [`Config`];
//!   detects safety violations, deadlocks, and divergences, classifying
//!   the latter into livelocks (fair cycles) and good-samaritan
//!   violations.
//! * [`ParallelExplorer`] — `N` sequential explorers over disjoint
//!   strategy shards (random seeds, DFS subtrees, preemption bounds) with
//!   first-error-wins cancellation; the winning schedule is verified to
//!   replay deterministically before it is reported.
//!
//! ## Checking a program
//!
//! ```
//! use chess_core::{Config, Explorer, SearchOutcome};
//! use chess_core::strategy::Dfs;
//! use chess_kernel::{Effects, GuestThread, Kernel, MutexId, OpDesc, OpResult};
//!
//! #[derive(Clone)]
//! struct Incr { pc: u8, lock: MutexId }
//! impl GuestThread<i64> for Incr {
//!     fn next_op(&self, _: &i64) -> OpDesc {
//!         match self.pc {
//!             0 => OpDesc::Acquire(self.lock),
//!             1 => OpDesc::Local,
//!             2 => OpDesc::Release(self.lock),
//!             _ => OpDesc::Finished,
//!         }
//!     }
//!     fn on_op(&mut self, _: OpResult, x: &mut i64, _: &mut Effects<i64>) {
//!         if self.pc == 1 { *x += 1; }
//!         self.pc += 1;
//!     }
//!     fn box_clone(&self) -> Box<dyn GuestThread<i64>> { Box::new(self.clone()) }
//! }
//!
//! let factory = || {
//!     let mut k = Kernel::new(0i64);
//!     let lock = k.add_mutex();
//!     k.spawn(Incr { pc: 0, lock });
//!     k.spawn(Incr { pc: 0, lock });
//!     k
//! };
//! let report = Explorer::new(factory, Dfs::new(), Config::fair()).run();
//! assert_eq!(report.outcome, SearchOutcome::Complete);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exitcode;
mod explore;
mod fair;
pub mod fuzz;
pub mod minimize;
mod observer;
pub mod panics;
mod parallel;
pub mod procpool;
mod report;
pub mod strategy;
mod system;
mod trace;

pub use explore::{
    iterative_context_bounding, iterative_context_bounding_resumable, Config, Explorer,
    FairnessConfig, Progress, SearchCheckpoint,
};
pub use fair::{FairScheduler, PenaltyScope};
pub use fuzz::{
    derive_seed, generate_atomic_program, generate_system, AtomicFuzzOp, AtomicObservations,
    AtomicProgram, FuzzConfig, FuzzOp, FuzzSystem,
};
pub use minimize::{minimize_schedule, reproduces, OutcomeKind};
pub use observer::{CountingObserver, NullObserver, Observer};
pub use parallel::{merge_contiguous_shards, merge_seed_shards, ParallelExplorer, ShardSpec};
pub use report::{
    BudgetKind, Divergence, DivergenceKind, SearchOutcome, SearchReport, SearchStats,
};
pub use strategy::{FrameSnapshot, Reduction, StrategySnapshot};
pub use system::{SystemStatus, TransitionSystem};
pub use trace::{replay, Counterexample, CounterexampleKind, Decision, Schedule};
