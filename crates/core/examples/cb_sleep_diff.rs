// Differential: ContextBounded vs ContextBounded+sleep on fuzzed systems.
use chess_core::fuzz::{derive_seed, generate_system, FuzzConfig};
use chess_core::strategy::ContextBounded;
use chess_core::{Config, Explorer};

fn main() {
    let mut diverged = 0;
    for bound in [0u32, 1, 2] {
        for i in 0..300u64 {
            let mut cfg = FuzzConfig::default().with_seed(derive_seed(0xCB5E, i));
            if i % 3 == 0 {
                cfg.inject_safety = true;
            }
            if i % 3 == 1 {
                cfg.inject_deadlock = true;
            }
            let config = Config::fair().with_max_executions(300_000);
            let plain = Explorer::new(
                || generate_system(&cfg),
                ContextBounded::new(bound),
                config.clone(),
            )
            .run();
            let red = Explorer::new(
                || generate_system(&cfg),
                ContextBounded::with_sleep_sets(bound),
                config.clone(),
            )
            .run();
            let pv = plain.stats.violations + plain.stats.deadlocks + plain.stats.divergences;
            let rv = red.stats.violations + red.stats.deadlocks + red.stats.divergences;
            if (pv > 0) != (rv > 0) {
                diverged += 1;
                println!("DIVERGE bound={bound} seed index {i}: plain errors={pv} reduced errors={rv} (execs {} vs {})",
                    plain.stats.executions, red.stats.executions);
            }
            if red.stats.executions > plain.stats.executions {
                println!(
                    "MORE bound={bound} i={i}: reduced {} > plain {}",
                    red.stats.executions, plain.stats.executions
                );
            }
        }
    }
    println!("done, {diverged} divergences");
}
