//! Regression gate over the checked-in fuzz corpus.
//!
//! Every entry under `fuzz-corpus/` is a minimized schedule that once
//! exposed a divergence between the stateless search and the stateful
//! oracle. Each must keep reproducing its recorded outcome through
//! `fair-chess replay` — if a kernel or scheduler change stops one from
//! reproducing, that change altered observable execution semantics and
//! this test names the exact entry.

use std::path::PathBuf;
use std::process::Command;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../fuzz-corpus")
}

#[test]
fn every_corpus_entry_reproduces_its_recorded_outcome() {
    let dir = corpus_dir();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read corpus dir {}: {e}", dir.display()))
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    entries.sort();
    assert!(
        !entries.is_empty(),
        "no corpus entries under {} — the regression gate is vacuous",
        dir.display()
    );

    for entry in &entries {
        let name = entry.display();
        // Parse the recorded outcome kind ourselves so an unreadable or
        // schema-drifted entry fails with a specific message instead of
        // silently weakening the gate.
        let text = std::fs::read_to_string(entry)
            .unwrap_or_else(|e| panic!("unreadable corpus entry {name}: {e}"));
        let kind = text
            .split("\"kind\"")
            .nth(1)
            .and_then(|rest| rest.split('"').nth(1))
            .unwrap_or_else(|| panic!("corpus entry {name} has no \"kind\" field"));

        let out = Command::new(env!("CARGO_BIN_EXE_fair-chess"))
            .args(["replay", entry.to_str().unwrap()])
            .output()
            .expect("failed to run fair-chess");
        let stdout = String::from_utf8_lossy(&out.stdout);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(
            out.status.code(),
            Some(0),
            "corpus entry {name} no longer replays cleanly\nstdout:\n{stdout}\nstderr:\n{stderr}"
        );
        assert!(
            stdout.contains(&format!("reproduced: {kind}")),
            "corpus entry {name} replayed but did not reproduce '{kind}'\nstdout:\n{stdout}"
        );
    }
}
