//! End-to-end tests of the `fair-chess` binary.

use std::process::{Command, Output};

fn fair_chess(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fair-chess"))
        .args(args)
        .output()
        .expect("failed to run fair-chess")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

#[test]
fn list_shows_workloads() {
    let out = fair_chess(&["list"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("philosophers"));
    assert!(text.contains("--bug aba"));
}

#[test]
fn help_on_no_args() {
    let out = fair_chess(&[]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("USAGE"));
}

#[test]
fn check_finds_racy_counter() {
    let out = fair_chess(&["check", "counter", "--bug", "racy"]);
    assert_eq!(out.status.code(), Some(1), "violation must exit 1");
    let text = stdout(&out);
    assert!(text.contains("safety violation"), "{text}");
    assert!(text.contains("racy-inc"), "trace must be printed: {text}");
}

#[test]
fn check_clean_counter_exits_zero() {
    let out = fair_chess(&["check", "counter"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout(&out).contains("search complete"));
}

#[test]
fn check_detects_livelock() {
    let out = fair_chess(&["check", "promise", "--bug", "stale-spin", "--no-trace"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stdout(&out).contains("livelock"));
}

#[test]
fn truth_reports_fair_cycle() {
    let out = fair_chess(&["truth", "philosophers", "--bug", "figure1"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("livelock:           YES"), "{text}");
}

#[test]
fn cover_reports_percentage() {
    let out = fair_chess(&["cover", "spinloop"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("100.0%"));
}

#[test]
fn unknown_workload_exits_2() {
    let out = fair_chess(&["check", "nope"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn unknown_flag_exits_2() {
    let out = fair_chess(&["check", "counter", "--wat"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn budgeted_unfair_baseline_runs() {
    let out = fair_chess(&[
        "check",
        "philosophers",
        "--bug",
        "figure1",
        "--unfair",
        "--db",
        "30",
        "--depth-bound",
        "200",
        "--max-executions",
        "500",
        "--no-trace",
    ]);
    // The unfair baseline cannot detect the livelock: it completes or
    // exhausts its budget without reporting an error.
    assert!(matches!(out.status.code(), Some(0) | Some(3)), "{out:?}");
}
