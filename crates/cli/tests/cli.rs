//! End-to-end tests of the `fair-chess` binary.

use std::process::{Command, Output};

fn fair_chess(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fair-chess"))
        .args(args)
        .output()
        .expect("failed to run fair-chess")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

#[test]
fn list_shows_workloads() {
    let out = fair_chess(&["list"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("philosophers"));
    assert!(text.contains("--bug aba"));
}

#[test]
fn help_on_no_args() {
    let out = fair_chess(&[]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("USAGE"));
}

#[test]
fn check_finds_racy_counter() {
    let out = fair_chess(&["check", "counter", "--bug", "racy"]);
    assert_eq!(out.status.code(), Some(1), "violation must exit 1");
    let text = stdout(&out);
    assert!(text.contains("safety violation"), "{text}");
    assert!(text.contains("racy-inc"), "trace must be printed: {text}");
}

#[test]
fn check_clean_counter_exits_zero() {
    let out = fair_chess(&["check", "counter"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout(&out).contains("search complete"));
}

#[test]
fn check_detects_livelock() {
    let out = fair_chess(&["check", "promise", "--bug", "stale-spin", "--no-trace"]);
    assert_eq!(out.status.code(), Some(5), "livelock must exit 5");
    assert!(stdout(&out).contains("livelock"));
}

#[test]
fn check_detects_deadlock() {
    let out = fair_chess(&["check", "counter", "--bug", "deadlock"]);
    assert_eq!(out.status.code(), Some(4), "deadlock must exit 4");
    assert!(stdout(&out).contains("deadlock"));
}

#[test]
fn execution_budget_exit_is_incomplete() {
    let out = fair_chess(&[
        "check",
        "philosophers",
        "--max-executions",
        "3",
        "--no-trace",
    ]);
    assert_eq!(out.status.code(), Some(3), "budget exhaustion must exit 3");
    assert!(stdout(&out).contains("execution budget exhausted"));
}

#[test]
fn time_budget_exit_is_incomplete() {
    let out = fair_chess(&[
        "check",
        "miniboot-full",
        "--time-budget",
        "0.05",
        "--no-trace",
    ]);
    assert_eq!(out.status.code(), Some(3), "time budget expiry must exit 3");
    assert!(stdout(&out).contains("time budget exhausted"));
}

#[test]
fn truth_reports_fair_cycle() {
    let out = fair_chess(&["truth", "philosophers", "--bug", "figure1"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("livelock:           YES"), "{text}");
}

#[test]
fn cover_reports_percentage() {
    let out = fair_chess(&["cover", "spinloop"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("100.0%"));
}

#[test]
fn unknown_workload_exits_2() {
    let out = fair_chess(&["check", "nope"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn unknown_flag_exits_2() {
    let out = fair_chess(&["check", "counter", "--wat"]);
    assert_eq!(out.status.code(), Some(2));
}

/// The final report line with the wall-clock duration stripped (the one
/// field that legitimately differs between two runs of the same search).
fn normalized_report(text: &str) -> String {
    let line = text
        .lines()
        .find(|l| l.contains(" executions, "))
        .unwrap_or_else(|| panic!("no report line in: {text}"));
    line.rsplit_once(',')
        .expect("report has a wall field")
        .0
        .to_string()
}

fn temp_journal(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fair-chess-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn checkpoint_resume_converges_to_the_uninterrupted_report() {
    let journal = temp_journal("resume-counter.json");
    let journal = journal.to_str().unwrap();

    let full = fair_chess(&["check", "counter", "--no-trace"]);
    assert_eq!(full.status.code(), Some(0));

    // Stop early with a checkpoint (budget exhaustion emits a final one).
    let partial = fair_chess(&[
        "check",
        "counter",
        "--no-trace",
        "--max-executions",
        "2",
        "--checkpoint",
        journal,
    ]);
    assert_eq!(partial.status.code(), Some(3), "{partial:?}");

    // Resuming without the budget finishes the search; the report must
    // match the uninterrupted run's, wall-clock time excepted.
    let resumed = fair_chess(&["check", "counter", "--no-trace", "--resume", journal]);
    assert_eq!(resumed.status.code(), Some(0), "{resumed:?}");
    assert!(String::from_utf8_lossy(&resumed.stderr).contains("resuming from"));
    assert_eq!(
        normalized_report(&stdout(&resumed)),
        normalized_report(&stdout(&full)),
    );
}

#[test]
fn resume_rejects_a_mismatched_run_context() {
    let journal = temp_journal("resume-mismatch.json");
    let journal = journal.to_str().unwrap();
    let partial = fair_chess(&[
        "check",
        "counter",
        "--no-trace",
        "--max-executions",
        "1",
        "--checkpoint",
        journal,
    ]);
    assert_eq!(partial.status.code(), Some(3));

    // Same journal, different strategy: refused as a usage error.
    let out = fair_chess(&[
        "check",
        "counter",
        "--no-trace",
        "--strategy",
        "cb:2",
        "--resume",
        journal,
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("strategy"));
}

#[cfg(unix)]
#[test]
fn sigint_checkpoints_and_exits_resumable() {
    use std::time::Duration;

    let journal = temp_journal("resume-sigint.json");
    let journal_s = journal.to_str().unwrap();
    let child = std::process::Command::new(env!("CARGO_BIN_EXE_fair-chess"))
        .args([
            "check",
            "miniboot-full",
            "--no-trace",
            "--time-budget",
            "60",
            "--checkpoint",
            journal_s,
            "--checkpoint-every",
            "10",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn fair-chess");
    // Let the handler install and the search get going, then interrupt.
    std::thread::sleep(Duration::from_millis(800));
    let killed = std::process::Command::new("sh")
        .args(["-c", &format!("kill -INT {}", child.id())])
        .status()
        .expect("run kill");
    assert!(killed.success());
    let out = child.wait_with_output().expect("wait for fair-chess");
    assert_eq!(
        out.status.code(),
        Some(6),
        "SIGINT must exit 6 (interrupted, resumable): {out:?}"
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("--resume"));
    assert!(journal.exists(), "the final checkpoint must be flushed");

    // The journal is live: resuming with a tiny budget proves the
    // recorded progress is readable and counted.
    let resumed = fair_chess(&[
        "check",
        "miniboot-full",
        "--no-trace",
        "--resume",
        journal_s,
        "--max-executions",
        "1",
    ]);
    assert_eq!(resumed.status.code(), Some(3), "{resumed:?}");
    assert!(String::from_utf8_lossy(&resumed.stderr).contains("resuming from"));
}

#[test]
fn fuzz_inject_panic_minimizes_and_replays() {
    let dir = temp_journal("panic-corpus");
    let dir_s = dir.to_str().unwrap();
    let out = fair_chess(&[
        "fuzz",
        "--systems",
        "2",
        "--seed",
        "11",
        "--inject",
        "panic",
        "--corpus-dir",
        dir_s,
        "--max-states",
        "50000",
    ]);
    assert_eq!(out.status.code(), Some(0), "oracles must agree: {out:?}");
    let entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("panic-"))
        })
        .collect();
    assert!(
        !entries.is_empty(),
        "injected panics must produce corpus entries: {out:?}"
    );
    // Every minimized panic entry replays to the same outcome kind.
    for entry in &entries {
        let replayed = fair_chess(&["replay", entry.to_str().unwrap()]);
        assert_eq!(replayed.status.code(), Some(0), "{replayed:?}");
        assert!(stdout(&replayed).contains("reproduced: panic"));
    }
}

#[test]
fn fuzz_journal_resume_matches_uninterrupted_run() {
    let journal = temp_journal("fuzz-resume.json");
    let journal_s = journal.to_str().unwrap();
    let corpus = temp_journal("fuzz-resume-corpus");
    let corpus_s = corpus.to_str().unwrap();
    fn args<'a>(corpus: &'a str, extra: &[&'a str]) -> Vec<&'a str> {
        let mut v = vec![
            "fuzz",
            "--systems",
            "4",
            "--seed",
            "5",
            "--inject",
            "deadlock",
            "--corpus-dir",
            corpus,
            "--max-states",
            "50000",
        ];
        v.extend_from_slice(extra);
        v
    }
    let full = fair_chess(&args(corpus_s, &[]));
    assert_eq!(full.status.code(), Some(0), "{full:?}");

    // Journal the campaign, then resume it from its own journal: every
    // system is replayed from the records, and the report matches.
    let journaled = fair_chess(&args(corpus_s, &["--checkpoint", journal_s]));
    assert_eq!(journaled.status.code(), Some(0), "{journaled:?}");
    let resumed = fair_chess(&args(corpus_s, &["--resume", journal_s]));
    assert_eq!(resumed.status.code(), Some(0), "{resumed:?}");
    assert_eq!(stdout(&resumed), stdout(&full));
}

#[test]
fn budgeted_unfair_baseline_runs() {
    let out = fair_chess(&[
        "check",
        "philosophers",
        "--bug",
        "figure1",
        "--unfair",
        "--db",
        "30",
        "--depth-bound",
        "200",
        "--max-executions",
        "500",
        "--no-trace",
    ]);
    // The unfair baseline cannot detect the livelock: it completes or
    // exhausts its budget without reporting an error.
    assert!(matches!(out.status.code(), Some(0) | Some(3)), "{out:?}");
}
