//! End-to-end tests of the campaign daemon and its client verbs,
//! driving the real binary over a unix socket: sharded-vs-unsharded
//! report identity, cached resubmits, `kill -9` of the daemon with a
//! byte-identical resume from the persistent store, and protocol
//! garbage injection.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fair-chess"))
}

fn fair_chess(args: &[&str]) -> Output {
    bin().args(args).output().expect("failed to run fair-chess")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

/// Per-test scratch dir: tests run concurrently in one process, so the
/// directory is keyed by test name, not just pid.
fn temp_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fair-chess-daemon-{}-{test}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_manifest(dir: &Path, name: &str, text: &str) -> String {
    let path = dir.join(name);
    std::fs::write(&path, text).unwrap();
    path.to_str().unwrap().to_string()
}

/// A running daemon child, SIGKILLed on drop so a failing test cannot
/// leak a listener into the next run.
struct Daemon {
    child: Child,
    sock: String,
    store: String,
}

impl Daemon {
    /// Spawns `fair-chess daemon` on a fresh unix socket over `store`
    /// and waits until it answers a `status` request.
    fn start(dir: &Path, store: &str) -> Daemon {
        let sock = dir.join("daemon.sock").to_str().unwrap().to_string();
        let store = dir.join(store).to_str().unwrap().to_string();
        let child = bin()
            .args([
                "daemon",
                "--listen",
                &sock,
                "--store",
                &store,
                "--workers",
                "2",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn daemon");
        let daemon = Daemon { child, sock, store };
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let out = fair_chess(&["status", "--connect", &daemon.sock]);
            if out.status.code() == Some(0) {
                return daemon;
            }
            assert!(
                Instant::now() < deadline,
                "daemon did not come up in 60s: {out:?}"
            );
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// Restarts a daemon on this one's socket and store (after a kill).
    fn restart(&mut self) {
        let dir = Path::new(&self.sock).parent().unwrap().to_path_buf();
        let store_name = Path::new(&self.store)
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .to_string();
        *self = Daemon::start(&dir, &store_name);
    }

    fn kill_nine(&mut self) {
        let _ = Command::new("sh")
            .args(["-c", &format!("kill -9 {}", self.child.id())])
            .status();
        let _ = self.child.wait();
    }

    /// Clean shutdown through the protocol; asserts the process exits.
    fn shutdown(mut self) {
        let out = fair_chess(&["shutdown", "--connect", &self.sock]);
        assert_eq!(out.status.code(), Some(0), "{out:?}");
        let deadline = Instant::now() + Duration::from_secs(60);
        while self.child.try_wait().expect("try_wait").is_none() {
            assert!(Instant::now() < deadline, "daemon ignored shutdown");
            std::thread::sleep(Duration::from_millis(25));
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if self.child.try_wait().ok().flatten().is_none() {
            self.kill_nine();
        }
    }
}

/// Extracts the campaign digest from a submit acknowledgment line
/// (`campaign <hex>: queued (3 jobs)` / `campaign <hex>: cached (...)`).
fn campaign_of(submit_stdout: &str) -> String {
    submit_stdout
        .split_whitespace()
        .nth(1)
        .unwrap_or_else(|| panic!("no campaign digest in {submit_stdout:?}"))
        .trim_end_matches(':')
        .to_string()
}

/// Polls `status <campaign>` until `pred` holds on the raw JSON text.
fn wait_for_status(sock: &str, campaign: &str, pred: impl Fn(&str) -> bool) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let out = fair_chess(&["status", campaign, "--connect", sock]);
        let text = stdout(&out);
        if out.status.code() == Some(0) && pred(&text) {
            return text;
        }
        assert!(
            Instant::now() < deadline,
            "status condition not reached in 120s; last: {text}"
        );
        std::thread::sleep(Duration::from_millis(30));
    }
}

/// The acceptance criterion for sharding: a `"shards": K` check job
/// fanned across workers must merge to a report byte-identical to the
/// unsharded run of the same manifest.
#[test]
fn sharded_campaign_report_is_byte_identical_to_the_unsharded_one() {
    let dir = temp_dir("shards");
    // The sharded job is clean and exhausts its space: merge equality
    // with the sequential run is exact whenever every shard completes.
    // The racy job rides along (unsharded) so the campaign code is
    // nonzero.
    let sharded = write_manifest(
        &dir,
        "sharded.json",
        r#"{"jobs": [
          {"id": "w", "workload": "counter", "max_executions": 100000, "shards": 2},
          {"id": "r", "workload": "counter", "bug": "racy", "max_executions": 50000}
        ]}"#,
    );
    let unsharded = write_manifest(
        &dir,
        "unsharded.json",
        r#"{"jobs": [
          {"id": "w", "workload": "counter", "max_executions": 100000},
          {"id": "r", "workload": "counter", "bug": "racy", "max_executions": 50000}
        ]}"#,
    );
    // Reference: the unsharded one-shot runner.
    let reference = fair_chess(&["serve", &unsharded, "--workers", "2"]);
    assert_eq!(reference.status.code(), Some(1), "{reference:?}");

    let daemon = Daemon::start(&dir, "store");
    let submit = fair_chess(&["submit", &sharded, "--connect", &daemon.sock, "--watch"]);
    assert_eq!(
        submit.status.code(),
        Some(1),
        "watch must exit with the report code: {submit:?}"
    );
    let campaign = campaign_of(&stdout(&submit));
    let results = fair_chess(&["results", &campaign, "--connect", &daemon.sock]);
    assert_eq!(results.status.code(), Some(1), "{results:?}");
    assert_eq!(
        stdout(&results),
        stdout(&reference),
        "merged shard report must be byte-identical to the unsharded run"
    );
    // The watch stream printed per-shard verdicts along the way.
    assert!(stdout(&submit).contains("w#0:"), "{submit:?}");
    assert!(stdout(&submit).contains("w#1:"), "{submit:?}");
    daemon.shutdown();
}

/// Content addressing: resubmitting a completed manifest answers from
/// the store without re-execution, carrying the original verdict code.
#[test]
fn resubmit_of_a_completed_campaign_is_answered_from_the_store() {
    let dir = temp_dir("cached");
    let manifest = write_manifest(
        &dir,
        "cached.json",
        r#"{"jobs": [{"id": "r", "workload": "counter", "bug": "racy", "max_executions": 50000}]}"#,
    );
    let daemon = Daemon::start(&dir, "store");
    let first = fair_chess(&["submit", &manifest, "--connect", &daemon.sock, "--watch"]);
    assert_eq!(first.status.code(), Some(1), "{first:?}");
    assert!(stdout(&first).contains("queued"), "{first:?}");

    let again = fair_chess(&["submit", &manifest, "--connect", &daemon.sock]);
    assert_eq!(
        again.status.code(),
        Some(1),
        "a cached finished campaign must answer with its report code: {again:?}"
    );
    assert!(stdout(&again).contains("cached"), "{again:?}");

    // Equivalent-but-reformatted manifest text (same fields, same
    // order, different whitespace): same canonical digest, still
    // cached.
    let reformatted = write_manifest(
        &dir,
        "cached2.json",
        r#"{ "jobs" :
             [ { "id": "r", "workload": "counter", "bug": "racy", "max_executions": 50000 } ] }"#,
    );
    let third = fair_chess(&["submit", &reformatted, "--connect", &daemon.sock]);
    assert!(stdout(&third).contains("cached"), "{third:?}");
    daemon.shutdown();
}

/// The durability acceptance test: `kill -9` the daemon mid-campaign,
/// restart it over the same store, and require the resumed campaign's
/// final report byte-identical to an uninterrupted run's.
#[test]
fn kill_nine_of_the_daemon_resumes_the_campaign_byte_identically() {
    let dir = temp_dir("kill9");
    let jobs: Vec<String> = (0..6)
        .map(|i| {
            format!(
                r#"{{"id": "p{i}", "workload": "philosophers", "strategy": "random:{i}",
                    "max_executions": 8000}}"#
            )
        })
        .collect();
    let manifest = write_manifest(
        &dir,
        "kill9.json",
        &format!(r#"{{"jobs": [{}]}}"#, jobs.join(",\n")),
    );
    // Reference: the same campaign through the one-shot runner.
    let reference = fair_chess(&["serve", &manifest, "--workers", "2"]);
    assert_eq!(reference.status.code(), Some(3), "{reference:?}");

    let mut daemon = Daemon::start(&dir, "store");
    let submit = fair_chess(&["submit", &manifest, "--connect", &daemon.sock]);
    assert_eq!(submit.status.code(), Some(0), "{submit:?}");
    let campaign = campaign_of(&stdout(&submit));

    // Wait until some verdicts are in and some pending, then SIGKILL:
    // no destructor runs, so only the store's atomic journal protects
    // the campaign.
    wait_for_status(&daemon.sock, &campaign, |s| {
        !s.contains("\"done\": 0") && !s.contains("\"pending\": 0")
    });
    daemon.kill_nine();

    daemon.restart();
    let watch = fair_chess(&["watch", &campaign, "--connect", &daemon.sock]);
    assert_eq!(watch.status.code(), Some(3), "{watch:?}");
    let results = fair_chess(&["results", &campaign, "--connect", &daemon.sock]);
    assert_eq!(results.status.code(), Some(3), "{results:?}");
    assert_eq!(
        stdout(&results),
        stdout(&reference),
        "resumed report must be byte-identical to the uninterrupted run"
    );
    daemon.shutdown();
}

/// Chaos: a client that leads every request with protocol garbage must
/// get a structured error back (never a dropped connection), and the
/// daemon must keep serving other clients afterwards.
#[test]
fn protocol_garbage_gets_a_structured_error_and_the_daemon_survives() {
    let dir = temp_dir("garbage");
    let daemon = Daemon::start(&dir, "store");
    let out = bin()
        .args(["status", "--connect", &daemon.sock])
        .env("FAIR_CHESS_CHAOS", "garbage:1,seed:7")
        .output()
        .expect("run chaos client");
    assert_eq!(
        out.status.code(),
        Some(0),
        "garbage must be answered with a structured error, then the real \
         request must still succeed: {out:?}"
    );
    assert!(stderr(&out).contains("chaos garbage"), "{out:?}");
    // The daemon is unimpressed.
    let after = fair_chess(&["status", "--connect", &daemon.sock]);
    assert_eq!(after.status.code(), Some(0), "{after:?}");
    daemon.shutdown();
}

/// Error surfaces: a manifest that fails validation is refused at
/// submit, and unknown campaign digests are structured errors.
#[test]
fn bad_submissions_and_unknown_campaigns_are_structured_errors() {
    let dir = temp_dir("errors");
    let daemon = Daemon::start(&dir, "store");
    let bad = write_manifest(
        &dir,
        "bad.json",
        r#"{"jobs": [{"id": "x", "kind": "bake"}]}"#,
    );
    let out = fair_chess(&["submit", &bad, "--connect", &daemon.sock]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(stderr(&out).contains("unknown job kind"), "{out:?}");

    let out = fair_chess(&["results", "00000000deadbeef", "--connect", &daemon.sock]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(stderr(&out).contains("unknown campaign"), "{out:?}");
    daemon.shutdown();
}
