//! End-to-end tests of the `serve` campaign runner: exit-code mapping,
//! fault injection (chaos workers, spawn failure, kill -9 of the
//! supervisor), and torn-journal diagnostics across every command that
//! resumes from a journal.

use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};
use std::time::{Duration, Instant};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fair-chess"))
}

fn fair_chess(args: &[&str]) -> Output {
    bin().args(args).output().expect("failed to run fair-chess")
}

fn fair_chess_env(args: &[&str], env: &[(&str, &str)]) -> Output {
    let mut cmd = bin();
    cmd.args(args);
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.output().expect("failed to run fair-chess")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fair-chess-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_manifest(name: &str, text: &str) -> PathBuf {
    let path = temp_dir().join(name);
    std::fs::write(&path, text).unwrap();
    path
}

const MIXED_MANIFEST: &str = r#"{"jobs": [
  {"id": "clean", "workload": "counter", "max_executions": 1000},
  {"id": "racy", "workload": "counter", "bug": "racy", "max_executions": 1000},
  {"id": "dead", "workload": "counter", "bug": "deadlock", "max_executions": 1000},
  {"id": "short", "workload": "philosophers", "max_executions": 5}
]}"#;

#[test]
fn campaign_reports_in_manifest_order_and_maps_the_worst_outcome() {
    let manifest = write_manifest("mixed.json", MIXED_MANIFEST);
    let out = fair_chess(&["serve", manifest.to_str().unwrap(), "--workers", "2"]);
    // Worst of {0, 1, 4, 3} under the documented precedence is the
    // safety violation.
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = stdout(&out);
    let order: Vec<usize> = ["clean:", "racy:", "dead:", "short:", "campaign:"]
        .iter()
        .map(|id| text.find(id).unwrap_or_else(|| panic!("no {id} in {text}")))
        .collect();
    assert!(
        order.windows(2).all(|w| w[0] < w[1]),
        "manifest order: {text}"
    );
    assert!(text.contains("racy: safety violation"), "{text}");
    assert!(text.contains("dead: deadlock"), "{text}");
    assert!(text.contains("short: search incomplete"), "{text}");
    assert!(
        text.contains("campaign: 4 of 4 jobs done, 0 quarantined"),
        "{text}"
    );
}

#[test]
fn clean_campaign_exits_zero_and_maintains_the_status_file() {
    let manifest = write_manifest(
        "clean.json",
        r#"{"jobs": [{"id": "a", "workload": "counter", "max_executions": 100},
                     {"id": "b", "workload": "spinloop", "max_executions": 1000}]}"#,
    );
    let status = temp_dir().join("status.json");
    let out = fair_chess(&[
        "serve",
        manifest.to_str().unwrap(),
        "--status-file",
        status.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let status_text = std::fs::read_to_string(&status).unwrap();
    assert!(status_text.contains("\"done\": 2"), "{status_text}");
    assert!(status_text.contains("\"pending\": 0"), "{status_text}");
}

#[test]
fn chaos_abort_quarantines_the_job_and_exits_internal() {
    let manifest = write_manifest(
        "chaos-abort.json",
        r#"{"jobs": [{"id": "doomed", "workload": "counter", "max_executions": 100}]}"#,
    );
    let out = fair_chess_env(
        &["serve", manifest.to_str().unwrap(), "--max-attempts", "2"],
        &[("FAIR_CHESS_CHAOS", "abort:1")],
    );
    assert_eq!(
        out.status.code(),
        Some(7),
        "quarantine must exit 7: {out:?}"
    );
    let text = stdout(&out);
    assert!(
        text.contains("doomed: quarantined after 2 attempts (worker died; worker died)"),
        "{text}"
    );
    assert!(
        text.contains("campaign: 0 of 1 jobs done, 1 quarantined"),
        "{text}"
    );
}

#[test]
fn chaos_hang_trips_the_watchdog() {
    let manifest = write_manifest(
        "chaos-hang.json",
        r#"{"jobs": [{"id": "stuck", "workload": "counter", "max_executions": 100}]}"#,
    );
    let out = fair_chess_env(
        &[
            "serve",
            manifest.to_str().unwrap(),
            "--workers",
            "1",
            "--max-attempts",
            "2",
            "--heartbeat-timeout",
            "0.5",
        ],
        &[("FAIR_CHESS_CHAOS", "hang:1")],
    );
    assert_eq!(out.status.code(), Some(7), "{out:?}");
    assert!(
        stdout(&out).contains("(watchdog timeout; watchdog timeout)"),
        "hung workers must be killed by the watchdog: {out:?}"
    );
}

#[test]
fn chaos_garbage_is_a_protocol_violation() {
    let manifest = write_manifest(
        "chaos-garbage.json",
        r#"{"jobs": [{"id": "noisy", "workload": "counter", "max_executions": 100}]}"#,
    );
    let out = fair_chess_env(
        &["serve", manifest.to_str().unwrap(), "--max-attempts", "2"],
        &[("FAIR_CHESS_CHAOS", "garbage:1")],
    );
    assert_eq!(out.status.code(), Some(7), "{out:?}");
    assert!(stdout(&out).contains("protocol violation"), "{out:?}");
}

#[test]
fn spawn_failure_degrades_to_in_process_execution() {
    let manifest = write_manifest(
        "degraded.json",
        r#"{"jobs": [{"id": "r", "workload": "counter", "bug": "racy", "max_executions": 1000}]}"#,
    );
    let out = fair_chess_env(
        &["serve", manifest.to_str().unwrap()],
        &[("FAIR_CHESS_WORKER_BIN", "/nonexistent/fair-chess")],
    );
    // The campaign still completes — and still reports the bug.
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(stdout(&out).contains("r: safety violation"), "{out:?}");
    assert!(
        stderr(&out).contains("in-process"),
        "degradation must be loud: {out:?}"
    );
}

/// The acceptance test: `kill -9` the supervisor mid-campaign, resume
/// from its checkpoint, and require the final report byte-identical to
/// the uninterrupted run's.
#[cfg(unix)]
#[test]
fn kill_nine_then_resume_reprints_the_identical_report() {
    // Six jobs of a few hundred milliseconds each: enough runway to
    // kill the supervisor with some verdicts in and some pending.
    let jobs: Vec<String> = (0..6)
        .map(|i| {
            format!(
                r#"{{"id": "p{i}", "workload": "philosophers", "strategy": "random:{i}",
                    "max_executions": 8000}}"#
            )
        })
        .collect();
    let manifest = write_manifest(
        "kill9.json",
        &format!(r#"{{"jobs": [{}]}}"#, jobs.join(",\n")),
    );
    let manifest_s = manifest.to_str().unwrap();

    let full = fair_chess(&["serve", manifest_s, "--workers", "2"]);
    assert_eq!(full.status.code(), Some(3), "{full:?}");

    let journal = temp_dir().join("kill9-journal.json");
    let journal_s = journal.to_str().unwrap();
    let mut child = bin()
        .args([
            "serve",
            manifest_s,
            "--workers",
            "2",
            "--checkpoint",
            journal_s,
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn supervisor");
    // Wait until at least one verdict is journaled, then SIGKILL: no
    // signal handler runs, so only the atomic rewrites protect state.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let verdicts = std::fs::read_to_string(&journal)
            .map(|t| t.matches("\"attempts\"").count())
            .unwrap_or(0);
        if verdicts >= 1 || child.try_wait().expect("try_wait").is_some() {
            break;
        }
        assert!(Instant::now() < deadline, "no verdict journaled in 60s");
        std::thread::sleep(Duration::from_millis(20));
    }
    let _ = Command::new("sh")
        .args(["-c", &format!("kill -9 {}", child.id())])
        .status();
    let _ = child.wait();

    let resumed = fair_chess(&["serve", manifest_s, "--workers", "2", "--resume", journal_s]);
    assert_eq!(resumed.status.code(), Some(3), "{resumed:?}");
    assert!(stderr(&resumed).contains("resuming from"), "{resumed:?}");
    assert_eq!(
        stdout(&resumed),
        stdout(&full),
        "resumed report must be byte-identical"
    );
}

#[cfg(unix)]
#[test]
fn sigint_checkpoints_and_exits_interrupted() {
    // One slow job (a long time budget) so the interrupt lands mid-job.
    let manifest = write_manifest(
        "sigint.json",
        r#"{"jobs": [{"id": "slow", "workload": "miniboot-full", "time_budget_ms": 60000}]}"#,
    );
    let journal = temp_dir().join("sigint-journal.json");
    let mut child = bin()
        .args([
            "serve",
            manifest.to_str().unwrap(),
            "--workers",
            "1",
            "--checkpoint",
            journal.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn supervisor");
    std::thread::sleep(Duration::from_millis(1200));
    assert!(
        child.try_wait().expect("try_wait").is_none(),
        "supervisor finished before it could be interrupted"
    );
    let killed = Command::new("sh")
        .args(["-c", &format!("kill -INT {}", child.id())])
        .status()
        .expect("run kill");
    assert!(killed.success());
    let out = child.wait_with_output().expect("wait for supervisor");
    assert_eq!(
        out.status.code(),
        Some(6),
        "SIGINT must exit 6 (interrupted, resumable): {out:?}"
    );
    assert!(stderr(&out).contains("--resume"), "{out:?}");
}

/// Satellite of the status-file contract: the file is atomically
/// rewritten after every verdict, so a polling reader racing the
/// campaign must never observe a torn document — every successful read
/// parses as JSON with the full counter set.
#[test]
fn concurrent_status_file_reads_are_never_torn() {
    use chess_bench::Json;

    let jobs: Vec<String> = (0..6)
        .map(|i| {
            format!(
                r#"{{"id": "s{i}", "workload": "philosophers", "strategy": "random:{i}",
                    "max_executions": 6000}}"#
            )
        })
        .collect();
    let manifest = write_manifest(
        "status-poll.json",
        &format!(r#"{{"jobs": [{}]}}"#, jobs.join(",\n")),
    );
    let status = temp_dir().join("status-poll-status.json");
    let mut child = bin()
        .args([
            "serve",
            manifest.to_str().unwrap(),
            "--workers",
            "2",
            "--status-file",
            status.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn supervisor");

    // Poll as fast as the filesystem lets us while the campaign runs.
    let mut reads = 0u64;
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if let Ok(text) = std::fs::read_to_string(&status) {
            reads += 1;
            let doc = Json::parse(&text)
                .unwrap_or_else(|e| panic!("torn status read #{reads}: {e}\n{text}"));
            for field in ["total", "done", "quarantined", "pending"] {
                assert!(
                    doc.get(field).and_then(Json::as_u64).is_some(),
                    "status read #{reads} lacks {field}: {text}"
                );
            }
        }
        if child.try_wait().expect("try_wait").is_some() {
            break;
        }
        assert!(Instant::now() < deadline, "campaign did not finish in 120s");
    }
    assert!(reads > 0, "the reader never saw a status file");
    // The final document accounts for every job.
    let text = std::fs::read_to_string(&status).unwrap();
    let doc = Json::parse(&text).unwrap();
    assert_eq!(doc.get("total").and_then(Json::as_u64), Some(6), "{text}");
    assert_eq!(doc.get("pending").and_then(Json::as_u64), Some(0), "{text}");
}

// ---------------------------------------------------------------------
// Torn-journal diagnostics
// ---------------------------------------------------------------------

/// Truncates `journal` at several byte offsets and requires every
/// resume attempt to exit 2 with a diagnostic naming the file — and
/// never to panic.
fn assert_truncations_are_diagnosed(journal: &Path, resume: &[&str]) {
    let intact = std::fs::read(journal).unwrap();
    assert!(
        intact.len() > 40,
        "journal too small to truncate: {intact:?}"
    );
    let offsets = [
        0,
        1,
        17,
        intact.len() / 3,
        intact.len() / 2,
        intact.len() - 2,
    ];
    for &offset in &offsets {
        std::fs::write(journal, &intact[..offset]).unwrap();
        let out = fair_chess(resume);
        let err = stderr(&out);
        assert_eq!(
            out.status.code(),
            Some(2),
            "truncation at byte {offset} must be a usage error: {out:?}"
        );
        assert!(
            !err.contains("panicked"),
            "truncation at byte {offset} must not panic: {err}"
        );
        assert!(
            err.contains(journal.file_name().unwrap().to_str().unwrap()),
            "diagnostic must name the journal file: {err}"
        );
        // A clean truncation is a syntax error with a byte offset; one
        // that tears a multi-byte character is a decoding error.
        assert!(
            err.contains("at byte") || err.contains("UTF-8") || err.contains("utf-8"),
            "diagnostic must locate the damage: {err}"
        );
    }
    std::fs::write(journal, &intact).unwrap();
}

#[test]
fn truncated_campaign_journal_is_diagnosed_not_panicked() {
    let manifest = write_manifest(
        "torn-serve.json",
        r#"{"jobs": [{"id": "a", "workload": "counter", "max_executions": 100},
                     {"id": "b", "workload": "counter", "bug": "racy", "max_executions": 100}]}"#,
    );
    let manifest_s = manifest.to_str().unwrap();
    let journal = temp_dir().join("torn-serve-journal.json");
    let journal_s = journal.to_str().unwrap();
    let out = fair_chess(&["serve", manifest_s, "--checkpoint", journal_s]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert_truncations_are_diagnosed(&journal, &["serve", manifest_s, "--resume", journal_s]);
    // And with the journal intact again, resume works.
    let resumed = fair_chess(&["serve", manifest_s, "--resume", journal_s]);
    assert_eq!(resumed.status.code(), Some(1), "{resumed:?}");
}

#[test]
fn truncated_check_journal_is_diagnosed_not_panicked() {
    let journal = temp_dir().join("torn-check-journal.json");
    let journal_s = journal.to_str().unwrap();
    let out = fair_chess(&[
        "check",
        "counter",
        "--no-trace",
        "--max-executions",
        "2",
        "--checkpoint",
        journal_s,
    ]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    assert_truncations_are_diagnosed(
        &journal,
        &["check", "counter", "--no-trace", "--resume", journal_s],
    );
}

#[test]
fn truncated_fuzz_journal_is_diagnosed_not_panicked() {
    let journal = temp_dir().join("torn-fuzz-journal.json");
    let journal_s = journal.to_str().unwrap();
    let corpus = temp_dir().join("torn-fuzz-corpus");
    let corpus_s = corpus.to_str().unwrap();
    let out = fair_chess(&[
        "fuzz",
        "--systems",
        "2",
        "--seed",
        "3",
        "--max-states",
        "50000",
        "--corpus-dir",
        corpus_s,
        "--checkpoint",
        journal_s,
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert_truncations_are_diagnosed(
        &journal,
        &[
            "fuzz",
            "--systems",
            "2",
            "--seed",
            "3",
            "--max-states",
            "50000",
            "--corpus-dir",
            corpus_s,
            "--resume",
            journal_s,
        ],
    );
}

#[test]
fn resume_rejects_a_journal_from_a_different_manifest() {
    let journal = temp_dir().join("foreign-journal.json");
    let journal_s = journal.to_str().unwrap();
    let first = write_manifest(
        "foreign-a.json",
        r#"{"jobs": [{"id": "a", "workload": "counter", "max_executions": 100}]}"#,
    );
    let out = fair_chess(&["serve", first.to_str().unwrap(), "--checkpoint", journal_s]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    // Same journal, materially different manifest: refused.
    let second = write_manifest(
        "foreign-b.json",
        r#"{"jobs": [{"id": "a", "workload": "counter", "max_executions": 200}]}"#,
    );
    let out = fair_chess(&["serve", second.to_str().unwrap(), "--resume", journal_s]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(stderr(&out).contains("different manifest"), "{out:?}");
}

#[test]
fn malformed_manifest_is_a_usage_error_with_a_byte_offset() {
    let manifest = write_manifest("broken.json", r#"{"jobs": [{"id": "a", }"#);
    let out = fair_chess(&["serve", manifest.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = stderr(&out);
    assert!(
        err.contains("broken.json") && err.contains("at byte"),
        "{err}"
    );

    let missing = fair_chess(&["serve", "/nonexistent/campaign.json"]);
    assert_eq!(missing.status.code(), Some(2), "{missing:?}");
    assert!(stderr(&missing).contains("campaign.json"), "{missing:?}");
}
