//! Graceful interruption: SIGINT/SIGTERM raise a stop flag instead of
//! killing the process.
//!
//! The handler itself only stores into a static `AtomicBool` (the one
//! async-signal-safe thing a Rust handler can do); a detached watcher
//! thread bridges that static into the `Arc<AtomicBool>` stop flag the
//! explorer polls at every execution boundary. The search then winds
//! down cleanly: it reports `BudgetExhausted(Interrupted)`, flushes a
//! final checkpoint when `--checkpoint` is active, and the CLI exits
//! with [`crate::exitcode::INTERRUPTED`].
//!
//! The raw `signal(2)` FFI lives here and nowhere else; every library
//! crate in the workspace keeps `#![forbid(unsafe_code)]`. A second
//! signal while the search is winding down restores the default
//! disposition first, so a double Ctrl-C still kills a wedged process.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Set by the signal handler; polled by the watcher thread.
static INTERRUPT_PENDING: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod unix {
    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;
    /// `SIG_DFL`: restore the default disposition.
    pub const SIG_DFL: usize = 0;

    extern "C" {
        /// POSIX `signal(2)`. The handler is passed as a raw function
        /// address (or `SIG_DFL`); the return value is the previous
        /// disposition, which we do not need.
        pub fn signal(signum: i32, handler: usize) -> usize;
    }

    pub extern "C" fn on_signal(_signum: i32) {
        super::INTERRUPT_PENDING.store(true, std::sync::atomic::Ordering::SeqCst);
        // One chance to wind down gracefully: the next SIGINT/SIGTERM
        // gets the default (terminating) disposition.
        unsafe {
            signal(SIGINT, SIG_DFL);
            signal(SIGTERM, SIG_DFL);
        }
    }
}

/// Installs SIGINT/SIGTERM handlers and returns the stop flag they
/// raise. The returned flag is the one to pass to
/// `Explorer::with_stop_flag`. On non-Unix targets this is a no-op
/// flag that is never raised.
pub fn install() -> Arc<AtomicBool> {
    let stop = Arc::new(AtomicBool::new(false));
    #[cfg(unix)]
    {
        let handler = unix::on_signal as *const () as usize;
        unsafe {
            unix::signal(unix::SIGINT, handler);
            unix::signal(unix::SIGTERM, handler);
        }
        let bridge = Arc::clone(&stop);
        std::thread::spawn(move || loop {
            if INTERRUPT_PENDING.load(Ordering::SeqCst) {
                bridge.store(true, Ordering::SeqCst);
                break;
            }
            std::thread::sleep(Duration::from_millis(25));
        });
    }
    stop
}

/// True iff a SIGINT/SIGTERM arrived since [`install`]. Used to pick
/// the interrupted-resumable exit code over the plain budget code.
pub fn interrupted() -> bool {
    INTERRUPT_PENDING.load(Ordering::SeqCst)
}
